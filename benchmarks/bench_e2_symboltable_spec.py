"""E2 — the Symboltable specification (axioms 1-9) is a complete,
consistent problem statement.

Paper artefact: "the procedure discussed earlier can be used to formally
prove the sufficient-completeness of this specification" and the claim
that the relation set "provides a complete self-contained specification
for a major subsystem of the compiler".
"""

import pytest

from repro.adt.symboltable import SYMBOLTABLE_SPEC
from repro.analysis import (
    case_patterns,
    check_consistency,
    check_sufficient_completeness,
    classify,
)

from conftest import report


def test_e2_sufficient_completeness(benchmark):
    result = benchmark(check_sufficient_completeness, SYMBOLTABLE_SPEC)
    assert result.sufficiently_complete, str(result)
    benchmark.extra_info["observations_sampled"] = result.sampled_observations


def test_e2_consistency(benchmark):
    result = benchmark(check_consistency, SYMBOLTABLE_SPEC)
    assert result.consistent, str(result)


def test_e2_case_grid_table(benchmark):
    cls = benchmark(classify, SYMBOLTABLE_SPEC)
    rows = []
    covered_total = 0
    for operation in cls.defined_operations:
        patterns = case_patterns(operation, cls)
        axioms = [a for a in SYMBOLTABLE_SPEC.axioms if a.head == operation]
        rows.append([operation.name, len(patterns), len(axioms)])
        covered_total += len(patterns)
    report(
        "E2: Symboltable case grid (axioms 1-9)",
        ["operation", "required cases", "axioms supplied"],
        rows,
    )
    # 3 constructors x 3 defined operations = 9 cases = 9 axioms.
    assert covered_total == 9
    assert len(SYMBOLTABLE_SPEC.axioms) == 9
