"""E8 — boundary-condition detection and the prompting loop.

Paper claim (section 3): "completeness is, in a practical sense, a more
severe problem than consistency ... Boundary conditions, e.g.
REMOVE(NEW), are particularly likely to be overlooked."  The system
"would begin to prompt the user to supply the additional information".

We regenerate: for every single-axiom deletion from each paper spec, the
checker finds exactly the deleted case; the boundary-answering oracle
then closes every boundary gap in one round.  Detection cost is timed
against specification size.
"""

import pytest

from repro.spec.parser import parse_specification
from repro.spec.specification import Specification
from repro.analysis import (
    CompletionSession,
    check_sufficient_completeness,
    default_boundary_oracle,
    prompts_for,
)
from repro.adt.array import ARRAY_SPEC
from repro.adt.queue import QUEUE_SPEC
from repro.adt.stack import STACK_SPEC
from repro.adt.symboltable import SYMBOLTABLE_SPEC

from conftest import report

PAPER_SPECS = [QUEUE_SPEC, STACK_SPEC, ARRAY_SPEC, SYMBOLTABLE_SPEC]


def _without_axiom(spec: Specification, label: str) -> Specification:
    remaining = tuple(a for a in spec.axioms if a.label != label)
    return Specification(
        spec.name,
        spec.signature,
        spec.type_of_interest,
        remaining,
        spec.uses,
        spec.parameter_sorts,
    )


def _detection_sweep():
    """Delete each axiom in turn; record what the checker reports."""
    rows = []
    detected = 0
    total = 0
    for spec in PAPER_SPECS:
        for axiom in spec.axioms:
            # Deleting an axiom can flip an operation into the
            # constructor class (its last axiom gone) — still a
            # detectable incompleteness unless the spec is degenerate.
            mutated = _without_axiom(spec, axiom.label)
            result = check_sufficient_completeness(mutated, sample_terms=0)
            total += 1
            if not result.sufficiently_complete:
                detected += 1
            rows.append(
                [
                    spec.name,
                    axiom.label,
                    "detected"
                    if not result.sufficiently_complete
                    else "MISSED",
                    len(result.missing),
                ]
            )
    return rows, detected, total


def test_e8_single_deletion_sweep(benchmark):
    rows, detected, total = benchmark(_detection_sweep)
    report(
        "E8: single-axiom deletion sweep",
        ["spec", "deleted axiom", "verdict", "missing cases"],
        rows,
    )
    # Every mutation must be caught.
    assert detected == total, f"only {detected}/{total} deletions detected"


def test_e8_remove_new_is_the_canonical_prompt(benchmark):
    mutated = _without_axiom(QUEUE_SPEC, "5")
    prompts = benchmark(prompts_for, mutated)
    assert [str(p.pattern) for p in prompts] == ["REMOVE(NEW)"]
    assert prompts[0].is_boundary


def test_e8_boundary_oracle_round_trip(benchmark):
    mutated = _without_axiom(
        _without_axiom(QUEUE_SPEC, "5"), "3"
    )  # drop both boundary axioms

    def repair():
        session = CompletionSession(mutated, default_boundary_oracle)
        return session.run(), session.rounds

    repaired, rounds = benchmark(repair)
    assert rounds == 1
    assert check_sufficient_completeness(repaired).sufficiently_complete


def test_e8_axiom_coverage_lint(benchmark):
    """The complementary lint: every axiom of every paper spec does
    real work (fires on a representative sample), and a deliberately
    shadowed axiom is caught as dead."""
    from repro.analysis import check_axiom_coverage

    def run():
        live = all(
            check_axiom_coverage(spec, observations=150).fully_covered
            for spec in PAPER_SPECS
        )
        shadowed = parse_specification(
            """
            type F
            uses Boolean
            operations
              MKF: -> F
              GROW: F -> F
              UP?: F -> Boolean
            vars
              f: F
            axioms
              (general) UP?(f) = true
              (dead) UP?(MKF) = true
            """
        )
        dead = check_axiom_coverage(shadowed).uncovered
        return live, dead

    live, dead = benchmark(run)
    assert live
    assert dead == ["dead"]
    report(
        "E8: axiom coverage lint",
        ["subject", "verdict"],
        [
            ["all 26 paper axioms", "every axiom fires"],
            ["deliberately shadowed axiom", "flagged as never firing"],
        ],
    )


def test_e8_detection_cost_vs_size(benchmark):
    """Check cost grows modestly with the number of operations."""

    def synthesize(observers: int) -> Specification:
        lines = [
            "type Wide",
            "uses Boolean",
            "operations",
            "  MKW: -> Wide",
            "  GROW: Wide -> Wide",
        ]
        for index in range(observers):
            lines.append(f"  OBS{index}?: Wide -> Boolean")
        lines.append("vars")
        lines.append("  w: Wide")
        lines.append("axioms")
        for index in range(observers):
            lines.append(f"  OBS{index}?(MKW) = true")
            lines.append(f"  OBS{index}?(GROW(w)) = OBS{index}?(w)")
        return parse_specification("\n".join(lines))

    sizes = [4, 16, 64]
    specs = {size: synthesize(size) for size in sizes}

    def sweep():
        return {
            size: check_sufficient_completeness(spec, sample_terms=0)
            for size, spec in specs.items()
        }

    results = benchmark(sweep)
    assert all(r.sufficiently_complete for r in results.values())
    benchmark.extra_info["operations_checked"] = sizes
