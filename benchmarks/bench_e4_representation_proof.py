"""E4 — the headline: mechanical verification of the symbol-table
representation.

Paper artefact (section 4): "To verify that the implementation is
consistent with Axioms 1 through 8 is quite straightforward.  (It has,
in fact, been done completely mechanically by David Musser ...)  Axiom
9, on the other hand ... is based upon an assumption [Assumption 1]".

Our reproduction: with representation variables ranging over *all*
stack values, the obligations touching ADD' (axioms 6 and 9) fail and
every other axiom is proved mechanically; attaching Assumption 1 — or
restricting to reachable states via generator induction — closes all
nine.  The ground model checker exhibits the unreachable-state
counterexample the assumption excludes.
"""

import pytest

from repro.algebra.terms import app
from repro.verify import (
    Mode,
    model_check,
    not_newstack_lemma,
    obligations_for,
    reachable_states,
    verify_representation,
)

from conftest import report


def test_e4_unconditional_mode(benchmark, representation):
    result = benchmark(
        verify_representation, representation, Mode.UNCONDITIONAL
    )
    assert set(result.failed_labels) == {"6", "9"}
    benchmark.extra_info["failed"] = list(result.failed_labels)


def test_e4_conditional_mode(benchmark, representation):
    result = benchmark(
        verify_representation, representation, Mode.CONDITIONAL
    )
    assert result.all_proved
    benchmark.extra_info["failed"] = []


def test_e4_reachable_mode(benchmark, representation):
    def run():
        return verify_representation(
            representation,
            Mode.REACHABLE,
            lemmas=[not_newstack_lemma(representation)],
        )

    result = benchmark(run)
    assert result.all_proved
    assert result.lemma_outcomes == [("reachable-not-newstack", True)]


def test_e4_per_axiom_table(benchmark, representation):
    def all_modes():
        free = verify_representation(representation, Mode.UNCONDITIONAL)
        conditional = verify_representation(
            representation, Mode.CONDITIONAL
        )
        reachable = verify_representation(
            representation,
            Mode.REACHABLE,
            lemmas=[not_newstack_lemma(representation)],
        )
        return free, conditional, reachable

    free, conditional, reachable = benchmark(all_modes)
    rows = []
    for index in range(9):
        label = str(index + 1)
        rows.append(
            [
                f"axiom {label}",
                _verdict(free, label),
                _verdict(conditional, label),
                _verdict(reachable, label),
            ]
        )
    report(
        "E4: inherent invariants, per mode",
        ["obligation", "all values", "Assumption 1", "reachable"],
        rows,
    )
    # The paper's split: everything except the ADD' obligations is
    # mechanical without help; axiom 9 (and 6, which also applies ADD'
    # to an arbitrary table) needs the environment assumption.
    assert _verdict(free, "9") == "FAILS"
    assert _verdict(conditional, "9") == "proved"
    assert _verdict(reachable, "9") == "proved"


def test_e4_counterexample(benchmark, representation):
    nine = [o for o in obligations_for(representation) if o.label == "9"][0]
    newstack = representation.concrete.operation("NEWSTACK")

    unreachable = benchmark(
        model_check,
        nine,
        representation,
        [app(newstack)],
        max_instances=40,
    )
    assert not unreachable.holds
    states = reachable_states(representation, depth=3, limit=30)
    reachable_report = model_check(
        nine, representation, states[:10], max_instances=120
    )
    assert reachable_report.holds
    report(
        "E4: axiom 9 model check",
        ["universe", "instances", "verdict"],
        [
            [
                "unreachable NEWSTACK",
                unreachable.instances_checked,
                "FAILS (error != attrs)",
            ],
            [
                "reachable states",
                reachable_report.instances_checked,
                "holds",
            ],
        ],
    )


def test_e4_exhaustive_vs_random_modelcheck(benchmark, representation):
    """DESIGN.md ablation: exhaustive small-state model checking vs a
    random sample.  Both must agree on the reachable-state verdict; the
    exhaustive pass costs more but is the one that *guarantees* coverage
    up to its depth."""
    import random
    import time

    nine = [o for o in obligations_for(representation) if o.label == "9"][0]
    states = reachable_states(representation, depth=3, limit=60)

    def measure():
        start = time.perf_counter()
        exhaustive = model_check(
            nine, representation, states, max_instances=400
        )
        exhaustive_time = time.perf_counter() - start
        sample = random.Random(7).sample(states, min(6, len(states)))
        start = time.perf_counter()
        sampled = model_check(
            nine, representation, sample, max_instances=80
        )
        sampled_time = time.perf_counter() - start
        return exhaustive, sampled, exhaustive_time, sampled_time

    exhaustive, sampled, exhaustive_time, sampled_time = benchmark(measure)
    assert exhaustive.holds and sampled.holds
    report(
        "E4 ablation: exhaustive vs sampled model check (axiom 9)",
        ["strategy", "instances", "verdict", "relative cost"],
        [
            [
                "exhaustive (depth 3)",
                exhaustive.instances_checked,
                "holds",
                f"{exhaustive_time / max(sampled_time, 1e-9):.1f}x",
            ],
            ["random sample", sampled.instances_checked, "holds", "1x"],
        ],
    )


def test_e4_queue_list_contrast(benchmark):
    """The Queue-over-lists representation needs no assumption at all —
    the contrast that locates the symbol table's conditional
    correctness in its unreachable states, not in the method."""
    from repro.adt.queue_listrep import queue_list_representation
    from repro.verify import verify_representation

    rep = queue_list_representation()
    result = benchmark(verify_representation, rep, Mode.UNCONDITIONAL)
    assert result.all_proved, str(result)


def _verdict(result, label: str) -> str:
    outcome = [
        o for o in result.outcomes if o.obligation.label == label
    ][0]
    return "proved" if outcome.proved else "FAILS"
