"""E7 — symbolic interpretation's "significant loss in efficiency".

Paper claim (section 5): without an implementation "the operations of
the algebra may be interpreted symbolically.  Thus, except for a
significant loss in efficiency, the lack of an implementation can be
made completely transparent to the user."

We measure the factor: the same operation script run through (a) the
hand implementation, (b) the symbolically interpreted specification,
and (c) a native Python baseline.  The expected shape: concrete beats
symbolic by one to three orders of magnitude, and behaviour is
identical.
"""

import pytest

from repro.adt.queue import ListQueue, QUEUE_SPEC
from repro.adt.symboltable import SYMBOLTABLE_SPEC, SymbolTable
from repro.interp import facade_class

from conftest import report

_QueueFacade = facade_class(QUEUE_SPEC)
_QueueFacadeCompiled = facade_class(QUEUE_SPEC, backend="compiled")
_TableFacade = facade_class(SYMBOLTABLE_SPEC)

SCRIPT_LENGTH = 24


def _queue_script_concrete():
    queue = ListQueue.new()
    for index in range(SCRIPT_LENGTH):
        queue = queue.add(index)
    seen = []
    while not queue.is_empty():
        seen.append(queue.front())
        queue = queue.remove()
    return seen


def _queue_script_symbolic():
    queue = _QueueFacade.new()
    for index in range(SCRIPT_LENGTH):
        queue = queue.add(index)
    seen = []
    while not queue.is_empty():
        seen.append(queue.front())
        queue = queue.remove()
    return seen


def _queue_script_native():
    from collections import deque

    queue: deque = deque()
    for index in range(SCRIPT_LENGTH):
        queue.append(index)
    seen = []
    while queue:
        seen.append(queue[0])
        queue.popleft()
    return seen


def test_e7_queue_concrete(benchmark):
    result = benchmark(_queue_script_concrete)
    assert result == list(range(SCRIPT_LENGTH))


def test_e7_queue_symbolic(benchmark):
    result = benchmark(_queue_script_symbolic)
    assert result == list(range(SCRIPT_LENGTH))


def _queue_script_compiled():
    queue = _QueueFacadeCompiled.new()
    for index in range(SCRIPT_LENGTH):
        queue = queue.add(index)
    seen = []
    while not queue.is_empty():
        seen.append(queue.front())
        queue = queue.remove()
    return seen


def test_e7_queue_symbolic_compiled(benchmark):
    """The symbolic script again, through the compiled backend — the
    'significant loss in efficiency' after rule-set compilation."""
    result = benchmark(_queue_script_compiled)
    assert result == list(range(SCRIPT_LENGTH))


def test_e7_compiled_narrows_gap(benchmark):
    """Compiled symbolic vs interpreted symbolic vs concrete, cold
    memos each round: compilation narrows the gap but the concrete
    implementation still wins (the paper's claim survives)."""
    import time

    def measure():
        start = time.perf_counter()
        for _ in range(3):
            _queue_script_concrete()
        concrete = time.perf_counter() - start

        timings = {}
        for name, facade in (
            ("interpreted", _QueueFacade),
            ("compiled", _QueueFacadeCompiled),
        ):
            facade._interpreter.engine.clear_cache()
            start = time.perf_counter()
            for _ in range(3):
                script = (
                    _queue_script_symbolic
                    if name == "interpreted"
                    else _queue_script_compiled
                )
                script()
            timings[name] = time.perf_counter() - start
        return (
            timings["interpreted"] / concrete,
            timings["compiled"] / concrete,
        )

    interpreted_factor, compiled_factor = benchmark(measure)
    benchmark.extra_info["interpreted_slowdown"] = round(interpreted_factor, 1)
    benchmark.extra_info["compiled_slowdown"] = round(compiled_factor, 1)
    report(
        "E7: rule-set compilation narrows the gap (queue script)",
        ["implementation", "relative cost"],
        [
            ["hand implementation", "1x"],
            ["symbolic, interpreted engine", f"{interpreted_factor:.0f}x"],
            ["symbolic, compiled engine", f"{compiled_factor:.0f}x"],
        ],
    )
    # Concrete still wins; compilation must not cost more than the
    # generic matcher on the same workload.
    assert compiled_factor > 1
    assert compiled_factor < interpreted_factor


def test_e7_queue_native(benchmark):
    result = benchmark(_queue_script_native)
    assert result == list(range(SCRIPT_LENGTH))


def _table_script(table_factory):
    table = table_factory()
    for scope in range(3):
        table = table.enterblock()
        for index in range(4):
            table = table.add(f"v{scope}_{index}", "int")
    hits = 0
    for scope in range(3):
        for index in range(4):
            if table.retrieve(f"v{scope}_{index}") == "int":
                hits += 1
    return hits


def test_e7_symboltable_concrete(benchmark):
    assert benchmark(_table_script, SymbolTable.init) == 12


def test_e7_symboltable_symbolic(benchmark):
    assert benchmark(_table_script, _TableFacade.init) == 12


def test_e7_efficiency_factor(benchmark):
    """Measure the slowdown factor directly and assert its direction.

    Two symbolic variants are measured: the engine as shipped (ground
    normal forms memoised) and with the cache disabled — the naive
    rewriting cost closest to what the paper's authors would have seen.
    The shape assertion is that even the cached variant pays at least
    10x — the paper's 'significant loss in efficiency' survives fifty
    years of cheap memory.
    """
    import time

    def measure():
        start = time.perf_counter()
        for _ in range(3):
            _queue_script_concrete()
        concrete = time.perf_counter() - start

        start = time.perf_counter()
        for _ in range(3):
            _queue_script_symbolic()
        symbolic_cached = time.perf_counter() - start

        uncached = facade_class(QUEUE_SPEC)
        uncached._interpreter.engine.cache_size = 0
        uncached._interpreter.engine._cache.clear()

        def run_uncached():
            queue = uncached.new()
            for index in range(SCRIPT_LENGTH):
                queue = queue.add(index)
            while not queue.is_empty():
                queue.front()
                queue = queue.remove()

        start = time.perf_counter()
        run_uncached()
        symbolic_uncached = 3 * (time.perf_counter() - start)

        return symbolic_cached / concrete, symbolic_uncached / concrete

    cached_factor, uncached_factor = benchmark(measure)
    benchmark.extra_info["cached_slowdown"] = round(cached_factor, 1)
    benchmark.extra_info["uncached_slowdown"] = round(uncached_factor, 1)
    report(
        "E7: symbolic vs concrete (queue script)",
        ["implementation", "relative cost"],
        [
            ["hand implementation", "1x"],
            ["symbolic, memoised engine", f"{cached_factor:.0f}x"],
            ["symbolic, naive rewriting", f"{uncached_factor:.0f}x"],
        ],
    )
    assert cached_factor > 10, (
        f"expected a significant loss, measured {cached_factor:.1f}x"
    )
    assert uncached_factor > cached_factor
