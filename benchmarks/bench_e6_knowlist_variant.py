"""E6 — the knows-list language change.

Paper artefact: "all relations, and only those relations, that
explicitly deal with the ENTERBLOCK operation would have to be altered"
plus one added level (type Knowlist).  We regenerate the axiom diff,
re-check the modified specification, and compile knows-dialect programs
with both concrete and symbolic backends.
"""

import pytest

from repro.adt.knowlist import KNOWLIST_SPEC, SYMBOLTABLE_KNOWS_SPEC
from repro.adt.symboltable import SYMBOLTABLE_SPEC
from repro.analysis import check_consistency, check_sufficient_completeness
from repro.compiler import (
    KnowsConcreteBackend,
    analyze_source,
)
from repro.compiler.diagnostics import Code

from conftest import report

KNOWS_PROGRAM = """
begin
  declare g: int;
  declare h: int;
  begin knows g
    g := 1;
    h := 2;
  end;
end
"""


def test_e6_axiom_diff_table(benchmark):
    def diff():
        original = {a.label for a in SYMBOLTABLE_SPEC.axioms}
        modified = {a.label for a in SYMBOLTABLE_KNOWS_SPEC.axioms}
        kept = sorted(original & modified, key=int)
        replaced = sorted(original - modified, key=int)
        added = sorted(modified - original)
        return kept, replaced, added

    kept, replaced, added = benchmark(diff)
    report(
        "E6: axiom diff",
        ["kind", "axioms"],
        [
            ["kept verbatim", ", ".join(kept)],
            ["replaced (ENTERBLOCK only)", ", ".join(replaced)],
            ["added", ", ".join(added)],
        ],
    )
    # Exactly the ENTERBLOCK relations (2, 5, 8) change.
    assert replaced == ["2", "5", "8"]
    assert added == ["2k", "5k", "8k"]
    assert kept == ["1", "3", "4", "6", "7", "9"]


def test_e6_variant_completeness(benchmark):
    result = benchmark(
        check_sufficient_completeness, SYMBOLTABLE_KNOWS_SPEC
    )
    assert result.sufficiently_complete, str(result)


def test_e6_variant_consistency(benchmark):
    result = benchmark(check_consistency, SYMBOLTABLE_KNOWS_SPEC)
    assert result.consistent, str(result)


def test_e6_knowlist_level(benchmark):
    result = benchmark(check_sufficient_completeness, KNOWLIST_SPEC)
    assert result.sufficiently_complete


def test_e6_adapted_representation_verifies(benchmark):
    """The paper: "the kind of changes necessary can be inferred from
    the changes made to the axiomatization."  We made them (scope pairs
    carry their knows list; RETRIEVE' filters at boundaries) and the
    adapted representation verifies with *exactly* the original's
    conditional-correctness profile: the ADD' obligations need
    Assumption 1, everything else — including all three new relations —
    proves outright."""
    from repro.adt.knowlist_rep import knows_symboltable_representation
    from repro.verify import Mode, verify_representation

    rep = knows_symboltable_representation()

    def run():
        free = verify_representation(rep, Mode.UNCONDITIONAL)
        conditional = verify_representation(rep, Mode.CONDITIONAL)
        return free, conditional

    free, conditional = benchmark(run)
    assert set(free.failed_labels) == {"6", "9"}
    assert conditional.all_proved
    report(
        "E6: adapted representation, per mode",
        ["obligations", "all values", "Assumption 1"],
        [
            ["1, 3, 4, 7, 2k, 5k, 8k", "proved", "proved"],
            ["6, 9 (the ADD' pair)", "FAIL", "proved"],
        ],
    )


def test_e6_frontend_follows(benchmark):
    result = benchmark(
        analyze_source, KNOWS_PROGRAM, KnowsConcreteBackend(), "knows"
    )
    codes = result.diagnostics.codes()
    assert codes == [Code.NOT_IN_KNOWS_LIST]
    report(
        "E6: knows-dialect compile",
        ["access", "verdict"],
        [
            ["g := 1  (g in knows list)", "ok"],
            ["h := 2  (h not in knows list)", "error NOT_IN_KNOWS_LIST"],
        ],
    )
