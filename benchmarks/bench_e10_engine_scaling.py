"""E10 — engine scaling and the design-choice ablations.

Supports section 5's "scale up" claim: the cost of the mechanical
machinery (rewriting, completeness checking) must grow tamely with term
and specification size.  Also benches the two ablations DESIGN.md calls
out: rule indexing by head symbol vs a linear scan, and value-mode
normalisation vs full symbolic simplification.
"""

import pytest

from repro.algebra.terms import app
from repro.adt.queue import FRONT, QUEUE_SPEC, REMOVE, queue_term
from repro.rewriting import RewriteEngine, RuleSet
from repro.spec.parser import parse_specification
from repro.analysis import check_sufficient_completeness

from conftest import report

RULES = RuleSet.from_specification(QUEUE_SPEC)


def _drain(engine: RewriteEngine, size: int) -> int:
    term = queue_term(range(size))
    steps = 0
    while True:
        empty = engine.normalize(app(FRONT, term))
        from repro.algebra.terms import Err

        if isinstance(empty, Err):
            break
        term = engine.normalize(app(REMOVE, term))
        steps += 1
    return steps


@pytest.mark.parametrize("size", [8, 32, 128])
def test_e10_rewrite_throughput(benchmark, size):
    engine = RewriteEngine(RULES)
    drained = benchmark(_drain, engine, size)
    assert drained == size
    benchmark.extra_info["queue_size"] = size
    benchmark.extra_info["rewrite_steps"] = engine.stats.steps


@pytest.mark.parametrize("size", [8, 32, 128])
def test_e10_compiled_throughput(benchmark, size):
    """The same drain through the closure-compiled backend."""
    engine = RewriteEngine(RULES, fuel=10_000_000, backend="compiled")
    engine._compiled_engine()  # build closures outside the timing
    drained = benchmark(_drain, engine, size)
    assert drained == size
    benchmark.extra_info["queue_size"] = size
    benchmark.extra_info["rewrite_steps"] = engine.stats.steps


def test_e10_backend_ablation(benchmark):
    """Compiled vs interpreted backend on the same drain, cold caches
    each round — the PR's headline ablation (also in BENCH_E10.json)."""
    import time

    def measure():
        timings = {}
        for backend in ("interpreted", "compiled"):
            engine = RewriteEngine(
                RULES, fuel=10_000_000, backend=backend
            )
            if backend == "compiled":
                engine._compiled_engine()
            start = time.perf_counter()
            drained = _drain(engine, 64)
            timings[backend] = time.perf_counter() - start
            assert drained == 64
        return timings

    timings = benchmark(measure)
    speedup = timings["interpreted"] / timings["compiled"]
    report(
        "E10: evaluation backend ablation (drain of 64)",
        ["backend", "relative"],
        [
            ["interpreted", "1.0x"],
            ["compiled", f"{1 / speedup:.2f}x"],
        ],
    )
    benchmark.extra_info["compiled_speedup"] = round(speedup, 2)
    # Compiled closures must beat the generic matcher on this workload.
    assert speedup > 1.0


def test_e10_indexing_ablation(benchmark):
    """Head-symbol rule indexing vs linear scan (same results)."""
    import time

    def measure():
        timings = {}
        for name, use_index in (("indexed", True), ("linear", False)):
            engine = RewriteEngine(RULES, use_index=use_index)
            start = time.perf_counter()
            _drain(engine, 48)
            timings[name] = time.perf_counter() - start
        return timings

    timings = benchmark(measure)
    report(
        "E10: rule lookup ablation",
        ["strategy", "relative"],
        [
            ["indexed by head", "1.0x"],
            [
                "linear scan",
                f"{timings['linear'] / timings['indexed']:.2f}x",
            ],
        ],
    )
    # With only ~12 rules the gap is modest but must not invert wildly;
    # record it rather than over-assert.
    benchmark.extra_info["linear_over_indexed"] = round(
        timings["linear"] / timings["indexed"], 2
    )


def test_e10_normalize_vs_simplify(benchmark):
    """Value-mode normalisation vs symbolic simplification on the same
    ground terms: simplify explores untaken branches, so it pays more."""
    import time

    engine = RewriteEngine(RULES, fuel=500_000)
    term = app(REMOVE, queue_term(range(24)))

    def measure():
        start = time.perf_counter()
        for _ in range(10):
            engine.normalize(term)
        normalize = time.perf_counter() - start
        start = time.perf_counter()
        for _ in range(10):
            engine.simplify(term)
        simplify = time.perf_counter() - start
        return normalize, simplify

    normalize, simplify = benchmark(measure)
    benchmark.extra_info["simplify_over_normalize"] = round(
        simplify / normalize, 2
    )
    assert engine.normalize(term) == engine.simplify(term)


def test_e10_engine_ablation(benchmark):
    """The engine's three design choices toggled back one at a time:
    hash-consed terms (vs fresh nodes), discrimination-tree indexing
    (vs the flat per-head list), and LRU memoisation (vs the seed's
    clear-on-full).  ``seed-config`` switches all three at once — the
    closest in-repo approximation of the seed engine (the true seed
    also recomputed ``is_ground``/``size``/``depth`` by walking the
    term, which the new substrate answers in O(1) everywhere)."""
    import time

    from repro.algebra import set_interning

    configs = [
        ("full", True, True, "lru"),
        ("no-interning", False, True, "lru"),
        ("head-index", True, "head", "lru"),
        ("clear-cache", True, True, "clear"),
        ("seed-config", False, "head", "clear"),
    ]

    def measure():
        timings = {}
        for name, interning, index, policy in configs:
            previous = set_interning(interning)
            try:
                engine = RewriteEngine(
                    RULES, use_index=index, cache_policy=policy
                )
                start = time.perf_counter()
                drained = _drain(engine, 48)
                timings[name] = time.perf_counter() - start
            finally:
                set_interning(previous)
            assert drained == 48
        return timings

    timings = benchmark(measure)
    full = timings["full"]
    report(
        "E10: engine design ablation (drain of 48)",
        ["configuration", "relative"],
        [[name, f"{timings[name] / full:.2f}x"] for name, *_ in configs],
    )
    for name, *_ in configs:
        benchmark.extra_info[name.replace("-", "_") + "_over_full"] = round(
            timings[name] / full, 2
        )


def test_e10_cache_ablation(benchmark):
    """Ground normal-form memoisation on vs off, on the symbolic-façade
    workload that motivates it (repeated observation of growing terms)."""
    import time

    def measure():
        timings = {}
        for name, cache in (("cached", 4096), ("uncached", 0)):
            engine = RewriteEngine(RULES, cache_size=cache)
            start = time.perf_counter()
            _drain(engine, 48)
            timings[name] = time.perf_counter() - start
        return timings

    timings = benchmark(measure)
    factor = timings["uncached"] / timings["cached"]
    report(
        "E10: normal-form cache ablation",
        ["engine", "relative"],
        [
            ["cached", "1.0x"],
            ["uncached", f"{factor:.2f}x"],
        ],
    )
    benchmark.extra_info["uncached_over_cached"] = round(factor, 2)
    # The drain workload re-normalises every prefix: caching must help.
    assert factor > 1.0


def _wide_spec(observers: int):
    lines = [
        "type Wide",
        "uses Boolean",
        "operations",
        "  MKW: -> Wide",
        "  GROW: Wide -> Wide",
    ]
    for index in range(observers):
        lines.append(f"  OBS{index}?: Wide -> Boolean")
    lines.append("vars")
    lines.append("  w: Wide")
    lines.append("axioms")
    for index in range(observers):
        lines.append(f"  OBS{index}?(MKW) = true")
        lines.append(f"  OBS{index}?(GROW(w)) = OBS{index}?(w)")
    return parse_specification("\n".join(lines))


@pytest.mark.parametrize("observers", [8, 32, 128])
def test_e10_completeness_check_scaling(benchmark, observers):
    spec = _wide_spec(observers)
    result = benchmark(
        check_sufficient_completeness, spec, None, 0  # no sampling
    )
    assert result.sufficiently_complete
    benchmark.extra_info["observers"] = observers


def test_e10_scaling_table(benchmark):
    import time

    def measure():
        rows = []
        for observers in (8, 32, 128):
            spec = _wide_spec(observers)
            start = time.perf_counter()
            check_sufficient_completeness(spec, sample_terms=0)
            rows.append([observers, f"{time.perf_counter() - start:.4f}s"])
        return rows

    rows = benchmark(measure)
    report(
        "E10: completeness-check cost vs spec width",
        ["observer operations", "check time"],
        rows,
    )
