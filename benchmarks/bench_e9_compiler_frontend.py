"""E9 — the compiler application: interchangeable symbol-table backends.

Paper artefact: the symbol table exists to serve a compiler, and the
point of the abstract specification is that the compiler can be written
(and even run) against it before any implementation is chosen.  We
compile generated Block programs against three backends — the concrete
stack-of-hash-arrays, the symbolically interpreted specification, and a
hand-rolled native table — assert identical diagnostics, and measure the
cost ordering (native <= concrete << spec).
"""

import pytest

from repro.compiler import (
    ConcreteBackend,
    NativeBackend,
    SpecBackend,
    analyze_source,
    parse_program,
)
from repro.compiler.semantic import SemanticAnalyzer
from repro.compiler.workloads import WorkloadShape, generate_program

from conftest import report

SHAPE = WorkloadShape(
    blocks=8,
    declarations_per_block=3,
    statements_per_block=5,
    error_rate=0.1,
    seed=2026,
)
SOURCE = generate_program(SHAPE)
PROGRAM = parse_program(SOURCE)

# A clean (error-free) program for the execution pipeline bench.
CLEAN_SOURCE = generate_program(
    WorkloadShape(
        blocks=8,
        declarations_per_block=3,
        statements_per_block=5,
        error_rate=0.0,
        seed=2027,
    )
)
PROGRAM_CLEAN = parse_program(CLEAN_SOURCE)


def _analyze(backend):
    analyzer = SemanticAnalyzer(backend)
    return analyzer.analyze(PROGRAM)


def test_e9_concrete_backend(benchmark):
    result = benchmark(_analyze, ConcreteBackend())
    assert result.stats.total > 50
    benchmark.extra_info["symbol_table_ops"] = result.stats.total


def test_e9_native_backend(benchmark):
    result = benchmark(_analyze, NativeBackend())
    assert result.stats.total > 50


def test_e9_spec_backend(benchmark):
    result = benchmark(_analyze, SpecBackend())
    assert result.stats.total > 50


def test_e9_spec_backend_compiled(benchmark):
    """The spec backend again, with the closure-compiled normaliser."""
    result = benchmark(_analyze, SpecBackend(backend="compiled"))
    assert result.stats.total > 50


def test_e9_compiled_diagnostics_identical(benchmark):
    """Swapping the evaluation backend must not change a single
    diagnostic — the compiled path is an engine detail, invisible
    through the abstract operations."""

    def compare():
        outcomes = [
            _analyze(backend)
            for backend in (
                SpecBackend(),
                SpecBackend(backend="compiled"),
            )
        ]
        return [
            [(d.code, d.span) for d in outcome.diagnostics.diagnostics]
            for outcome in outcomes
        ]

    signatures = benchmark(compare)
    assert signatures[0] == signatures[1]


def test_e9_diagnostics_identical(benchmark):
    def compare():
        outcomes = [
            _analyze(backend)
            for backend in (ConcreteBackend(), SpecBackend(), NativeBackend())
        ]
        signatures = [
            [(d.code, d.span) for d in outcome.diagnostics.diagnostics]
            for outcome in outcomes
        ]
        return outcomes, signatures

    outcomes, signatures = benchmark(compare)
    assert signatures[0] == signatures[1] == signatures[2]
    result = outcomes[0]
    report(
        "E9: one front end, three backends",
        ["metric", "value"],
        [
            ["program size (chars)", len(SOURCE)],
            ["symbol-table operations", result.stats.total],
            ["errors found", len(result.diagnostics.errors)],
            ["warnings found", len(result.diagnostics.warnings)],
            ["backends agreeing", 3],
        ],
    )


def test_e9_full_pipeline(benchmark):
    """Compile and execute through the whole pipeline: the symbol
    table's attributes carry lexical addresses into the bytecode."""
    from repro.compiler import (
        Interpreter,
        VirtualMachine,
        compile_program,
    )

    def pipeline():
        compiled = compile_program(PROGRAM_CLEAN)
        vm_result = VirtualMachine().run(compiled)
        interp_result = Interpreter().run(PROGRAM_CLEAN)
        return vm_result, interp_result

    vm_result, interp_result = benchmark(pipeline)
    assert vm_result.globals == interp_result.globals
    benchmark.extra_info["vm_steps"] = vm_result.steps


def test_e9_cost_ordering(benchmark):
    import time

    def measure():
        timings = {}
        for name, factory in (
            ("native", NativeBackend),
            ("concrete", ConcreteBackend),
            ("spec", SpecBackend),
            ("spec-compiled", lambda: SpecBackend(backend="compiled")),
        ):
            if name.startswith("spec"):
                # Cold measurement: earlier tests may have warmed the
                # shared façade engine's normal-form cache on this very
                # program, which would understate the rewriting cost.
                engine_backend = (
                    "compiled" if name == "spec-compiled" else "interpreted"
                )
                engine = SpecBackend._ensure_facade(
                    engine_backend
                )._interpreter.engine
                engine.clear_cache()
            start = time.perf_counter()
            for _ in range(2):
                _analyze(factory())
            timings[name] = time.perf_counter() - start
        return timings

    timings = benchmark(measure)
    report(
        "E9: backend cost (same analysis)",
        ["backend", "relative"],
        [
            [name, f"{timings[name] / timings['native']:.1f}x"]
            for name in ("native", "concrete", "spec", "spec-compiled")
        ],
    )
    for name in ("spec", "spec-compiled"):
        benchmark.extra_info[name.replace("-", "_") + "_over_native"] = round(
            timings[name] / timings["native"], 1
        )
    # The shape: running the spec costs more than either real
    # implementation (even with memoisation inside a run), and the
    # compiled backend narrows but does not close that gap.
    assert timings["spec"] > timings["concrete"]
    assert timings["spec"] > timings["native"]
    assert timings["spec-compiled"] > timings["native"]
