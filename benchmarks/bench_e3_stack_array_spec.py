"""E3 — the representation level's own types: Stack (axioms 10-16) and
Array (axioms 17-20).

Paper artefact: both lower-level types are themselves algebraically
specified; their specifications must pass the same mechanical checks
before the representation proof can lean on them.
"""

import pytest

from repro.adt.array import ARRAY_SPEC
from repro.adt.stack import STACK_SPEC
from repro.analysis import (
    check_consistency,
    check_sufficient_completeness,
)

from conftest import report


def test_e3_stack_completeness(benchmark):
    result = benchmark(check_sufficient_completeness, STACK_SPEC)
    assert result.sufficiently_complete, str(result)


def test_e3_stack_consistency(benchmark):
    result = benchmark(check_consistency, STACK_SPEC)
    assert result.consistent, str(result)


def test_e3_array_completeness(benchmark):
    result = benchmark(check_sufficient_completeness, ARRAY_SPEC)
    assert result.sufficiently_complete, str(result)


def test_e3_array_consistency(benchmark):
    result = benchmark(check_consistency, ARRAY_SPEC)
    assert result.consistent, str(result)


def test_e3_summary_table(benchmark):
    def verdicts():
        rows = []
        for spec in (STACK_SPEC, ARRAY_SPEC):
            completeness = check_sufficient_completeness(spec)
            consistency = check_consistency(spec)
            rows.append(
                [
                    spec.name,
                    len(spec.axioms),
                    completeness.sufficiently_complete,
                    consistency.consistent,
                ]
            )
        return rows

    rows = benchmark(verdicts)
    report(
        "E3: representation-level types",
        ["type", "axioms", "sufficiently complete", "consistent"],
        rows,
    )
    assert all(row[2] and row[3] for row in rows)
    # Axiom counts match the paper: 10-16 for Stack, 17-20 for Array.
    assert rows[0][1] == 7 and rows[1][1] == 4
