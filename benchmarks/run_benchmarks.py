#!/usr/bin/env python
"""Benchmark driver for the engine-performance experiments.

Regenerates the committed artefacts ``BENCH_E7.json`` and
``BENCH_E10.json``: throughput (ops/sec), normal-form cache hit rate and
peak interned-term count for the E7 symbolic-vs-concrete workload and
the E10 drain workload, across the engine's design-choice ablations.

Run from the repository root::

    PYTHONPATH=src python benchmarks/run_benchmarks.py            # full
    PYTHONPATH=src python benchmarks/run_benchmarks.py --quick    # smoke

``--quick`` runs tiny sizes with one repetition — it exists so the
tier-1 test suite can exercise the driver end to end in a few seconds.
The full run additionally times the *actual seed engine* (the commit
before the hash-consing PR) in a subprocess against a ``git worktree``
checkout, because the in-repo ablation flags cannot reproduce the seed's
O(n) ``is_ground``/``size``/``depth`` walks on the new term substrate.
"""

from __future__ import annotations

import argparse
import gc
import itertools
import json
import os
import subprocess
import sys
import tempfile
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
if str(REPO_ROOT / "src") not in sys.path:
    sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.algebra import intern_table_size, set_interning  # noqa: E402
from repro.algebra.terms import Err, app  # noqa: E402
from repro.adt.queue import FRONT, QUEUE_SPEC, REMOVE, queue_term  # noqa: E402
from repro.interp import facade_class  # noqa: E402
from repro.obs import (  # noqa: E402
    rule_id,
    substrate_counters,
    suggest_fuel_budget,
)
from repro.parallel import ShardPool  # noqa: E402
from repro.rewriting import RewriteEngine, RuleSet  # noqa: E402

#: Last commit with the seed engine (pre-interning term substrate).
SEED_COMMIT = "36c9cdc54882083980002dcdff8599446679a833"

RULES = RuleSet.from_specification(QUEUE_SPEC)

#: Engine configurations measured by E10.  ``full`` is the interpreted
#: engine as shipped; ``compiled`` is the closure-compiled backend;
#: ``codegen`` is the second-stage generated-source backend (with
#: ``codegen-nofuse`` as its fusion ablation, so the three rows
#: closures / codegen / codegen+fusion read as one ladder);
#: ``seed-config`` flips every ablation flag back at once.
E10_CONFIGS = [
    ("full", True, True, "lru", "interpreted", None),
    ("compiled", True, True, "lru", "compiled", None),
    ("codegen", True, True, "lru", "codegen", "auto"),
    ("codegen-nofuse", True, True, "lru", "codegen", "none"),
    ("no-interning", False, True, "lru", "interpreted", None),
    ("head-index", True, "head", "lru", "interpreted", None),
    ("linear-scan", True, False, "lru", "interpreted", None),
    ("clear-cache", True, True, "clear", "interpreted", None),
    ("seed-config", False, "head", "clear", "interpreted", None),
]

#: Distinct queue payloads per measured run, so one run's interned
#: subject terms cannot pre-warm the next run's intern table (the
#: honest-cold-run fix: hit rates now measure sharing *within* a run).
_PAYLOAD_BASE = itertools.count(start=1_000_000, step=1_000_000)

#: Script used by the seed-commit subprocess: must not import anything
#: that only exists after the PR.
_SEED_DRAIN_SCRIPT = """
import json, sys, time
sys.setrecursionlimit(100000)
from repro.algebra.terms import Err, app
from repro.adt.queue import FRONT, QUEUE_SPEC, REMOVE, queue_term
from repro.rewriting import RewriteEngine, RuleSet

rules = RuleSet.from_specification(QUEUE_SPEC)
results = {}
for size in json.loads(sys.argv[1]):
    best = None
    for _ in range(int(sys.argv[2])):
        engine = RewriteEngine(rules, fuel=10_000_000)
        term = queue_term(range(size))
        start = time.perf_counter()
        while True:
            front = engine.normalize(app(FRONT, term))
            if isinstance(front, Err):
                break
            term = engine.normalize(app(REMOVE, term))
        elapsed = time.perf_counter() - start
        best = elapsed if best is None else min(best, elapsed)
    results[str(size)] = best
print(json.dumps(results))
"""


def _hit_rate(hits: int, misses: int):
    total = hits + misses
    return round(hits / total, 4) if total else None


def _obs_metrics(engine: RewriteEngine, substrate_before: dict) -> dict:
    """The observability embed for one measured run: substrate hit
    rates (as deltas over the run), the engine's per-rule firing
    profile (busiest rules first), and the histogram-driven fuel-budget
    suggestion.  A rate whose substrate saw no traffic during the run
    is *omitted* rather than reported as null — the compiled backends
    never touch the discrimination-tree shape memo, and a null row
    reads as a measurement where there was none."""
    delta = {
        name: value - substrate_before[name]
        for name, value in substrate_counters().items()
    }
    metrics = {}
    intern_rate = _hit_rate(delta["intern.hits"], delta["intern.misses"])
    if intern_rate is not None:
        metrics["intern_hit_rate"] = intern_rate
    shape_rate = _hit_rate(
        delta["rule_index.shape_memo_hits"],
        delta["rule_index.shape_memo_misses"],
    )
    if shape_rate is not None:
        metrics["shape_memo_hit_rate"] = shape_rate
    suggested = suggest_fuel_budget(engine.stats.fuel_hist)
    if suggested is not None:
        metrics["suggested_fuel"] = suggested
    metrics["rule_firings"] = {
        rule_id(rule): count
        for rule, count in engine.stats.firings.ranked()
    }
    return metrics


def _drain(engine: RewriteEngine, size: int, base: int = 0) -> int:
    term = queue_term(range(base, base + size))
    steps = 0
    while True:
        front = engine.normalize(app(FRONT, term))
        if isinstance(front, Err):
            break
        term = engine.normalize(app(REMOVE, term))
        steps += 1
    return steps


def _measure_drain(
    size: int, interning, use_index, cache_policy, backend, reps: int,
    fusion=None,
):
    """Best-of-``reps`` drain; returns timing plus the engine counters.

    Every rep drains a queue of *fresh* payloads (see
    :data:`_PAYLOAD_BASE`) after a ``gc.collect()``, so the weak intern
    table starts cold with respect to the subject — without this, every
    rep after the first reports the warm-table artefact
    ``intern_hit_rate: 1.0`` regardless of configuration."""
    best = None
    for _ in range(reps):
        previous = set_interning(interning)
        try:
            engine = RewriteEngine(
                RULES, fuel=10_000_000,
                use_index=use_index, cache_policy=cache_policy,
                backend=backend, fusion=fusion,
            )
            if backend == "compiled":
                engine._compiled_engine()  # build closures outside the timing
            elif backend == "codegen":
                engine._codegen_engine()  # compile the module outside too
            gc.collect()  # release the previous rep's interned subject
            base = next(_PAYLOAD_BASE)
            table_before = intern_table_size()
            substrate_before = substrate_counters()
            start = time.perf_counter()
            drained = _drain(engine, size, base)
            elapsed = time.perf_counter() - start
            peak_terms = intern_table_size()
            metrics = _obs_metrics(engine, substrate_before)
        finally:
            set_interning(previous)
        assert drained == size
        sample = {
            "seconds": elapsed,
            "rewrite_steps": engine.stats.steps,
            "steps_per_sec": engine.stats.steps / elapsed if elapsed else 0.0,
            "cache_hit_rate": round(engine.stats.cache_hit_rate, 4),
            "peak_intern_table": peak_terms,
            "intern_table_growth": peak_terms - table_before,
            "metrics": metrics,
        }
        if best is None or sample["seconds"] < best["seconds"]:
            best = sample
    best["seconds"] = round(best["seconds"], 6)
    best["steps_per_sec"] = round(best["steps_per_sec"], 1)
    return best


def _parallel_subjects(batch: int, size: int) -> list:
    """The batched form of the E10 drain: ``batch`` independent
    ``FRONT(REMOVE^(j % size)(queue))`` observations over queues of
    ``size`` elements, each queue on *fresh* payloads.  Collectively the
    batch performs one drain's worth of rewriting, but with no shared
    substructure between subjects — so splitting it across shards
    forfeits no cross-item memo sharing and the workload is honestly
    embarrassingly parallel."""
    subjects = []
    for j in range(batch):
        base = next(_PAYLOAD_BASE)
        term = queue_term(range(base, base + size))
        for _ in range(j % size):
            term = app(REMOVE, term)
        subjects.append(app(FRONT, term))
    return subjects


def _measure_parallel_batch(
    subjects: list, backend: str, reps: int, workers=None
) -> float:
    """Best-of-``reps`` seconds for one ``normalize_many`` batch.

    ``workers=None`` measures the in-process serial reference on a
    fresh engine per rep; ``workers=N`` measures a :class:`ShardPool`,
    built fresh per rep (so a later rep cannot answer from an earlier
    rep's worker memos) and warmed *outside* the timing — process
    spawn and engine construction are setup cost, matching how the
    serial rows build closures/modules outside their timings."""
    best = None
    for _ in range(reps):
        if workers is None:
            engine = RewriteEngine(RULES, fuel=10_000_000, backend=backend)
            if backend == "compiled":
                engine._compiled_engine()
            elif backend == "codegen":
                engine._codegen_engine()
            gc.collect()
            start = time.perf_counter()
            results = engine.normalize_many(subjects)
            elapsed = time.perf_counter() - start
        else:
            pool = ShardPool(
                RULES, workers, backend=backend, fuel=10_000_000
            )
            try:
                pool.warm()
                gc.collect()
                start = time.perf_counter()
                results = pool.normalize_many(subjects)
                elapsed = time.perf_counter() - start
            finally:
                pool.close()
        assert len(results) == len(subjects)
        best = elapsed if best is None else min(best, elapsed)
    return best


def run_parallel_e10(quick: bool) -> dict:
    """The workers ablation: the batched drain through shard pools of
    1, 2 and 4 workers against the in-process serial engine, on the
    interpreted backend (the heaviest per-item compute, hence the
    cleanest view of scaling against wire/dispatch overhead).

    Every sharded sample embeds ``workers`` and ``scaling_efficiency``
    (``serial_seconds / (workers * parallel_seconds)``: 1.0 is perfect
    linear scaling).  ``cpus`` records the cores the measuring machine
    actually had — efficiency is physically bounded by ``cpus/workers``,
    so a 4-worker row measured on fewer than 4 cores documents wire
    overhead, not scaling."""
    size = 12 if quick else 128
    batch = 12 if quick else 128
    reps = 1 if quick else 3
    ablation = (1, 2) if quick else (1, 2, 4)
    backend = "interpreted"
    subjects = _parallel_subjects(batch, size)
    serial_secs = _measure_parallel_batch(subjects, backend, reps)
    shards = {}
    for workers in ablation:
        seconds = _measure_parallel_batch(subjects, backend, reps, workers)
        shards[str(workers)] = {
            "seconds": round(seconds, 6),
            "workers": workers,
            "speedup_vs_serial": round(serial_secs / seconds, 2),
            "scaling_efficiency": round(
                serial_secs / (workers * seconds), 4
            ),
        }
    cpus = os.cpu_count() or 1
    result = {
        "workload": (
            f"batched E10 drain: {batch} independent "
            f"FRONT(REMOVE^k(queue)) subjects at size {size}, "
            "one normalize_many batch"
        ),
        "backend": backend,
        "batch": batch,
        "size": size,
        "cpus": cpus,
        "serial": {"seconds": round(serial_secs, 6)},
        "shards": shards,
    }
    if cpus < max(ablation):
        result["note"] = (
            f"measured on {cpus} cpu(s): rows with workers > {cpus} are "
            "bounded by the hardware, not the pool — see the CI guard "
            "for scaling enforcement on multi-core machines"
        )
    return result


def _seed_baseline(sizes, reps: int):
    """Drain timings for the actual seed engine, via a worktree checkout
    of :data:`SEED_COMMIT`.  Returns ``None`` when git cannot provide
    the seed tree (shallow clone, no git, ...)."""
    with tempfile.TemporaryDirectory(prefix="seed-bench-") as scratch:
        seed_tree = Path(scratch) / "seed"
        try:
            subprocess.run(
                ["git", "worktree", "add", "--detach", str(seed_tree), SEED_COMMIT],
                cwd=REPO_ROOT, check=True, capture_output=True,
            )
        except (OSError, subprocess.CalledProcessError):
            return None
        try:
            proc = subprocess.run(
                [sys.executable, "-c", _SEED_DRAIN_SCRIPT,
                 json.dumps(sizes), str(reps)],
                env={"PYTHONPATH": str(seed_tree / "src"), "PATH": "/usr/bin:/bin"},
                capture_output=True, text=True, timeout=1200,
            )
            if proc.returncode != 0:
                return None
            return {int(k): v for k, v in json.loads(proc.stdout).items()}
        finally:
            subprocess.run(
                ["git", "worktree", "remove", "--force", str(seed_tree)],
                cwd=REPO_ROOT, capture_output=True,
            )


def run_e10(quick: bool) -> dict:
    sizes = [12] if quick else [32, 64, 128]
    reps = 1 if quick else 3
    configs: dict[str, dict] = {}
    for name, interning, use_index, cache_policy, backend, fusion in E10_CONFIGS:
        configs[name] = {
            str(size): _measure_drain(
                size, interning, use_index, cache_policy, backend, reps,
                fusion=fusion,
            )
            for size in sizes
        }

    def ratio(numerator: str, denominator: str) -> dict:
        return {
            str(size): round(
                configs[numerator][str(size)]["seconds"]
                / configs[denominator][str(size)]["seconds"],
                2,
            )
            for size in sizes
        }

    result = {
        "experiment": "E10",
        "workload": "FIFO drain of queue_term(range(size)) via FRONT/REMOVE",
        "mode": "quick" if quick else "full",
        "sizes": sizes,
        "configs": configs,
        "compiled_vs_interpreted": ratio("full", "compiled"),
        "codegen_vs_interpreted": ratio("full", "codegen"),
        "codegen_vs_compiled": ratio("compiled", "codegen"),
        "fusion_speedup": ratio("codegen-nofuse", "codegen"),
        "parallel": run_parallel_e10(quick),
    }
    if not quick:
        seed = _seed_baseline(sizes, reps)
        if seed is not None:
            result["seed_baseline"] = {
                "commit": SEED_COMMIT,
                "seconds": {str(size): round(seed[size], 6) for size in sizes},
            }
            result["speedup_vs_seed"] = {
                str(size): round(
                    seed[size] / configs["full"][str(size)]["seconds"], 2
                )
                for size in sizes
            }
    return result


def run_e7(quick: bool) -> dict:
    script_length = 6 if quick else 24
    reps = 1 if quick else 3

    def concrete_script():
        from repro.adt.queue import ListQueue

        queue = ListQueue.new()
        for index in range(script_length):
            queue = queue.add(index)
        while not queue.is_empty():
            queue.front()
            queue = queue.remove()

    def symbolic_script(facade):
        queue = facade.new()
        for index in range(script_length):
            queue = queue.add(index)
        while not queue.is_empty():
            queue.front()
            queue = queue.remove()

    start = time.perf_counter()
    for _ in range(reps):
        concrete_script()
    concrete = (time.perf_counter() - start) / reps

    facade = facade_class(QUEUE_SPEC)
    engine = facade._interpreter.engine
    table_before = intern_table_size()
    substrate_before = substrate_counters()
    start = time.perf_counter()
    for _ in range(reps):
        symbolic_script(facade)
    symbolic = (time.perf_counter() - start) / reps
    symbolic_metrics = _obs_metrics(engine, substrate_before)
    operations = 3 * script_length + 1  # adds + (front, remove) per element

    # The same script through the closure-compiled backend.
    compiled_facade = facade_class(QUEUE_SPEC, backend="compiled")
    compiled_engine = compiled_facade._interpreter.engine
    compiled_engine._compiled_engine()  # build closures outside the timing
    substrate_before = substrate_counters()
    start = time.perf_counter()
    for _ in range(reps):
        symbolic_script(compiled_facade)
    compiled_secs = (time.perf_counter() - start) / reps
    compiled_metrics = _obs_metrics(compiled_engine, substrate_before)

    # The same script again through the second-stage generated module.
    codegen_facade = facade_class(QUEUE_SPEC, backend="codegen")
    codegen_engine = codegen_facade._interpreter.engine
    codegen_engine._codegen_engine()  # compile the module outside the timing
    substrate_before = substrate_counters()
    start = time.perf_counter()
    for _ in range(reps):
        symbolic_script(codegen_facade)
    codegen_secs = (time.perf_counter() - start) / reps
    codegen_metrics = _obs_metrics(codegen_engine, substrate_before)

    # And the drain observations submitted as one normalize_many batch
    # (shared memo across the whole workload).
    batch_terms = [
        app(op, queue_term(range(k)))
        for k in range(1, script_length + 1)
        for op in (FRONT, REMOVE)
    ]
    batch_engine = RewriteEngine.for_specification(
        QUEUE_SPEC, backend="compiled"
    )
    batch_engine.fuel = 10_000_000
    batch_engine._compiled_engine()
    start = time.perf_counter()
    for _ in range(reps):
        batch_engine.normalize_many(batch_terms)
    batch_secs = (time.perf_counter() - start) / reps

    return {
        "experiment": "E7",
        "workload": f"queue script, {script_length} adds then full drain",
        "mode": "quick" if quick else "full",
        "concrete": {
            "seconds": round(concrete, 6),
            "ops_per_sec": round(operations / concrete, 1),
        },
        "symbolic": {
            "seconds": round(symbolic, 6),
            "ops_per_sec": round(operations / symbolic, 1),
            "cache_hit_rate": round(engine.stats.cache_hit_rate, 4),
            "peak_intern_table": intern_table_size(),
            "intern_table_growth": intern_table_size() - table_before,
            "metrics": symbolic_metrics,
        },
        "symbolic_compiled": {
            "seconds": round(compiled_secs, 6),
            "ops_per_sec": round(operations / compiled_secs, 1),
            "cache_hit_rate": round(
                compiled_engine.stats.cache_hit_rate, 4
            ),
            "metrics": compiled_metrics,
        },
        "symbolic_codegen": {
            "seconds": round(codegen_secs, 6),
            "ops_per_sec": round(operations / codegen_secs, 1),
            "cache_hit_rate": round(
                codegen_engine.stats.cache_hit_rate, 4
            ),
            "metrics": codegen_metrics,
        },
        "symbolic_compiled_batch": {
            "seconds": round(batch_secs, 6),
            "terms": len(batch_terms),
            "cache_hit_rate": round(batch_engine.stats.cache_hit_rate, 4),
        },
        "symbolic_over_concrete": round(symbolic / concrete, 1),
        "compiled_over_concrete": round(compiled_secs / concrete, 1),
        "codegen_over_concrete": round(codegen_secs / concrete, 1),
        "compiled_vs_interpreted": round(symbolic / compiled_secs, 2),
        "codegen_vs_compiled": round(compiled_secs / codegen_secs, 2),
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true",
        help="tiny sizes, one repetition, no seed-commit baseline",
    )
    parser.add_argument(
        "--output-dir", type=Path, default=REPO_ROOT / "benchmarks",
        help="where to write BENCH_E7.json and BENCH_E10.json",
    )
    args = parser.parse_args(argv)
    args.output_dir.mkdir(parents=True, exist_ok=True)

    for name, runner in (("BENCH_E7", run_e7), ("BENCH_E10", run_e10)):
        payload = runner(args.quick)
        path = args.output_dir / f"{name}.json"
        path.write_text(json.dumps(payload, indent=2) + "\n")
        print(f"wrote {path}")
        if name == "BENCH_E10":
            largest = str(max(payload["sizes"]))
            suggested = (
                payload["configs"]["full"][largest]["metrics"]
                .get("suggested_fuel")
            )
            if suggested is not None:
                print(
                    f"suggested fuel budget (p99 of fuel/eval x 2.0 "
                    f"margin, interpreted drain at size {largest}): "
                    f"{suggested}"
                )
            if "speedup_vs_seed" in payload:
                speedup = payload["speedup_vs_seed"][largest]
                print(f"speedup vs seed engine at size {largest}: {speedup}x")
            parallel = payload["parallel"]
            for row in parallel["shards"].values():
                print(
                    f"parallel drain batch ({parallel['cpus']} cpu(s)): "
                    f"workers={row['workers']} speedup "
                    f"{row['speedup_vs_serial']}x, scaling efficiency "
                    f"{row['scaling_efficiency']}"
                )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
