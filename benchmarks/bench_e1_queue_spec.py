"""E1 — section 3's Queue specification checks out mechanically.

Paper artefact: axioms 1-6 "comprise just such a definition" (exactly
FIFO); the sufficient-completeness procedure "can be used to formally
prove the sufficient-completeness of this specification".  We regenerate
the verdicts and time the two analyses.
"""

import pytest

from repro.adt.queue import QUEUE_SPEC
from repro.analysis import (
    check_consistency,
    check_sufficient_completeness,
    classify,
)

from conftest import report


def test_e1_sufficient_completeness(benchmark):
    result = benchmark(check_sufficient_completeness, QUEUE_SPEC)
    assert result.sufficiently_complete
    assert result.unambiguous
    benchmark.extra_info["missing_cases"] = len(result.missing)
    benchmark.extra_info["observations_sampled"] = result.sampled_observations


def test_e1_consistency(benchmark):
    result = benchmark(check_consistency, QUEUE_SPEC)
    assert result.consistent
    benchmark.extra_info["ground_instances"] = result.ground_instances_checked


def test_e1_verdict_table(benchmark):
    cls = benchmark(classify, QUEUE_SPEC)
    completeness = check_sufficient_completeness(QUEUE_SPEC)
    consistency = check_consistency(QUEUE_SPEC)
    rows = [
        ["constructors", ", ".join(op.name for op in cls.constructors)],
        ["extensions", ", ".join(op.name for op in cls.extensions)],
        ["observers", ", ".join(op.name for op in cls.observers)],
        ["sufficiently complete", completeness.sufficiently_complete],
        ["consistent", consistency.consistent],
        ["axioms", len(QUEUE_SPEC.axioms)],
    ]
    report("E1: Queue (axioms 1-6)", ["item", "result"], rows)
    assert {op.name for op in cls.constructors} == {"NEW", "ADD"}
    assert completeness.sufficiently_complete and consistency.consistent
