"""E5 — Φ⁻¹ is one-to-many: the ring-buffer bounded queue.

Paper artefact: the two program segments of section 4 leave the
ring-buffer representation in physically different states that denote
the same abstract value.  We regenerate both figures, apply Φ, and time
the abstraction.
"""

import pytest

from repro.adt.boundedqueue import (
    RingBufferQueue,
    paper_first_segment,
    paper_second_segment,
    phi_ring_buffer,
)

from conftest import report


def test_e5_first_segment(benchmark):
    queue = benchmark(paper_first_segment)
    # The paper's figure: buffer D|B|C, pointer at B.
    assert queue.raw_buffer == ("D", "B", "C")
    assert queue.front_index == 1


def test_e5_second_segment(benchmark):
    queue = benchmark(paper_second_segment)
    assert queue.raw_buffer == ("B", "C", "D")
    assert queue.front_index == 0


def test_e5_phi_collapses_representations(benchmark):
    first = paper_first_segment()
    second = paper_second_segment()

    def phi_both():
        return phi_ring_buffer(first), phi_ring_buffer(second)

    image_first, image_second = benchmark(phi_both)
    assert not first.same_representation(second)
    assert image_first == image_second
    report(
        "E5: the two segments",
        ["segment", "buffer", "front", "Φ image"],
        [
            ["1 (A,B,C; remove; D)", first.raw_buffer, first.front_index, image_first],
            ["2 (B,C,D)", second.raw_buffer, second.front_index, image_second],
        ],
    )


def test_e5_churn_preserves_value(benchmark):
    """Rotating a full window all the way around the buffer: every
    intermediate state is a fresh representation of a queue value
    reconstructible from its live window alone."""

    def churn():
        queue = RingBufferQueue.empty(4).add(1).add(2).add(3)
        images = set()
        representations = set()
        for step in range(8):
            queue = queue.remove().add(step)
            images.add(phi_ring_buffer(queue))
            representations.add(
                (queue.raw_buffer, queue.front_index)
            )
        return images, representations

    images, representations = benchmark(churn)
    # Many distinct physical states...
    assert len(representations) == 8
    # ...with distinct abstract values only as contents change:
    assert len(images) == 8
    # and rebuilding from the live window gives an equal value.
    queue = RingBufferQueue.empty(4).add("x").add("y")
    rebuilt = RingBufferQueue.empty(4)
    for value in queue.live_window():
        rebuilt = rebuilt.add(value)
    assert phi_ring_buffer(queue) == phi_ring_buffer(rebuilt)
