"""E11 (extension) — proof factoring for client programs.

Paper claim (section 5): the algebraic specification "provides a set of
powerful rules of inference" for verifying programs that *use* abstract
types, factoring the proof so implementations never enter.  We verify
straight-line client programs over Queue, Symboltable and the Store DBMS
example from the axioms alone, and time the prover.
"""

import pytest

from repro.adt.queue import QUEUE_SPEC
from repro.adt.store import STORE_SPEC
from repro.adt.symboltable import SYMBOLTABLE_SPEC
from repro.verify import parse_client_program, verify_client

from conftest import report

QUEUE_PROGRAM = """
input i: Item
input j: Item
input k: Item
let q := ADD(ADD(ADD(NEW, i), j), k)
assert FRONT(q) = i
assert FRONT(REMOVE(q)) = j
assert FRONT(REMOVE(REMOVE(q))) = k
assert IS_EMPTY?(REMOVE(REMOVE(REMOVE(q)))) = true
"""

SYMBOLTABLE_PROGRAM = """
input id: Identifier
input a: Attributelist
input b: Attributelist
let t := ADD(INIT, id, a)
let u := ADD(ENTERBLOCK(t), id, b)
assert RETRIEVE(t, id) = a
assert RETRIEVE(u, id) = b
assert RETRIEVE(LEAVEBLOCK(u), id) = a
assert IS_INBLOCK?(ENTERBLOCK(t), id) = false
"""

STORE_PROGRAM = """
input s0: Store
input k: Identifier
input v: Attributelist
let tx := PUT(BEGIN_TX(s0), k, v)
assert GET(tx, k) = v
assert GET(COMMIT(tx), k) = v
assert ROLLBACK(tx) = s0
assert HAS?(COMMIT(tx), k) = true
"""

FALSE_PROGRAM = """
input i: Item
input j: Item
let q := ADD(ADD(NEW, i), j)
assert FRONT(q) = j
"""


def _verify(source, *specs):
    program = parse_client_program(source, *specs)
    return verify_client(program)


def test_e11_queue_theorems(benchmark):
    result = benchmark(_verify, QUEUE_PROGRAM, QUEUE_SPEC)
    assert result.all_proved, str(result)


def test_e11_symboltable_theorems(benchmark):
    result = benchmark(_verify, SYMBOLTABLE_PROGRAM, SYMBOLTABLE_SPEC)
    assert result.all_proved, str(result)


def test_e11_store_theorems(benchmark):
    result = benchmark(_verify, STORE_PROGRAM, STORE_SPEC)
    assert result.all_proved, str(result)


def test_e11_false_claims_rejected(benchmark):
    result = benchmark(_verify, FALSE_PROGRAM, QUEUE_SPEC)
    assert not result.all_proved
    assert len(result.failures) == 1


def test_e11_summary_table(benchmark):
    def run_all():
        rows = []
        for name, source, specs in (
            ("Queue FIFO", QUEUE_PROGRAM, (QUEUE_SPEC,)),
            ("Symboltable scoping", SYMBOLTABLE_PROGRAM, (SYMBOLTABLE_SPEC,)),
            ("Store transactions", STORE_PROGRAM, (STORE_SPEC,)),
            ("Deliberately wrong", FALSE_PROGRAM, (QUEUE_SPEC,)),
        ):
            outcome = _verify(source, *specs)
            proved = sum(1 for _, r in outcome.outcomes if r.proved)
            rows.append(
                [name, f"{proved}/{len(outcome.outcomes)}", outcome.all_proved]
            )
        return rows

    rows = benchmark(run_all)
    report(
        "E11: client-program verification (axioms only)",
        ["program", "assertions proved", "all proved"],
        rows,
    )
    assert rows[0][2] and rows[1][2] and rows[2][2]
    assert not rows[3][2]
