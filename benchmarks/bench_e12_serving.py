#!/usr/bin/env python
"""E12 — serving throughput and tail latency, healthy and degraded.

The serving claim behind the ROADMAP's "production-scale system"
north star: a warm ``repro serve`` daemon answers concurrent batched
normalisation far faster than cold-start CLI invocations, *and keeps
answering* when a shard worker is SIGKILLed mid-run (pool degrades to
parent-side serial evaluation, the supervisor respawns it behind the
scenes).  This benchmark measures both modes with real HTTP traffic
from the stdlib client:

* ``rps`` — completed requests per wall-clock second across all client
  threads;
* ``p50_ms`` / ``p99_ms`` — client-observed per-request latency;
* ``dropped`` — requests that resolved to neither per-item Outcomes
  nor a structured shed; the robustness invariant is that this is 0 in
  *both* modes;
* ``recovery_seconds`` (degraded mode) — time from the SIGKILL until
  ``/readyz`` reports the pool healthy again.

Writes ``BENCH_E12.json`` next to this file::

    PYTHONPATH=src python benchmarks/bench_e12_serving.py [--quick]

``check_perf_regression.py --serve`` re-runs the healthy measurement
and guards rps against this artefact (machine-normalised), plus the
machine-free invariants: zero dropped requests and degraded-mode
recovery.
"""

from __future__ import annotations

import argparse
import json
import os
import signal
import statistics
import threading
import time
from pathlib import Path

BENCH_PATH = Path(__file__).resolve().parent / "BENCH_E12.json"


def _subjects(batch: int, tag: str) -> list:
    from repro.adt.queue import FRONT, queue_term
    from repro.algebra.terms import App

    return [
        App(FRONT, (queue_term([f"{tag}{i}a", f"{tag}{i}b", f"{tag}{i}c"]),))
        for i in range(batch)
    ]


def _drive(host, port, requests, batch, tag, latencies, failures):
    from repro.serve import ServeClient, ServeUnavailable

    client = ServeClient(
        host, port, timeout=30.0, retries=2, backoff=0.01, seed=len(tag)
    )
    for i in range(requests):
        subjects = _subjects(batch, f"{tag}r{i}")
        started = time.perf_counter()
        try:
            outcomes = client.normalize(subjects, spec="Queue")
        except ServeUnavailable:
            failures.append("shed")  # structured refusal, not a drop
            continue
        elapsed = time.perf_counter() - started
        if len(outcomes) == len(subjects) and all(o.ok for o in outcomes):
            latencies.append(elapsed)
        else:
            failures.append("bad_batch")  # a genuine drop — guard fails


def measure_serving(
    mode: str = "healthy",
    threads: int = 4,
    requests: int = 25,
    batch: int = 8,
    workers: int = 2,
) -> dict:
    """Boot a daemon, drive concurrent load, return one sample dict.

    ``mode="degraded"`` SIGKILLs one shard worker right after the load
    starts and additionally reports the ``/readyz`` recovery time.
    """
    from repro.adt.queue import QUEUE_SPEC
    from repro.obs import metrics as _metrics
    from repro.serve import ReproServer, ServeClient, ServeLimits

    registry = _metrics.MetricsRegistry(f"bench-e12-{mode}")
    with ReproServer(
        [QUEUE_SPEC],
        workers=workers,
        limits=ServeLimits(max_inflight=threads, queue_depth=threads * 4),
        supervisor_options={"backoff_base": 0.05, "backoff_cap": 0.5},
        registry=registry,
    ) as server:
        host, port = server.address
        latencies: list[float] = []
        failures: list[str] = []
        pool = [
            threading.Thread(
                target=_drive,
                args=(host, port, requests, batch, f"t{n}", latencies, failures),
            )
            for n in range(threads)
        ]
        killed_at = None
        started = time.perf_counter()
        for thread in pool:
            thread.start()
        if mode == "degraded":
            victims = server.sessions["Queue"].supervisor.worker_pids()
            if victims:
                os.kill(victims[0], signal.SIGKILL)
                killed_at = time.perf_counter()
        for thread in pool:
            thread.join()
        wall = time.perf_counter() - started

        recovery = None
        if killed_at is not None:
            client = ServeClient(host, port, timeout=10.0, retries=0)
            deadline = time.monotonic() + 15.0
            while time.monotonic() < deadline:
                if client.readyz()["ready"]:
                    recovery = time.perf_counter() - killed_at
                    break
                time.sleep(0.05)

        ranked = sorted(latencies)

        def quantile(q: float) -> float:
            if not ranked:
                return 0.0
            return ranked[min(len(ranked) - 1, int(q * len(ranked)))]

        return {
            "mode": mode,
            "threads": threads,
            "requests_per_thread": requests,
            "batch": batch,
            "workers": workers,
            "completed": len(latencies),
            "shed": failures.count("shed"),
            "dropped": failures.count("bad_batch"),
            "wall_seconds": round(wall, 6),
            "rps": round(len(latencies) / wall, 2) if wall else 0.0,
            "items_per_sec": (
                round(len(latencies) * batch / wall, 2) if wall else 0.0
            ),
            "p50_ms": round(quantile(0.50) * 1e3, 3),
            "p99_ms": round(quantile(0.99) * 1e3, 3),
            "mean_ms": (
                round(statistics.mean(ranked) * 1e3, 3) if ranked else 0.0
            ),
            "recovery_seconds": (
                round(recovery, 3) if recovery is not None else None
            ),
        }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick",
        action="store_true",
        help="small load for CI smoke (fewer threads and requests)",
    )
    parser.add_argument("--out", type=Path, default=BENCH_PATH)
    args = parser.parse_args(argv)

    threads = 2 if args.quick else 4
    requests = 10 if args.quick else 25

    payload = {
        "experiment": "E12",
        "workload": (
            "concurrent batched FRONT-observation requests against a "
            "warm `repro serve` daemon (Queue spec, supervised shard "
            "pool), stdlib client over HTTP/TCP"
        ),
        "modes": {},
    }
    for mode in ("healthy", "degraded"):
        sample = measure_serving(
            mode=mode, threads=threads, requests=requests
        )
        payload["modes"][mode] = sample
        print(
            f"{mode}: {sample['rps']} req/s, p50 {sample['p50_ms']}ms, "
            f"p99 {sample['p99_ms']}ms, completed {sample['completed']}, "
            f"shed {sample['shed']}, dropped {sample['dropped']}"
            + (
                f", recovered in {sample['recovery_seconds']}s"
                if sample["recovery_seconds"] is not None
                else ""
            ),
            flush=True,
        )
        if sample["dropped"]:
            print(f"{mode}: DROPPED BATCHES — robustness invariant broken")
            return 1
    args.out.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
