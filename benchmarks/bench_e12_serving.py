#!/usr/bin/env python
"""E12 — serving throughput and tail latency, healthy and degraded.

The serving claim behind the ROADMAP's "production-scale system"
north star: a warm ``repro serve`` daemon answers concurrent batched
normalisation far faster than cold-start CLI invocations, *and keeps
answering* when a shard worker is SIGKILLed mid-run (pool degrades to
parent-side serial evaluation, the supervisor respawns it behind the
scenes).  This benchmark measures both modes with real HTTP traffic
from the stdlib client:

* ``rps`` — completed requests per wall-clock second across all client
  threads;
* ``p50_ms`` / ``p99_ms`` — client-observed per-request latency;
* ``dropped`` — requests that resolved to neither per-item Outcomes
  nor a structured shed; the robustness invariant is that this is 0 in
  *both* modes;
* ``recovery_seconds`` (degraded mode) — time from the SIGKILL until
  ``/readyz`` reports the pool healthy again.

Writes ``BENCH_E12.json`` next to this file::

    PYTHONPATH=src python benchmarks/bench_e12_serving.py [--quick]

``check_perf_regression.py --serve`` re-runs the healthy measurement
and guards rps against this artefact (machine-normalised), plus the
machine-free invariants: zero dropped requests and degraded-mode
recovery.
"""

from __future__ import annotations

import argparse
import json
import os
import signal
import statistics
import threading
import time
from pathlib import Path

BENCH_PATH = Path(__file__).resolve().parent / "BENCH_E12.json"


def _subjects(batch: int, tag: str) -> list:
    from repro.adt.queue import FRONT, queue_term
    from repro.algebra.terms import App

    return [
        App(FRONT, (queue_term([f"{tag}{i}a", f"{tag}{i}b", f"{tag}{i}c"]),))
        for i in range(batch)
    ]


def _drive(host, port, requests, batch, tag, latencies, failures, keepalive):
    from repro.serve import ServeClient, ServeUnavailable

    client = ServeClient(
        host,
        port,
        timeout=30.0,
        retries=2,
        backoff=0.01,
        seed=len(tag),
        keepalive=keepalive,
    )
    for i in range(requests):
        subjects = _subjects(batch, f"{tag}r{i}")
        started = time.perf_counter()
        try:
            outcomes = client.normalize(subjects, spec="Queue")
        except ServeUnavailable:
            failures.append("shed")  # structured refusal, not a drop
            continue
        elapsed = time.perf_counter() - started
        if len(outcomes) == len(subjects) and all(o.ok for o in outcomes):
            latencies.append(elapsed)
        else:
            failures.append("bad_batch")  # a genuine drop — guard fails


def measure_serving(
    mode: str = "healthy",
    threads: int = 4,
    requests: int = 25,
    batch: int = 8,
    workers: int = 2,
    trace_sample: float | None = None,
    otlp_path: str | None = None,
    keepalive: bool = True,
) -> dict:
    """Boot a daemon, drive concurrent load, return one sample dict.

    ``mode="degraded"`` SIGKILLs one shard worker right after the load
    starts and additionally reports the ``/readyz`` recovery time.
    ``trace_sample``/``otlp_path`` turn request tracing on server-side
    (the tracing-overhead rows); ``keepalive=False`` makes every client
    open a fresh connection per request (the connection-reuse rows).
    """
    from repro.adt.queue import QUEUE_SPEC
    from repro.obs import metrics as _metrics
    from repro.serve import ReproServer, ServeClient, ServeLimits

    registry = _metrics.MetricsRegistry(f"bench-e12-{mode}")
    with ReproServer(
        [QUEUE_SPEC],
        workers=workers,
        limits=ServeLimits(max_inflight=threads, queue_depth=threads * 4),
        supervisor_options={"backoff_base": 0.05, "backoff_cap": 0.5},
        registry=registry,
        trace_sample=trace_sample,
        otlp_path=otlp_path,
    ) as server:
        host, port = server.address
        latencies: list[float] = []
        failures: list[str] = []
        pool = [
            threading.Thread(
                target=_drive,
                args=(
                    host,
                    port,
                    requests,
                    batch,
                    f"t{n}",
                    latencies,
                    failures,
                    keepalive,
                ),
            )
            for n in range(threads)
        ]
        killed_at = None
        started = time.perf_counter()
        for thread in pool:
            thread.start()
        if mode == "degraded":
            victims = server.sessions["Queue"].supervisor.worker_pids()
            if victims:
                os.kill(victims[0], signal.SIGKILL)
                killed_at = time.perf_counter()
        for thread in pool:
            thread.join()
        wall = time.perf_counter() - started

        recovery = None
        if killed_at is not None:
            client = ServeClient(host, port, timeout=10.0, retries=0)
            deadline = time.monotonic() + 15.0
            while time.monotonic() < deadline:
                if client.readyz()["ready"]:
                    recovery = time.perf_counter() - killed_at
                    break
                time.sleep(0.05)

        ranked = sorted(latencies)

        def quantile(q: float) -> float:
            if not ranked:
                return 0.0
            return ranked[min(len(ranked) - 1, int(q * len(ranked)))]

        return {
            "mode": mode,
            "threads": threads,
            "requests_per_thread": requests,
            "batch": batch,
            "workers": workers,
            "completed": len(latencies),
            "shed": failures.count("shed"),
            "dropped": failures.count("bad_batch"),
            "wall_seconds": round(wall, 6),
            "rps": round(len(latencies) / wall, 2) if wall else 0.0,
            "items_per_sec": (
                round(len(latencies) * batch / wall, 2) if wall else 0.0
            ),
            "p50_ms": round(quantile(0.50) * 1e3, 3),
            "p99_ms": round(quantile(0.99) * 1e3, 3),
            "mean_ms": (
                round(statistics.mean(ranked) * 1e3, 3) if ranked else 0.0
            ),
            "recovery_seconds": (
                round(recovery, 3) if recovery is not None else None
            ),
        }


def _serial_rps(name: str, requests: int, batch: int, warmup: int, **extra):
    """One daemon boot (serial sessions — no shard-pool fork noise),
    one keep-alive client, ``requests`` back-to-back batches timed as a
    block.  Returns completed requests per second."""
    from repro.adt.queue import QUEUE_SPEC
    from repro.obs import metrics as _metrics
    from repro.serve import ReproServer, ServeClient

    registry = _metrics.MetricsRegistry(f"bench-e12-{name}")
    with ReproServer([QUEUE_SPEC], registry=registry, **extra) as server:
        host, port = server.address
        with ServeClient(host, port, timeout=30.0, retries=2) as client:
            for i in range(warmup):
                outcomes = client.normalize(
                    _subjects(batch, f"w{i}"), spec="Queue"
                )
                assert all(o.ok for o in outcomes)
            started = time.perf_counter()
            for i in range(requests):
                client.normalize(_subjects(batch, f"{name}{i}"), spec="Queue")
            return requests / (time.perf_counter() - started)


def measure_tracing_overhead(
    requests: int = 150,
    batch: int = 4,
    warmup: int = 30,
    reps: int = 5,
) -> dict:
    """The rps cost of distributed tracing, interleaved best-of-``reps``.

    Three daemon configurations under identical serial load: tracing
    absent, tracing wired but muted (``trace_sample=0.0`` — the request
    path pays the span plumbing but records nothing), and
    ``trace_sample=0.1`` with OTLP export of every tenth request.  Each
    sample is its own daemon boot; interleaving plus best-of keeps one
    machine-speed wobble from landing on a single configuration.
    Sessions are serial so the per-firing engine instrumentation runs
    in-daemon — the most tracing-exposed request path.
    """
    import tempfile

    base = disabled = sampled = 0.0
    with tempfile.TemporaryDirectory() as tmp:
        otlp = os.path.join(tmp, "traces.jsonl")
        for rep in range(reps):
            base = max(
                base, _serial_rps(f"base{rep}", requests, batch, warmup)
            )
            disabled = max(
                disabled,
                _serial_rps(
                    f"dis{rep}", requests, batch, warmup,
                    trace_sample=0.0, otlp_path=otlp,
                ),
            )
            sampled = max(
                sampled,
                _serial_rps(
                    f"smp{rep}", requests, batch, warmup,
                    trace_sample=0.1, otlp_path=otlp,
                ),
            )

    def overhead(rps: float) -> float:
        if not base:
            return 0.0
        return round(max(0.0, (base - rps) / base * 100.0), 2)

    return {
        "baseline_rps": round(base, 2),
        "disabled_rps": round(disabled, 2),
        "disabled_overhead_pct": overhead(disabled),
        "sampled_trace_fraction": 0.1,
        "sampled_rps": round(sampled, 2),
        "sampled_overhead_pct": overhead(sampled),
        "requests": requests,
        "batch": batch,
        "reps": reps,
    }


def measure_connection_reuse(
    requests: int = 150,
    warmup: int = 20,
    reps: int = 3,
) -> dict:
    """Keep-alive vs connection-per-request rps against the *same*
    daemon (one boot, two clients, interleaved best-of rounds) — the
    delta is the TCP handshake plus the per-connection server thread
    the HTTP/1.1 daemon lets persistent clients skip."""
    from repro.adt.queue import QUEUE_SPEC
    from repro.obs import metrics as _metrics
    from repro.serve import ReproServer, ServeClient

    registry = _metrics.MetricsRegistry("bench-e12-reuse")
    with ReproServer([QUEUE_SPEC], registry=registry) as server:
        host, port = server.address
        with ServeClient(host, port, timeout=30.0, retries=2) as keep, \
                ServeClient(
                    host, port, timeout=30.0, retries=2, keepalive=False
                ) as once:
            keepalive = oneshot = 0.0
            for i in range(warmup):
                keep.normalize(_subjects(1, f"wk{i}"), spec="Queue")
                once.normalize(_subjects(1, f"wo{i}"), spec="Queue")
            for rep in range(reps):
                started = time.perf_counter()
                for i in range(requests):
                    keep.normalize(_subjects(1, f"k{rep}{i}"), spec="Queue")
                keepalive = max(
                    keepalive, requests / (time.perf_counter() - started)
                )
                started = time.perf_counter()
                for i in range(requests):
                    once.normalize(_subjects(1, f"o{rep}{i}"), spec="Queue")
                oneshot = max(
                    oneshot, requests / (time.perf_counter() - started)
                )
    return {
        "keepalive_rps": round(keepalive, 2),
        "oneshot_rps": round(oneshot, 2),
        "keepalive_speedup": (
            round(keepalive / oneshot, 2) if oneshot else None
        ),
        "requests": requests,
        "reps": reps,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick",
        action="store_true",
        help="small load for CI smoke (fewer threads and requests)",
    )
    parser.add_argument("--out", type=Path, default=BENCH_PATH)
    args = parser.parse_args(argv)

    threads = 2 if args.quick else 4
    requests = 10 if args.quick else 25

    payload = {
        "experiment": "E12",
        "workload": (
            "concurrent batched FRONT-observation requests against a "
            "warm `repro serve` daemon (Queue spec, supervised shard "
            "pool), stdlib client over HTTP/TCP"
        ),
        "modes": {},
    }
    for mode in ("healthy", "degraded"):
        sample = measure_serving(
            mode=mode, threads=threads, requests=requests
        )
        payload["modes"][mode] = sample
        print(
            f"{mode}: {sample['rps']} req/s, p50 {sample['p50_ms']}ms, "
            f"p99 {sample['p99_ms']}ms, completed {sample['completed']}, "
            f"shed {sample['shed']}, dropped {sample['dropped']}"
            + (
                f", recovered in {sample['recovery_seconds']}s"
                if sample["recovery_seconds"] is not None
                else ""
            ),
            flush=True,
        )
        if sample["dropped"]:
            print(f"{mode}: DROPPED BATCHES — robustness invariant broken")
            return 1

    tracing = measure_tracing_overhead(
        requests=60 if args.quick else 150, reps=2 if args.quick else 5
    )
    payload["tracing"] = tracing
    print(
        f"tracing: base {tracing['baseline_rps']} req/s, muted "
        f"{tracing['disabled_rps']} "
        f"(-{tracing['disabled_overhead_pct']}%), sample=0.1 "
        f"{tracing['sampled_rps']} "
        f"(-{tracing['sampled_overhead_pct']}%)",
        flush=True,
    )

    reuse = measure_connection_reuse(
        requests=60 if args.quick else 150, reps=2 if args.quick else 3
    )
    payload["connection_reuse"] = reuse
    print(
        f"connection reuse: keep-alive {reuse['keepalive_rps']} req/s vs "
        f"one-shot {reuse['oneshot_rps']} req/s -> "
        f"{reuse['keepalive_speedup']}x",
        flush=True,
    )

    args.out.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
