"""Shared helpers for the benchmark harness.

Every experiment (E1-E10, see DESIGN.md) regenerates its paper artefact:
the benchmark functions time the operation and *assert the shape* of the
result the paper reports, and each prints its rows so `pytest
benchmarks/ --benchmark-only -s` reproduces the tables of
EXPERIMENTS.md.
"""

from __future__ import annotations

import pytest


def report(title: str, headers, rows) -> None:
    """Print one experiment table (visible with -s; always captured in
    the test output otherwise)."""
    from repro.report import format_table

    print()
    print(f"== {title} ==")
    print(format_table(headers, rows))


@pytest.fixture(scope="session")
def representation():
    from repro.adt.symboltable import symboltable_representation

    return symboltable_representation()
