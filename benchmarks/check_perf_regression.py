#!/usr/bin/env python
"""CI perf guard for the E10 drain workload.

Re-measures the drain at the committed benchmark's largest size for the
guarded backends and compares against the committed ``BENCH_E10.json``
— *machine-normalised*: the interpreted ``full`` configuration is
re-measured too, and the committed baselines are scaled by
``measured_full / baseline_full`` before the comparison.  That way the
guard fails on a real regression of the compiled backends relative to
the interpreted engine, not on CI running on a slower machine than the
one that produced the committed artefact.

Run from the repository root::

    PYTHONPATH=src python benchmarks/check_perf_regression.py

Exit status 1 when a guarded backend is more than ``--threshold``
(default 1.25x) slower than its scaled committed baseline.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

BENCH_DIR = Path(__file__).resolve().parent
if str(BENCH_DIR) not in sys.path:
    sys.path.insert(0, str(BENCH_DIR))

from run_benchmarks import E10_CONFIGS, _measure_drain  # noqa: E402

#: Configurations the guard re-measures and compares.  ``full`` is the
#: normaliser, not a guarded row: its measured/baseline ratio *is* the
#: machine-speed correction applied to every other row.
GUARDED = ("compiled", "codegen")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--baseline",
        type=Path,
        default=BENCH_DIR / "BENCH_E10.json",
        help="committed benchmark artefact to guard against",
    )
    parser.add_argument(
        "--threshold",
        type=float,
        default=1.25,
        help="fail when measured > scaled baseline x this (default 1.25)",
    )
    parser.add_argument(
        "--reps",
        type=int,
        default=3,
        help="best-of repetitions per measurement (default 3)",
    )
    args = parser.parse_args(argv)

    baseline = json.loads(args.baseline.read_text())
    size = max(baseline["sizes"])
    configs = {name: row for name, *row in E10_CONFIGS}

    def measure(name: str) -> float:
        interning, use_index, cache_policy, backend, fusion = configs[name]
        sample = _measure_drain(
            size, interning, use_index, cache_policy, backend, args.reps,
            fusion=fusion,
        )
        return sample["seconds"]

    def committed(name: str) -> float:
        return baseline["configs"][name][str(size)]["seconds"]

    measured_full = measure("full")
    scale = measured_full / committed("full")
    print(
        f"drain@{size}: full measured {measured_full:.6f}s, committed "
        f"{committed('full'):.6f}s -> machine scale {scale:.2f}x"
    )

    status = 0
    for name in GUARDED:
        if name not in baseline["configs"]:
            print(f"drain@{size}: {name} not in baseline, skipping")
            continue
        measured = measure(name)
        allowed = committed(name) * scale * args.threshold
        verdict = "ok" if measured <= allowed else "REGRESSION"
        print(
            f"drain@{size}: {name} measured {measured:.6f}s, allowed "
            f"{allowed:.6f}s (committed {committed(name):.6f}s x "
            f"{scale:.2f} x {args.threshold}) -> {verdict}"
        )
        if measured > allowed:
            status = 1
    return status


if __name__ == "__main__":
    raise SystemExit(main())
