#!/usr/bin/env python
"""CI perf guard for the E10 drain workload.

Re-measures the drain at the committed benchmark's largest size for the
guarded backends and compares against the committed ``BENCH_E10.json``
— *machine-normalised*: the interpreted ``full`` configuration is
re-measured too, and the committed baselines are scaled by
``measured_full / baseline_full`` before the comparison.  That way the
guard fails on a real regression of the compiled backends relative to
the interpreted engine, not on CI running on a slower machine than the
one that produced the committed artefact.

Run from the repository root::

    PYTHONPATH=src python benchmarks/check_perf_regression.py

Exit status 1 when a guarded backend is more than ``--threshold``
(default 1.25x) slower than its scaled committed baseline.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from pathlib import Path

BENCH_DIR = Path(__file__).resolve().parent
if str(BENCH_DIR) not in sys.path:
    sys.path.insert(0, str(BENCH_DIR))

from run_benchmarks import (  # noqa: E402
    E10_CONFIGS,
    _measure_drain,
    _measure_parallel_batch,
    _parallel_subjects,
)

#: Configurations the guard re-measures and compares.  ``full`` is the
#: normaliser, not a guarded row: its measured/baseline ratio *is* the
#: machine-speed correction applied to every other row.
GUARDED = ("compiled", "codegen")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--baseline",
        type=Path,
        default=BENCH_DIR / "BENCH_E10.json",
        help="committed benchmark artefact to guard against",
    )
    parser.add_argument(
        "--threshold",
        type=float,
        default=1.25,
        help="fail when measured > scaled baseline x this (default 1.25)",
    )
    parser.add_argument(
        "--reps",
        type=int,
        default=3,
        help="best-of repetitions per measurement (default 3)",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=4,
        help="shard count for the parallel scaling guard; 0 disables "
        "(default 4)",
    )
    parser.add_argument(
        "--workers-min-speedup",
        type=float,
        default=2.0,
        help="fail when the workers batch is not at least this much "
        "faster than serial (default 2.0; only enforced when the "
        "machine has >= workers cores)",
    )
    parser.add_argument(
        "--serve",
        action="store_true",
        help="also guard the E12 serving benchmark: healthy rps vs the "
        "committed BENCH_E12.json (machine-normalised) plus the "
        "machine-free invariants (zero dropped batches, degraded-mode "
        "recovery)",
    )
    parser.add_argument(
        "--serve-threshold",
        type=float,
        default=2.0,
        help="fail when healthy serving rps is more than this factor "
        "below the scaled committed baseline (default 2.0)",
    )
    parser.add_argument(
        "--trace-overhead-disabled",
        type=float,
        default=1.0,
        help="with --serve: max rps cost (percent) of wiring tracing "
        "but keeping it muted, trace_sample=0.0 (default 1.0)",
    )
    parser.add_argument(
        "--trace-overhead-sampled",
        type=float,
        default=10.0,
        help="with --serve: max rps cost (percent) of tracing at "
        "trace_sample=0.1 with OTLP export (default 10.0)",
    )
    parser.add_argument(
        "--trace-attempts",
        type=int,
        default=3,
        help="re-measure the tracing overhead up to this many times "
        "before calling it a regression (default 3; live-daemon rps "
        "is noisy, a bound this tight needs the retry)",
    )
    args = parser.parse_args(argv)

    baseline = json.loads(args.baseline.read_text())
    size = max(baseline["sizes"])
    configs = {name: row for name, *row in E10_CONFIGS}

    def measure(name: str) -> float:
        interning, use_index, cache_policy, backend, fusion = configs[name]
        sample = _measure_drain(
            size, interning, use_index, cache_policy, backend, args.reps,
            fusion=fusion,
        )
        return sample["seconds"]

    def committed(name: str) -> float:
        return baseline["configs"][name][str(size)]["seconds"]

    measured_full = measure("full")
    scale = measured_full / committed("full")
    print(
        f"drain@{size}: full measured {measured_full:.6f}s, committed "
        f"{committed('full'):.6f}s -> machine scale {scale:.2f}x"
    )

    status = 0
    for name in GUARDED:
        if name not in baseline["configs"]:
            print(f"drain@{size}: {name} not in baseline, skipping")
            continue
        measured = measure(name)
        allowed = committed(name) * scale * args.threshold
        verdict = "ok" if measured <= allowed else "REGRESSION"
        print(
            f"drain@{size}: {name} measured {measured:.6f}s, allowed "
            f"{allowed:.6f}s (committed {committed(name):.6f}s x "
            f"{scale:.2f} x {args.threshold}) -> {verdict}"
        )
        if measured > allowed:
            status = 1

    # Parallel scaling guard.  Unlike the rows above this is an
    # *absolute* property (sharded vs serial on the same machine, same
    # run), so no machine-scale correction applies — but it only means
    # anything when the machine can actually run the shards
    # concurrently, hence the core-count gate.
    if args.workers > 1:
        cpus = os.cpu_count() or 1
        parallel = baseline.get("parallel", {})
        batch = parallel.get("batch", 128)
        psize = parallel.get("size", 128)
        backend = parallel.get("backend", "interpreted")
        if cpus < args.workers:
            print(
                f"parallel@{psize}x{batch}: {cpus} cpu(s) < "
                f"{args.workers} workers, skipping the scaling guard"
            )
        else:
            subjects = _parallel_subjects(batch, psize)
            serial = _measure_parallel_batch(subjects, backend, args.reps)
            sharded = _measure_parallel_batch(
                subjects, backend, args.reps, args.workers
            )
            speedup = serial / sharded
            verdict = (
                "ok" if speedup >= args.workers_min_speedup else "REGRESSION"
            )
            print(
                f"parallel@{psize}x{batch}: serial {serial:.6f}s, "
                f"workers={args.workers} {sharded:.6f}s -> speedup "
                f"{speedup:.2f}x (min {args.workers_min_speedup}) "
                f"-> {verdict}"
            )
            if speedup < args.workers_min_speedup:
                status = 1

    # Serving guard (E12).  Two layers: a machine-normalised rps floor
    # for the healthy daemon (same scale correction as the drain rows,
    # throughput divides where seconds multiply), and machine-free
    # robustness invariants that hold on any hardware — no request may
    # resolve to a dropped batch, and a daemon with a SIGKILLed shard
    # worker must recover its readiness probe.
    if args.serve:
        from bench_e12_serving import measure_serving

        serve_path = BENCH_DIR / "BENCH_E12.json"
        if not serve_path.exists():
            print("serve: no BENCH_E12.json baseline, skipping")
        else:
            e12 = json.loads(serve_path.read_text())
            base = e12["modes"]["healthy"]
            params = dict(
                threads=base["threads"],
                requests=base["requests_per_thread"],
                batch=base["batch"],
                workers=base["workers"],
            )
            healthy = measure_serving(mode="healthy", **params)
            floor = base["rps"] / scale / args.serve_threshold
            verdict = "ok" if healthy["rps"] >= floor else "REGRESSION"
            print(
                f"serve/healthy: measured {healthy['rps']} req/s, floor "
                f"{floor:.2f} (committed {base['rps']} / {scale:.2f} / "
                f"{args.serve_threshold}) -> {verdict}"
            )
            if healthy["rps"] < floor:
                status = 1
            degraded = measure_serving(mode="degraded", **params)
            for sample in (healthy, degraded):
                if sample["dropped"]:
                    print(
                        f"serve/{sample['mode']}: {sample['dropped']} "
                        "dropped batches -> REGRESSION"
                    )
                    status = 1
            if degraded["recovery_seconds"] is None:
                print("serve/degraded: /readyz never recovered -> REGRESSION")
                status = 1
            else:
                print(
                    f"serve/degraded: {degraded['rps']} req/s, p99 "
                    f"{degraded['p99_ms']}ms, recovered in "
                    f"{degraded['recovery_seconds']}s -> ok"
                )

        # Tracing overhead guard: machine-free (traced vs untraced on
        # the same machine in the same run), so it needs no committed
        # baseline — but live-daemon rps is noisy enough that a 1%
        # bound gets a few attempts before the verdict sticks.
        from bench_e12_serving import measure_tracing_overhead

        for attempt in range(1, args.trace_attempts + 1):
            tracing = measure_tracing_overhead(requests=100, reps=3)
            muted_ok = (
                tracing["disabled_overhead_pct"]
                <= args.trace_overhead_disabled
            )
            sampled_ok = (
                tracing["sampled_overhead_pct"]
                <= args.trace_overhead_sampled
            )
            verdict = (
                "ok"
                if muted_ok and sampled_ok
                else (
                    "retry"
                    if attempt < args.trace_attempts
                    else "REGRESSION"
                )
            )
            print(
                f"serve/tracing[{attempt}]: muted "
                f"-{tracing['disabled_overhead_pct']}% rps (max "
                f"{args.trace_overhead_disabled}%), sample=0.1 "
                f"-{tracing['sampled_overhead_pct']}% rps (max "
                f"{args.trace_overhead_sampled}%) -> {verdict}"
            )
            if muted_ok and sampled_ok:
                break
        else:
            status = 1
    return status


if __name__ == "__main__":
    raise SystemExit(main())
