#!/usr/bin/env python3
"""The adaptability exercise: changing the compiled language.

Section 4's closing move: the language gains "knows lists" — a block
inherits a global only if it names it at block entry.  The paper claims
the specification adapts surgically: "all relations, and only those
relations, that explicitly deal with the ENTERBLOCK operation would have
to be altered", plus a new Knowlist level.

This example shows the axiom diff, checks the modified specification
mechanically, and compiles programs in both dialects.

Run:  python examples/knowlist_dialect.py
"""

from repro import check_consistency, check_sufficient_completeness
from repro.adt.knowlist import KNOWLIST_SPEC, SYMBOLTABLE_KNOWS_SPEC
from repro.adt.symboltable import SYMBOLTABLE_SPEC
from repro.compiler import analyze_source
from repro.report import banner, format_specification

PLAIN_PROGRAM = """
begin
  declare g: int;
  begin
    g := 1;                  -- fine: lexical scope inherits globals
  end;
end
"""

KNOWS_PROGRAM = """
begin
  declare g: int;
  declare h: int;
  begin knows g
    g := 1;                  -- fine: g is in the knows list
    h := 2;                  -- error: h is not
  end;
end
"""


def main() -> None:
    print(banner("The axiom diff"))
    original = {a.label: a for a in SYMBOLTABLE_SPEC.axioms}
    modified = {a.label: a for a in SYMBOLTABLE_KNOWS_SPEC.axioms}
    kept = [label for label in original if label in modified]
    print(f"kept verbatim: axioms {', '.join(kept)}")
    print("replaced (ENTERBLOCK relations only):")
    for label in ("2", "5", "8"):
        print(f"  - {original[label]}")
    for label in ("2k", "5k", "8k"):
        print(f"  + {modified[label]}")

    print(banner("The new level: type Knowlist"))
    print(format_specification(KNOWLIST_SPEC))

    print(banner("Mechanical checks of the modified specification"))
    completeness = check_sufficient_completeness(SYMBOLTABLE_KNOWS_SPEC)
    print(f"sufficiently complete: {completeness.sufficiently_complete}")
    consistency = check_consistency(SYMBOLTABLE_KNOWS_SPEC)
    print(f"consistent:            {consistency.consistent}")

    print(banner("Compiling the plain dialect"))
    plain = analyze_source(PLAIN_PROGRAM)
    print(plain.diagnostics if plain.diagnostics.diagnostics else "clean")

    print(banner("Compiling the knows dialect"))
    knows = analyze_source(KNOWS_PROGRAM, dialect="knows")
    for diagnostic in knows.diagnostics.diagnostics:
        print(diagnostic)

    print(banner("Same source, old semantics assumed"))
    try:
        analyze_source(KNOWS_PROGRAM, dialect="plain")
    except Exception as exc:
        print(f"rejected by the plain parser: {exc}")


if __name__ == "__main__":
    main()
