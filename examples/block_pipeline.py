#!/usr/bin/env python3
"""The full compiler pipeline over the symbol-table ADT.

Where `symbol_table_compiler.py` stops at diagnostics, this example runs
the whole pipeline the paper's symbol table was designed to serve:

    source → lex/parse → semantic analysis (scope + type checks)
           → code generation (the symbol table's *attributes* become
             lexical addresses) → stack-machine execution,

cross-checked against the tree-walking reference evaluator.

Run:  python examples/block_pipeline.py
"""

from repro.compiler import (
    Interpreter,
    SemanticAnalyzer,
    VirtualMachine,
    compile_program,
    parse_program,
)
from repro.report import banner

SOURCE = """
begin
  declare n: int;
  declare fib: int;
  declare prev: int;
  declare i: int;

  n := 12;
  fib := 1;
  prev := 0;
  i := 1;

  while i < n do
    begin
      declare next: int;        -- block-local temporary
      next := fib + prev;
      prev := fib;
      fib := next;
    end;
    i := i + 1;
  od;

  declare big: bool;
  big := 100 < fib;
end
"""


def main() -> None:
    print(banner("Source"))
    print(SOURCE.strip())

    program = parse_program(SOURCE)

    print(banner("Semantic analysis (symbol-table driven)"))
    analysis = SemanticAnalyzer().analyze(program)
    print("diagnostics:", analysis.diagnostics)
    print(f"symbol-table operations used: {analysis.stats.total}")

    print(banner("Code generation (attributes -> lexical addresses)"))
    compiled = compile_program(program)
    print(compiled.disassemble())
    print(f"globals: {compiled.global_names}")

    print(banner("Execution"))
    vm_result = VirtualMachine().run(compiled)
    interp_result = Interpreter().run(program)
    print(f"stack machine:  {vm_result.globals}")
    print(f"tree walker:    {interp_result.globals}")
    assert vm_result.globals == interp_result.globals
    print("engines agree; fib(12) =", vm_result.value("fib"))


if __name__ == "__main__":
    main()
