#!/usr/bin/env python3
"""Φ⁻¹ is one-to-many: the paper's ring-buffer figures, executed.

Section 4 shows two program segments whose ring-buffer states differ
physically yet denote the same bounded queue.  This example runs both
segments, draws the buffers, and applies the abstraction function Φ to
show they collapse to the same constructor term.

Run:  python examples/bounded_queue_phi.py
"""

from repro.adt.boundedqueue import (
    GARBAGE,
    RingBufferQueue,
    paper_first_segment,
    paper_second_segment,
    phi_ring_buffer,
)
from repro.report import banner


def draw(queue: RingBufferQueue) -> str:
    """ASCII rendering of a ring buffer with its front pointer."""
    cells = []
    for index, cell in enumerate(queue.raw_buffer):
        text = " ? " if cell is GARBAGE else f" {cell} "
        cells.append(text)
    top = "+" + "+".join("-" * len(c) for c in cells) + "+"
    row = "|" + "|".join(cells) + "|"
    pointer_cells = [
        " ^ " if index == queue.front_index else "   "
        for index in range(len(queue.raw_buffer))
    ]
    pointer = " " + " ".join(pointer_cells)
    return "\n".join(
        [top, row, top, pointer + "  <- front pointer "
         f"(length {queue.size()})"]
    )


def main() -> None:
    print(banner("Program segment 1"))
    print("x := EMPTY_Q")
    print("x := ADD_Q(x, A); ADD_Q(x, B); ADD_Q(x, C)")
    print("x := REMOVE_Q(x)")
    print("x := ADD_Q(x, D)")
    first = paper_first_segment()
    print()
    print(draw(first))

    print(banner("Program segment 2"))
    print("x := EMPTY_Q")
    print("x := ADD_Q(x, B); ADD_Q(x, C); ADD_Q(x, D)")
    second = paper_second_segment()
    print()
    print(draw(second))

    print(banner("Same value, different representations"))
    print(f"physically identical:    {first.same_representation(second)}")
    print(f"abstractly equal:        {first == second}")
    print(f"Φ(segment 1) = {phi_ring_buffer(first)}")
    print(f"Φ(segment 2) = {phi_ring_buffer(second)}")
    print()
    print("The mapping from values to representations, Φ⁻¹, is "
          "one-to-many: both states above are legitimate representations "
          "of the queue <B, C, D>.")

    print(banner("Drain both: identical observable behaviour"))
    left, right = first, second
    while not left.is_empty():
        assert left.front() == right.front()
        print(f"FRONT -> {left.front()!r} (both)")
        left, right = left.remove(), right.remove()
    print("both empty.")


if __name__ == "__main__":
    main()
