#!/usr/bin/env python3
"""Quickstart: specify an abstract type, check it, run it, test it.

This walks the core workflow of the library in five steps:

1. write an algebraic specification in the paper's notation;
2. check sufficient completeness and consistency mechanically;
3. execute the specification directly (symbolic interpretation);
4. implement the type in Python;
5. test the implementation against the axioms.

Run:  python examples/quickstart.py
"""

from repro import (
    check_consistency,
    check_sufficient_completeness,
    facade_class,
    parse_specification,
)
from repro.report import banner, format_specification
from repro.spec.errors import AlgebraError
from repro.testing import ImplementationBinding, check_axioms

# ----------------------------------------------------------------------
# 1. Specify.  The type: a priority-less task queue with a cancel
#    operation — a small original example, not one of the paper's.
# ----------------------------------------------------------------------
SPEC_TEXT = """
type Tasklist [Item]
uses Boolean, Item

operations
  NONE:     -> Tasklist
  ENQUEUE:  Tasklist x Item -> Tasklist
  NEXT:     Tasklist -> Item
  DONE:     Tasklist -> Tasklist
  IS_IDLE?: Tasklist -> Boolean

vars
  ts: Tasklist
  t:  Item

axioms
  (1) IS_IDLE?(NONE) = true
  (2) IS_IDLE?(ENQUEUE(ts, t)) = false
  (3) NEXT(NONE) = error
  (4) NEXT(ENQUEUE(ts, t)) = if IS_IDLE?(ts) then t else NEXT(ts)
  (5) DONE(NONE) = error
  (6) DONE(ENQUEUE(ts, t)) = if IS_IDLE?(ts) then NONE
                             else ENQUEUE(DONE(ts), t)
"""


def main() -> None:
    spec = parse_specification(SPEC_TEXT)
    print(banner("1. The specification"))
    print(format_specification(spec))

    # ------------------------------------------------------------------
    # 2. Analyse.
    # ------------------------------------------------------------------
    print(banner("2. Mechanical analysis"))
    completeness = check_sufficient_completeness(spec)
    print(f"sufficiently complete: {completeness.sufficiently_complete}")
    consistency = check_consistency(spec)
    print(f"consistent:            {consistency.consistent}")

    # ------------------------------------------------------------------
    # 3. Run the spec itself: no implementation anywhere.
    # ------------------------------------------------------------------
    print(banner("3. Symbolic interpretation (the spec IS the program)"))
    Tasklist = facade_class(spec)
    tasks = Tasklist.none().enqueue("write").enqueue("test").enqueue("ship")
    print(f"next task:        {tasks.next()}")
    print(f"after done:       {tasks.done().next()}")
    print(f"idle?             {tasks.is_idle()}")
    try:
        Tasklist.none().next()
    except AlgebraError as exc:
        print(f"NEXT(NONE) -> error ({exc})")

    # ------------------------------------------------------------------
    # 4. Implement in Python.
    # ------------------------------------------------------------------
    print(banner("4. A hand implementation"))

    class TupleTasklist:
        def __init__(self, items=()):
            self._items = tuple(items)

        def enqueue(self, task):
            return TupleTasklist(self._items + (task,))

        def next(self):
            if not self._items:
                raise AlgebraError("NEXT(NONE)")
            return self._items[0]

        def done(self):
            if not self._items:
                raise AlgebraError("DONE(NONE)")
            return TupleTasklist(self._items[1:])

        def is_idle(self):
            return not self._items

        def __eq__(self, other):
            return self._items == other._items

        def __hash__(self):
            return hash(self._items)

    impl = TupleTasklist().enqueue("write").enqueue("test")
    print(f"implementation next: {impl.next()}")

    # ------------------------------------------------------------------
    # 5. Test the implementation against the axioms.
    # ------------------------------------------------------------------
    print(banner("5. The axioms as a test oracle"))
    binding = ImplementationBinding(
        spec,
        {
            "NONE": TupleTasklist,
            "ENQUEUE": lambda ts, t: ts.enqueue(t),
            "NEXT": lambda ts: ts.next(),
            "DONE": lambda ts: ts.done(),
            "IS_IDLE?": lambda ts: ts.is_idle(),
        },
    )
    report = check_axioms(binding, instances_per_axiom=40)
    print(report)


if __name__ == "__main__":
    main()
