#!/usr/bin/env python3
"""The paper's extended example, end to end.

Reproduces section 4: the Symboltable specification, its representation
as a Stack of Arrays, the mechanical verification of the representation
(including the Assumption 1 story around Axiom 9), and the type's use in
an actual compiler front end — with the specification itself and the
concrete implementation serving interchangeably as the backend.

Run:  python examples/symbol_table_compiler.py
"""

from repro.adt.symboltable import symboltable_representation
from repro.algebra.terms import App, app
from repro.compiler import (
    ConcreteBackend,
    SpecBackend,
    analyze_source,
)
from repro.report import banner, format_specification, format_table
from repro.verify import (
    Mode,
    model_check,
    not_newstack_lemma,
    obligations_for,
    reachable_states,
    verify_representation,
)

PROGRAM = """
begin
  declare limit: int;
  declare total: int;
  limit := 10;
  total := 0;
  begin
    declare total: bool;      -- legal shadowing
    total := true;
  end;
  while total < limit do
    total := total + 1;
  od;
  counter := counter + 1;     -- error: never declared
end
"""


def main() -> None:
    representation = symboltable_representation()

    print(banner("The abstract type (axioms 1-9)"))
    print(format_specification(representation.abstract))

    print(banner("The representation: a Stack of Arrays"))
    print(representation)

    # ------------------------------------------------------------------
    print(banner("Proof obligations (the inherent invariants)"))
    for obligation in obligations_for(representation, with_assumption_1=True):
        print(obligation)

    # ------------------------------------------------------------------
    print(banner("Verification, three ways"))
    rows = []
    free = verify_representation(representation, Mode.UNCONDITIONAL)
    rows.append(
        [
            "all stack values",
            "proved 1-5, 7, 8",
            "FAILS: " + ", ".join(free.failed_labels),
        ]
    )
    conditional = verify_representation(representation, Mode.CONDITIONAL)
    rows.append(
        [
            "with Assumption 1",
            "proved " + ("all 9" if conditional.all_proved else "?"),
            "-",
        ]
    )
    reachable = verify_representation(
        representation, Mode.REACHABLE, lemmas=[not_newstack_lemma(representation)]
    )
    rows.append(
        [
            "reachable states (generator induction)",
            "proved " + ("all 9" if reachable.all_proved else "?"),
            "-",
        ]
    )
    print(format_table(["variable range", "result", "failures"], rows))

    # ------------------------------------------------------------------
    print(banner("Why Assumption 1: the concrete counterexample"))
    nine = [o for o in obligations_for(representation) if o.label == "9"][0]
    newstack = representation.concrete.operation("NEWSTACK")
    report = model_check(
        nine, representation, [app(newstack)], max_instances=40
    )
    print(report)
    print()
    states = reachable_states(representation, depth=3, limit=30)
    reachable_report = model_check(
        nine, representation, states[:10], max_instances=150
    )
    print(f"...but on {len(states)} reachable states: {reachable_report}")

    # ------------------------------------------------------------------
    print(banner("The type at work: compiling a Block program"))
    for label, backend in (
        ("concrete implementation", ConcreteBackend()),
        ("symbolically-run specification", SpecBackend()),
    ):
        result = analyze_source(PROGRAM, backend)
        print(f"backend: {label}")
        for diagnostic in result.diagnostics.diagnostics:
            print(f"  {diagnostic}")
        print(f"  ({result.stats.total} symbol-table operations)")


if __name__ == "__main__":
    main()
