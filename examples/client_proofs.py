#!/usr/bin/env python3
"""Proving client programs correct from the axioms alone.

Section 5: "the presence of axiomatic definitions of the abstract types
provides a mechanism for proving a program to be consistent with its
specifications, provided that the implementations of the abstract
operations that it uses are consistent with their specifications.  Thus
a technique for factoring the proof is provided."

This example verifies theorems about programs that *use* Queue and
Symboltable — touching no implementation anywhere.  Whatever correct
implementation is later plugged in, these programs keep their meaning.

Run:  python examples/client_proofs.py
"""

from repro.adt.queue import QUEUE_SPEC
from repro.adt.symboltable import SYMBOLTABLE_SPEC
from repro.report import banner
from repro.verify import parse_client_program, verify_client

QUEUE_PROGRAM = """
input i: Item
input j: Item
input k: Item

let q1 := ADD(ADD(ADD(NEW, i), j), k)
let q2 := REMOVE(q1)

assert FRONT(q1) = i
assert FRONT(q2) = j
assert FRONT(REMOVE(q2)) = k
assert IS_EMPTY?(REMOVE(REMOVE(q2))) = true
"""

SYMBOLTABLE_PROGRAM = """
input id: Identifier
input a: Attributelist
input b: Attributelist

let global   := ADD(INIT, id, a)
let inner    := ADD(ENTERBLOCK(global), id, b)
let restored := LEAVEBLOCK(inner)

assert RETRIEVE(global, id) = a
assert RETRIEVE(inner, id) = b
assert RETRIEVE(restored, id) = a
assert IS_INBLOCK?(ENTERBLOCK(global), id) = false
assert IS_INBLOCK?(inner, id) = true
"""

BROKEN_PROGRAM = """
input i: Item
input j: Item

let q := ADD(ADD(NEW, i), j)

assert FRONT(q) = j
"""


def main() -> None:
    print(banner("Queue theorems (FIFO, straight from axioms 1-6)"))
    program = parse_client_program(QUEUE_PROGRAM, QUEUE_SPEC)
    print(program)
    print()
    print(verify_client(program))

    print(banner("Symbol-table theorems (shadowing and scope exit)"))
    program = parse_client_program(SYMBOLTABLE_PROGRAM, SYMBOLTABLE_SPEC)
    print(verify_client(program))

    print(banner("A wrong claim is refused"))
    program = parse_client_program(BROKEN_PROGRAM, QUEUE_SPEC)
    report = verify_client(program)
    print(report)
    assertion, result = report.outcomes[0]
    print()
    print("the prover's residual shows why:")
    print(f"  {result.residual[0]} = {result.residual[1]}")


if __name__ == "__main__":
    main()
