#!/usr/bin/env python3
"""Debugging an incomplete specification with the prompting system.

Section 3: boundary conditions such as REMOVE(NEW) are "particularly
likely to be overlooked"; the paper proposes heuristics and a system
that "would begin to prompt the user to supply the additional
information".  This example writes a deliberately buggy draft of a
text-editor buffer type, lets the checker find the holes (and one
inconsistency), and repairs it interactively.

Run:  python examples/spec_debugging.py
"""

from repro import (
    check_consistency,
    check_sufficient_completeness,
    parse_specification,
)
from repro.algebra.terms import Err
from repro.analysis import (
    CompletionSession,
    Prompt,
    prompts_for,
    scaffold,
)
from repro.report import banner
from repro.spec.axioms import Axiom

# A cursor-less editor buffer: insert characters, backspace, inspect.
# Three things are wrong with the draft:
#   * BACKSPACE(EMPTY_BUF) is missing      (the classic boundary slip)
#   * LAST(EMPTY_BUF) is missing
#   * the author wrote two contradictory axioms for IS_BLANK? of INSERT
DRAFT = """
type Buffer
uses Boolean, Identifier

operations
  EMPTY_BUF: -> Buffer
  INSERT:    Buffer x Identifier -> Buffer
  BACKSPACE: Buffer -> Buffer
  LAST:      Buffer -> Identifier
  IS_BLANK?: Buffer -> Boolean

vars
  b: Buffer
  c: Identifier

axioms
  (1) IS_BLANK?(EMPTY_BUF) = true
  (2) IS_BLANK?(INSERT(b, c)) = false
  (3) LAST(INSERT(b, c)) = c
  (4) BACKSPACE(INSERT(b, c)) = b
"""

CONTRADICTORY = DRAFT + "  (5) IS_BLANK?(INSERT(b, c)) = true\n"


def main() -> None:
    print(banner("The case grid a complete axiom set must cover"))
    spec = parse_specification(DRAFT)
    for operation, patterns in scaffold(spec).items():
        covered = {str(a.lhs) for a in spec.axioms}
        for pattern in patterns:
            status = "ok" if _covered(spec, pattern) else "MISSING"
            print(f"  {str(pattern):38s} {status}")

    print(banner("What the checker reports"))
    report = check_sufficient_completeness(spec)
    print(report)

    print(banner("The prompts (boundary conditions first)"))
    for prompt in prompts_for(spec):
        print(f"  {prompt}")
        print(f"    suggestion: {prompt.suggestion}")

    print(banner("An interactive repair session"))

    def user(prompt: Prompt):
        """Plays the user: boundary cases are errors here."""
        answer = Axiom(prompt.pattern, Err(prompt.pattern.sort), "fix")
        print(f"  system: {prompt}")
        print(f"  user:   {prompt.pattern} = error")
        return answer

    session = CompletionSession(spec, user)
    repaired = session.run()
    final = check_sufficient_completeness(repaired)
    print(f"after {session.rounds} round(s): sufficiently complete = "
          f"{final.sufficiently_complete}")

    print(banner("Consistency: the contradictory draft"))
    broken = parse_specification(CONTRADICTORY)
    verdict = check_consistency(broken)
    print(verdict)


def _covered(spec, pattern) -> bool:
    from repro.algebra.matching import match

    return any(match(a.lhs, pattern) is not None for a in spec.axioms)


if __name__ == "__main__":
    main()
