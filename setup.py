"""Setup shim: lets `python setup.py develop` work in offline
environments that lack the `wheel` package (pip's editable-install path
requires bdist_wheel; this one does not)."""

from setuptools import setup

setup()
