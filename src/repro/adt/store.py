"""Type Store — a transactional key-value store, specified algebraically.

Section 5: "Many complex systems can be viewed as instances of an
abstract type.  A database management system, for example, might be
completely characterized by an algebraic specification of the various
operations available to users."  This module takes the paper at its
word: a miniature database — reads, writes, and nested transactions with
commit/rollback — characterised entirely by eleven equations.

The interesting constructor is ``BEGIN_TX``: it is a *third* generator
alongside ``EMPTY_STORE`` and ``PUT``, and the transaction operations
are defined by how they act on each:

* ``ROLLBACK`` erases everything back to the matching ``BEGIN_TX``;
* ``COMMIT`` keeps the writes but erases the mark, by *migrating* each
  ``PUT`` past it (axiom T10's recursion).
"""

from __future__ import annotations

from typing import Optional

from repro.algebra.signature import Operation
from repro.algebra.sorts import Sort
from repro.algebra.terms import Term, app
from repro.spec.errors import AlgebraError
from repro.spec.parser import parse_specification
from repro.spec.prelude import attributes, identifier
from repro.spec.specification import Specification

STORE_SPEC_TEXT = """
type Store
uses Boolean, Identifier, Attributelist

operations
  EMPTY_STORE: -> Store
  PUT:         Store x Identifier x Attributelist -> Store
  GET:         Store x Identifier -> Attributelist
  HAS?:        Store x Identifier -> Boolean
  BEGIN_TX:    Store -> Store
  COMMIT:      Store -> Store
  ROLLBACK:    Store -> Store

vars
  s:       Store
  id, idl: Identifier
  v:       Attributelist

axioms
  (T1)  HAS?(EMPTY_STORE, id) = false
  (T2)  HAS?(PUT(s, id, v), idl) = if ISSAME?(id, idl) then true
                                   else HAS?(s, idl)
  (T3)  HAS?(BEGIN_TX(s), id) = HAS?(s, id)
  (T4)  GET(EMPTY_STORE, id) = error
  (T5)  GET(PUT(s, id, v), idl) = if ISSAME?(id, idl) then v
                                  else GET(s, idl)
  (T6)  GET(BEGIN_TX(s), id) = GET(s, id)
  (T7)  ROLLBACK(EMPTY_STORE) = error
  (T8)  ROLLBACK(PUT(s, id, v)) = ROLLBACK(s)
  (T9)  ROLLBACK(BEGIN_TX(s)) = s
  (T10) COMMIT(EMPTY_STORE) = error
  (T11) COMMIT(PUT(s, id, v)) = PUT(COMMIT(s), id, v)
  (T12) COMMIT(BEGIN_TX(s)) = s
"""

STORE_SPEC: Specification = parse_specification(STORE_SPEC_TEXT)

STORE: Sort = STORE_SPEC.type_of_interest
EMPTY_STORE: Operation = STORE_SPEC.operation("EMPTY_STORE")
PUT: Operation = STORE_SPEC.operation("PUT")
GET: Operation = STORE_SPEC.operation("GET")
HAS: Operation = STORE_SPEC.operation("HAS?")
BEGIN_TX: Operation = STORE_SPEC.operation("BEGIN_TX")
COMMIT: Operation = STORE_SPEC.operation("COMMIT")
ROLLBACK: Operation = STORE_SPEC.operation("ROLLBACK")


class LayeredStore:
    """A concrete implementation: a stack of write layers.

    The base layer holds committed state; every open transaction adds a
    layer.  Reads search top-down; ``commit`` folds the top layer into
    its parent; ``rollback`` drops it.  Persistent, like everything in
    this library.
    """

    __slots__ = ("_layers",)

    def __init__(
        self, layers: Optional[tuple[dict, ...]] = None
    ) -> None:
        self._layers: tuple[dict, ...] = layers if layers is not None else ({},)

    # -- the abstract operations -----------------------------------------
    @staticmethod
    def empty() -> "LayeredStore":
        return LayeredStore()

    def put(self, key: str, value: object) -> "LayeredStore":
        top = dict(self._layers[-1])
        top[key] = value
        return LayeredStore(self._layers[:-1] + (top,))

    def get(self, key: str) -> object:
        for layer in reversed(self._layers):
            if key in layer:
                return layer[key]
        raise AlgebraError(f"GET: {key!r} unbound")

    def has(self, key: str) -> bool:
        return any(key in layer for layer in self._layers)

    def begin_tx(self) -> "LayeredStore":
        return LayeredStore(self._layers + ({},))

    def commit(self) -> "LayeredStore":
        if len(self._layers) < 2:
            raise AlgebraError("COMMIT without an open transaction")
        merged = dict(self._layers[-2])
        merged.update(self._layers[-1])
        return LayeredStore(self._layers[:-2] + (merged,))

    def rollback(self) -> "LayeredStore":
        if len(self._layers) < 2:
            raise AlgebraError("ROLLBACK without an open transaction")
        return LayeredStore(self._layers[:-1])

    # -- conveniences ------------------------------------------------------
    @property
    def open_transactions(self) -> int:
        return len(self._layers) - 1

    def visible(self) -> dict:
        """The bindings a GET can currently see."""
        merged: dict = {}
        for layer in self._layers:
            merged.update(layer)
        return merged

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, LayeredStore):
            return NotImplemented
        return self._layers == other._layers

    def __hash__(self) -> int:
        return hash(
            tuple(frozenset(layer.items()) for layer in self._layers)
        )

    def __repr__(self) -> str:
        return f"LayeredStore(layers={[dict(l) for l in self._layers]!r})"


def phi_store(store: LayeredStore) -> Term:
    """The abstraction function Φ for :class:`LayeredStore`.

    The base layer's bindings become PUTs over EMPTY_STORE (sorted for
    canonicity); each open transaction contributes a BEGIN_TX followed
    by its layer's PUTs.
    """
    term: Term = app(EMPTY_STORE)
    for index, layer in enumerate(store._layers):
        if index:
            term = app(BEGIN_TX, term)
        for key in sorted(layer):
            term = app(PUT, term, identifier(key), attributes(layer[key]))
    return term


def store_binding():
    """Implementation binding for the axiom oracle."""
    from repro.testing.oracle import ImplementationBinding

    return ImplementationBinding(
        STORE_SPEC,
        {
            "EMPTY_STORE": LayeredStore.empty,
            "PUT": lambda s, k, v: s.put(k, v),
            "GET": lambda s, k: s.get(k),
            "HAS?": lambda s, k: s.has(k),
            "BEGIN_TX": lambda s: s.begin_tx(),
            "COMMIT": lambda s: s.commit(),
            "ROLLBACK": lambda s: s.rollback(),
        },
    )
