"""Further library types specified algebraically.

The paper argues the technique generalises ("many complex systems can
be viewed as instances of an abstract type"); this module exercises that
claim with the classic companions to Queue and Stack — Set, Bag, List
and Map — each with a specification and a reference Python model.  They
also widen the test surface for the analysis and rewriting engines
(e.g. Set's INSERT is *not* a free constructor pattern for CARD — the
specification is written observer-style instead).
"""

from __future__ import annotations

from typing import Iterable, Iterator

from repro.algebra.signature import Operation
from repro.algebra.sorts import Sort
from repro.algebra.terms import Term, app
from repro.spec.parser import parse_specification
from repro.spec.prelude import item
from repro.spec.specification import Specification

# ----------------------------------------------------------------------
# Set of Items
# ----------------------------------------------------------------------
SET_SPEC_TEXT = """
type Set [Item]
uses Boolean, Item

operations
  EMPTY_SET: -> Set
  INSERT:    Set x Item -> Set
  DELETE:    Set x Item -> Set
  HAS?:      Set x Item -> Boolean

vars
  s:    Set
  i, j: Item

axioms
  (S1) HAS?(EMPTY_SET, i) = false
  (S2) HAS?(INSERT(s, i), j) = if SAME_ITEM?(i, j) then true else HAS?(s, j)
  (S3) DELETE(EMPTY_SET, i) = EMPTY_SET
  (S4) DELETE(INSERT(s, i), j) = if SAME_ITEM?(i, j) then DELETE(s, j)
                                 else INSERT(DELETE(s, j), i)
"""


def _same_item(left: object, right: object) -> bool:
    return left == right


#: Item equality, imported like Identifier's ISSAME?.
SAME_ITEM = Operation(
    "SAME_ITEM?",
    (Sort("Item"), Sort("Item")),
    Sort("Boolean"),
    builtin=_same_item,
)


def _item_with_eq_spec() -> Specification:
    from repro.algebra.signature import Signature
    from repro.algebra.sorts import BOOLEAN
    from repro.spec.prelude import BOOLEAN_SPEC, ITEM

    return Specification(
        "ItemEq",
        Signature([ITEM, BOOLEAN], [SAME_ITEM]),
        ITEM,
        uses=[BOOLEAN_SPEC],
    )


ITEM_EQ_SPEC: Specification = _item_with_eq_spec()

SET_SPEC: Specification = parse_specification(
    SET_SPEC_TEXT, environment={"Item": ITEM_EQ_SPEC}
)


class FrozenSetModel:
    """Reference model for the Set specification."""

    __slots__ = ("_items",)

    def __init__(self, items: Iterable[object] = ()) -> None:
        self._items = frozenset(items)

    @staticmethod
    def empty() -> "FrozenSetModel":
        return FrozenSetModel()

    def insert(self, element: object) -> "FrozenSetModel":
        return FrozenSetModel(self._items | {element})

    def delete(self, element: object) -> "FrozenSetModel":
        return FrozenSetModel(self._items - {element})

    def has(self, element: object) -> bool:
        return element in self._items

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, FrozenSetModel):
            return NotImplemented
        return self._items == other._items

    def __hash__(self) -> int:
        return hash(self._items)

    def __len__(self) -> int:
        return len(self._items)

    def __iter__(self) -> Iterator[object]:
        return iter(self._items)

    def __repr__(self) -> str:
        return f"FrozenSetModel({sorted(map(repr, self._items))})"


# ----------------------------------------------------------------------
# Bag (multiset) of Items
# ----------------------------------------------------------------------
BAG_SPEC_TEXT = """
type Bag [Item]
uses Boolean, Nat, Item

operations
  EMPTY_BAG: -> Bag
  PUT:       Bag x Item -> Bag
  TAKE:      Bag x Item -> Bag
  COUNT:     Bag x Item -> Nat

vars
  b:    Bag
  i, j: Item

axioms
  (G1) COUNT(EMPTY_BAG, i) = zero
  (G2) COUNT(PUT(b, i), j) = if SAME_ITEM?(i, j) then succ(COUNT(b, j))
                             else COUNT(b, j)
  (G3) TAKE(EMPTY_BAG, i) = EMPTY_BAG
  (G4) TAKE(PUT(b, i), j) = if SAME_ITEM?(i, j) then b
                            else PUT(TAKE(b, j), i)
"""

BAG_SPEC: Specification = parse_specification(
    BAG_SPEC_TEXT, environment={"Item": ITEM_EQ_SPEC}
)


class TupleBag:
    """Reference model for the Bag specification."""

    __slots__ = ("_items",)

    def __init__(self, items: Iterable[object] = ()) -> None:
        self._items = tuple(items)

    @staticmethod
    def empty() -> "TupleBag":
        return TupleBag()

    def put(self, element: object) -> "TupleBag":
        return TupleBag(self._items + (element,))

    def take(self, element: object) -> "TupleBag":
        items = list(self._items)
        # Remove the most recently PUT occurrence, matching axiom G4's
        # outermost-first recursion.
        for index in range(len(items) - 1, -1, -1):
            if items[index] == element:
                del items[index]
                return TupleBag(items)
        return TupleBag(items)

    def count(self, element: object) -> int:
        return sum(1 for current in self._items if current == element)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, TupleBag):
            return NotImplemented
        return sorted(map(repr, self._items)) == sorted(map(repr, other._items))

    def __hash__(self) -> int:
        return hash(tuple(sorted(map(repr, self._items))))

    def __repr__(self) -> str:
        return f"TupleBag({list(self._items)!r})"


# ----------------------------------------------------------------------
# List of Items (cons lists with append)
# ----------------------------------------------------------------------
LIST_SPEC_TEXT = """
type List [Item]
uses Boolean, Nat, Item

operations
  NIL:     -> List
  CONS:    Item x List -> List
  HEAD:    List -> Item
  TAIL:    List -> List
  LENGTH:  List -> Nat
  APPEND_L: List x List -> List
  IS_NIL?: List -> Boolean
  LAST:    List -> Item
  BUTLAST: List -> List

vars
  l, m: List
  i:    Item

axioms
  (L1) IS_NIL?(NIL) = true
  (L2) IS_NIL?(CONS(i, l)) = false
  (L3) HEAD(NIL) = error
  (L4) HEAD(CONS(i, l)) = i
  (L5) TAIL(NIL) = error
  (L6) TAIL(CONS(i, l)) = l
  (L7) LENGTH(NIL) = zero
  (L8) LENGTH(CONS(i, l)) = succ(LENGTH(l))
  (L9) APPEND_L(NIL, m) = m
  (L10) APPEND_L(CONS(i, l), m) = CONS(i, APPEND_L(l, m))
  (L11) LAST(NIL) = error
  (L12) LAST(CONS(i, l)) = if IS_NIL?(l) then i else LAST(l)
  (L13) BUTLAST(NIL) = error
  (L14) BUTLAST(CONS(i, l)) = if IS_NIL?(l) then NIL
                              else CONS(i, BUTLAST(l))
"""

LIST_SPEC: Specification = parse_specification(LIST_SPEC_TEXT)

LIST: Sort = LIST_SPEC.type_of_interest
NIL: Operation = LIST_SPEC.operation("NIL")
CONS: Operation = LIST_SPEC.operation("CONS")


def list_term(values: Iterable[object]) -> Term:
    term: Term = app(NIL)
    for value in reversed(list(values)):
        term = app(CONS, item(value), term)
    return term


# ----------------------------------------------------------------------
# Map from Identifiers to Attributelists (the Array spec, renamed — kept
# as a distinct schema to exercise multi-level `uses` in tests)
# ----------------------------------------------------------------------
MAP_SPEC_TEXT = """
type Map
uses Boolean, Identifier, Attributelist

operations
  EMPTY_MAP: -> Map
  BIND:      Map x Identifier x Attributelist -> Map
  LOOKUP:    Map x Identifier -> Attributelist
  BOUND?:    Map x Identifier -> Boolean

vars
  m:       Map
  id, idl: Identifier
  attrs:   Attributelist

axioms
  (M1) BOUND?(EMPTY_MAP, id) = false
  (M2) BOUND?(BIND(m, id, attrs), idl) = if ISSAME?(id, idl) then true
                                         else BOUND?(m, idl)
  (M3) LOOKUP(EMPTY_MAP, id) = error
  (M4) LOOKUP(BIND(m, id, attrs), idl) = if ISSAME?(id, idl) then attrs
                                         else LOOKUP(m, idl)
"""

MAP_SPEC: Specification = parse_specification(MAP_SPEC_TEXT)
