"""The adapted representation for the knows-list Symboltable.

Section 4 closes: "The changes necessary to adapt the previously
presented implementation of abstract type Symboltable would be more
substantial.  The kind of changes necessary can, however, be inferred
from the changes made to the axiomatization."  This module carries that
inference out and *verifies* it:

* the representation element changes from an Array to a **pair**
  (Array, Knowlist) — each scope now remembers what it knows;
* ``ENTERBLOCK'`` takes the knows list and pushes ``(EMPTY, klist)``;
* ``RETRIEVE'`` consults the pair's knows list before recursing into the
  outer scopes — the only behavioural change, mirroring axiom 8k;
* Φ gains a Knowlist argument in its ENTERBLOCK image.

Exactly as with the original, the obligations touching ``ADD'`` need
Assumption 1 (or generator induction); the rest discharge outright.
"""

from __future__ import annotations

from repro.algebra.signature import Operation, Signature
from repro.algebra.sorts import BOOLEAN, Sort
from repro.algebra.terms import Err, Ite, Var, app
from repro.spec.axioms import Axiom
from repro.spec.prelude import (
    ATTRIBUTELIST,
    IDENTIFIER,
    NOT,
)
from repro.spec.specification import Specification
from repro.adt.array import ARRAY, ARRAY_SPEC, ASSIGN, EMPTY, IS_UNDEFINED, READ
from repro.adt.knowlist import IS_IN, KNOWLIST, KNOWLIST_SPEC, SYMBOLTABLE_KNOWS_SPEC
from repro.adt.pairs import make_pair_spec
from repro.adt.stack import ELEM, STACK_SPEC

# ----------------------------------------------------------------------
# The representation element: a (Array, Knowlist) pair per scope
# ----------------------------------------------------------------------
SCOPE_PAIR_SPEC: Specification = make_pair_spec(
    ARRAY,
    KNOWLIST,
    name="Scope",
    uses=(ARRAY_SPEC, KNOWLIST_SPEC),
)

SCOPE: Sort = SCOPE_PAIR_SPEC.type_of_interest
MKPAIR: Operation = SCOPE_PAIR_SPEC.operation("MKPAIR")
FST: Operation = SCOPE_PAIR_SPEC.operation("FST")
SND: Operation = SCOPE_PAIR_SPEC.operation("SND")

#: Stack instantiated at Elem := Scope.
STACK_OF_SCOPES_SPEC: Specification = STACK_SPEC.instantiated(
    "StackOfScopes", {ELEM: SCOPE}
)

SCOPE_STACK: Sort = STACK_OF_SCOPES_SPEC.type_of_interest
NEWSTACK: Operation = STACK_OF_SCOPES_SPEC.operation("NEWSTACK")
PUSH: Operation = STACK_OF_SCOPES_SPEC.operation("PUSH")
POP: Operation = STACK_OF_SCOPES_SPEC.operation("POP")
TOP: Operation = STACK_OF_SCOPES_SPEC.operation("TOP")
IS_NEWSTACK: Operation = STACK_OF_SCOPES_SPEC.operation("IS_NEWSTACK?")
REPLACE: Operation = STACK_OF_SCOPES_SPEC.operation("REPLACE")

CREATE: Operation = KNOWLIST_SPEC.operation("CREATE")


def _build_representation():
    from repro.verify.representation import DefinedOperation, Representation

    stk = Var("stk", SCOPE_STACK)
    ident = Var("id", IDENTIFIER)
    attrs = Var("attrs", ATTRIBUTELIST)
    klist = Var("klist", KNOWLIST)

    toi = SYMBOLTABLE_KNOWS_SPEC.type_of_interest

    init_p = Operation("INIT'", (), SCOPE_STACK)
    enterblock_p = Operation(
        "ENTERBLOCK'", (SCOPE_STACK, KNOWLIST), SCOPE_STACK
    )
    leaveblock_p = Operation("LEAVEBLOCK'", (SCOPE_STACK,), SCOPE_STACK)
    add_p = Operation(
        "ADD'", (SCOPE_STACK, IDENTIFIER, ATTRIBUTELIST), SCOPE_STACK
    )
    is_inblock_p = Operation(
        "IS_INBLOCK?'", (SCOPE_STACK, IDENTIFIER), BOOLEAN
    )
    retrieve_p = Operation(
        "RETRIEVE'", (SCOPE_STACK, IDENTIFIER), ATTRIBUTELIST
    )

    top_array = app(FST, app(TOP, stk))
    top_knows = app(SND, app(TOP, stk))

    defined = [
        # INIT' :: PUSH(NEWSTACK, MKPAIR(EMPTY, CREATE))
        DefinedOperation(
            init_p,
            (),
            app(PUSH, app(NEWSTACK), app(MKPAIR, app(EMPTY), app(CREATE))),
        ),
        # ENTERBLOCK'(stk, klist) :: PUSH(stk, MKPAIR(EMPTY, klist))
        DefinedOperation(
            enterblock_p,
            (stk, klist),
            app(PUSH, stk, app(MKPAIR, app(EMPTY), klist)),
        ),
        # LEAVEBLOCK' unchanged from the original.
        DefinedOperation(
            leaveblock_p,
            (stk,),
            Ite(
                app(IS_NEWSTACK, app(POP, stk)),
                Err(SCOPE_STACK),
                app(POP, stk),
            ),
        ),
        # ADD'(stk, id, attrs) :: REPLACE with the array half updated,
        # the knows half untouched.
        DefinedOperation(
            add_p,
            (stk, ident, attrs),
            app(
                REPLACE,
                stk,
                app(MKPAIR, app(ASSIGN, top_array, ident, attrs), top_knows),
            ),
        ),
        # IS_INBLOCK?' unchanged in spirit: looks only at the top array.
        DefinedOperation(
            is_inblock_p,
            (stk, ident),
            Ite(
                app(IS_NEWSTACK, stk),
                Err(BOOLEAN),
                app(NOT, app(IS_UNDEFINED, top_array, ident)),
            ),
        ),
        # RETRIEVE' — the behavioural change: crossing a block boundary
        # requires the identifier to be in that block's knows list.
        DefinedOperation(
            retrieve_p,
            (stk, ident),
            Ite(
                app(IS_NEWSTACK, stk),
                Err(ATTRIBUTELIST),
                Ite(
                    app(IS_UNDEFINED, top_array, ident),
                    Ite(
                        app(IS_IN, top_knows, ident),
                        app(retrieve_p, app(POP, stk), ident),
                        Err(ATTRIBUTELIST),
                    ),
                    app(READ, top_array, ident),
                ),
            ),
        ),
    ]

    # The abstraction function: as before, but ENTERBLOCK carries the
    # pair's knows half, and INIT's global scope ignores its (CREATE)
    # knows list.
    phi = Operation("Φk", (SCOPE_STACK,), toi)
    arr = Var("arr", ARRAY)
    abstract_enterblock = SYMBOLTABLE_KNOWS_SPEC.operation("ENTERBLOCK")
    abstract_init = SYMBOLTABLE_KNOWS_SPEC.operation("INIT")
    abstract_add = SYMBOLTABLE_KNOWS_SPEC.operation("ADD")
    phi_axioms = [
        Axiom(app(phi, app(NEWSTACK)), Err(toi), "Φk-new"),
        Axiom(
            app(phi, app(PUSH, stk, app(MKPAIR, app(EMPTY), klist))),
            Ite(
                app(IS_NEWSTACK, stk),
                app(abstract_init),
                app(abstract_enterblock, app(phi, stk), klist),
            ),
            "Φk-empty",
        ),
        Axiom(
            app(
                phi,
                app(
                    PUSH,
                    stk,
                    app(MKPAIR, app(ASSIGN, arr, ident, attrs), klist),
                ),
            ),
            app(
                abstract_add,
                app(phi, app(PUSH, stk, app(MKPAIR, arr, klist))),
                ident,
                attrs,
            ),
            "Φk-assign",
        ),
    ]

    concrete = Specification(
        "KnowsSymboltableRep",
        Signature([SCOPE_STACK]),
        SCOPE_STACK,
        uses=[STACK_OF_SCOPES_SPEC, SCOPE_PAIR_SPEC],
    )

    return Representation(
        abstract=SYMBOLTABLE_KNOWS_SPEC,
        concrete=concrete,
        rep_sort=SCOPE_STACK,
        defined=defined,
        phi=phi,
        phi_axioms=phi_axioms,
        generators=("INIT", "ENTERBLOCK", "ADD"),
    )


_REPRESENTATION = None


def knows_symboltable_representation():
    """The (cached) adapted representation for the knows-list variant."""
    global _REPRESENTATION
    if _REPRESENTATION is None:
        _REPRESENTATION = _build_representation()
    return _REPRESENTATION
