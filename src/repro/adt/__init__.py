"""The ADT library: every type from the paper, specified and implemented.

Each module pairs an algebraic specification (the text mirroring the
paper's axioms) with a concrete Python implementation and, where the
paper gives one, an abstraction function Φ.
"""

from repro.adt.queue import ListQueue, QUEUE_SPEC, queue_term
from repro.adt.stack import LinkedStack, STACK_SPEC, phi_stack
from repro.adt.array import ARRAY_SPEC, HashArray, phi_array
from repro.adt.symboltable import (
    SYMBOLTABLE_REP_SPEC,
    SYMBOLTABLE_SPEC,
    STACK_OF_ARRAYS_SPEC,
    SymbolTable,
    phi_symboltable,
    symboltable_representation,
)
from repro.adt.boundedqueue import (
    BOUNDED_QUEUE_SPEC,
    DEFAULT_CAPACITY,
    RingBufferQueue,
    paper_first_segment,
    paper_second_segment,
    phi_ring_buffer,
)
from repro.adt.knowlist import (
    KNOWLIST_SPEC,
    KnowsSymbolTable,
    SYMBOLTABLE_KNOWS_SPEC,
    TupleKnowlist,
    knowlist_term,
)
from repro.adt.store import LayeredStore, STORE_SPEC, phi_store, store_binding
from repro.adt.extras import (
    BAG_SPEC,
    FrozenSetModel,
    LIST_SPEC,
    MAP_SPEC,
    SET_SPEC,
    TupleBag,
    list_term,
)

__all__ = [
    "LayeredStore",
    "STORE_SPEC",
    "phi_store",
    "store_binding",
    "ListQueue",
    "QUEUE_SPEC",
    "queue_term",
    "LinkedStack",
    "STACK_SPEC",
    "phi_stack",
    "ARRAY_SPEC",
    "HashArray",
    "phi_array",
    "SYMBOLTABLE_REP_SPEC",
    "SYMBOLTABLE_SPEC",
    "STACK_OF_ARRAYS_SPEC",
    "SymbolTable",
    "phi_symboltable",
    "symboltable_representation",
    "BOUNDED_QUEUE_SPEC",
    "DEFAULT_CAPACITY",
    "RingBufferQueue",
    "paper_first_segment",
    "paper_second_segment",
    "phi_ring_buffer",
    "KNOWLIST_SPEC",
    "KnowsSymbolTable",
    "SYMBOLTABLE_KNOWS_SPEC",
    "TupleKnowlist",
    "knowlist_term",
    "BAG_SPEC",
    "FrozenSetModel",
    "LIST_SPEC",
    "MAP_SPEC",
    "SET_SPEC",
    "TupleBag",
    "list_term",
]
