"""Type Queue (of Items) — the paper's short example (section 3).

The distinguishing characteristic of a queue is that it is a first in /
first out storage device; axioms 1–6 "assert that and only that
characteristic".  This module gives the algebraic specification (via the
DSL, so the text mirrors the paper), handy term builders, and a direct
Python implementation used as the reference model in tests and
benchmarks.
"""

from __future__ import annotations

from typing import Iterable, Iterator

from repro.algebra.signature import Operation
from repro.algebra.sorts import Sort
from repro.algebra.terms import App, Term, app
from repro.spec.errors import AlgebraError
from repro.spec.parser import parse_specification
from repro.spec.prelude import item
from repro.spec.specification import Specification

QUEUE_SPEC_TEXT = """
type Queue [Item]
uses Boolean, Item

operations
  NEW:       -> Queue
  ADD:       Queue x Item -> Queue
  FRONT:     Queue -> Item
  REMOVE:    Queue -> Queue
  IS_EMPTY?: Queue -> Boolean

vars
  q: Queue
  i: Item

axioms
  (1) IS_EMPTY?(NEW) = true
  (2) IS_EMPTY?(ADD(q, i)) = false
  (3) FRONT(NEW) = error
  (4) FRONT(ADD(q, i)) = if IS_EMPTY?(q) then i else FRONT(q)
  (5) REMOVE(NEW) = error
  (6) REMOVE(ADD(q, i)) = if IS_EMPTY?(q) then NEW else ADD(REMOVE(q), i)
"""

QUEUE_SPEC: Specification = parse_specification(QUEUE_SPEC_TEXT)

QUEUE: Sort = QUEUE_SPEC.type_of_interest
NEW: Operation = QUEUE_SPEC.operation("NEW")
ADD: Operation = QUEUE_SPEC.operation("ADD")
FRONT: Operation = QUEUE_SPEC.operation("FRONT")
REMOVE: Operation = QUEUE_SPEC.operation("REMOVE")
IS_EMPTY: Operation = QUEUE_SPEC.operation("IS_EMPTY?")


def new() -> App:
    return app(NEW)


def add(queue: Term, element: Term) -> App:
    return app(ADD, queue, element)


def queue_term(values: Iterable[object]) -> Term:
    """The constructor term for a queue holding ``values``, oldest first."""
    term: Term = new()
    for value in values:
        term = add(term, item(value))
    return term


class ListQueue:
    """The obvious Python model of the Queue type.

    Immutable (operations return new queues), so it is a direct model of
    the algebra: each operation is a function from values to values.
    Errors surface as :class:`~repro.spec.errors.AlgebraError`, the
    Python carrier of the paper's ``error``.
    """

    __slots__ = ("_items",)

    def __init__(self, items: Iterable[object] = ()) -> None:
        self._items: tuple[object, ...] = tuple(items)

    # -- the abstract operations -----------------------------------------
    @staticmethod
    def new() -> "ListQueue":
        return ListQueue()

    def add(self, element: object) -> "ListQueue":
        return ListQueue(self._items + (element,))

    def front(self) -> object:
        if not self._items:
            raise AlgebraError("FRONT(NEW)")
        return self._items[0]

    def remove(self) -> "ListQueue":
        if not self._items:
            raise AlgebraError("REMOVE(NEW)")
        return ListQueue(self._items[1:])

    def is_empty(self) -> bool:
        return not self._items

    # -- conveniences ------------------------------------------------------
    def __iter__(self) -> Iterator[object]:
        return iter(self._items)

    def __len__(self) -> int:
        return len(self._items)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ListQueue):
            return NotImplemented
        return self._items == other._items

    def __hash__(self) -> int:
        return hash(self._items)

    def __repr__(self) -> str:
        return f"ListQueue({list(self._items)!r})"
