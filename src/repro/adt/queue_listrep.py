"""A second verified representation: Queue over cons-lists.

The paper presents one representation proof (Symboltable over Stack of
Arrays); the machinery is general, and this module demonstrates it on
the section-3 Queue.  The representation stores the queue *newest
first*: ``ADD'`` conses at the head, ``FRONT'``/``REMOVE'`` work at the
far end (``LAST``/``BUTLAST``).  The abstraction function is then a
clean constructor-pattern definition::

    Φ(NIL)        = NEW
    Φ(CONS(i, l)) = ADD(Φ(l), i)

Unlike the symbol table, *every* obligation here discharges in
unconditional mode — there are no unreachable representation states and
no environment assumptions, which makes this a useful contrast case in
the benchmarks (E4's ablation) and a worked example of a representation
that is correct outright rather than conditionally.
"""

from __future__ import annotations

from repro.algebra.signature import Operation
from repro.algebra.sorts import BOOLEAN, Sort
from repro.algebra.terms import Var, app
from repro.spec.axioms import Axiom
from repro.spec.prelude import ITEM
from repro.adt.extras import LIST_SPEC
from repro.adt.queue import ADD, NEW, QUEUE_SPEC

LIST: Sort = LIST_SPEC.type_of_interest

NIL: Operation = LIST_SPEC.operation("NIL")
CONS: Operation = LIST_SPEC.operation("CONS")
IS_NIL: Operation = LIST_SPEC.operation("IS_NIL?")
LAST: Operation = LIST_SPEC.operation("LAST")
BUTLAST: Operation = LIST_SPEC.operation("BUTLAST")


def _build_representation():
    from repro.verify.representation import DefinedOperation, Representation

    lst = Var("l", LIST)
    element = Var("i", ITEM)

    new_p = Operation("NEW'", (), LIST)
    add_p = Operation("ADD'", (LIST, ITEM), LIST)
    front_p = Operation("FRONT'", (LIST,), ITEM)
    remove_p = Operation("REMOVE'", (LIST,), LIST)
    is_empty_p = Operation("IS_EMPTY?'", (LIST,), BOOLEAN)

    defined = [
        # NEW' :: NIL
        DefinedOperation(new_p, (), app(NIL)),
        # ADD'(l, i) :: CONS(i, l)     (newest at the head)
        DefinedOperation(add_p, (lst, element), app(CONS, element, lst)),
        # FRONT'(l) :: LAST(l)         (oldest at the far end)
        DefinedOperation(front_p, (lst,), app(LAST, lst)),
        # REMOVE'(l) :: BUTLAST(l)
        DefinedOperation(remove_p, (lst,), app(BUTLAST, lst)),
        # IS_EMPTY?'(l) :: IS_NIL?(l)
        DefinedOperation(is_empty_p, (lst,), app(IS_NIL, lst)),
    ]

    phi = Operation("Φq", (LIST,), QUEUE_SPEC.type_of_interest)
    phi_axioms = [
        Axiom(app(phi, app(NIL)), app(NEW), "Φq-nil"),
        Axiom(
            app(phi, app(CONS, element, lst)),
            app(ADD, app(phi, lst), element),
            "Φq-cons",
        ),
    ]

    return Representation(
        abstract=QUEUE_SPEC,
        concrete=LIST_SPEC,
        rep_sort=LIST,
        defined=defined,
        phi=phi,
        phi_axioms=phi_axioms,
        generators=("NEW", "ADD"),
    )


_REPRESENTATION = None


def queue_list_representation():
    """The (cached) cons-list representation of Queue."""
    global _REPRESENTATION
    if _REPRESENTATION is None:
        _REPRESENTATION = _build_representation()
    return _REPRESENTATION
