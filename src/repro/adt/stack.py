"""Type Stack (of Arrays) — axioms 10–16 of the paper.

The stack is the first half of the Symboltable representation.  Besides
the algebraic specification, this module contains the paper's concrete
implementation scheme translated from PL/I to Python: a stack is a
pointer to a list of cells ``{val: Array, prev: pointer}`` with
``NEWSTACK' :: null``, plus the abstraction function Φ mapping a chain
of cells back to a constructor term
(``Φ(null) = NEWSTACK``; ``Φ(p) = PUSH(Φ(p->prev), p->val)``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Generic, Iterator, Optional, TypeVar

from repro.algebra.signature import Operation
from repro.algebra.sorts import Sort
from repro.algebra.terms import Term, app
from repro.spec.errors import AlgebraError
from repro.spec.parser import parse_specification
from repro.spec.specification import Specification

STACK_SPEC_TEXT = """
type Stack [Elem]
uses Boolean

operations
  NEWSTACK:     -> Stack
  PUSH:         Stack x Elem -> Stack
  POP:          Stack -> Stack
  TOP:          Stack -> Elem
  IS_NEWSTACK?: Stack -> Boolean
  REPLACE:      Stack x Elem -> Stack

vars
  stk: Stack
  e:   Elem

axioms
  (10) IS_NEWSTACK?(NEWSTACK) = true
  (11) IS_NEWSTACK?(PUSH(stk, e)) = false
  (12) POP(NEWSTACK) = error
  (13) POP(PUSH(stk, e)) = stk
  (14) TOP(NEWSTACK) = error
  (15) TOP(PUSH(stk, e)) = e
  (16) REPLACE(stk, e) = if IS_NEWSTACK?(stk) then error
                         else PUSH(POP(stk), e)
"""

#: The stack-of-Elem schema.  The paper instantiates Elem to Array; the
#: schema form also backs the generic examples and tests.
STACK_SPEC: Specification = parse_specification(STACK_SPEC_TEXT)

STACK: Sort = STACK_SPEC.type_of_interest
ELEM: Sort = Sort("Elem")
NEWSTACK: Operation = STACK_SPEC.operation("NEWSTACK")
PUSH: Operation = STACK_SPEC.operation("PUSH")
POP: Operation = STACK_SPEC.operation("POP")
TOP: Operation = STACK_SPEC.operation("TOP")
IS_NEWSTACK: Operation = STACK_SPEC.operation("IS_NEWSTACK?")
REPLACE: Operation = STACK_SPEC.operation("REPLACE")

T = TypeVar("T")


@dataclass(frozen=True)
class _Cell(Generic[T]):
    """One allocated ``stack_elem`` structure: ``val`` + ``prev``."""

    val: T
    prev: Optional["_Cell[T]"]


class LinkedStack(Generic[T]):
    """The paper's pointer-chain stack, in Python.

    ``None`` plays the role of PL/I's ``null``; a :class:`_Cell` is one
    ``allocate``d structure.  All operations are persistent: ``PUSH``
    allocates, ``POP`` returns the tail, ``REPLACE`` (the paper mutates
    in place) is modelled functionally so the type stays a clean algebra.
    """

    __slots__ = ("_head",)

    def __init__(self, head: Optional[_Cell[T]] = None) -> None:
        self._head = head

    # -- the abstract operations -----------------------------------------
    @staticmethod
    def newstack() -> "LinkedStack[T]":
        return LinkedStack()

    def push(self, element: T) -> "LinkedStack[T]":
        return LinkedStack(_Cell(element, self._head))

    def pop(self) -> "LinkedStack[T]":
        if self._head is None:
            raise AlgebraError("POP(NEWSTACK)")
        return LinkedStack(self._head.prev)

    def top(self) -> T:
        if self._head is None:
            raise AlgebraError("TOP(NEWSTACK)")
        return self._head.val

    def is_newstack(self) -> bool:
        return self._head is None

    def replace(self, element: T) -> "LinkedStack[T]":
        if self._head is None:
            raise AlgebraError("REPLACE on NEWSTACK")
        return LinkedStack(_Cell(element, self._head.prev))

    # -- conveniences ------------------------------------------------------
    def __iter__(self) -> Iterator[T]:
        """Elements top-first."""
        cell = self._head
        while cell is not None:
            yield cell.val
            cell = cell.prev

    def __len__(self) -> int:
        return sum(1 for _ in self)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, LinkedStack):
            return NotImplemented
        return list(self) == list(other)

    def __hash__(self) -> int:
        return hash(tuple(self))

    def __repr__(self) -> str:
        return f"LinkedStack(top-first {list(self)!r})"


def phi_stack(stack: LinkedStack[Term]) -> Term:
    """The abstraction function Φ for :class:`LinkedStack`.

    Maps a concrete stack whose elements are already abstract terms to
    the Stack constructor term it represents::

        Φ(null)  = NEWSTACK
        Φ(cell)  = PUSH(Φ(cell.prev), cell.val)
    """
    elements = list(stack)  # top first
    term: Term = app(NEWSTACK)
    for element in reversed(elements):
        term = app(PUSH, term, element)
    return term
