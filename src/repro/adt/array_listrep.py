"""A third verified representation: Array over a list of pairs.

The paper implements type Array directly in PL/I (the hash table).  An
intermediate formal level is instructive — and was standard practice in
the algebraic-specification school: represent the Array as a *list of
(Identifier, Attributelist) pairs*, newest binding first, so axioms 18
and 20's outermost-first recursion becomes list traversal.

The level is assembled from existing machinery: the product sort comes
from :func:`repro.adt.pairs.make_pair_spec`; the constructors from a
small BindingList spec; the recursive observers ``READ'`` and
``IS_UNDEFINED?'`` are :class:`~repro.verify.representation.\
CaseDefinedOperation`\\ s — one equation per list constructor, the same
definitional shape as specification axioms.

Like Queue-over-lists, every obligation discharges **unconditionally**:
every association list is a legal Array state.
"""

from __future__ import annotations

from repro.algebra.signature import Operation, Signature
from repro.algebra.sorts import BOOLEAN, Sort
from repro.algebra.terms import Err, Ite, Var, app
from repro.spec.axioms import Axiom
from repro.spec.parser import parse_specification
from repro.spec.prelude import (
    ATTRIBUTELIST,
    ATTRIBUTELIST_SPEC,
    IDENTIFIER,
    IDENTIFIER_SPEC,
    ISSAME,
    false_term,
    true_term,
)
from repro.spec.specification import Specification
from repro.adt.array import ARRAY_SPEC, ASSIGN, EMPTY
from repro.adt.pairs import make_pair_spec

# ----------------------------------------------------------------------
# The representation level: List of (Identifier x Attributelist) pairs
# ----------------------------------------------------------------------
BINDING_PAIR_SPEC: Specification = make_pair_spec(
    IDENTIFIER,
    ATTRIBUTELIST,
    name="Binding",
    uses=(IDENTIFIER_SPEC, ATTRIBUTELIST_SPEC),
)

BINDING: Sort = BINDING_PAIR_SPEC.type_of_interest
MKPAIR: Operation = BINDING_PAIR_SPEC.operation("MKPAIR")

BINDING_LIST_SPEC_TEXT = """
type BindingList
uses Boolean, Binding

operations
  BNIL:     -> BindingList
  BCONS:    Binding x BindingList -> BindingList
  BIS_NIL?: BindingList -> Boolean

vars
  p: Binding
  l: BindingList

axioms
  (BL1) BIS_NIL?(BNIL) = true
  (BL2) BIS_NIL?(BCONS(p, l)) = false
"""

BINDING_LIST_SPEC: Specification = parse_specification(
    BINDING_LIST_SPEC_TEXT, environment={"Binding": BINDING_PAIR_SPEC}
)

BINDING_LIST: Sort = BINDING_LIST_SPEC.type_of_interest
BNIL: Operation = BINDING_LIST_SPEC.operation("BNIL")
BCONS: Operation = BINDING_LIST_SPEC.operation("BCONS")


def _build_representation():
    from repro.verify.representation import (
        CaseDefinedOperation,
        DefinedOperation,
        Representation,
    )

    lst = Var("l", BINDING_LIST)
    ident = Var("id", IDENTIFIER)
    idp = Var("idp", IDENTIFIER)
    attrs = Var("attrs", ATTRIBUTELIST)
    vp = Var("vp", ATTRIBUTELIST)

    empty_p = Operation("EMPTY'", (), BINDING_LIST)
    assign_p = Operation(
        "ASSIGN'", (BINDING_LIST, IDENTIFIER, ATTRIBUTELIST), BINDING_LIST
    )
    read_p = Operation("READ'", (BINDING_LIST, IDENTIFIER), ATTRIBUTELIST)
    is_undef_p = Operation(
        "IS_UNDEFINED?'", (BINDING_LIST, IDENTIFIER), BOOLEAN
    )

    cons_pattern = app(BCONS, app(MKPAIR, idp, vp), lst)

    defined = [
        # EMPTY' :: BNIL
        DefinedOperation(empty_p, (), app(BNIL)),
        # ASSIGN'(l, id, attrs) :: BCONS(MKPAIR(id, attrs), l)
        DefinedOperation(
            assign_p,
            (lst, ident, attrs),
            app(BCONS, app(MKPAIR, ident, attrs), lst),
        ),
        # READ' by cases over the list constructors.
        CaseDefinedOperation(
            read_p,
            (
                Axiom(app(read_p, app(BNIL), ident), Err(ATTRIBUTELIST), "R0"),
                Axiom(
                    app(read_p, cons_pattern, ident),
                    Ite(app(ISSAME, idp, ident), vp, app(read_p, lst, ident)),
                    "R1",
                ),
            ),
        ),
        # IS_UNDEFINED?' by cases over the list constructors.
        CaseDefinedOperation(
            is_undef_p,
            (
                Axiom(app(is_undef_p, app(BNIL), ident), true_term(), "U0"),
                Axiom(
                    app(is_undef_p, cons_pattern, ident),
                    Ite(
                        app(ISSAME, idp, ident),
                        false_term(),
                        app(is_undef_p, lst, ident),
                    ),
                    "U1",
                ),
            ),
        ),
    ]

    phi = Operation("Φa", (BINDING_LIST,), ARRAY_SPEC.type_of_interest)
    phi_axioms = [
        Axiom(app(phi, app(BNIL)), app(EMPTY), "Φa-nil"),
        Axiom(
            app(phi, cons_pattern),
            app(ASSIGN, app(phi, lst), idp, vp),
            "Φa-cons",
        ),
    ]

    concrete = Specification(
        "ArrayRep",
        Signature([BINDING_LIST]),
        BINDING_LIST,
        uses=[BINDING_LIST_SPEC],
    )

    return Representation(
        abstract=ARRAY_SPEC,
        concrete=concrete,
        rep_sort=BINDING_LIST,
        defined=defined,
        phi=phi,
        phi_axioms=phi_axioms,
        generators=("EMPTY", "ASSIGN"),
    )


_REPRESENTATION = None


def array_list_representation():
    """The (cached) list-of-pairs representation of Array."""
    global _REPRESENTATION
    if _REPRESENTATION is None:
        _REPRESENTATION = _build_representation()
    return _REPRESENTATION
