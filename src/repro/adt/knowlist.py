"""Type Knowlist and the knows-list Symboltable variant (section 4).

The paper's adaptability exercise: the compiled language changes so a
block inherits globals only if they appear in a "knows list" given at
block entry.  "Within the specification of type Symboltable, all
relations, and only those relations, that explicitly deal with the
ENTERBLOCK operation would have to be altered" — plus one new level,
the Knowlist type itself.

This module contains:

* the Knowlist specification (CREATE / APPEND / IS_IN?);
* the modified Symboltable specification
  (:data:`SYMBOLTABLE_KNOWS_SPEC`), built from the original's axioms by
  swapping exactly the ENTERBLOCK relations, as the paper prescribes;
* Python implementations of both (:class:`TupleKnowlist`,
  :class:`KnowsSymbolTable`).
"""

from __future__ import annotations

from typing import Iterable, Iterator, Optional

from repro.algebra.signature import Operation, Signature
from repro.algebra.sorts import Sort
from repro.algebra.terms import Err, Ite, Term, Var, app
from repro.spec.axioms import Axiom
from repro.spec.errors import AlgebraError
from repro.spec.parser import parse_specification
from repro.spec.specification import Specification
from repro.adt.array import HashArray
from repro.adt.stack import LinkedStack
from repro.adt.symboltable import SYMBOLTABLE_SPEC

# ----------------------------------------------------------------------
# Type Knowlist
# ----------------------------------------------------------------------
KNOWLIST_SPEC_TEXT = """
type Knowlist
uses Boolean, Identifier

operations
  CREATE: -> Knowlist
  APPEND: Knowlist x Identifier -> Knowlist
  IS_IN?: Knowlist x Identifier -> Boolean

vars
  klist:   Knowlist
  id, idl: Identifier

axioms
  (K1) IS_IN?(CREATE, id) = false
  (K2) IS_IN?(APPEND(klist, id), idl) =
         if ISSAME?(id, idl) then true
         else IS_IN?(klist, idl)
"""

KNOWLIST_SPEC: Specification = parse_specification(KNOWLIST_SPEC_TEXT)

KNOWLIST: Sort = KNOWLIST_SPEC.type_of_interest
CREATE: Operation = KNOWLIST_SPEC.operation("CREATE")
APPEND: Operation = KNOWLIST_SPEC.operation("APPEND")
IS_IN: Operation = KNOWLIST_SPEC.operation("IS_IN?")


def knowlist_term(names: Iterable[str]) -> Term:
    from repro.spec.prelude import identifier

    term: Term = app(CREATE)
    for name in names:
        term = app(APPEND, term, identifier(name))
    return term


class TupleKnowlist:
    """The trivial implementation the paper promises Knowlist is."""

    __slots__ = ("_names",)

    def __init__(self, names: Iterable[str] = ()) -> None:
        self._names: tuple[str, ...] = tuple(names)

    @staticmethod
    def create() -> "TupleKnowlist":
        return TupleKnowlist()

    def append(self, name: str) -> "TupleKnowlist":
        return TupleKnowlist(self._names + (name,))

    def is_in(self, name: str) -> bool:
        return name in self._names

    def __iter__(self) -> Iterator[str]:
        return iter(self._names)

    def __len__(self) -> int:
        return len(self._names)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, TupleKnowlist):
            return NotImplemented
        return self._names == other._names

    def __hash__(self) -> int:
        return hash(self._names)

    def __repr__(self) -> str:
        return f"TupleKnowlist({list(self._names)!r})"


# ----------------------------------------------------------------------
# The knows-list Symboltable: swap exactly the ENTERBLOCK relations
# ----------------------------------------------------------------------
def _build_knows_spec() -> Specification:
    """Carry out the paper's modification procedure.

    Start from the original Symboltable; keep every axiom that does not
    mention ENTERBLOCK (1, 3, 4, 6, 7, 9); re-declare ENTERBLOCK with
    the Knowlist argument; add the three replacement relations.
    """
    original = SYMBOLTABLE_SPEC
    toi = original.type_of_interest
    from repro.spec.prelude import ATTRIBUTELIST, IDENTIFIER

    enterblock = Operation("ENTERBLOCK", (toi, KNOWLIST), toi)

    signature = Signature()
    for sort in original.signature.sorts:
        signature.add_sort(sort)
    signature.add_sort(KNOWLIST)
    for operation in original.signature.operations:
        if operation.name == "ENTERBLOCK":
            signature.add_operation(enterblock)
        else:
            signature.add_operation(operation)

    kept = original.without_axioms(labels=("2", "5", "8"))

    leaveblock = original.operation("LEAVEBLOCK")
    is_inblock = original.operation("IS_INBLOCK?")
    retrieve = original.operation("RETRIEVE")
    symtab = Var("symtab", toi)
    klist = Var("klist", KNOWLIST)
    ident = Var("id", IDENTIFIER)
    from repro.spec.prelude import false_term

    replacements = (
        Axiom(
            app(leaveblock, app(enterblock, symtab, klist)),
            symtab,
            "2k",
        ),
        Axiom(
            app(is_inblock, app(enterblock, symtab, klist), ident),
            false_term(),
            "5k",
        ),
        Axiom(
            app(retrieve, app(enterblock, symtab, klist), ident),
            Ite(
                app(IS_IN, klist, ident),
                app(retrieve, symtab, ident),
                Err(ATTRIBUTELIST),
            ),
            "8k",
        ),
    )

    return Specification(
        "SymboltableKnows",
        signature,
        toi,
        kept + replacements,
        uses=tuple(original.uses) + (KNOWLIST_SPEC,),
    )


SYMBOLTABLE_KNOWS_SPEC: Specification = _build_knows_spec()


# ----------------------------------------------------------------------
# Concrete implementation
# ----------------------------------------------------------------------
class KnowsSymbolTable:
    """Stack-of-(scope, knows-list) pairs implementing the variant.

    A RETRIEVE that has to cross a block boundary is filtered by that
    block's knows list: names not listed are invisible outside the
    blocks that declared them.
    """

    __slots__ = ("_scopes",)

    def __init__(
        self,
        scopes: Optional[LinkedStack[tuple[HashArray, Optional[TupleKnowlist]]]] = None,
    ) -> None:
        self._scopes = scopes if scopes is not None else LinkedStack()

    @staticmethod
    def init() -> "KnowsSymbolTable":
        # The global scope has no knows list: nothing is outside it.
        return KnowsSymbolTable(LinkedStack().push((HashArray.empty(), None)))

    def enterblock(self, knows: TupleKnowlist) -> "KnowsSymbolTable":
        return KnowsSymbolTable(self._scopes.push((HashArray.empty(), knows)))

    def leaveblock(self) -> "KnowsSymbolTable":
        popped = self._scopes.pop()
        if popped.is_newstack():
            raise AlgebraError("LEAVEBLOCK would discard the global scope")
        return KnowsSymbolTable(popped)

    def add(self, name: str, attrs: object) -> "KnowsSymbolTable":
        scope, knows = self._scopes.top()
        return KnowsSymbolTable(
            self._scopes.replace((scope.assign(name, attrs), knows))
        )

    def is_inblock(self, name: str) -> bool:
        scope, _ = self._scopes.top()
        return not scope.is_undefined(name)

    def retrieve(self, name: str) -> object:
        scopes = self._scopes
        while not scopes.is_newstack():
            scope, knows = scopes.top()
            if not scope.is_undefined(name):
                return scope.read(name)
            if knows is not None and not knows.is_in(name):
                raise AlgebraError(
                    f"RETRIEVE: {name!r} is not in the block's knows list"
                )
            scopes = scopes.pop()
        raise AlgebraError(f"RETRIEVE: {name!r} not declared in any scope")

    @property
    def depth(self) -> int:
        return len(self._scopes)

    def __repr__(self) -> str:
        blocks = [
            (sorted(scope.names()), list(knows) if knows else None)
            for scope, knows in self._scopes
        ]
        return f"KnowsSymbolTable(scopes innermost-first: {blocks!r})"
