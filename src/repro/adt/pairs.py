"""Product sorts: the paper's future-work item, implemented.

Section 5 lists as a failing that "all operations be specified as
functions ... Most programs, on the other hand, are laden with
procedures that return several values", and conjectures the problem
"can be solved with only minor changes to the specification techniques".

The minor change is a *product sort*: :func:`make_pair_spec` generates a
``Pair``-of-(A, B) specification (constructor ``MKPAIR``, projections
``FST``/``SND``), and an operation returning several values is specified
as one operation into the product.  :data:`DEQUEUE_SPEC` demonstrates it
on the motivating case — a queue whose removal returns *both* the
front item and the remaining queue::

    DEQUEUE: Queue -> Pair            -- (front, rest) at once
    (D1) DEQUEUE(NEW) = error
    (D2) DEQUEUE(ADD(q, i)) =
           MKPAIR(FRONT(ADD(q, i)), REMOVE(ADD(q, i)))

with the expected laws ``FST(DEQUEUE(q)) = FRONT(q)`` and
``SND(DEQUEUE(q)) = REMOVE(q)`` provable as client theorems.
"""

from __future__ import annotations

from repro.algebra.signature import Operation, Signature
from repro.algebra.sorts import Sort
from repro.algebra.terms import Var, app
from repro.spec.axioms import Axiom
from repro.spec.specification import Specification


def make_pair_spec(
    first_sort: Sort,
    second_sort: Sort,
    name: str = "Pair",
    uses: tuple[Specification, ...] = (),
) -> Specification:
    """An algebraic product of ``first_sort`` and ``second_sort``.

    Operations::

        MKPAIR: A x B -> Pair
        FST:    Pair -> A
        SND:    Pair -> B

    with the projection axioms ``FST(MKPAIR(a, b)) = a`` and
    ``SND(MKPAIR(a, b)) = b``.  The specification is sufficiently
    complete (MKPAIR is the only constructor; both projections cover it)
    and consistent.
    """
    pair = Sort(name)
    mkpair = Operation("MKPAIR", (first_sort, second_sort), pair)
    fst = Operation("FST", (pair,), first_sort)
    snd = Operation("SND", (pair,), second_sort)
    signature = Signature(
        [pair, first_sort, second_sort], [mkpair, fst, snd]
    )
    a = Var("a", first_sort)
    b = Var("b", second_sort)
    axioms = [
        Axiom(app(fst, app(mkpair, a, b)), a, "P1"),
        Axiom(app(snd, app(mkpair, a, b)), b, "P2"),
    ]
    return Specification(name, signature, pair, axioms, uses=uses)


def _build_dequeue_spec() -> Specification:
    from repro.adt.queue import ADD, FRONT, NEW, QUEUE_SPEC, REMOVE
    from repro.spec.prelude import ITEM

    queue = QUEUE_SPEC.type_of_interest
    pair_spec = make_pair_spec(
        ITEM, queue, name="ItemQueuePair", uses=(QUEUE_SPEC,)
    )
    mkpair = pair_spec.operation("MKPAIR")

    dequeue = Operation("DEQUEUE", (queue,), pair_spec.type_of_interest)
    signature = Signature(
        [queue, pair_spec.type_of_interest, ITEM], [dequeue]
    )
    q = Var("q", queue)
    i = Var("i", ITEM)
    from repro.algebra.terms import Err

    added = app(ADD, q, i)
    axioms = [
        Axiom(
            app(dequeue, app(NEW)),
            Err(pair_spec.type_of_interest),
            "D1",
        ),
        Axiom(
            app(dequeue, added),
            app(mkpair, app(FRONT, added), app(REMOVE, added)),
            "D2",
        ),
    ]
    return Specification(
        "DequeueQueue",
        signature,
        queue,
        axioms,
        uses=(QUEUE_SPEC, pair_spec),
    )


#: Queue enriched with a two-valued removal operation.
DEQUEUE_SPEC: Specification = _build_dequeue_spec()

DEQUEUE: Operation = DEQUEUE_SPEC.operation("DEQUEUE")
ITEM_QUEUE_PAIR_SPEC: Specification = DEQUEUE_SPEC.find_level(
    "ItemQueuePair"
)
