"""Type BoundedQueue — the paper's Φ⁻¹-is-one-to-many example.

Section 4 illustrates that an abstraction function need not have a
proper inverse with a bounded queue (maximum length three) represented
by a *ring buffer* and top pointer: two different program segments leave
the buffer in physically different states (different rotations, stale
slots) that denote the same abstract value.

This module supplies:

* the algebraic specification of a bounded queue of capacity ``n``
  (ADD on a full queue is an error — the spec must say so to be
  sufficiently complete);
* :class:`RingBufferQueue`, the paper's representation: a fixed ``n``
  slot buffer, a front index and a length, where REMOVE merely advances
  the front pointer (leaving the old value as garbage in the buffer)
  and ADD wraps around;
* ``phi_ring_buffer``, the abstraction function, which reads only the
  live window — so all rotations/garbage variants of one queue value
  map to the same abstract term.
"""

from __future__ import annotations

from typing import Optional

from repro.algebra.signature import Operation
from repro.algebra.sorts import Sort
from repro.algebra.terms import Term, app
from repro.spec.errors import AlgebraError
from repro.spec.parser import parse_specification
from repro.spec.prelude import item
from repro.spec.specification import Specification

#: The paper's example capacity.
DEFAULT_CAPACITY = 3

BOUNDED_QUEUE_SPEC_TEXT = """
type BoundedQueue [Item]
uses Boolean, Nat, Item

operations
  EMPTY_Q:   -> BoundedQueue
  ADD_Q:     BoundedQueue x Item -> BoundedQueue
  FRONT_Q:   BoundedQueue -> Item
  REMOVE_Q:  BoundedQueue -> BoundedQueue
  IS_EMPTY_Q?: BoundedQueue -> Boolean
  SIZE_Q:    BoundedQueue -> Nat

vars
  q: BoundedQueue
  i: Item

axioms
  (BQ1) IS_EMPTY_Q?(EMPTY_Q) = true
  (BQ2) IS_EMPTY_Q?(ADD_Q(q, i)) = false
  (BQ3) FRONT_Q(EMPTY_Q) = error
  (BQ4) FRONT_Q(ADD_Q(q, i)) = if IS_EMPTY_Q?(q) then i else FRONT_Q(q)
  (BQ5) REMOVE_Q(EMPTY_Q) = error
  (BQ6) REMOVE_Q(ADD_Q(q, i)) = if IS_EMPTY_Q?(q) then EMPTY_Q
                                else ADD_Q(REMOVE_Q(q), i)
  (BQ7) SIZE_Q(EMPTY_Q) = zero
  (BQ8) SIZE_Q(ADD_Q(q, i)) = succ(SIZE_Q(q))
"""

#: The unbounded core of the specification.  Capacity enforcement is a
#: *representation* property of the fixed-size buffer: ADD_Q on a full
#: queue raises at the implementation level, and the correctness tests
#: confine themselves to programs that stay within capacity (the same
#: conditional-correctness reading the paper applies to Assumption 1).
BOUNDED_QUEUE_SPEC: Specification = parse_specification(
    BOUNDED_QUEUE_SPEC_TEXT
)

BOUNDED_QUEUE: Sort = BOUNDED_QUEUE_SPEC.type_of_interest
EMPTY_Q: Operation = BOUNDED_QUEUE_SPEC.operation("EMPTY_Q")
ADD_Q: Operation = BOUNDED_QUEUE_SPEC.operation("ADD_Q")
FRONT_Q: Operation = BOUNDED_QUEUE_SPEC.operation("FRONT_Q")
REMOVE_Q: Operation = BOUNDED_QUEUE_SPEC.operation("REMOVE_Q")
IS_EMPTY_Q: Operation = BOUNDED_QUEUE_SPEC.operation("IS_EMPTY_Q?")
SIZE_Q: Operation = BOUNDED_QUEUE_SPEC.operation("SIZE_Q")

#: A sentinel marking a buffer slot that holds no live value (either
#: never written, or left behind by REMOVE_Q's pointer bump).
GARBAGE = object()


class RingBufferQueue:
    """The paper's ring-buffer representation of a bounded queue.

    The state is ``(buffer, front, length)``; REMOVE advances ``front``
    modulo the capacity *without clearing the slot* — exactly why two
    states can represent the same value.  Persistent: operations return
    new instances; the buffer tuple is copied on write.
    """

    __slots__ = ("_buffer", "_front", "_length")

    def __init__(
        self,
        capacity: int = DEFAULT_CAPACITY,
        _buffer: Optional[tuple[object, ...]] = None,
        _front: int = 0,
        _length: int = 0,
    ) -> None:
        if capacity < 1:
            raise ValueError("capacity must be at least 1")
        self._buffer: tuple[object, ...] = (
            _buffer if _buffer is not None else (GARBAGE,) * capacity
        )
        self._front = _front
        self._length = _length

    # -- the abstract operations -----------------------------------------
    @staticmethod
    def empty(capacity: int = DEFAULT_CAPACITY) -> "RingBufferQueue":
        return RingBufferQueue(capacity)

    def add(self, element: object) -> "RingBufferQueue":
        if self._length == len(self._buffer):
            raise AlgebraError("ADD_Q on a full bounded queue")
        slot = (self._front + self._length) % len(self._buffer)
        buffer = list(self._buffer)
        buffer[slot] = element
        return RingBufferQueue(
            len(self._buffer), tuple(buffer), self._front, self._length + 1
        )

    def front(self) -> object:
        if not self._length:
            raise AlgebraError("FRONT_Q(EMPTY_Q)")
        return self._buffer[self._front]

    def remove(self) -> "RingBufferQueue":
        if not self._length:
            raise AlgebraError("REMOVE_Q(EMPTY_Q)")
        # The paper's point: only the pointer moves; the slot keeps its
        # stale value.
        return RingBufferQueue(
            len(self._buffer),
            self._buffer,
            (self._front + 1) % len(self._buffer),
            self._length - 1,
        )

    def is_empty(self) -> bool:
        return self._length == 0

    def size(self) -> int:
        return self._length

    # -- representation inspection (the point of the example) -------------
    @property
    def raw_buffer(self) -> tuple[object, ...]:
        """The physical slots, garbage and all."""
        return self._buffer

    @property
    def front_index(self) -> int:
        return self._front

    def live_window(self) -> tuple[object, ...]:
        """The abstractly visible contents, oldest first."""
        capacity = len(self._buffer)
        return tuple(
            self._buffer[(self._front + offset) % capacity]
            for offset in range(self._length)
        )

    def same_representation(self, other: "RingBufferQueue") -> bool:
        """Physical identity of the state (buffer, pointer, length)."""
        return (
            self._buffer == other._buffer
            and self._front == other._front
            and self._length == other._length
        )

    def __eq__(self, other: object) -> bool:
        """Abstract equality: same live window (Φ-image equality)."""
        if not isinstance(other, RingBufferQueue):
            return NotImplemented
        return self.live_window() == other.live_window()

    def __hash__(self) -> int:
        return hash(self.live_window())

    def __repr__(self) -> str:
        cells = [
            "?" if cell is GARBAGE else repr(cell) for cell in self._buffer
        ]
        return (
            f"RingBufferQueue(buffer=[{', '.join(cells)}], "
            f"front={self._front}, length={self._length})"
        )


def phi_ring_buffer(queue: RingBufferQueue) -> Term:
    """The abstraction function Φ: live window → constructor term.

    All representations with the same live window — however rotated, and
    whatever garbage their dead slots hold — map to the same term:
    Φ⁻¹ is one-to-many.
    """
    term: Term = app(EMPTY_Q)
    for value in queue.live_window():
        term = app(ADD_Q, term, item(value))
    return term


def paper_first_segment(capacity: int = DEFAULT_CAPACITY) -> RingBufferQueue:
    """x := EMPTY_Q; ADD A; ADD B; ADD C; REMOVE; ADD D."""
    x = RingBufferQueue.empty(capacity)
    x = x.add("A").add("B").add("C")
    x = x.remove()
    return x.add("D")


def paper_second_segment(capacity: int = DEFAULT_CAPACITY) -> RingBufferQueue:
    """x := EMPTY_Q; ADD B; ADD C; ADD D."""
    x = RingBufferQueue.empty(capacity)
    return x.add("B").add("C").add("D")
