"""Type Symboltable — the paper's extended example (section 4).

The symbol table of a compiler for a block-structured language:

* the **abstract specification** (axioms 1–9), used by the rest of the
  compiler as the complete meaning of the symbol table subsystem;
* the **representation**: a value of the type is a Stack of Arrays,
  one array per open scope; each abstract operation ``f`` gets a defined
  operation ``f'`` over the lower level, and the abstraction function Φ
  maps representation values back to abstract constructor terms;
* the **concrete implementation**: :class:`SymbolTable`, a Python class
  over :class:`~repro.adt.stack.LinkedStack` and
  :class:`~repro.adt.array.HashArray` — the paper's PL/I code
  transliterated.
"""

from __future__ import annotations

from typing import Iterator, Optional

from repro.algebra.signature import Operation, Signature
from repro.algebra.sorts import BOOLEAN, Sort
from repro.algebra.terms import Err, Ite, Term, Var, app
from repro.spec.axioms import Axiom
from repro.spec.errors import AlgebraError
from repro.spec.parser import parse_specification
from repro.spec.prelude import (
    ATTRIBUTELIST,
    IDENTIFIER,
    NOT,
    attributes,
    identifier,
)
from repro.spec.specification import Specification
from repro.adt.array import ARRAY, ARRAY_SPEC, HashArray
from repro.adt.stack import ELEM, STACK_SPEC, LinkedStack

# ----------------------------------------------------------------------
# The abstract specification (axioms 1-9)
# ----------------------------------------------------------------------
SYMBOLTABLE_SPEC_TEXT = """
type Symboltable
uses Boolean, Identifier, Attributelist

operations
  INIT:        -> Symboltable
  ENTERBLOCK:  Symboltable -> Symboltable
  LEAVEBLOCK:  Symboltable -> Symboltable
  ADD:         Symboltable x Identifier x Attributelist -> Symboltable
  IS_INBLOCK?: Symboltable x Identifier -> Boolean
  RETRIEVE:    Symboltable x Identifier -> Attributelist

vars
  symtab:   Symboltable
  id, idl:  Identifier
  attrs:    Attributelist

axioms
  (1) LEAVEBLOCK(INIT) = error
  (2) LEAVEBLOCK(ENTERBLOCK(symtab)) = symtab
  (3) LEAVEBLOCK(ADD(symtab, id, attrs)) = LEAVEBLOCK(symtab)
  (4) IS_INBLOCK?(INIT, id) = false
  (5) IS_INBLOCK?(ENTERBLOCK(symtab), id) = false
  (6) IS_INBLOCK?(ADD(symtab, id, attrs), idl) =
        if ISSAME?(id, idl) then true
        else IS_INBLOCK?(symtab, idl)
  (7) RETRIEVE(INIT, id) = error
  (8) RETRIEVE(ENTERBLOCK(symtab), id) = RETRIEVE(symtab, id)
  (9) RETRIEVE(ADD(symtab, id, attrs), idl) =
        if ISSAME?(id, idl) then attrs
        else RETRIEVE(symtab, idl)
"""

SYMBOLTABLE_SPEC: Specification = parse_specification(SYMBOLTABLE_SPEC_TEXT)

SYMBOLTABLE: Sort = SYMBOLTABLE_SPEC.type_of_interest
INIT: Operation = SYMBOLTABLE_SPEC.operation("INIT")
ENTERBLOCK: Operation = SYMBOLTABLE_SPEC.operation("ENTERBLOCK")
LEAVEBLOCK: Operation = SYMBOLTABLE_SPEC.operation("LEAVEBLOCK")
ADD: Operation = SYMBOLTABLE_SPEC.operation("ADD")
IS_INBLOCK: Operation = SYMBOLTABLE_SPEC.operation("IS_INBLOCK?")
RETRIEVE: Operation = SYMBOLTABLE_SPEC.operation("RETRIEVE")


# ----------------------------------------------------------------------
# The representation level: a Stack of Arrays
# ----------------------------------------------------------------------
#: Stack instantiated at Elem := Array — the actual representation type.
STACK_OF_ARRAYS_SPEC: Specification = STACK_SPEC.instantiated(
    "StackOfArrays", {ELEM: ARRAY}
)

STACK: Sort = STACK_OF_ARRAYS_SPEC.type_of_interest
NEWSTACK: Operation = STACK_OF_ARRAYS_SPEC.operation("NEWSTACK")
PUSH: Operation = STACK_OF_ARRAYS_SPEC.operation("PUSH")
POP: Operation = STACK_OF_ARRAYS_SPEC.operation("POP")
TOP: Operation = STACK_OF_ARRAYS_SPEC.operation("TOP")
IS_NEWSTACK: Operation = STACK_OF_ARRAYS_SPEC.operation("IS_NEWSTACK?")
REPLACE: Operation = STACK_OF_ARRAYS_SPEC.operation("REPLACE")

from repro.adt.array import ASSIGN, EMPTY, IS_UNDEFINED, READ  # noqa: E402

#: The combined concrete level: Stack-of-Arrays + Array (+ their uses).
SYMBOLTABLE_REP_SPEC: Specification = Specification(
    "SymboltableRep",
    Signature([STACK]),
    STACK,
    uses=[STACK_OF_ARRAYS_SPEC, ARRAY_SPEC],
)


def _build_representation():
    """Construct the paper's representation object.

    Kept in a function so module import stays cheap and the pieces are
    named close to where the paper defines them.
    """
    from repro.verify.representation import DefinedOperation, Representation

    stk = Var("stk", STACK)
    ident = Var("id", IDENTIFIER)
    attrs = Var("attrs", ATTRIBUTELIST)

    init_p = Operation("INIT'", (), STACK)
    enterblock_p = Operation("ENTERBLOCK'", (STACK,), STACK)
    leaveblock_p = Operation("LEAVEBLOCK'", (STACK,), STACK)
    add_p = Operation("ADD'", (STACK, IDENTIFIER, ATTRIBUTELIST), STACK)
    is_inblock_p = Operation("IS_INBLOCK?'", (STACK, IDENTIFIER), BOOLEAN)
    retrieve_p = Operation("RETRIEVE'", (STACK, IDENTIFIER), ATTRIBUTELIST)

    defined = [
        # INIT' :: PUSH(NEWSTACK, EMPTY)
        DefinedOperation(init_p, (), app(PUSH, app(NEWSTACK), app(EMPTY))),
        # ENTERBLOCK'(stk) :: PUSH(stk, EMPTY)
        DefinedOperation(
            enterblock_p, (stk,), app(PUSH, stk, app(EMPTY))
        ),
        # LEAVEBLOCK'(stk) :: if IS_NEWSTACK?(POP(stk)) then error
        #                     else POP(stk)
        DefinedOperation(
            leaveblock_p,
            (stk,),
            Ite(
                app(IS_NEWSTACK, app(POP, stk)),
                Err(STACK),
                app(POP, stk),
            ),
        ),
        # ADD'(stk, id, attrs) :: REPLACE(stk, ASSIGN(TOP(stk), id, attrs))
        DefinedOperation(
            add_p,
            (stk, ident, attrs),
            app(REPLACE, stk, app(ASSIGN, app(TOP, stk), ident, attrs)),
        ),
        # IS_INBLOCK?'(stk, id) :: if IS_NEWSTACK?(stk) then error
        #                          else not(IS_UNDEFINED?(TOP(stk), id))
        DefinedOperation(
            is_inblock_p,
            (stk, ident),
            Ite(
                app(IS_NEWSTACK, stk),
                Err(BOOLEAN),
                app(NOT, app(IS_UNDEFINED, app(TOP, stk), ident)),
            ),
        ),
        # RETRIEVE'(stk, id) :: if IS_NEWSTACK?(stk) then error
        #                       else if IS_UNDEFINED?(TOP(stk), id)
        #                            then RETRIEVE'(POP(stk), id)
        #                            else READ(TOP(stk), id)
        DefinedOperation(
            retrieve_p,
            (stk, ident),
            Ite(
                app(IS_NEWSTACK, stk),
                Err(ATTRIBUTELIST),
                Ite(
                    app(IS_UNDEFINED, app(TOP, stk), ident),
                    app(retrieve_p, app(POP, stk), ident),
                    app(READ, app(TOP, stk), ident),
                ),
            ),
        ),
    ]

    # The abstraction function Φ, equations (b)-(d) of the paper
    # (equation (a), Φ(error) = error, is the engine's strictness rule).
    phi = Operation("Φ", (STACK,), SYMBOLTABLE)
    arr = Var("arr", ARRAY)
    phi_axioms = [
        Axiom(app(phi, app(NEWSTACK)), Err(SYMBOLTABLE), "Φb"),
        Axiom(
            app(phi, app(PUSH, stk, app(EMPTY))),
            Ite(
                app(IS_NEWSTACK, stk),
                app(INIT),
                app(ENTERBLOCK, app(phi, stk)),
            ),
            "Φc",
        ),
        Axiom(
            app(phi, app(PUSH, stk, app(ASSIGN, arr, ident, attrs))),
            app(ADD, app(phi, app(PUSH, stk, arr)), ident, attrs),
            "Φd",
        ),
    ]

    return Representation(
        abstract=SYMBOLTABLE_SPEC,
        concrete=SYMBOLTABLE_REP_SPEC,
        rep_sort=STACK,
        defined=defined,
        phi=phi,
        phi_axioms=phi_axioms,
        generators=("INIT", "ENTERBLOCK", "ADD"),
    )


_REPRESENTATION = None


def symboltable_representation():
    """The (cached) stack-of-arrays representation of Symboltable."""
    global _REPRESENTATION
    if _REPRESENTATION is None:
        _REPRESENTATION = _build_representation()
    return _REPRESENTATION


# ----------------------------------------------------------------------
# The concrete implementation (the paper's PL/I code, in Python)
# ----------------------------------------------------------------------
class SymbolTable:
    """A block-structured symbol table: a linked stack of hash arrays.

    Persistent like every implementation in this package: operations
    return new tables.  :meth:`init` establishes the global scope
    (``INIT' :: PUSH(NEWSTACK, EMPTY)``), so a freshly initialised table
    always has one open block.
    """

    __slots__ = ("_scopes",)

    def __init__(self, scopes: Optional[LinkedStack[HashArray]] = None) -> None:
        self._scopes: LinkedStack[HashArray] = (
            scopes if scopes is not None else LinkedStack()
        )

    # -- the abstract operations -----------------------------------------
    @staticmethod
    def init() -> "SymbolTable":
        return SymbolTable(LinkedStack().push(HashArray.empty()))

    def enterblock(self) -> "SymbolTable":
        return SymbolTable(self._scopes.push(HashArray.empty()))

    def leaveblock(self) -> "SymbolTable":
        popped = self._scopes.pop()
        if popped.is_newstack():
            raise AlgebraError("LEAVEBLOCK would discard the global scope")
        return SymbolTable(popped)

    def add(self, name: str, attrs: object) -> "SymbolTable":
        top = self._scopes.top()
        return SymbolTable(self._scopes.replace(top.assign(name, attrs)))

    def is_inblock(self, name: str) -> bool:
        return not self._scopes.top().is_undefined(name)

    def retrieve(self, name: str) -> object:
        scopes = self._scopes
        while not scopes.is_newstack():
            scope = scopes.top()
            if not scope.is_undefined(name):
                return scope.read(name)
            scopes = scopes.pop()
        raise AlgebraError(f"RETRIEVE: {name!r} not declared in any scope")

    # -- conveniences ------------------------------------------------------
    @property
    def depth(self) -> int:
        """Number of open scopes."""
        return len(self._scopes)

    def scopes(self) -> Iterator[HashArray]:
        """Scopes, innermost first."""
        return iter(self._scopes)

    def visible_names(self) -> set[str]:
        names: set[str] = set()
        for scope in self._scopes:
            names |= scope.names()
        return names

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, SymbolTable):
            return NotImplemented
        return list(self._scopes) == list(other._scopes)

    def __hash__(self) -> int:
        return hash(tuple(self._scopes))

    def __repr__(self) -> str:
        blocks = [sorted(scope.names()) for scope in self._scopes]
        return f"SymbolTable(scopes innermost-first: {blocks!r})"


def phi_symboltable(table: SymbolTable) -> Term:
    """The abstraction function Φ for :class:`SymbolTable`.

    Maps the concrete stack-of-hash-arrays to a canonical abstract
    constructor term: INIT for the outermost scope, ENTERBLOCK per inner
    scope, ADD per visible binding (identifiers in sorted order, so
    observationally equal tables map to the identical term).
    """
    scopes = list(table.scopes())  # innermost first
    if not scopes:
        return Err(SYMBOLTABLE)
    term: Term = app(INIT)
    for index, scope in enumerate(reversed(scopes)):
        if index:
            term = app(ENTERBLOCK, term)
        for name in sorted(scope.names()):
            term = app(
                ADD, term, identifier(name), attributes(scope.read(name))
            )
    return term
