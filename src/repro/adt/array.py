"""Type Array (of Attributelists, indexed by Identifiers) — axioms 17–20.

The array is the second half of the Symboltable representation: one
array per block, holding the attributes of the identifiers declared in
that block.  The concrete implementation reproduces the paper's scheme:
a hash table of ``n`` buckets (``hash_tab``), each a chain of ``entry``
structures ``{id, attributes, next}``, with new entries consed onto the
front of their bucket — so a redeclaration *shadows* the older entry
exactly as axiom 20's recursion does.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Optional

from repro.algebra.signature import Operation
from repro.algebra.sorts import Sort
from repro.algebra.terms import App, Term, app
from repro.spec.errors import AlgebraError
from repro.spec.parser import parse_specification
from repro.spec.prelude import HASH_BUCKETS, _hash_identifier, attributes, identifier
from repro.spec.specification import Specification

ARRAY_SPEC_TEXT = """
type Array
uses Boolean, Identifier, Attributelist

operations
  EMPTY:         -> Array
  ASSIGN:        Array x Identifier x Attributelist -> Array
  READ:          Array x Identifier -> Attributelist
  IS_UNDEFINED?: Array x Identifier -> Boolean

vars
  arr:      Array
  id, idl:  Identifier
  attrs:    Attributelist

axioms
  (17) IS_UNDEFINED?(EMPTY, id) = true
  (18) IS_UNDEFINED?(ASSIGN(arr, id, attrs), idl) =
         if ISSAME?(id, idl) then false
         else IS_UNDEFINED?(arr, idl)
  (19) READ(EMPTY, id) = error
  (20) READ(ASSIGN(arr, id, attrs), idl) =
         if ISSAME?(id, idl) then attrs
         else READ(arr, idl)
"""

ARRAY_SPEC: Specification = parse_specification(ARRAY_SPEC_TEXT)

ARRAY: Sort = ARRAY_SPEC.type_of_interest
EMPTY: Operation = ARRAY_SPEC.operation("EMPTY")
ASSIGN: Operation = ARRAY_SPEC.operation("ASSIGN")
READ: Operation = ARRAY_SPEC.operation("READ")
IS_UNDEFINED: Operation = ARRAY_SPEC.operation("IS_UNDEFINED?")


def empty() -> App:
    return app(EMPTY)


def assign(array: Term, name: str, attrs: object) -> App:
    """``ASSIGN(array, 'name', attrs)`` with literal leaves."""
    return app(ASSIGN, array, identifier(name), attributes(attrs))


@dataclass(frozen=True)
class _Entry:
    """One allocated ``entry`` structure: id, attributes, next."""

    id: str
    attributes: object
    next: Optional["_Entry"]


class HashArray:
    """The paper's ``hash_tab`` implementation of type Array.

    ``n`` buckets of entry chains; ``ASSIGN`` conses a new entry onto the
    front of bucket ``HASH(id)``, so the most recent assignment for an
    identifier is found first — the concrete counterpart of axiom 20
    checking the outermost ``ASSIGN`` first.  Persistent: ``assign``
    copies the bucket array (entries are shared structurally).
    """

    __slots__ = ("_buckets",)

    def __init__(
        self, buckets: Optional[tuple[Optional[_Entry], ...]] = None
    ) -> None:
        self._buckets: tuple[Optional[_Entry], ...] = (
            buckets if buckets is not None else (None,) * HASH_BUCKETS
        )

    # -- the abstract operations -----------------------------------------
    @staticmethod
    def empty() -> "HashArray":
        return HashArray()

    def assign(self, name: str, attrs: object) -> "HashArray":
        index = _hash_identifier(name) - 1
        buckets = list(self._buckets)
        buckets[index] = _Entry(name, attrs, buckets[index])
        return HashArray(tuple(buckets))

    def read(self, name: str) -> object:
        entry = self._find(name)
        if entry is None:
            raise AlgebraError(f"READ: {name!r} undefined")
        return entry.attributes

    def is_undefined(self, name: str) -> bool:
        return self._find(name) is None

    def _find(self, name: str) -> Optional[_Entry]:
        entry = self._buckets[_hash_identifier(name) - 1]
        while entry is not None and entry.id != name:
            entry = entry.next
        return entry

    # -- conveniences ------------------------------------------------------
    def entries(self) -> Iterator[tuple[str, object]]:
        """Every (id, attributes) pair, most recent first per bucket."""
        for bucket in self._buckets:
            entry = bucket
            while entry is not None:
                yield entry.id, entry.attributes
                entry = entry.next

    def names(self) -> set[str]:
        """The identifiers currently defined."""
        return {name for name, _ in self.entries()}

    def __eq__(self, other: object) -> bool:
        """Observational equality: same answers to READ/IS_UNDEFINED?.

        Two HashArrays with different assignment histories can denote the
        same abstract Array — equality goes through the observers, not
        the representation (Φ⁻¹ is one-to-many here as well).
        """
        if not isinstance(other, HashArray):
            return NotImplemented
        names = self.names() | other.names()
        for name in names:
            if self.is_undefined(name) != other.is_undefined(name):
                return False
            if not self.is_undefined(name) and self.read(name) != other.read(name):
                return False
        return True

    def __hash__(self) -> int:
        visible = {}
        for name in self.names():
            visible[name] = self.read(name)
        return hash(frozenset(visible.items()))

    def __repr__(self) -> str:
        visible = {name: self.read(name) for name in self.names()}
        return f"HashArray({visible!r})"


def phi_array(array: HashArray) -> Term:
    """The abstraction function Φ for :class:`HashArray`.

    Rebuilds a constructor term by ASSIGNing the *visible* binding of
    each defined identifier over EMPTY.  Entries shadowed by later
    assignments are dropped: they are unobservable, and Φ maps the
    representation to (a canonical member of) its abstract value.
    Identifiers are emitted in sorted order so equal abstract values get
    identical terms.
    """
    term: Term = empty()
    for name in sorted(array.names()):
        term = assign(term, name, array.read(name))
    return term
