"""Axioms: the relations that give operations their meaning.

An axiom is an oriented equation ``lhs = rhs`` between terms of the same
sort, read as a definitional fact about the operations ("a set of
individual statements of fact", section 3).  Axioms in the paper have a
restricted left-hand-side shape that this module checks and exploits:

* the LHS is an operation applied to variables and *constructor
  patterns* (never ``if-then-else``, never nested defined operations);
* every variable of the RHS appears in the LHS;
* both sides share a sort.

Those restrictions are what make the specifications executable by
rewriting and analysable for sufficient completeness.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional

from repro.algebra.signature import Operation
from repro.algebra.terms import App, Err, Ite, Lit, Term, Var


class AxiomError(Exception):
    """Raised for malformed axioms."""


@dataclass(frozen=True)
class Axiom:
    """An equation ``lhs = rhs``, optionally named.

    ``label`` carries the paper's axiom numbers ("(1)", "(9)"), used in
    reports and proof transcripts.
    """

    lhs: Term
    rhs: Term
    label: str = ""

    def __post_init__(self) -> None:
        if self.lhs.sort != self.rhs.sort:
            raise AxiomError(
                f"axiom sides have different sorts: "
                f"{self.lhs} : {self.lhs.sort} = {self.rhs} : {self.rhs.sort}"
            )
        if isinstance(self.lhs, (Var, Lit, Err)):
            raise AxiomError(
                f"axiom left-hand side must be an operation application: {self.lhs}"
            )
        if isinstance(self.lhs, Ite):
            raise AxiomError(
                f"axiom left-hand side may not be an if-then-else: {self.lhs}"
            )
        missing = self.rhs.variables() - self.lhs.variables()
        if missing:
            names = ", ".join(sorted(v.name for v in missing))
            raise AxiomError(
                f"right-hand side variables not bound on the left: {names} "
                f"(in {self})"
            )

    @property
    def head(self) -> Operation:
        """The operation being defined (the LHS's outermost symbol)."""
        assert isinstance(self.lhs, App)
        return self.lhs.op

    def variables(self) -> set[Var]:
        return self.lhs.variables() | self.rhs.variables()

    def operations(self) -> set[Operation]:
        return self.lhs.operations() | self.rhs.operations()

    def is_left_linear(self) -> bool:
        """True when no variable occurs twice in the LHS.

        Left-linearity makes case-coverage analysis exact; the paper's
        axioms are all left-linear (equality tests go through ``ISSAME?``
        rather than repeated variables).
        """
        seen: set[Var] = set()
        for _, node in self.lhs.subterms():
            if isinstance(node, Var):
                if node in seen:
                    return False
                seen.add(node)
        return True

    def renamed(self, suffix: str) -> "Axiom":
        """A variant of the axiom with every variable renamed by ``suffix``."""
        from repro.algebra.substitution import Substitution

        renaming = {
            v: Var(v.name + suffix, v.sort) for v in self.variables()
        }
        sigma = Substitution(renaming)
        return Axiom(sigma.apply(self.lhs), sigma.apply(self.rhs), self.label)

    def __str__(self) -> str:
        prefix = f"({self.label}) " if self.label else ""
        return f"{prefix}{self.lhs} = {self.rhs}"


def lhs_argument_shape(axiom: Axiom) -> tuple[Optional[Operation], ...]:
    """The constructor pattern of each LHS argument.

    For ``FRONT(ADD(q, i))`` this is ``(ADD,)``; for
    ``IS_INBLOCK?(ADD(symtab, id, attrs), idl)`` it is ``(ADD, None)``
    where ``None`` marks a bare variable (matching any value).  Literals
    are reported as ``None`` too — they match only themselves, which the
    completeness checker flags separately.
    """
    assert isinstance(axiom.lhs, App)
    shape: list[Optional[Operation]] = []
    for arg in axiom.lhs.args:
        shape.append(arg.op if isinstance(arg, App) else None)
    return tuple(shape)


def check_definitional(axioms: Iterable[Axiom]) -> list[str]:
    """Sanity-check a set of axioms for the paper's definitional shape.

    Returns a list of human-readable problems (empty when clean):

    * LHS arguments nested more than one constructor deep;
    * non-left-linear axioms;
    * two axioms with identical LHS but different RHS (a direct
      inconsistency).
    """
    problems: list[str] = []
    seen: dict[Term, Axiom] = {}
    for axiom in axioms:
        assert isinstance(axiom.lhs, App)
        for arg in axiom.lhs.args:
            if isinstance(arg, App):
                for inner in arg.args:
                    if isinstance(inner, App):
                        problems.append(
                            f"{axiom}: LHS argument {arg} nests operation "
                            f"{inner.op.name}; only one constructor level "
                            f"is analysable"
                        )
        if not axiom.is_left_linear():
            problems.append(f"{axiom}: left-hand side is not linear")
        prior = seen.get(axiom.lhs)
        if prior is not None and prior.rhs != axiom.rhs:
            problems.append(
                f"axioms {prior} and {axiom} share a left-hand side but "
                f"disagree on the right"
            )
        seen.setdefault(axiom.lhs, axiom)
    return problems
