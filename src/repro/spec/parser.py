"""Recursive-descent parser for the specification DSL.

See :mod:`repro.spec.lexer` for the surface syntax.  Parsing needs an
*environment* of already-defined specifications so that ``uses Boolean``
can resolve the Boolean operations; :data:`STANDARD_ENVIRONMENT` holds
the prelude types.

The grammar::

    spec        ::= "type" IDENT params? uses? sections
    params      ::= "[" IDENT ("," IDENT)* "]"
    uses        ::= "uses" IDENT ("," IDENT)*
    sections    ::= (opsection | varsection | axsection)*
    opsection   ::= "operations" opdecl+
    opdecl      ::= IDENT ":" domain? "->" IDENT
    domain      ::= IDENT (("x"|",")? IDENT)*
    varsection  ::= "vars" vardecl+
    vardecl     ::= IDENT ("," IDENT)* ":" IDENT
    axsection   ::= "axioms" axiom+
    axiom       ::= label? term "=" term
    label       ::= "(" (IDENT|INT) ")"
    term        ::= "if" term "then" term "else" term
                  | "error"
                  | INT | STRING
                  | IDENT ("(" term ("," term)* ")")?

``error`` takes the sort demanded by its context; a literal takes the
sort demanded by its context (both are resolved during sort inference).
"""

from __future__ import annotations

from typing import Mapping, Optional, Sequence

from repro.algebra.signature import Operation, Signature
from repro.algebra.sorts import BOOLEAN, Sort
from repro.algebra.terms import App, Err, Ite, Lit, Term, Var
from repro.spec.axioms import Axiom
from repro.spec.lexer import Token, TokenKind, tokenize
from repro.spec.specification import Specification


class ParseError(Exception):
    """Raised on syntax or sort errors in a specification text."""


_KEYWORDS = {"type", "uses", "operations", "vars", "axioms", "if", "then", "else", "error"}


class _Parser:
    def __init__(self, tokens: Sequence[Token], environment: Mapping[str, Specification]):
        self._tokens = list(tokens)
        self._pos = 0
        self._environment = dict(environment)

    # -- token plumbing --------------------------------------------------
    def _peek(self) -> Token:
        return self._tokens[self._pos]

    def _next(self) -> Token:
        token = self._tokens[self._pos]
        if token.kind is not TokenKind.EOF:
            self._pos += 1
        return token

    def _expect(self, kind: TokenKind, what: str) -> Token:
        token = self._next()
        if token.kind is not kind:
            raise ParseError(f"expected {what}, found {token}")
        return token

    def _expect_keyword(self, word: str) -> Token:
        token = self._next()
        if token.kind is not TokenKind.IDENT or token.text != word:
            raise ParseError(f"expected {word!r}, found {token}")
        return token

    def _at_keyword(self, word: str) -> bool:
        token = self._peek()
        return token.kind is TokenKind.IDENT and token.text == word

    def _at_section_or_eof(self) -> bool:
        token = self._peek()
        if token.kind is TokenKind.EOF:
            return True
        return token.kind is TokenKind.IDENT and token.text in (
            "operations",
            "vars",
            "axioms",
            "type",
        )

    # -- grammar -----------------------------------------------------------
    def parse_spec(self) -> Specification:
        self._expect_keyword("type")
        name = self._expect(TokenKind.IDENT, "type name").text

        parameter_names: list[str] = []
        if self._peek().kind is TokenKind.LBRACKET:
            self._next()
            parameter_names.append(self._expect(TokenKind.IDENT, "parameter sort").text)
            while self._peek().kind is TokenKind.COMMA:
                self._next()
                parameter_names.append(
                    self._expect(TokenKind.IDENT, "parameter sort").text
                )
            self._expect(TokenKind.RBRACKET, "']'")

        uses: list[Specification] = []
        if self._at_keyword("uses"):
            self._next()
            uses.append(self._resolve_use())
            while self._peek().kind is TokenKind.COMMA:
                self._next()
                uses.append(self._resolve_use())

        signature = Signature()
        toi = Sort(name)
        signature.add_sort(toi)
        for param in parameter_names:
            signature.add_sort(Sort(param))
        known_sorts: dict[str, Sort] = {str(s): s for s in signature.sorts}
        for used in uses:
            for sort in used.full_signature().sorts:
                signature.add_sort(sort)
                known_sorts[str(sort)] = sort

        full_ops: dict[str, Operation] = {}
        for used in uses:
            for op in used.full_signature().operations:
                full_ops[op.name] = op

        variables: dict[str, Var] = {}
        axioms: list[Axiom] = []

        while not (
            self._peek().kind is TokenKind.EOF or self._at_keyword("type")
        ):
            if self._at_keyword("operations"):
                self._next()
                for op in self._parse_operations(signature, known_sorts):
                    full_ops[op.name] = op
            elif self._at_keyword("vars"):
                self._next()
                self._parse_vars(variables, known_sorts)
            elif self._at_keyword("axioms"):
                self._next()
                axioms.extend(self._parse_axioms(full_ops, variables, known_sorts))
            else:
                raise ParseError(
                    f"expected a section keyword (operations/vars/axioms), "
                    f"found {self._peek()}"
                )

        parameters = tuple(Sort(p) for p in parameter_names)
        return Specification(name, signature, toi, axioms, uses, parameters)

    def _resolve_use(self) -> Specification:
        token = self._expect(TokenKind.IDENT, "used specification name")
        spec = self._environment.get(token.text)
        if spec is None:
            known = ", ".join(sorted(self._environment)) or "<none>"
            raise ParseError(
                f"unknown specification {token.text!r} in uses clause "
                f"(known: {known})"
            )
        return spec

    def _parse_operations(
        self, signature: Signature, known_sorts: dict[str, Sort]
    ) -> list[Operation]:
        declared: list[Operation] = []
        while not self._at_section_or_eof():
            name_token = self._expect(TokenKind.IDENT, "operation name")
            self._expect(TokenKind.COLON, "':' after operation name")
            domain: list[Sort] = []
            while self._peek().kind is not TokenKind.ARROW:
                token = self._next()
                if token.kind is TokenKind.COMMA:
                    continue
                if token.kind is TokenKind.IDENT and token.text == "x":
                    continue
                if token.kind is not TokenKind.IDENT:
                    raise ParseError(f"expected a sort in domain, found {token}")
                domain.append(self._sort_named(token, known_sorts))
            self._expect(TokenKind.ARROW, "'->'")
            range_token = self._expect(TokenKind.IDENT, "range sort")
            range_sort = self._sort_named(range_token, known_sorts)
            operation = Operation(name_token.text, tuple(domain), range_sort)
            signature.add_operation(operation)
            declared.append(operation)
        return declared

    def _sort_named(self, token: Token, known_sorts: dict[str, Sort]) -> Sort:
        sort = known_sorts.get(token.text)
        if sort is None:
            known = ", ".join(sorted(known_sorts)) or "<none>"
            raise ParseError(
                f"unknown sort {token.text!r} at line {token.line} "
                f"(known: {known})"
            )
        return sort

    def _parse_vars(
        self, variables: dict[str, Var], known_sorts: dict[str, Sort]
    ) -> None:
        while not self._at_section_or_eof():
            names = [self._expect(TokenKind.IDENT, "variable name").text]
            while self._peek().kind is TokenKind.COMMA:
                self._next()
                names.append(self._expect(TokenKind.IDENT, "variable name").text)
            self._expect(TokenKind.COLON, "':' after variable name(s)")
            sort_token = self._expect(TokenKind.IDENT, "variable sort")
            sort = self._sort_named(sort_token, known_sorts)
            for name in names:
                if name in _KEYWORDS:
                    raise ParseError(f"variable name {name!r} is a keyword")
                variables[name] = Var(name, sort)

    def _parse_axioms(
        self,
        operations: Mapping[str, Operation],
        variables: Mapping[str, Var],
        known_sorts: Mapping[str, Sort],
    ) -> list[Axiom]:
        axioms: list[Axiom] = []
        while not self._at_section_or_eof():
            label = ""
            if self._peek().kind is TokenKind.LPAREN:
                # A parenthesised label only when followed by IDENT/INT + ')'.
                save = self._pos
                self._next()
                inner = self._next()
                closing = self._peek()
                if (
                    inner.kind in (TokenKind.IDENT, TokenKind.INT)
                    and closing.kind is TokenKind.RPAREN
                ):
                    self._next()
                    label = inner.text
                else:
                    self._pos = save
            lhs = self._parse_term(operations, variables, expected=None)
            self._expect(TokenKind.EQUALS, "'=' between axiom sides")
            rhs = self._parse_term(operations, variables, expected=lhs.sort)
            try:
                axioms.append(Axiom(lhs, rhs, label))
            except Exception as exc:  # fault-boundary: invalid axiom surfaces as a parse error
                raise ParseError(f"bad axiom {lhs} = {rhs}: {exc}") from exc
        return axioms

    def _parse_term(
        self,
        operations: Mapping[str, Operation],
        variables: Mapping[str, Var],
        expected: Optional[Sort],
    ) -> Term:
        token = self._peek()
        if token.kind is TokenKind.IDENT and token.text == "if":
            self._next()
            cond = self._parse_term(operations, variables, BOOLEAN)
            self._expect_keyword("then")
            then_branch = self._parse_term(operations, variables, expected)
            self._expect_keyword("else")
            else_branch = self._parse_term(
                operations, variables, then_branch.sort
            )
            return Ite(cond, then_branch, else_branch)
        if token.kind is TokenKind.IDENT and token.text == "error":
            self._next()
            if expected is None:
                raise ParseError(
                    f"cannot infer the sort of 'error' at line {token.line}; "
                    f"it may not stand alone on a left-hand side"
                )
            return Err(expected)
        if token.kind is TokenKind.INT:
            self._next()
            if expected is None:
                raise ParseError(
                    f"cannot infer the sort of literal {token.text} at "
                    f"line {token.line}"
                )
            return Lit(int(token.text), expected)
        if token.kind is TokenKind.STRING:
            self._next()
            if expected is None:
                raise ParseError(
                    f"cannot infer the sort of literal {token.text!r} at "
                    f"line {token.line}"
                )
            return Lit(token.text, expected)
        if token.kind is TokenKind.IDENT:
            self._next()
            name = token.text
            # Only consume a following '(' for operations that take
            # arguments: after a nullary constant like `true`, a '('
            # belongs to the next axiom's label.
            arity = operations[name].arity if name in operations else 0
            if self._peek().kind is TokenKind.LPAREN and arity:
                operation = operations[name]
                self._next()
                args: list[Term] = []
                for index in range(operation.arity):
                    if index:
                        self._expect(TokenKind.COMMA, "','")
                    args.append(
                        self._parse_term(
                            operations, variables, operation.domain[index]
                        )
                    )
                self._expect(TokenKind.RPAREN, f"')' closing {name}")
                return App(operation, args)
            # A bare identifier: a variable if declared, else a constant op.
            if name in variables:
                return variables[name]
            operation = operations.get(name)
            if operation is not None:
                if operation.arity:
                    raise ParseError(
                        f"operation {name!r} at line {token.line} needs "
                        f"{operation.arity} argument(s)"
                    )
                return App(operation, ())
            raise ParseError(
                f"unknown name {name!r} at line {token.line}: not a declared "
                f"variable or operation"
            )
        raise ParseError(f"expected a term, found {token}")


def _standard_environment() -> dict[str, Specification]:
    from repro.spec import prelude

    return {
        spec.name: spec
        for spec in (
            prelude.BOOLEAN_SPEC,
            prelude.NAT_SPEC,
            prelude.IDENTIFIER_SPEC,
            prelude.ITEM_SPEC,
            prelude.ATTRIBUTELIST_SPEC,
        )
    }


def parse_specification(
    source: str,
    environment: Optional[Mapping[str, Specification]] = None,
) -> Specification:
    """Parse one specification from ``source``.

    ``environment`` maps names usable in ``uses`` clauses to their
    specifications; it defaults to the prelude (Boolean, Nat, Identifier,
    Item, Attributelist).
    """
    env = _standard_environment()
    if environment:
        env.update(environment)
    parser = _Parser(tokenize(source), env)
    spec = parser.parse_spec()
    trailing = parser._peek()
    if trailing.kind is not TokenKind.EOF:
        raise ParseError(f"unexpected input after specification: {trailing}")
    return spec


def parse_term(
    source: str,
    spec: Specification,
    expected: Optional[Sort] = None,
    variables: Optional[Mapping[str, "Var"]] = None,
):
    """Parse one term in the context of ``spec``.

    Used by the CLI's ``eval`` command and the examples: operation names
    resolve against ``spec``'s full signature; ``variables`` (name →
    :class:`~repro.algebra.terms.Var`) may declare free variables, which
    ground terms do not need.
    """
    from repro.algebra.terms import Var

    operations = {
        op.name: op for op in spec.full_signature().operations
    }
    parser = _Parser(tokenize(source), {})
    term = parser._parse_term(operations, dict(variables or {}), expected)
    trailing = parser._peek()
    if trailing.kind is not TokenKind.EOF:
        raise ParseError(f"unexpected input after term: {trailing}")
    return term


def parse_specifications(
    source: str,
    environment: Optional[Mapping[str, Specification]] = None,
) -> list[Specification]:
    """Parse several ``type ...`` blocks; each may use earlier ones."""
    env = _standard_environment()
    if environment:
        env.update(environment)
    parser = _Parser(tokenize(source), env)
    specs: list[Specification] = []
    while parser._peek().kind is not TokenKind.EOF:
        spec = parser.parse_spec()
        parser._environment[spec.name] = spec
        specs.append(spec)
    return specs
