"""The algebraic specification language.

Axioms, the error algebra, specifications (with levels, enrichment and
schema instantiation), the text DSL, and the prelude of predefined types
(Boolean, Nat, Identifier, Item, Attributelist).
"""

from repro.spec.axioms import Axiom, AxiomError, check_definitional, lhs_argument_shape
from repro.spec.errors import AlgebraError, is_error, propagate_error
from repro.spec.specification import Specification, SpecificationError
from repro.spec.parser import (
    ParseError,
    parse_specification,
    parse_specifications,
    parse_term,
)
from repro.spec.printer import save_specification, term_to_dsl, to_dsl
from repro.spec.prelude import (
    ATTRIBUTELIST,
    ATTRIBUTELIST_SPEC,
    BOOLEAN_SPEC,
    FALSE,
    HASH,
    HASH_BUCKETS,
    IDENTIFIER,
    IDENTIFIER_SPEC,
    ISSAME,
    ITEM,
    ITEM_SPEC,
    NAT_SPEC,
    SUCC,
    TRUE,
    ZERO,
    attributes,
    boolean_term,
    false_term,
    identifier,
    is_false,
    is_true,
    item,
    nat_lit,
    nat_term,
    true_term,
)

__all__ = [
    "Axiom",
    "AxiomError",
    "check_definitional",
    "lhs_argument_shape",
    "AlgebraError",
    "is_error",
    "propagate_error",
    "Specification",
    "SpecificationError",
    "ParseError",
    "parse_specification",
    "parse_specifications",
    "parse_term",
    "save_specification",
    "term_to_dsl",
    "to_dsl",
    "ATTRIBUTELIST",
    "ATTRIBUTELIST_SPEC",
    "BOOLEAN_SPEC",
    "FALSE",
    "HASH",
    "HASH_BUCKETS",
    "IDENTIFIER",
    "IDENTIFIER_SPEC",
    "ISSAME",
    "ITEM",
    "ITEM_SPEC",
    "NAT_SPEC",
    "SUCC",
    "TRUE",
    "ZERO",
    "attributes",
    "boolean_term",
    "false_term",
    "identifier",
    "is_false",
    "is_true",
    "item",
    "nat_lit",
    "nat_term",
    "true_term",
]
