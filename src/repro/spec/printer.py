"""Printing specifications back to the DSL.

:func:`to_dsl` emits text that :func:`~repro.spec.parser.parse_specification`
accepts and that round-trips: parsing the output yields a specification
with the same signature, axioms and labels.  Useful for saving
programmatically built or repaired specifications (e.g. the output of a
:class:`~repro.analysis.heuristics.CompletionSession`) to ``.spec``
files.
"""

from __future__ import annotations


from repro.algebra.terms import App, Err, Ite, Lit, Term, Var
from repro.spec.specification import Specification


class UnprintableSpecification(Exception):
    """Raised when a specification cannot be expressed in the DSL
    (e.g. it contains literal values with no textual form)."""


def term_to_dsl(term: Term) -> str:
    """``term`` in DSL syntax."""
    if isinstance(term, Var):
        return term.name
    if isinstance(term, Err):
        return "error"
    if isinstance(term, Lit):
        if isinstance(term.value, str):
            return f"'{term.value}'"
        if isinstance(term.value, int) and not isinstance(term.value, bool):
            return str(term.value)
        raise UnprintableSpecification(
            f"literal {term.value!r} has no DSL form"
        )
    if isinstance(term, Ite):
        return (
            f"if {term_to_dsl(term.cond)} "
            f"then {term_to_dsl(term.then_branch)} "
            f"else {term_to_dsl(term.else_branch)}"
        )
    assert isinstance(term, App)
    if not term.args:
        return term.op.name
    inner = ", ".join(term_to_dsl(arg) for arg in term.args)
    return f"{term.op.name}({inner})"


def to_dsl(spec: Specification) -> str:
    """``spec`` as a parseable DSL ``type`` block.

    The ``uses`` clause names the directly used specifications; callers
    saving to a file must provide those in the parse environment (the
    prelude types resolve automatically).
    """
    lines = [f"type {spec.name}"]
    if spec.parameter_sorts:
        params = ", ".join(str(s) for s in spec.parameter_sorts)
        lines[0] = f"type {spec.name} [{params}]"
    if spec.uses:
        lines.append("uses " + ", ".join(u.name for u in spec.uses))
    lines.append("")
    lines.append("operations")
    for operation in spec.own_operations():
        domain = " x ".join(str(s) for s in operation.domain)
        profile = f"{domain} -> {operation.range}" if domain else f"-> {operation.range}"
        lines.append(f"  {operation.name}: {profile}")

    variables = sorted(
        {v for axiom in spec.axioms for v in axiom.variables()},
        key=lambda v: (str(v.sort), v.name),
    )
    if variables:
        lines.append("")
        lines.append("vars")
        by_sort: dict[str, list[str]] = {}
        for variable in variables:
            by_sort.setdefault(str(variable.sort), []).append(variable.name)
        for sort_name, names in by_sort.items():
            lines.append(f"  {', '.join(names)}: {sort_name}")

    if spec.axioms:
        lines.append("")
        lines.append("axioms")
        for axiom in spec.axioms:
            label = f"({axiom.label}) " if axiom.label else ""
            lines.append(
                f"  {label}{term_to_dsl(axiom.lhs)} = {term_to_dsl(axiom.rhs)}"
            )
    return "\n".join(lines) + "\n"


def save_specification(spec: Specification, path: str) -> None:
    """Write ``spec`` (DSL form) to ``path``."""
    with open(path, "w") as handle:
        handle.write(to_dsl(spec))
