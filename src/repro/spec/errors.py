"""The error algebra.

Guttag's axioms use a distinguished value ``error`` "with the property
that the value of any operation applied to an argument list containing
error is error":

    f(x1, ..., xi, error, x_{i+2}, ..., xn) = error

This module provides that strictness rule as a term transformation, plus
the Python-level exception used when a concrete implementation (or a
builtin such as ``HASH``) wants to yield the error value.
"""

from __future__ import annotations

from typing import Optional

from repro.algebra.terms import App, Err, Ite, Term


class AlgebraError(Exception):
    """Python-level signal for the algebra's ``error`` value.

    Concrete implementations of abstract operations raise this (e.g. a
    linked-stack ``POP`` on the empty stack) and the testing/verification
    harness converts it back to the :class:`~repro.algebra.terms.Err`
    term, so errors can be compared like any other result.
    """

    def __init__(self, message: str = "error") -> None:
        super().__init__(message)


def propagate_error(term: Term) -> Optional[Term]:
    """One step of error strictness at the root of ``term``.

    Returns ``Err(term.sort)`` if the rule applies, else ``None``:

    * an operation applied to any ``error`` argument is ``error``;
    * ``if error then a else b`` is ``error`` (the condition is an
      argument list position like any other).

    The *branches* of an if-then-else do not propagate: the conditional
    chooses between them, so an error in the untaken branch is harmless
    (e.g. axiom 6 of Queue maps REMOVE(ADD(NEW, i)) through a branch
    whose sibling would be an error).
    """
    if isinstance(term, App):
        if any(isinstance(arg, Err) for arg in term.args):
            return Err(term.sort)
        return None
    if isinstance(term, Ite):
        if isinstance(term.cond, Err):
            return Err(term.sort)
        return None
    return None


def is_error(term: Term) -> bool:
    """True when ``term`` is an error constant."""
    return isinstance(term, Err)
