"""Lexer for the specification DSL.

The DSL mirrors the paper's notation as closely as plain text allows::

    type Queue [Item]
    uses Boolean

    operations
      NEW:       -> Queue
      ADD:       Queue Item -> Queue
      FRONT:     Queue -> Item
      REMOVE:    Queue -> Queue
      IS_EMPTY?: Queue -> Boolean

    vars
      q: Queue
      i: Item

    axioms
      (1) IS_EMPTY?(NEW) = true
      (2) IS_EMPTY?(ADD(q, i)) = false
      (3) FRONT(NEW) = error
      (4) FRONT(ADD(q, i)) = if IS_EMPTY?(q) then i else FRONT(q)
      (5) REMOVE(NEW) = error
      (6) REMOVE(ADD(q, i)) = if IS_EMPTY?(q) then NEW
                              else ADD(REMOVE(q), i)

Identifiers may contain letters, digits, ``_``, ``.`` and a trailing
``?`` (the paper's ``IS_EMPTY?``, ``IS.NEWSTACK?``).  ``--`` starts a
comment running to end of line.  String literals (single or double
quoted) and integers become :class:`~repro.algebra.terms.Lit` leaves.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum, auto
from typing import Iterator


class TokenKind(Enum):
    IDENT = auto()
    INT = auto()
    STRING = auto()
    ARROW = auto()       # ->
    COLON = auto()       # :
    COMMA = auto()       # ,
    EQUALS = auto()      # =
    LPAREN = auto()      # (
    RPAREN = auto()      # )
    LBRACKET = auto()    # [
    RBRACKET = auto()    # ]
    CROSS = auto()       # x (domain separator) — lexed as IDENT, promoted by parser
    EOF = auto()


@dataclass(frozen=True)
class Token:
    kind: TokenKind
    text: str
    line: int
    column: int

    def __str__(self) -> str:
        return f"{self.text!r} at line {self.line}, column {self.column}"


class LexError(Exception):
    """Raised on characters the DSL does not use."""


_SINGLE_CHAR = {
    ":": TokenKind.COLON,
    ",": TokenKind.COMMA,
    "=": TokenKind.EQUALS,
    "(": TokenKind.LPAREN,
    ")": TokenKind.RPAREN,
    "[": TokenKind.LBRACKET,
    "]": TokenKind.RBRACKET,
}


def _is_ident_start(char: str) -> bool:
    return char.isalpha() or char == "_"


def _is_ident_char(char: str) -> bool:
    return char.isalnum() or char in "_."


def tokenize(source: str) -> list[Token]:
    """Tokenize ``source`` into a list ending with an EOF token."""
    tokens: list[Token] = []
    line = 1
    column = 1
    i = 0
    n = len(source)
    while i < n:
        char = source[i]
        if char == "\n":
            line += 1
            column = 1
            i += 1
            continue
        if char in " \t\r":
            i += 1
            column += 1
            continue
        if source.startswith("--", i):
            while i < n and source[i] != "\n":
                i += 1
            continue
        if source.startswith("->", i):
            tokens.append(Token(TokenKind.ARROW, "->", line, column))
            i += 2
            column += 2
            continue
        if char in _SINGLE_CHAR:
            tokens.append(Token(_SINGLE_CHAR[char], char, line, column))
            i += 1
            column += 1
            continue
        if char in "'\"":
            quote = char
            j = i + 1
            while j < n and source[j] != quote:
                if source[j] == "\n":
                    raise LexError(
                        f"unterminated string at line {line}, column {column}"
                    )
                j += 1
            if j >= n:
                raise LexError(
                    f"unterminated string at line {line}, column {column}"
                )
            text = source[i + 1 : j]
            tokens.append(Token(TokenKind.STRING, text, line, column))
            column += j + 1 - i
            i = j + 1
            continue
        if char.isdigit():
            j = i
            while j < n and source[j].isdigit():
                j += 1
            tokens.append(Token(TokenKind.INT, source[i:j], line, column))
            column += j - i
            i = j
            continue
        if _is_ident_start(char):
            j = i
            while j < n and _is_ident_char(source[j]):
                j += 1
            if j < n and source[j] == "?":
                j += 1
            tokens.append(Token(TokenKind.IDENT, source[i:j], line, column))
            column += j - i
            i = j
            continue
        raise LexError(f"unexpected character {char!r} at line {line}, column {column}")
    tokens.append(Token(TokenKind.EOF, "", line, column))
    return tokens


def iter_tokens(source: str) -> Iterator[Token]:
    return iter(tokenize(source))
