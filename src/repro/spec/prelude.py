"""Predefined specifications the paper's types build on.

Guttag's examples take several types as given:

* ``Boolean`` — ranges of the ``IS_...?`` observers, and the sort of
  if-then-else conditions.  Specified here algebraically (TRUE/FALSE
  constructors, NOT/AND/OR defined by axioms).
* ``Identifier`` — "SAME? is part of the specification of an
  independently defined type Identifier"; the Array implementation also
  assumes a ``HASH: Identifier -> [1..n]`` operation.  We give
  Identifier literal inhabitants (strings) and implement ``ISSAME?`` and
  ``HASH`` as imported (builtin) operations.
* ``Nat`` — hash values and bounded-queue capacities.
* ``Item`` — the Queue schema's parameter type; opaque literals.
* ``Attributelist`` — the attributes stored in a symbol table; opaque
  literals, as in the paper, which never inspects them.

Each is exposed both as a :class:`~repro.spec.specification.Specification`
and as module-level :class:`~repro.algebra.signature.Operation` constants
for building terms by hand.
"""

from __future__ import annotations

from repro.algebra.signature import Operation, Signature
from repro.algebra.sorts import BOOLEAN, NAT, Sort
from repro.algebra.terms import App, Lit, Term, app, var
from repro.spec.axioms import Axiom
from repro.spec.specification import Specification

# ----------------------------------------------------------------------
# Boolean
# ----------------------------------------------------------------------
TRUE = Operation("true", (), BOOLEAN)
FALSE = Operation("false", (), BOOLEAN)
NOT = Operation("not", (BOOLEAN,), BOOLEAN)
AND = Operation("and", (BOOLEAN, BOOLEAN), BOOLEAN)
OR = Operation("or", (BOOLEAN, BOOLEAN), BOOLEAN)

_b = var("b", BOOLEAN)

BOOLEAN_SPEC = Specification(
    "Boolean",
    Signature(
        [BOOLEAN],
        [TRUE, FALSE, NOT, AND, OR],
    ),
    BOOLEAN,
    axioms=[
        Axiom(app(NOT, app(TRUE)), app(FALSE), "B1"),
        Axiom(app(NOT, app(FALSE)), app(TRUE), "B2"),
        Axiom(app(AND, app(TRUE), _b), _b, "B3"),
        Axiom(app(AND, app(FALSE), _b), app(FALSE), "B4"),
        Axiom(app(OR, app(TRUE), _b), app(TRUE), "B5"),
        Axiom(app(OR, app(FALSE), _b), _b, "B6"),
    ],
)


# The canonical interned TRUE/FALSE nodes.  Hash consing makes the
# ``term is _TRUE_NODE`` test below decide almost every call; the
# structural fallback covers terms built while interning was disabled.
_TRUE_NODE = app(TRUE)
_FALSE_NODE = app(FALSE)


def true_term() -> App:
    return _TRUE_NODE


def false_term() -> App:
    return _FALSE_NODE


def boolean_term(value: bool) -> App:
    """The TRUE or FALSE term for a Python bool."""
    return _TRUE_NODE if value else _FALSE_NODE


def is_true(term: Term) -> bool:
    if term is _TRUE_NODE:
        return True
    return isinstance(term, App) and term.op == TRUE


def is_false(term: Term) -> bool:
    if term is _FALSE_NODE:
        return True
    return isinstance(term, App) and term.op == FALSE


# ----------------------------------------------------------------------
# Nat
# ----------------------------------------------------------------------
ZERO = Operation("zero", (), NAT)
SUCC = Operation("succ", (NAT,), NAT)

NAT_SPEC = Specification(
    "Nat",
    Signature([NAT], [ZERO, SUCC]),
    NAT,
)


def nat_term(value: int) -> Term:
    """``value`` as a Peano numeral.  Small values only; literals are the
    efficient representation (:func:`nat_lit`)."""
    if value < 0:
        raise ValueError("naturals cannot be negative")
    term: Term = app(ZERO)
    for _ in range(value):
        term = app(SUCC, term)
    return term


def nat_lit(value: int) -> Lit:
    """``value`` as a Nat literal (used by HASH results)."""
    if value < 0:
        raise ValueError("naturals cannot be negative")
    return Lit(value, NAT)


# ----------------------------------------------------------------------
# Identifier
# ----------------------------------------------------------------------
IDENTIFIER = Sort("Identifier")

#: Size of the hash range used by the Array implementation; the paper
#: writes ``HASH: Identifier -> [1, 2, ..., n]``.
HASH_BUCKETS = 16


def _issame(left: object, right: object) -> bool:
    return left == right


def _hash_identifier(name: object) -> int:
    # Stable across processes (unlike Python's randomised str hash): the
    # bucket an identifier lands in must not change between test runs.
    total = 0
    for char in str(name):
        total = (total * 31 + ord(char)) % (2**31)
    return total % HASH_BUCKETS + 1


ISSAME = Operation(
    "ISSAME?", (IDENTIFIER, IDENTIFIER), BOOLEAN, builtin=_issame
)
HASH = Operation("HASH", (IDENTIFIER,), NAT, builtin=_hash_identifier)

from repro.algebra.terms import Var as _Var

_id = _Var("id", IDENTIFIER)

IDENTIFIER_SPEC = Specification(
    "Identifier",
    Signature([IDENTIFIER, BOOLEAN, NAT], [ISSAME, HASH]),
    IDENTIFIER,
    axioms=[
        # Reflexivity, for *symbolic* identifiers: the builtin decides
        # ISSAME? on literals, but provers reason about arbitrary
        # identifiers (skolem constants), where only this law applies.
        Axiom(app(ISSAME, _id, _id), app(TRUE), "I1"),
    ],
    uses=[BOOLEAN_SPEC, NAT_SPEC],
)


def identifier(name: str) -> Lit:
    """An Identifier literal."""
    return Lit(name, IDENTIFIER)


# ----------------------------------------------------------------------
# Item (Queue schema parameter) and Attributelist
# ----------------------------------------------------------------------
ITEM = Sort("Item")

ITEM_SPEC = Specification("Item", Signature([ITEM]), ITEM)


def item(value: object) -> Lit:
    """An Item literal (any hashable payload)."""
    return Lit(value, ITEM)


ATTRIBUTELIST = Sort("Attributelist")

ATTRIBUTELIST_SPEC = Specification(
    "Attributelist", Signature([ATTRIBUTELIST]), ATTRIBUTELIST
)


def attributes(value: object) -> Lit:
    """An Attributelist literal (any hashable payload)."""
    return Lit(value, ATTRIBUTELIST)
