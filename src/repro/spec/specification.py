"""Algebraic specifications of abstract data types.

A :class:`Specification` packages the two halves of Guttag's definition:
the *syntactic specification* (a signature, with one distinguished "type
of interest") and the *set of relations* (axioms).  Specifications form
levels: the Symboltable spec *uses* Identifier and AttributeList; its
representation level uses Stack and Array; the knows-list variant adds a
Knowlist level.  ``uses`` records that structure and ``flat()`` collapses
it for the engines that want one big rule set.
"""

from __future__ import annotations

from typing import Iterable, Mapping, Optional, Sequence

from repro.algebra.signature import Operation, Signature
from repro.algebra.sorts import Sort
from repro.spec.axioms import Axiom


class SpecificationError(Exception):
    """Raised for malformed specifications."""


class Specification:
    """An abstract data type: signature + type of interest + axioms.

    Parameters
    ----------
    name:
        Name of the specification, conventionally the type of interest's
        name (``"Queue"``, ``"Symboltable"``).
    signature:
        The operations of this level only (not of used specs).
    type_of_interest:
        The sort this specification defines.  Guttag's analyses are all
        relative to this sort: constructors generate its values,
        sufficient completeness asks that observers on it be defined.
    axioms:
        The relations.  Their operations must be resolvable in this
        signature or a used specification's.
    uses:
        Specifications this level builds on (e.g. Boolean, Identifier).
    parameter_sorts:
        Sorts that act as schema parameters (``Item`` in Queue-of-Items).
        Recorded so :meth:`instantiated` can substitute actuals.
    """

    def __init__(
        self,
        name: str,
        signature: Signature,
        type_of_interest: Sort,
        axioms: Sequence[Axiom] = (),
        uses: Sequence["Specification"] = (),
        parameter_sorts: Sequence[Sort] = (),
    ) -> None:
        if not name:
            raise SpecificationError("specification name must be non-empty")
        if str(type_of_interest) not in {str(s) for s in signature.sorts}:
            raise SpecificationError(
                f"type of interest {type_of_interest} not declared in the "
                f"signature of {name}"
            )
        self.name = name
        self.signature = signature
        self.type_of_interest = type_of_interest
        self.axioms: tuple[Axiom, ...] = tuple(axioms)
        self.uses: tuple[Specification, ...] = tuple(uses)
        self.parameter_sorts: tuple[Sort, ...] = tuple(parameter_sorts)
        self._full_signature: Optional[Signature] = None
        self._validate()

    # ------------------------------------------------------------------
    # Validation
    # ------------------------------------------------------------------
    def _validate(self) -> None:
        full = self.full_signature()
        for axiom in self.axioms:
            for operation in axiom.operations():
                if not full.has_operation(operation.name):
                    raise SpecificationError(
                        f"{self.name}: axiom {axiom} uses operation "
                        f"{operation.name!r} not declared here or in any "
                        f"used specification"
                    )
                declared = full.operation(operation.name)
                if declared != operation:
                    raise SpecificationError(
                        f"{self.name}: axiom {axiom} uses {operation} but the "
                        f"declaration is {declared}"
                    )

    # ------------------------------------------------------------------
    # Structure
    # ------------------------------------------------------------------
    def full_signature(self) -> Signature:
        """This level's signature merged with every used level's."""
        if self._full_signature is None:
            merged = Signature(self.signature.sorts, self.signature.operations)
            for used in self.uses:
                merged = merged.merged(used.full_signature())
            self._full_signature = merged
        return self._full_signature

    def all_axioms(self) -> tuple[Axiom, ...]:
        """Axioms of this level and of every used level, deduplicated."""
        seen: dict[tuple, Axiom] = {}
        for spec in self._levels():
            for axiom in spec.axioms:
                seen.setdefault((axiom.lhs, axiom.rhs), axiom)
        return tuple(seen.values())

    def _levels(self) -> list["Specification"]:
        """This spec and all (transitively) used specs, deepest last."""
        order: list[Specification] = []
        visited: set[int] = set()

        def visit(spec: Specification) -> None:
            if id(spec) in visited:
                return
            visited.add(id(spec))
            order.append(spec)
            for used in spec.uses:
                visit(used)

        visit(self)
        return order

    def level_names(self) -> tuple[str, ...]:
        return tuple(spec.name for spec in self._levels())

    def find_level(self, name: str) -> "Specification":
        for spec in self._levels():
            if spec.name == name:
                return spec
        raise SpecificationError(f"{self.name}: no used specification {name!r}")

    # ------------------------------------------------------------------
    # Convenience lookups
    # ------------------------------------------------------------------
    def operation(self, name: str) -> Operation:
        return self.full_signature().operation(name)

    def sort(self, name: str) -> Sort:
        return self.full_signature().sort(name)

    def own_operations(self) -> tuple[Operation, ...]:
        """Operations declared at this level (not inherited)."""
        return self.signature.operations

    def axioms_for(self, operation: Operation) -> tuple[Axiom, ...]:
        """All axioms (any level) whose LHS head is ``operation``."""
        return tuple(a for a in self.all_axioms() if a.head == operation)

    # ------------------------------------------------------------------
    # Derived specifications
    # ------------------------------------------------------------------
    def enriched(
        self,
        name: str,
        operations: Iterable[Operation] = (),
        axioms: Iterable[Axiom] = (),
        sorts: Iterable[Sort] = (),
    ) -> "Specification":
        """A new specification extending this one.

        Enrichment is the paper's adaptation story: the knows-list change
        replaces ENTERBLOCK's axioms but keeps everything else; we model
        it as building a fresh level that uses the unchanged parts.
        """
        signature = Signature(self.signature.sorts, self.signature.operations)
        for sort in sorts:
            signature.add_sort(sort)
        for operation in operations:
            signature.add_operation(operation)
        return Specification(
            name,
            signature,
            self.type_of_interest,
            tuple(self.axioms) + tuple(axioms),
            self.uses,
            self.parameter_sorts,
        )

    def without_axioms(self, labels: Iterable[str]) -> tuple[Axiom, ...]:
        """This level's axioms minus those labelled in ``labels``.

        Helper for building variants ("all relations, and only those
        relations, that explicitly deal with the ENTERBLOCK operation
        would have to be altered").
        """
        drop = set(labels)
        return tuple(a for a in self.axioms if a.label not in drop)

    def instantiated(
        self, name: str, binding: Mapping[Sort, Sort]
    ) -> "Specification":
        """Instantiate schema parameters (``Item`` -> an actual sort).

        Only parameter sorts may be rebound; the actual sorts must come
        from used specifications (or be parameter-free).
        """
        bad = set(binding) - set(self.parameter_sorts)
        if bad:
            names = ", ".join(sorted(str(s) for s in bad))
            raise SpecificationError(
                f"{self.name}: cannot rebind non-parameter sorts: {names}"
            )
        bind = dict(binding)
        signature = Signature()
        for sort in self.signature.sorts:
            signature.add_sort(sort.instantiate(bind))
        for used in self.uses:
            for sort in used.full_signature().sorts:
                signature.add_sort(sort)
        operations = {
            op.name: op.instantiate(bind) for op in self.signature.operations
        }
        for op in operations.values():
            signature.add_operation(op)

        def rebuild(term):
            from repro.algebra.terms import App, Err, Ite, Lit, Var

            if isinstance(term, Var):
                return Var(term.name, term.sort.instantiate(bind))
            if isinstance(term, Lit):
                return Lit(term.value, term.sort.instantiate(bind))
            if isinstance(term, Err):
                return Err(term.sort.instantiate(bind))
            if isinstance(term, App):
                new_op = operations.get(term.op.name, term.op)
                return App(new_op, [rebuild(a) for a in term.args])
            if isinstance(term, Ite):
                return Ite(
                    rebuild(term.cond),
                    rebuild(term.then_branch),
                    rebuild(term.else_branch),
                )
            raise TypeError(f"unknown term node {term!r}")

        axioms = tuple(
            Axiom(rebuild(a.lhs), rebuild(a.rhs), a.label) for a in self.axioms
        )
        remaining = tuple(s for s in self.parameter_sorts if s not in bind)
        return Specification(
            name,
            signature,
            self.type_of_interest.instantiate(bind),
            axioms,
            self.uses,
            remaining,
        )

    # ------------------------------------------------------------------
    def __str__(self) -> str:
        lines = [f"Type: {self.name}"]
        if self.parameter_sorts:
            params = ", ".join(str(s) for s in self.parameter_sorts)
            lines[0] += f" [{params}]"
        lines.append("Operations:")
        lines.extend(f"  {op}" for op in self.signature.operations)
        lines.append("Axioms:")
        lines.extend(f"  {axiom}" for axiom in self.axioms)
        if self.uses:
            used = ", ".join(u.name for u in self.uses)
            lines.append(f"Uses: {used}")
        return "\n".join(lines)

    def __repr__(self) -> str:
        return (
            f"Specification({self.name!r}, operations="
            f"{len(self.signature.operations)}, axioms={len(self.axioms)})"
        )
