"""Command-line interface.

Five subcommands, mirroring the workflows the paper describes::

    python -m repro check FILE        analyse spec file(s): completeness
                                      + consistency; nonzero exit on NO
    python -m repro show FILE         pretty-print the specification(s)
    python -m repro prompts FILE      list the missing-case prompts
    python -m repro eval FILE TERM    normalise TERM under the (last)
                                      specification in FILE
    python -m repro trace FILE TERM   normalise TERM with the span tracer
                                      on, emitting a JSONL trace and a
                                      per-rule self-time profile
    python -m repro trace-diff A B    compare two JSONL traces: per-rule
                                      firing-count and self-time deltas
    python -m repro compile FILE      scope/type-check a Block program
                                      [--dialect plain|knows]
                                      [--backend concrete|native|spec]

``--metrics-out FILE`` (on ``check``, ``eval``, ``trace`` and ``prove``)
writes the process-wide metrics snapshot — every engine's counters plus
the intern-table and rule-index substrate counters — as JSON.

Spec files contain one or more ``type ...`` blocks in the DSL (see
README); later blocks may use earlier ones.
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

from repro.analysis import (
    check_consistency,
    check_sufficient_completeness,
    prompts_for,
)
from repro.report import banner, format_specification
from repro.spec.parser import parse_specifications, parse_term
from repro.rewriting import BACKENDS, RewriteEngine


def _load_specs(path: str):
    with open(path) as handle:
        return parse_specifications(handle.read())


def _dump_metrics(path: Optional[str]) -> None:
    """Write the process-wide aggregated metrics snapshot as JSON."""
    if not path:
        return
    import json

    from repro.obs import aggregate_snapshot

    with open(path, "w") as handle:
        json.dump(aggregate_snapshot(), handle, indent=2, sort_keys=True)
        handle.write("\n")


def cmd_check(args: argparse.Namespace) -> int:
    from repro.analysis import check_axiom_coverage

    status = 0
    for spec in _load_specs(args.file):
        completeness = check_sufficient_completeness(
            spec, workers=args.workers
        )
        consistency = check_consistency(spec)
        print(banner(f"{spec.name}"))
        print(completeness)
        print()
        print(consistency)
        if args.coverage:
            print()
            coverage = check_axiom_coverage(spec)
            print(coverage)
            if not coverage.fully_covered:
                status = 1
        if not completeness.sufficiently_complete or not consistency.consistent:
            status = 1
    _dump_metrics(args.metrics_out)
    return status


def cmd_show(args: argparse.Namespace) -> int:
    for spec in _load_specs(args.file):
        print(format_specification(spec))
        print()
    return 0


def cmd_prompts(args: argparse.Namespace) -> int:
    status = 0
    for spec in _load_specs(args.file):
        prompts = prompts_for(spec)
        if prompts:
            status = 1
            print(f"{spec.name}:")
            for prompt in prompts:
                print(f"  {prompt}")
        else:
            print(f"{spec.name}: sufficiently complete, nothing to supply")
    return status


def cmd_eval(args: argparse.Namespace) -> int:
    from repro.runtime import EvaluationBudget

    specs = _load_specs(args.file)
    spec = specs[-1]
    terms = [parse_term(text, spec) for text in args.term]
    budget = EvaluationBudget(
        fuel=args.fuel if args.fuel is not None else 200_000,
        deadline=args.deadline,
        max_intern_growth=args.max_intern_growth,
    )
    engine = RewriteEngine.for_specification(
        spec, backend=args.backend, budget=budget
    )
    failed = False
    if args.resilient:
        outcomes = engine.normalize_many_outcomes(
            terms, workers=args.workers
        )
        for outcome in outcomes:
            if outcome.ok:
                print(outcome.term)
            else:
                failed = True
                print(f"-- {outcome}", file=sys.stderr)
                for step in outcome.trace:
                    print(f"--   cycle: {step}", file=sys.stderr)
    else:
        for result in engine.normalize_many(terms, workers=args.workers):
            print(result)
    if args.stats:
        stats = engine.stats
        line = (
            f"-- {stats.steps} step(s), "
            f"{stats.rule_firings} rule firing(s), "
            f"{stats.builtin_firings} builtin call(s)"
        )
        if args.workers is not None and args.workers > 1:
            pool = engine._pools.get(args.workers)
            if pool is not None:
                shipped = pool.metrics_snapshot()
                firings = sum(
                    shipped["families"]
                    .get("engine.rule_firings", {})
                    .values()
                )
                steps = shipped["counters"].get("engine.steps", 0)
                line += (
                    f" in-process; workers shipped {steps} step(s), "
                    f"{firings} rule firing(s)"
                )
        print(line, file=sys.stderr)
    _dump_metrics(args.metrics_out)
    engine.close_pools()
    if args.resilient and failed:
        return 3
    return 0


def cmd_trace(args: argparse.Namespace) -> int:
    import json

    from repro.obs import Tracer, firing_counts, rule_profile, tracing
    from repro.report import format_rule_profile
    from repro.rewriting.engine import RewriteLimitError
    from repro.runtime import EvaluationBudget

    specs = _load_specs(args.file)
    spec = specs[-1]
    term = parse_term(args.term, spec)
    budget = EvaluationBudget(
        fuel=args.fuel if args.fuel is not None else 200_000
    )
    engine = RewriteEngine.for_specification(
        spec, backend=args.backend, budget=budget
    )
    sink = open(args.out, "w") if args.out else None
    failure = None
    try:
        tracer = Tracer(sink=sink, sample=args.sample)
        with tracing(tracer):
            try:
                result = engine.normalize(term)
            except RewriteLimitError as exc:
                failure = exc
    finally:
        if sink is not None:
            sink.close()
    if args.out is None:
        for event in tracer.events:
            print(json.dumps(event, default=str))
    if failure is not None:
        print(f"-- {failure}", file=sys.stderr)
    else:
        print(f"-- normal form: {result}", file=sys.stderr)
    counts = firing_counts(tracer.events)
    print(
        f"-- {len(tracer.events)} trace event(s), "
        f"{sum(counts.values())} rule firing(s) across "
        f"{len(counts)} rule(s)",
        file=sys.stderr,
    )
    profile = rule_profile(tracer.events)
    if profile:
        print(format_rule_profile(profile, limit=args.top), file=sys.stderr)
    if args.otlp_out:
        from repro.obs.otlp import to_otlp

        document = to_otlp(
            tracer.events,
            tracer.trace_id,
            span_hex=tracer.span_hex,
            resource={"service.name": "repro-cli"},
        )
        with open(args.otlp_out, "w") as handle:
            json.dump(document, handle, indent=2)
            handle.write("\n")
        print(f"-- OTLP document written to {args.otlp_out}", file=sys.stderr)
    _dump_metrics(args.metrics_out)
    return 3 if failure is not None else 0


def cmd_trace_diff(args: argparse.Namespace) -> int:
    import json

    from repro.obs import profile_diff, read_trace
    from repro.report import format_profile_diff

    diff = profile_diff(read_trace(args.trace_a), read_trace(args.trace_b))
    if args.json:
        print(json.dumps(diff, indent=2))
    else:
        print(f"-- {args.trace_b} minus {args.trace_a}", file=sys.stderr)
        print(format_profile_diff(diff, limit=args.top))
    moved = any(row["firings_delta"] for row in diff)
    return 1 if moved and args.fail_on_firing_delta else 0


def cmd_compile(args: argparse.Namespace) -> int:
    from repro.compiler import (
        ConcreteBackend,
        KnowsConcreteBackend,
        KnowsSpecBackend,
        NativeBackend,
        SpecBackend,
        analyze_source,
    )

    with open(args.file) as handle:
        source = handle.read()
    knows = args.dialect == "knows"
    backends = {
        ("concrete", False): ConcreteBackend,
        ("native", False): NativeBackend,
        ("spec", False): SpecBackend,
        ("concrete", True): KnowsConcreteBackend,
        ("spec", True): KnowsSpecBackend,
    }
    factory = backends.get((args.backend, knows))
    if factory is None:
        print(
            f"backend {args.backend!r} is not available for the "
            f"{args.dialect} dialect",
            file=sys.stderr,
        )
        return 2
    result = analyze_source(source, factory(), args.dialect)
    for diagnostic in result.diagnostics.diagnostics:
        print(diagnostic)
    if not result.diagnostics.diagnostics:
        print("clean")
    print(
        f"-- {result.stats.total} symbol-table operation(s)",
        file=sys.stderr,
    )
    return 0 if result.ok else 1


def cmd_run(args: argparse.Namespace) -> int:
    from repro.compiler.interp import BlockRuntimeError, run_source
    from repro.compiler.vm import compile_and_run

    with open(args.file) as handle:
        source = handle.read()
    runner = compile_and_run if args.engine == "vm" else run_source
    try:
        result = runner(source)
    except BlockRuntimeError as exc:
        print(f"runtime error: {exc}", file=sys.stderr)
        return 1
    for name in sorted(result.globals):
        print(f"{name} = {result.globals[name]}")
    print(f"-- {result.steps} step(s)", file=sys.stderr)
    return 0


def cmd_serve(args: argparse.Namespace) -> int:
    import threading

    from repro.obs import Tracer
    from repro.obs import trace as _trace
    from repro.serve import ReproServer, ServeLimits

    specs = _load_specs(args.file)
    limits = ServeLimits(
        max_fuel=args.max_fuel,
        max_deadline=args.max_deadline,
        max_batch=args.max_batch,
        max_inflight=args.max_inflight,
        queue_depth=args.queue_depth,
        queue_timeout=args.queue_timeout,
    )
    sink = open(args.trace_out, "w") if args.trace_out else None
    if sink is not None:
        _trace.ACTIVE = Tracer(sink=sink, sample=args.trace_sample or 1.0)
    server = ReproServer(
        specs,
        backend=args.backend,
        workers=args.workers,
        limits=limits,
        host=args.host,
        port=args.port,
        unix_socket=args.unix_socket,
        trace_sample=args.trace_sample,
        otlp_path=args.otlp_out,
        otlp_endpoint=args.otlp_endpoint,
        access_log=args.access_log,
    )
    server.start()
    host, port = server.address
    where = host if args.unix_socket else f"http://{host}:{port}"
    names = ", ".join(sorted(server.sessions))
    print(f"serving {names} on {where}", flush=True)
    try:
        threading.Event().wait()
    except KeyboardInterrupt:
        pass
    finally:
        server.close()
        if sink is not None:
            _trace.ACTIVE = None
            sink.close()
    return 0


def cmd_prove(args: argparse.Namespace) -> int:
    from repro.verify.client import parse_client_program, verify_client

    specs = _load_specs(args.specfile)
    with open(args.programfile) as handle:
        source = handle.read()
    program = parse_client_program(source, *specs)
    report = verify_client(program)
    print(report)
    _dump_metrics(args.metrics_out)
    return 0 if report.all_proved else 1


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Algebraic specification of abstract data types "
        "(Guttag 1977).",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    metrics_help = (
        "write the process-wide metrics snapshot (engine counters, "
        "intern/memo hit rates, rule firings) to FILE as JSON"
    )

    check = commands.add_parser("check", help="analyse a spec file")
    check.add_argument("file")
    check.add_argument(
        "--coverage",
        action="store_true",
        help="also report per-axiom firing counts (dead-axiom lint)",
    )
    check.add_argument("--metrics-out", default=None, help=metrics_help)
    check.add_argument(
        "--workers",
        type=int,
        default=None,
        help="shard the reduction-sampling stage across N worker "
        "processes (report is identical to the serial run)",
    )
    check.set_defaults(run=cmd_check)

    show = commands.add_parser("show", help="pretty-print a spec file")
    show.add_argument("file")
    show.set_defaults(run=cmd_show)

    prompts = commands.add_parser(
        "prompts", help="list missing-case prompts for a spec file"
    )
    prompts.add_argument("file")
    prompts.set_defaults(run=cmd_prompts)

    evaluate = commands.add_parser(
        "eval", help="normalise one or more terms under a spec file"
    )
    evaluate.add_argument("file")
    evaluate.add_argument(
        "term",
        nargs="+",
        help="term(s) to normalise; several terms evaluate as one batch",
    )
    evaluate.add_argument(
        "--stats", action="store_true", help="print rewrite statistics"
    )
    evaluate.add_argument(
        "--workers",
        type=int,
        default=None,
        metavar="N",
        help="shard a multi-term batch across N worker processes "
        "(default: in-process serial evaluation)",
    )
    evaluate.add_argument(
        "--backend",
        choices=BACKENDS,
        default="interpreted",
        help="evaluation backend (all compute the same normal forms)",
    )
    evaluate.add_argument(
        "--fuel", type=int, default=None, help="rewrite-step budget"
    )
    evaluate.add_argument(
        "--deadline",
        type=float,
        default=None,
        help="wall-clock budget in seconds",
    )
    evaluate.add_argument(
        "--max-intern-growth",
        type=int,
        default=None,
        help="cap on new term nodes interned during evaluation",
    )
    evaluate.add_argument(
        "--resilient",
        action="store_true",
        help="report a structured outcome (exit 3) instead of an error "
        "when the budget runs out; divergence prints its cycle",
    )
    evaluate.add_argument("--metrics-out", default=None, help=metrics_help)
    evaluate.set_defaults(run=cmd_eval)

    trace = commands.add_parser(
        "trace",
        help="normalise a term with the span tracer on, emitting a "
        "JSONL trace and a per-rule self-time profile",
    )
    trace.add_argument("file")
    trace.add_argument("term")
    trace.add_argument(
        "--backend",
        choices=BACKENDS,
        default="interpreted",
        help="evaluation backend (traces differ in shape — per-step "
        "events vs aggregated firings — but agree in counts)",
    )
    trace.add_argument(
        "--fuel", type=int, default=None, help="rewrite-step budget"
    )
    trace.add_argument(
        "--sample",
        type=float,
        default=1.0,
        help="fraction of top-level spans to record (deterministic; "
        "default 1.0 records everything)",
    )
    trace.add_argument(
        "--out",
        default=None,
        help="write the JSONL trace to FILE (default: stdout)",
    )
    trace.add_argument(
        "--otlp-out",
        default=None,
        metavar="FILE",
        help="also write the trace as one OTLP/JSON document to FILE "
        "(ResourceSpans, ready for any OpenTelemetry consumer)",
    )
    trace.add_argument(
        "--top",
        type=int,
        default=10,
        help="rows in the per-rule self-time profile (default 10)",
    )
    trace.add_argument("--metrics-out", default=None, help=metrics_help)
    trace.set_defaults(run=cmd_trace)

    trace_diff = commands.add_parser(
        "trace-diff",
        help="compare two JSONL traces: per-rule firing-count and "
        "self-time deltas (B minus A), biggest movers first",
    )
    trace_diff.add_argument("trace_a")
    trace_diff.add_argument("trace_b")
    trace_diff.add_argument(
        "--top",
        type=int,
        default=10,
        help="rows in the delta table (default 10)",
    )
    trace_diff.add_argument(
        "--json",
        action="store_true",
        help="emit the full delta rows as JSON instead of a table",
    )
    trace_diff.add_argument(
        "--fail-on-firing-delta",
        action="store_true",
        help="exit 1 if any rule's firing count differs (backend "
        "equivalence check)",
    )
    trace_diff.set_defaults(run=cmd_trace_diff)

    run_cmd = commands.add_parser(
        "run", help="execute a Block program"
    )
    run_cmd.add_argument("file")
    run_cmd.add_argument(
        "--engine", choices=("interp", "vm"), default="vm"
    )
    run_cmd.set_defaults(run=cmd_run)

    serve = commands.add_parser(
        "serve",
        help="run the spec-serving daemon: load spec file(s) once, "
        "answer batched normalize/check/prove over HTTP",
    )
    serve.add_argument("file")
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument(
        "--port",
        type=int,
        default=0,
        help="TCP port (default 0 = ephemeral; the bound port is printed)",
    )
    serve.add_argument(
        "--unix-socket",
        default=None,
        metavar="PATH",
        help="listen on a unix socket instead of TCP",
    )
    serve.add_argument(
        "--backend", choices=BACKENDS, default="interpreted"
    )
    serve.add_argument(
        "--workers",
        type=int,
        default=None,
        metavar="N",
        help="shard batch requests across N self-healing worker "
        "processes (default: in-process serial evaluation)",
    )
    serve.add_argument(
        "--max-fuel",
        type=int,
        default=200_000,
        help="ceiling on per-request fuel budgets",
    )
    serve.add_argument(
        "--max-deadline",
        type=float,
        default=30.0,
        help="ceiling on per-request deadlines, seconds",
    )
    serve.add_argument(
        "--max-batch", type=int, default=256, help="terms per request"
    )
    serve.add_argument(
        "--max-inflight",
        type=int,
        default=4,
        help="requests evaluating concurrently before queueing starts",
    )
    serve.add_argument(
        "--queue-depth",
        type=int,
        default=16,
        help="queued requests beyond which load is shed with 429",
    )
    serve.add_argument(
        "--queue-timeout",
        type=float,
        default=5.0,
        help="seconds a queued request waits before being shed with 503",
    )
    serve.add_argument(
        "--trace-out",
        default=None,
        metavar="FILE",
        help="emit per-request JSONL span events to FILE",
    )
    serve.add_argument(
        "--trace-sample",
        type=float,
        default=None,
        metavar="FRACTION",
        help="fraction of requests to trace (0.0-1.0; default 1.0 when "
        "any trace/OTLP output is configured, otherwise tracing is off)",
    )
    serve.add_argument(
        "--otlp-out",
        default=None,
        metavar="FILE",
        help="append one OTLP/JSON document per traced request to FILE",
    )
    serve.add_argument(
        "--otlp-endpoint",
        default=None,
        metavar="URL",
        help="POST each traced request's OTLP/JSON document to URL "
        "(an OpenTelemetry collector's /v1/traces)",
    )
    serve.add_argument(
        "--access-log",
        default=None,
        metavar="FILE",
        help="append one JSON line per request: status, shed reason, "
        "queue/eval/total timings, trace id",
    )
    serve.set_defaults(run=cmd_serve)

    prove = commands.add_parser(
        "prove",
        help="verify a client program's assertions from the axioms alone",
    )
    prove.add_argument("specfile")
    prove.add_argument("programfile")
    prove.add_argument("--metrics-out", default=None, help=metrics_help)
    prove.set_defaults(run=cmd_prove)

    compile_ = commands.add_parser(
        "compile", help="scope/type-check a Block program"
    )
    compile_.add_argument("file")
    compile_.add_argument(
        "--dialect", choices=("plain", "knows"), default="plain"
    )
    compile_.add_argument(
        "--backend",
        choices=("concrete", "native", "spec"),
        default="concrete",
    )
    compile_.set_defaults(run=cmd_compile)

    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.run(args)
    except FileNotFoundError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except Exception as exc:  # fault-boundary: CLI surfaces errors, not tracebacks
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    raise SystemExit(main())
