"""Pretty-printing of specifications, terms and analysis artefacts.

The default ``str`` forms are compact; this module adds the layouts the
examples and benchmark harnesses print: boxed specification listings,
indented if-then-else, and aligned report tables.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.algebra.terms import App, Ite, Term
from repro.spec.axioms import Axiom
from repro.spec.specification import Specification


def format_term(term: Term, indent: int = 0, width: int = 72) -> str:
    """Render ``term``, breaking if-then-else over lines when long."""
    flat = str(term)
    if len(flat) + indent <= width and "\n" not in flat:
        return flat
    pad = " " * indent
    if isinstance(term, Ite):
        cond = format_term(term.cond, indent + 3, width)
        then_branch = format_term(term.then_branch, indent + 5, width)
        else_branch = format_term(term.else_branch, indent + 5, width)
        return (
            f"if {cond}\n{pad}then {then_branch}\n{pad}else {else_branch}"
        )
    if isinstance(term, App) and term.args:
        inner = (",\n" + pad + " " * (len(term.op.name) + 1)).join(
            format_term(arg, indent + len(term.op.name) + 1, width)
            for arg in term.args
        )
        return f"{term.op.name}({inner})"
    return flat


def format_axiom(axiom: Axiom, width: int = 72) -> str:
    label = f"({axiom.label}) " if axiom.label else ""
    lhs = str(axiom.lhs)
    rhs = format_term(axiom.rhs, indent=len(label) + len(lhs) + 3, width=width)
    return f"{label}{lhs} = {rhs}"


def format_specification(spec: Specification, width: int = 72) -> str:
    """The paper's presentation: Type / Operations / Axioms."""
    lines = [f"Type: {spec.name}"]
    if spec.parameter_sorts:
        params = ", ".join(str(s) for s in spec.parameter_sorts)
        lines[0] = f"Type: {spec.name} [{params}]"
    lines.append("Operations:")
    name_width = max(
        (len(op.name) + 1 for op in spec.own_operations()), default=0
    )
    for operation in spec.own_operations():
        domain = " x ".join(str(s) for s in operation.domain)
        arrow = f"{domain} -> {operation.range}" if domain else f"-> {operation.range}"
        lines.append(f"  {operation.name + ':':<{name_width + 1}} {arrow}")
    lines.append("Axioms:")
    for axiom in spec.axioms:
        lines.append(f"  {format_axiom(axiom, width)}")
    if spec.uses:
        lines.append(f"Uses: {', '.join(u.name for u in spec.uses)}")
    return "\n".join(lines)


def format_table(
    headers: Sequence[str], rows: Iterable[Sequence[object]]
) -> str:
    """A plain aligned text table (benchmark harness output)."""
    materialized = [[str(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in materialized:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    def render(cells: Sequence[str]) -> str:
        return "  ".join(
            cell.ljust(width) for cell, width in zip(cells, widths)
        ).rstrip()

    lines = [render(list(headers)), render(["-" * w for w in widths])]
    lines.extend(render(row) for row in materialized)
    return "\n".join(lines)


def banner(title: str, char: str = "=", width: int = 72) -> str:
    """A section banner for example/bench output."""
    bar = char * width
    return f"{bar}\n{title}\n{bar}"


# ----------------------------------------------------------------------
# Observability renderings
# ----------------------------------------------------------------------
def format_metrics(snapshot: dict) -> str:
    """Render a metrics snapshot (one registry's
    :meth:`~repro.obs.metrics.MetricsRegistry.snapshot` or the merged
    :func:`~repro.obs.metrics.aggregate_snapshot`) as aligned tables.

    Counters and gauges share one name/value table; histograms add a
    per-bucket table; counter families (rule firings, outcome statuses)
    are ranked busiest-first.
    """
    sections: list[str] = []
    scalars = [
        (name, value)
        for name, value in sorted(
            list(snapshot.get("counters", {}).items())
            + list(snapshot.get("gauges", {}).items())
        )
    ]
    if scalars:
        sections.append(format_table(("metric", "value"), scalars))
    for name, hist in sorted(snapshot.get("histograms", {}).items()):
        if not hist["count"]:
            continue
        bounds = hist["bounds"]
        labels = [f"<= {bound:g}" for bound in bounds] + [
            f"> {bounds[-1]:g}" if bounds else "all"
        ]
        rows = [
            (label, count)
            for label, count in zip(labels, hist["counts"])
            if count
        ]
        rows.append(("total", hist["count"]))
        mean = hist["sum"] / hist["count"]
        rows.append(("mean", f"{mean:.6g}"))
        sections.append(format_table((name, "count"), rows))
    for name, labels in sorted(snapshot.get("families", {}).items()):
        if not labels:
            continue
        sections.append(
            format_table(
                (name, "count"),
                sorted(labels.items(), key=lambda kv: (-kv[1], kv[0])),
            )
        )
    return "\n\n".join(sections) if sections else "(no metrics recorded)"


def format_rule_profile(profile: Sequence[dict], limit: int = 10) -> str:
    """Render a per-rule self-time profile (the rows
    :func:`repro.obs.profile.rule_profile` produces) as a top-N table.

    ``~`` marks self times estimated by proportional attribution (the
    compiled backend's aggregated firing events carry no per-step
    timestamps)."""
    rows = []
    for row in list(profile)[:limit]:
        marker = "~" if row.get("estimated") else ""
        rows.append(
            (
                row["firings"],
                f"{marker}{row['self_s']:.6f}",
                f"{row['share'] * 100:.1f}%",
                row["rule"],
            )
        )
    if not rows:
        return "(no rule firings recorded)"
    return format_table(("firings", "self_s", "share", "rule"), rows)


def format_profile_diff(diff: Sequence[dict], limit: int = 10) -> str:
    """Render a trace comparison (the rows
    :func:`repro.obs.profile.profile_diff` produces) as a top-N table
    of the biggest movers.  Deltas are ``b`` minus ``a``; ``~`` marks
    rows whose self time on either side was estimated by proportional
    attribution."""
    rows = []
    for row in list(diff)[:limit]:
        marker = "~" if row.get("estimated") else ""
        delta = row["firings_delta"]
        rows.append(
            (
                row["firings_a"],
                row["firings_b"],
                f"{delta:+d}" if delta else "0",
                f"{row['self_s_a']:.6f}",
                f"{row['self_s_b']:.6f}",
                f"{marker}{row['self_s_delta']:+.6f}",
                row["rule"],
            )
        )
    if not rows:
        return "(no rule firings in either trace)"
    return format_table(
        (
            "firings_a",
            "firings_b",
            "delta",
            "self_s_a",
            "self_s_b",
            "self_delta",
            "rule",
        ),
        rows,
    )
