"""Formatting helpers for terms, specifications and reports."""

from repro.report.pretty import (
    banner,
    format_axiom,
    format_metrics,
    format_profile_diff,
    format_rule_profile,
    format_specification,
    format_table,
    format_term,
)

__all__ = [
    "banner",
    "format_axiom",
    "format_metrics",
    "format_profile_diff",
    "format_rule_profile",
    "format_specification",
    "format_table",
    "format_term",
]
