"""Sharded parallel evaluation.

Worker processes are natural shards of the evaluation runtime — each
owns its intern table, shape memo, and warm engines — so batches
parallelise by shipping chunks of terms across a portable wire format
(:mod:`repro.parallel.wire`) to a :class:`~repro.parallel.pool.ShardPool`
of workers, with serial-identical per-item semantics and worker metrics
merged back into the process-wide observability view.

The rest of the system reaches this layer through ``workers=N`` on the
batch entry points (``RewriteEngine.normalize_many`` /
``normalize_many_outcomes``, ``SymbolicInterpreter.value_many`` /
``value_many_outcomes``, the facade batch methods, the oracle, the
model checker) and ``--workers`` on the CLI.
"""

from repro.parallel.pool import ShardPool, close_all_pools
from repro.parallel.wire import (
    WireError,
    decode_budget,
    decode_outcomes,
    decode_ruleset,
    decode_term,
    decode_terms,
    encode_budget,
    encode_outcomes,
    encode_ruleset,
    encode_term,
    encode_terms,
)

__all__ = [
    "ShardPool",
    "WireError",
    "close_all_pools",
    "decode_budget",
    "decode_outcomes",
    "decode_ruleset",
    "decode_term",
    "decode_terms",
    "encode_budget",
    "encode_outcomes",
    "encode_ruleset",
    "encode_term",
    "encode_terms",
]
