"""Sharded parallel evaluation: a pool of worker-process engines.

Hash consing and memo tables are per-process, so worker processes are
naturally isolated *shards*: each worker owns its intern table, its
discrimination-tree shape memo, and one warm
:class:`~repro.rewriting.engine.RewriteEngine` per rule-set
fingerprint.  A :class:`ShardPool` splits a batch into contiguous
chunks, ships each chunk to a worker over the :mod:`repro.parallel.wire`
format (terms re-intern on arrival), and reassembles replies in input
order — callers observe exactly the serial contract:

* ``normalize_many``: results in input order; the first limit (by item
  index) raises the same :class:`RewriteLimitError` serial evaluation
  would have raised.
* ``normalize_many_outcomes``: one :class:`Outcome` per term, in input
  order, with per-item budgets and the fault-isolation ladder applied
  *shard-locally* — a pathological term truncates its own outcome, not
  its neighbours, exactly as in-process.

Observability crosses the boundary too: every reply carries the
worker's cumulative metrics snapshot (its engine counters, rule-firing
family, and substrate intern/memo rates), the pool keeps the latest
snapshot per worker, and registers itself with
:func:`repro.obs.metrics.register_snapshot_source` so the process-wide
:func:`~repro.obs.metrics.aggregate_snapshot` — and therefore the CLI's
``--metrics-out`` — stays honest under sharding.

Failure posture: losing the pool must never lose the batch.  A dead
worker, an unpicklable payload, or a platform without multiprocessing
degrades the affected chunks (and every later batch) to a parent-side
serial engine, recorded under the ``parallel.degradations`` counter
family.
"""

from __future__ import annotations

import atexit
import multiprocessing
import os
import threading
import time
import weakref
from concurrent.futures import ProcessPoolExecutor
from typing import Iterable, Optional

from contextlib import nullcontext

from repro.obs import metrics as _metrics
from repro.obs import trace as _trace
from repro.parallel import wire
from repro.rewriting.engine import RewriteEngine, RewriteLimitError
from repro.rewriting.rules import RuleSet
from repro.runtime import faults as _faults
from repro.runtime.budget import DEFAULT_FUEL, EvaluationBudget
from repro.runtime.outcome import Outcome

__all__ = ["ShardPool", "close_all_pools"]

#: Every live pool, so interpreter exit can reap worker processes even
#: when a caller forgot ``close()``.  Weak references: a pool's own
#: ``__del__`` stays the normal cleanup path.
_LIVE_POOLS: "weakref.WeakSet[ShardPool]" = weakref.WeakSet()


def close_all_pools(wait: bool = True) -> None:
    """Close every live :class:`ShardPool` in the process.

    Registered with :mod:`atexit`, so no worker process outlives its
    parent — a daemon that dies without running its shutdown path must
    not leave orphaned shard workers behind.  ``wait=True`` joins the
    workers, making "they are gone" observable rather than eventual.
    """
    for pool in list(_LIVE_POOLS):
        pool.close(wait=wait)


atexit.register(close_all_pools)


def _chunk_spans(total: int, chunk_size: int) -> list[tuple[int, int]]:
    """Contiguous ``(start, end)`` spans covering ``range(total)``."""
    return [
        (start, min(start + chunk_size, total))
        for start in range(0, total, chunk_size)
    ]


def _encode_limit(exc: RewriteLimitError) -> dict:
    enc = wire.TermTableEncoder()
    return {
        **enc.tables(),
        "term": enc.term_id(exc.term),
        "fuel": exc.fuel,
        "reason": exc.reason,
        "trace": [enc.term_id(t) for t in exc.trace],
        "detail": exc.detail,
    }


def _decode_limit(payload: dict) -> RewriteLimitError:
    nodes = wire.decode_nodes(payload)
    return RewriteLimitError(
        nodes[payload["term"]],
        payload["fuel"],
        reason=payload["reason"],
        trace=tuple(nodes[i] for i in payload["trace"]),
        detail=payload["detail"],
    )


class ShardPool:
    """Worker-process evaluation for one rule set + engine configuration.

    The pool is bound at construction: rules, backend, fuel, default
    budget, memo size/policy, index mode.  Workers warm an engine for
    that configuration once (keyed by the rule set's structural
    fingerprint) and reuse it across batches.  The executor itself is
    lazy — no processes exist until the first batch (or :meth:`warm`).

    ``fault_injector`` is for the chaos suite: a picklable
    :class:`~repro.runtime.faults.FaultInjector` installed in every
    worker, so the PR-3 fault-isolation ladder can be exercised
    shard-locally.  Note that probabilistic injectors draw from a
    per-process seeded stream, so only ``probability=1.0`` plans are
    shard-invariant.
    """

    def __init__(
        self,
        rules: RuleSet,
        workers: int,
        *,
        backend: str = "interpreted",
        fuel: int = DEFAULT_FUEL,
        budget: Optional[EvaluationBudget] = None,
        cache_size: int = 4096,
        cache_policy: str = "lru",
        use_index: "bool | str" = True,
        fusion=None,
        chunk_size: Optional[int] = None,
        mp_context: Optional[str] = None,
        fault_injector=None,
    ) -> None:
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        if fusion is not None and not isinstance(fusion, str):
            raise wire.WireError(
                "only named fusion plans (or None for auto) can cross a "
                f"process boundary, got {fusion!r}"
            )
        self.workers = workers
        self.rules = rules
        self.rule_count = len(rules)
        self.fuel = fuel
        self.chunk_size = chunk_size
        self._options = {
            "backend": backend,
            "fuel": fuel,
            "budget": wire.encode_budget(budget),
            "cache_size": cache_size,
            "cache_policy": cache_policy,
            "use_index": use_index,
            "fusion": fusion,
        }
        # The worker-side engine cache key: the structural rule-set
        # fingerprint with every engine option folded in, so two pools
        # over the same rules but different configurations never share
        # a warm engine by accident.
        self.key = rules.fingerprint(
            extra="shard-pool-v1;" + repr(sorted(self._options.items()))
        )
        # Encoding the rule set now surfaces unwireable rules (lambda
        # builtins, exotic literals) in the constructor, where the
        # caller can still choose serial evaluation.
        self._spec_wire = {
            **self._options,
            "key": self.key,
            "rules": wire.encode_ruleset(rules),
        }
        self._fault_injector = fault_injector
        self._mp_context = mp_context
        self._executor: Optional[ProcessPoolExecutor] = None
        self._broken = False
        self._serial: Optional[RewriteEngine] = None
        # Engines are not thread-safe; a daemon's request threads can
        # reach the serial fallback concurrently after degradation.
        self._serial_lock = threading.Lock()
        self._worker_snapshots: dict[int, dict] = {}
        registry = _metrics.MetricsRegistry("parallel")
        self._registry = registry
        self.c_batches = registry.counter(
            "parallel.batches", "batches dispatched through the shard pool"
        )
        self.c_chunks = registry.counter(
            "parallel.chunks", "chunks shipped to worker processes"
        )
        self.c_items = registry.counter(
            "parallel.items", "terms evaluated via the shard pool"
        )
        self.c_serial_items = registry.counter(
            "parallel.serial_items",
            "terms evaluated parent-side after pool degradation",
        )
        self.degradations = registry.family(
            "parallel.degradations",
            "pool->serial degradations by cause",
        )
        _metrics.register_snapshot_source(self)
        _LIVE_POOLS.add(self)

    # -- lifecycle ------------------------------------------------------
    def _ensure_executor(self) -> Optional[ProcessPoolExecutor]:
        if self._broken:
            return None
        if self._executor is None:
            try:
                methods = multiprocessing.get_all_start_methods()
                method = self._mp_context or (
                    "fork" if "fork" in methods else methods[0]
                )
                self._executor = ProcessPoolExecutor(
                    max_workers=self.workers,
                    mp_context=multiprocessing.get_context(method),
                    initializer=_worker_init,
                    initargs=(self._spec_wire, self._fault_injector),
                )
            except Exception:  # fault-boundary: no usable multiprocessing -> serial
                self._degrade("pool_unavailable")
                return None
        return self._executor

    def warm(self) -> list[int]:
        """Force every worker to spawn and build its engine; returns
        the worker pids.  Benchmarks call this so measurements cover
        evaluation and wire traffic, not process start-up."""
        executor = self._ensure_executor()
        if executor is None:
            return []
        try:
            futures = [
                executor.submit(_worker_ready, self.key)
                for _ in range(self.workers)
            ]
            return sorted({future.result() for future in futures})
        except Exception:  # fault-boundary: broken pool -> serial from now on
            self._degrade("warm_failed")
            return []

    def close(self, wait: bool = False) -> None:
        """Shut the worker processes down.  Later batches run serially
        parent-side; the last shipped worker snapshots remain merged in
        :meth:`metrics_snapshot`.  ``wait=True`` joins the workers
        before returning — lifecycle tests and the atexit sweep use it
        to assert no worker outlives the parent."""
        executor, self._executor = self._executor, None
        self._broken = True
        if executor is not None:
            executor.shutdown(wait=wait, cancel_futures=True)

    def __enter__(self) -> "ShardPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __del__(self) -> None:
        try:
            self.close()
        except Exception:  # fault-boundary: interpreter teardown order
            pass

    # -- degradation ----------------------------------------------------
    def _degrade(self, cause: str) -> None:
        self.degradations.inc(cause)
        self._broken = True
        executor, self._executor = self._executor, None
        if executor is not None:
            executor.shutdown(wait=False, cancel_futures=True)

    def _serial_engine(self) -> RewriteEngine:
        engine = self._serial
        if engine is None:
            opts = self._options
            engine = self._serial = RewriteEngine(
                self.rules,
                fuel=opts["fuel"],
                use_index=opts["use_index"],
                cache_size=opts["cache_size"],
                cache_policy=opts["cache_policy"],
                backend=opts["backend"],
                budget=wire.decode_budget(opts["budget"]),
                fusion=opts["fusion"],
            )
        return engine

    def _serial_chunk(self, terms, budget, mode):
        self.c_serial_items.inc(len(terms))
        with self._serial_lock:
            engine = self._serial_engine()
            if mode == "outcomes":
                return engine.normalize_many_outcomes(terms, budget)
            return engine.normalize_many(terms, budget)

    # -- dispatch -------------------------------------------------------
    def _chunk_size_for(self, total: int) -> int:
        if self.chunk_size is not None:
            return max(1, self.chunk_size)
        # Four chunks per worker: small enough that the executor's
        # dynamic assignment evens out unequal per-item costs, large
        # enough to amortise wire encoding per chunk.
        return max(1, -(-total // (self.workers * 4)))

    def _run_batch(self, terms: list, budget, mode: str) -> list:
        self.c_batches.inc()
        self.c_items.inc(len(terms))
        tracer = _trace.ACTIVE
        span_scope = (
            tracer.span(
                "parallel.batch",
                mode=mode,
                items=len(terms),
                workers=self.workers,
            )
            if tracer is not None
            else nullcontext()
        )
        with span_scope as batch_span:
            return self._dispatch_batch(
                terms, budget, mode, tracer, batch_span
            )

    def _dispatch_batch(
        self, terms: list, budget, mode: str, tracer, batch_span
    ) -> list:
        # ``batch_span`` is not None only when this batch is being
        # recorded; then workers arm a child tracer per chunk and ship
        # their span batches home for merging under the batch span.
        traced = batch_span is not None
        executor = self._ensure_executor()
        if executor is None:
            return self._serial_chunk(terms, budget, mode)
        budget_wire = wire.encode_budget(budget)
        spans = _chunk_spans(len(terms), self._chunk_size_for(len(terms)))
        self.c_chunks.inc(len(spans))
        try:
            pending = [
                (
                    start,
                    end,
                    executor.submit(
                        _worker_run,
                        self.key,
                        mode,
                        wire.encode_terms(terms[start:end]),
                        budget_wire,
                        traced,
                    ),
                )
                for start, end in spans
            ]
        except Exception:  # fault-boundary: submission failed -> whole batch serial
            self._degrade("submit_failed")
            return self._serial_chunk(terms, budget, mode)
        results: list = []
        for start, end, future in pending:
            try:
                reply = future.result()
            except Exception:  # fault-boundary: dead worker -> serial for this chunk on
                self._degrade("worker_died")
                results.extend(
                    self._serial_chunk(terms[start:end], budget, mode)
                )
                continue
            self._worker_snapshots[reply["pid"]] = reply["snapshot"]
            if traced and reply.get("spans") is not None:
                tracer.merge_remote_events(
                    wire.decode_span_events(reply["spans"]),
                    parent=batch_span,
                    pid=reply["pid"],
                )
            if "limit" in reply:
                # Serial normalize_many raises at the first failing
                # item; chunks are ordered, workers stop at their first
                # failure, and every earlier chunk completed — so this
                # is that item.
                raise _decode_limit(reply["limit"])
            if mode == "outcomes":
                results.extend(wire.decode_outcomes(reply["outcomes"]))
            else:
                results.extend(wire.decode_terms(reply["results"]))
        return results

    # -- the serial-contract entry points -------------------------------
    def normalize_many(
        self,
        terms: Iterable,
        budget: Optional[EvaluationBudget] = None,
    ) -> list:
        """Batch value-mode normalisation with serial semantics (first
        limit raises), sharded across the workers."""
        terms = terms if isinstance(terms, list) else list(terms)
        return self._run_batch(terms, budget, "normalize")

    def normalize_many_outcomes(
        self,
        terms: Iterable,
        budget: Optional[EvaluationBudget] = None,
    ) -> list[Outcome]:
        """Fault-isolating batch evaluation, sharded across the
        workers; one outcome per term, in input order."""
        terms = terms if isinstance(terms, list) else list(terms)
        return self._run_batch(terms, budget, "outcomes")

    # -- observability --------------------------------------------------
    def metrics_snapshot(self) -> dict:
        """The merged metrics shipped home by the workers.

        Counters, histograms and counter families (rule firings,
        fallbacks, outcome statuses) sum across workers; gauges are
        dropped — they describe worker-process state (live intern-table
        size) that has no meaningful process-wide sum.  Registered as a
        snapshot source, so :func:`repro.obs.metrics.aggregate_snapshot`
        folds this in automatically.
        """
        merged = _metrics.merge_snapshots(self._worker_snapshots.values())
        merged["gauges"] = {}
        return merged


# ----------------------------------------------------------------------
# Worker-process side
# ----------------------------------------------------------------------
# One engine per spec key, warmed in the initializer and reused across
# every chunk the worker ever receives.  With the fork start method the
# child inherits the parent's interned terms and module caches (the
# codegen module cache is lock-guarded for exactly this reason); with
# spawn it starts cold.  Either way the metrics registries are reset
# after the engine is built, so shipped snapshots measure evaluation
# work only — not inherited parent history, not engine construction.

_WORKER_SPECS: dict[str, dict] = {}
_WORKER_ENGINES: dict[str, RewriteEngine] = {}


def _worker_init(spec_wire: dict, fault_injector=None) -> None:
    _WORKER_SPECS[spec_wire["key"]] = spec_wire
    # Tracing stays parent-side: a forked worker would otherwise append
    # to the parent's JSONL sink through an inherited file handle.
    _trace.ACTIVE = None
    # A forked worker also inherits the parent's registered snapshot
    # sources — other live pools, whose metrics_snapshot() would replay
    # *parent-side* worker history into this worker's shipped snapshot.
    # A worker process aggregates only its own registries.
    _metrics._SNAPSHOT_SOURCES.clear()
    if fault_injector is not None:
        _faults.install(fault_injector)
    _worker_engine(spec_wire["key"])
    for registry in list(_metrics._REGISTRIES):
        registry.reset()


def _worker_engine(key: str) -> RewriteEngine:
    engine = _WORKER_ENGINES.get(key)
    if engine is None:
        spec = _WORKER_SPECS[key]
        engine = RewriteEngine(
            wire.decode_ruleset(spec["rules"]),
            fuel=spec["fuel"],
            use_index=spec["use_index"],
            cache_size=spec["cache_size"],
            cache_policy=spec["cache_policy"],
            backend=spec["backend"],
            budget=wire.decode_budget(spec["budget"]),
            fusion=spec["fusion"],
        )
        if spec["backend"] != "interpreted":
            engine._delegate_engine()  # build closures/modules now
        _WORKER_ENGINES[key] = engine
    return engine


def _worker_ready(key: str, pause: float = 0.05) -> int:
    """Spawn/warm probe: block briefly so every pool worker takes one
    probe, and report this worker's pid."""
    _worker_engine(key)
    time.sleep(pause)
    return os.getpid()


def _worker_chunk(engine, terms, budget, mode) -> dict:
    if mode == "outcomes":
        outcomes = engine.normalize_many_outcomes(terms, budget)
        return {"outcomes": wire.encode_outcomes(outcomes)}
    try:
        return {
            "results": wire.encode_terms(engine.normalize_many(terms, budget))
        }
    except RewriteLimitError as exc:
        return {"limit": _encode_limit(exc)}


def _worker_run(
    key: str, mode: str, payload: dict, budget_wire, traced: bool = False
) -> dict:
    engine = _worker_engine(key)
    terms = wire.decode_terms(payload)
    budget = wire.decode_budget(budget_wire)
    if traced:
        # The parent recorded this batch, so re-arm a chunk-lifetime
        # child tracer (the initializer disarmed tracing: a forked
        # worker would otherwise write the parent's JSONL sink through
        # an inherited handle).  Its events ship home in the reply;
        # the parent re-parents them under its batch span.
        tracer = _trace.Tracer(sample=1.0)
        with _trace.tracing(tracer):
            with tracer.span(
                "worker.chunk", pid=os.getpid(), mode=mode, items=len(terms)
            ):
                reply = _worker_chunk(engine, terms, budget, mode)
        reply["spans"] = wire.encode_span_events(tracer.events)
    else:
        reply = _worker_chunk(engine, terms, budget, mode)
    # Cumulative since worker start: the parent keeps the latest
    # snapshot per pid, so re-shipping the running total keeps the
    # merge idempotent across chunks.
    reply["snapshot"] = _metrics.aggregate_snapshot()
    reply["pid"] = os.getpid()
    return reply
