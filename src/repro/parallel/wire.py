"""A portable wire format for terms, outcomes, rule sets and budgets.

Hash-consed :class:`~repro.algebra.terms.Term` identity does not survive
a process boundary: every worker process owns its own intern table, so
terms must cross as *structure* and be rebuilt — re-interned — on the
other side.  This module is that boundary.  Everything it produces is
plain JSON-compatible data (dicts, lists, strings, numbers, ``None``),
so payloads survive any transport: pickle over a process pool today, a
socket or a file tomorrow.

Design points:

* **Table form, not tree form.**  A payload carries three tables —
  sorts, operations, term nodes — and encodes each exactly once.  Term
  nodes are stored in postorder with children referenced by table
  index, so shared subterms wire once (the sharing hash consing bought
  in this process is preserved across the boundary) and both encoding
  and decoding are iterative: a 100k-deep rewrite subject needs no
  recursion-limit fiddling.
* **Re-interning is free.**  Decoding rebuilds nodes through the
  ordinary :class:`Var`/:class:`Lit`/:class:`Err`/:class:`App`/
  :class:`Ite` constructors, which intern as a side effect — the
  receiving process ends up with maximally shared terms without any
  extra pass.
* **Builtins travel by reference.**  An operation's Python evaluator
  cannot be serialised as data; it crosses as a ``module:qualname``
  string resolved by import on the far side.  Only module-level
  functions qualify — a lambda or closure raises :class:`WireError` at
  *encode* time, in the sending process, where the failure is
  actionable.
"""

from __future__ import annotations

import importlib
from typing import Iterable, Optional, Sequence

from repro.algebra.signature import Operation
from repro.algebra.sorts import Sort
from repro.algebra.terms import App, Err, Ite, Lit, Term, Var
from repro.rewriting.rules import RewriteRule, RuleSet
from repro.runtime.budget import EvaluationBudget
from repro.runtime.outcome import Outcome

__all__ = [
    "WireError",
    "TermTableEncoder",
    "decode_nodes",
    "encode_term",
    "decode_term",
    "encode_terms",
    "decode_terms",
    "encode_outcomes",
    "decode_outcomes",
    "encode_ruleset",
    "decode_ruleset",
    "encode_budget",
    "decode_budget",
    "encode_span_events",
    "decode_span_events",
]

#: Bumped when the payload layout changes incompatibly; decoders reject
#: versions they do not understand instead of misreading them.
WIRE_VERSION = 1

#: JSON-representable literal payloads that pass through unchanged.
_PRIMITIVES = (str, int, float, bool, type(None))


class WireError(ValueError):
    """A value cannot cross the process boundary (or a payload is
    malformed / from an incompatible wire version)."""


def _encode_value(value: object) -> object:
    """A literal's payload: primitives pass through; tuples (the only
    hashable container the term layer admits in practice) nest as a
    tagged dict, since JSON has no tuple."""
    if isinstance(value, bool) or value is None or isinstance(value, (str, float)):
        return value
    if isinstance(value, int):
        return value
    if isinstance(value, tuple):
        return {"t": [_encode_value(item) for item in value]}
    raise WireError(
        f"literal value {value!r} of type {type(value).__name__} is not "
        "wire-representable (expected str/int/float/bool/None or a tuple "
        "of those)"
    )


def _decode_value(payload: object) -> object:
    if isinstance(payload, dict):
        return tuple(_decode_value(item) for item in payload["t"])
    return payload


def _builtin_ref(op: Operation) -> Optional[str]:
    """The ``module:qualname`` reference for an operation's builtin
    evaluator, or ``None``.  Refuses anything not resolvable by import
    on the far side (lambdas, closures, instance methods)."""
    fn = op.builtin
    if fn is None:
        return None
    module = getattr(fn, "__module__", None)
    qualname = getattr(fn, "__qualname__", "")
    if not module or not qualname or "<" in qualname or "." in qualname:
        raise WireError(
            f"builtin evaluator of {op.name} ({fn!r}) is not addressable "
            "as module:qualname — only module-level functions can cross "
            "a process boundary"
        )
    if _resolve_builtin(f"{module}:{qualname}") is not fn:
        raise WireError(
            f"builtin evaluator of {op.name} does not round-trip through "
            f"{module}:{qualname}"
        )
    return f"{module}:{qualname}"


def _resolve_builtin(ref: Optional[str]):
    if ref is None:
        return None
    module_name, _, qualname = ref.partition(":")
    try:
        module = importlib.import_module(module_name)
        fn = getattr(module, qualname)
    except (ImportError, AttributeError) as exc:
        raise WireError(f"cannot resolve builtin reference {ref!r}: {exc}")
    if not callable(fn):
        raise WireError(f"builtin reference {ref!r} is not callable")
    return fn


class TermTableEncoder:
    """Accumulates the shared sort/operation/node tables for one payload.

    Feed it terms via :meth:`term_id` (each returns the term's node-table
    index), then take the tables with :meth:`tables` and embed them in
    the enclosing message alongside whatever references the ids.
    """

    def __init__(self) -> None:
        self._sorts: list = []
        self._sort_ids: dict[Sort, int] = {}
        self._ops: list = []
        self._op_ids: dict[Operation, int] = {}
        self._nodes: list = []
        self._node_ids: dict[Term, int] = {}

    def sort_id(self, sort: Sort) -> int:
        ids = self._sort_ids
        known = ids.get(sort)
        if known is not None:
            return known
        param_ids = [self.sort_id(param) for param in sort.parameters]
        index = ids[sort] = len(self._sorts)
        self._sorts.append([sort.name, param_ids])
        return index

    def op_id(self, op: Operation) -> int:
        ids = self._op_ids
        known = ids.get(op)
        if known is not None:
            return known
        entry = {
            "name": op.name,
            "domain": [self.sort_id(s) for s in op.domain],
            "range": self.sort_id(op.range),
            "builtin": _builtin_ref(op),
        }
        index = ids[op] = len(self._ops)
        self._ops.append(entry)
        return index

    def term_id(self, term: Term) -> int:
        """Encode ``term`` (sharing everything already in the tables)
        and return its node index.  Iterative postorder: children are
        appended before parents, so decoding is a single forward pass."""
        ids = self._node_ids
        known = ids.get(term)
        if known is not None:
            return known
        stack = [term]
        while stack:
            node = stack[-1]
            if node in ids:
                stack.pop()
                continue
            pending = [kid for kid in node.children() if kid not in ids]
            if pending:
                stack.extend(pending)
                continue
            stack.pop()
            ids[node] = len(self._nodes)
            self._nodes.append(self._encode_node(node, ids))
        return ids[term]

    def _encode_node(self, node: Term, ids: dict) -> list:
        if isinstance(node, App):
            return ["a", self.op_id(node.op), [ids[a] for a in node.args]]
        if isinstance(node, Ite):
            return [
                "i",
                ids[node.cond],
                ids[node.then_branch],
                ids[node.else_branch],
            ]
        if isinstance(node, Var):
            return ["v", node.name, self.sort_id(node.sort)]
        if isinstance(node, Lit):
            return ["l", _encode_value(node.value), self.sort_id(node.sort)]
        if isinstance(node, Err):
            return ["e", self.sort_id(node.sort)]
        raise WireError(f"unknown term node class: {type(node).__name__}")

    def tables(self) -> dict:
        return {
            "version": WIRE_VERSION,
            "sorts": self._sorts,
            "ops": self._ops,
            "nodes": self._nodes,
        }


def decode_nodes(payload: dict) -> list[Term]:
    """Rebuild the node table of ``payload``: one forward pass through
    the ordinary term constructors, which re-intern every node in this
    process's table.  Returns the full node list; callers index it with
    whatever ids the enclosing message carries."""
    if payload.get("version") != WIRE_VERSION:
        raise WireError(
            f"wire version mismatch: payload says "
            f"{payload.get('version')!r}, this process speaks {WIRE_VERSION}"
        )
    sorts: list[Sort] = []
    for name, param_ids in payload["sorts"]:
        sorts.append(Sort(name, tuple(sorts[i] for i in param_ids)))
    ops: list[Operation] = []
    for entry in payload["ops"]:
        ops.append(
            Operation(
                entry["name"],
                tuple(sorts[i] for i in entry["domain"]),
                sorts[entry["range"]],
                _resolve_builtin(entry["builtin"]),
            )
        )
    nodes: list[Term] = []
    for row in payload["nodes"]:
        tag = row[0]
        if tag == "a":
            node: Term = App(ops[row[1]], tuple(nodes[i] for i in row[2]))
        elif tag == "i":
            node = Ite(nodes[row[1]], nodes[row[2]], nodes[row[3]])
        elif tag == "v":
            node = Var(row[1], sorts[row[2]])
        elif tag == "l":
            node = Lit(_decode_value(row[1]), sorts[row[2]])
        elif tag == "e":
            node = Err(sorts[row[1]])
        else:
            raise WireError(f"unknown node tag {tag!r}")
        nodes.append(node)
    return nodes


# ----------------------------------------------------------------------
# Whole-message encoders
# ----------------------------------------------------------------------
def encode_terms(terms: Iterable[Term]) -> dict:
    """A batch of terms as one payload (shared structure wired once)."""
    enc = TermTableEncoder()
    roots = [enc.term_id(term) for term in terms]
    return {**enc.tables(), "roots": roots}


def decode_terms(payload: dict) -> list[Term]:
    nodes = decode_nodes(payload)
    return [nodes[i] for i in payload["roots"]]


def encode_term(term: Term) -> dict:
    return encode_terms([term])


def decode_term(payload: dict) -> Term:
    (term,) = decode_terms(payload)
    return term


def encode_outcomes(outcomes: Sequence[Outcome]) -> dict:
    """A batch of outcomes; carried terms (results, partial evidence,
    divergence traces) all share one node table."""
    enc = TermTableEncoder()
    rows = []
    for outcome in outcomes:
        rows.append(
            {
                "status": outcome.status,
                "term": (
                    None
                    if outcome.term is None
                    else enc.term_id(outcome.term)
                ),
                "reason": outcome.reason,
                "trace": [enc.term_id(t) for t in outcome.trace],
                "detail": outcome.detail,
            }
        )
    return {**enc.tables(), "outcomes": rows}


def decode_outcomes(payload: dict) -> list[Outcome]:
    nodes = decode_nodes(payload)
    outcomes = []
    for row in payload["outcomes"]:
        outcomes.append(
            Outcome(
                status=row["status"],
                term=None if row["term"] is None else nodes[row["term"]],
                reason=row["reason"],
                trace=tuple(nodes[i] for i in row["trace"]),
                detail=row["detail"],
            )
        )
    return outcomes


def encode_ruleset(rules: RuleSet) -> dict:
    """A rule set as data: rule order, labels and both sides of every
    rule — everything :meth:`RuleSet.fingerprint` digests."""
    enc = TermTableEncoder()
    rows = [
        {
            "lhs": enc.term_id(rule.lhs),
            "rhs": enc.term_id(rule.rhs),
            "label": rule.label,
        }
        for rule in rules
    ]
    return {**enc.tables(), "rules": rows}


def decode_ruleset(payload: dict) -> RuleSet:
    nodes = decode_nodes(payload)
    return RuleSet(
        RewriteRule(nodes[row["lhs"]], nodes[row["rhs"]], row["label"])
        for row in payload["rules"]
    )


def encode_span_events(events: Sequence[dict]) -> dict:
    """A worker's trace-event batch, shipped home with its reply.

    Span events are already wire-shaped (flat dicts of primitives, plus
    the per-rule count dict on ``firings`` events) — the tracer emits
    them straight to JSONL — so the codec's job is the version envelope
    and a structural check at *encode* time, in the worker, where a
    non-portable event would be a tracer bug worth failing loudly on.
    """
    for event in events:
        if not isinstance(event, dict) or "ev" not in event:
            raise WireError(f"not a trace event: {event!r}")
    return {"version": WIRE_VERSION, "events": list(events)}


def decode_span_events(payload: dict) -> list[dict]:
    if payload.get("version") != WIRE_VERSION:
        raise WireError(
            f"wire version mismatch: payload says "
            f"{payload.get('version')!r}, this process speaks {WIRE_VERSION}"
        )
    return payload["events"]


def encode_budget(budget: Optional[EvaluationBudget]) -> Optional[dict]:
    if budget is None:
        return None
    return {
        "fuel": budget.fuel,
        "deadline": budget.deadline,
        "max_intern_growth": budget.max_intern_growth,
        "max_memo_entries": budget.max_memo_entries,
    }


def decode_budget(payload: Optional[dict]) -> Optional[EvaluationBudget]:
    if payload is None:
        return None
    return EvaluationBudget(
        fuel=payload["fuel"],
        deadline=payload["deadline"],
        max_intern_growth=payload["max_intern_growth"],
        max_memo_entries=payload["max_memo_entries"],
    )
