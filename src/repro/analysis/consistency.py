"""Consistency checking.

"If any two of these [statements of fact] are contradictory, the
axiomatization is inconsistent."  Contradiction surfaces as a single
term that the axioms rewrite to two irreconcilable results.  The checker
combines three increasingly expensive detectors:

1. **Direct clashes** — two axioms with identical (up to renaming)
   left-hand sides but different right-hand sides.
2. **Critical-pair analysis** — overlapping left-hand sides whose two
   one-step results fail to join back together; a bounded Knuth–Bendix
   completion classifies the residue (joinable everywhere → consistent;
   a pair joining two distinct values → inconsistent; otherwise
   inconclusive, with the offending equations reported).
3. **Ground confrontation** — random ground instances of every axiom are
   evaluated by the engine; any instance whose two sides normalise
   differently is a concrete witness of inconsistency.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum, auto
from typing import Optional

from repro.algebra.matching import variant_of
from repro.algebra.terms import Term
from repro.spec.axioms import Axiom
from repro.spec.specification import Specification
from repro.analysis.classify import classify
from repro.rewriting.completion import CompletionResult, CompletionStatus, complete
from repro.rewriting.engine import RewriteEngine, RewriteLimitError
from repro.rewriting.ordering import Precedence
from repro.rewriting.rules import RuleSet


class Verdict(Enum):
    CONSISTENT = auto()
    INCONSISTENT = auto()
    INCONCLUSIVE = auto()


@dataclass(frozen=True)
class GroundWitness:
    """A ground axiom instance whose sides normalise differently."""

    axiom: Axiom
    instance_lhs: Term
    instance_rhs: Term
    normal_lhs: Term
    normal_rhs: Term

    def __str__(self) -> str:
        return (
            f"axiom {self.axiom} fails on a ground instance: "
            f"{self.instance_lhs} -> {self.normal_lhs} but "
            f"{self.instance_rhs} -> {self.normal_rhs}"
        )


@dataclass
class ConsistencyReport:
    spec_name: str
    verdict: Verdict
    direct_clashes: list[str] = field(default_factory=list)
    completion: Optional[CompletionResult] = None
    ground_witnesses: list[GroundWitness] = field(default_factory=list)
    ground_instances_checked: int = 0

    @property
    def consistent(self) -> bool:
        return self.verdict is Verdict.CONSISTENT

    def __str__(self) -> str:
        lines = [
            f"consistency report for {self.spec_name}: {self.verdict.name.lower()}"
        ]
        if self.direct_clashes:
            lines.append("direct clashes:")
            lines.extend(f"  {clash}" for clash in self.direct_clashes)
        if self.completion is not None:
            lines.append(str(self.completion))
        if self.ground_witnesses:
            lines.append("ground witnesses:")
            lines.extend(f"  {witness}" for witness in self.ground_witnesses)
        lines.append(
            f"(ground instances checked: {self.ground_instances_checked})"
        )
        return "\n".join(lines)


def _find_direct_clashes(axioms: tuple[Axiom, ...]) -> list[str]:
    clashes: list[str] = []
    for i, first in enumerate(axioms):
        for second in axioms[i + 1 :]:
            if variant_of(first.lhs, second.lhs):
                # Rename second onto first's variables and compare RHS.
                from repro.algebra.matching import match

                sigma = match(second.lhs, first.lhs)
                if sigma is not None and sigma.apply(second.rhs) != first.rhs:
                    clashes.append(
                        f"{first} vs {second}: same left-hand side, "
                        f"different right-hand sides"
                    )
    return clashes


def check_consistency(
    spec: Specification,
    ground_instances: int = 40,
    max_depth: int = 5,
    seed: int = 2026,
    completion_rounds: int = 6,
    fuel: int = 50_000,
) -> ConsistencyReport:
    """Run all three consistency detectors on ``spec``."""
    axioms = spec.all_axioms()
    report = ConsistencyReport(spec.name, Verdict.INCONCLUSIVE)

    report.direct_clashes = _find_direct_clashes(spec.axioms)
    if report.direct_clashes:
        report.verdict = Verdict.INCONSISTENT
        return report

    # Ground confrontation first: cheap, and a witness is decisive.
    report.ground_instances_checked = _confront_ground(
        spec, report, ground_instances, max_depth, seed, fuel
    )
    if report.ground_witnesses:
        report.verdict = Verdict.INCONSISTENT
        return report

    cls = classify(spec)
    precedence = Precedence.definitional(
        cls.constructors, cls.defined_operations
    )
    ruleset = RuleSet.from_axioms(axioms)
    report.completion = complete(
        ruleset, precedence, max_rounds=completion_rounds, fuel=fuel
    )
    if report.completion.status is CompletionStatus.INCONSISTENT:
        report.verdict = Verdict.INCONSISTENT
    elif report.completion.status is CompletionStatus.COMPLETE:
        report.verdict = Verdict.CONSISTENT
    else:
        report.verdict = Verdict.INCONCLUSIVE
    return report


def _confront_ground(
    spec: Specification,
    report: ConsistencyReport,
    instances: int,
    max_depth: int,
    seed: int,
    fuel: int,
) -> int:
    from repro.testing.termgen import GenerationError, GroundTermGenerator

    engine = RewriteEngine.for_specification(spec)
    engine.fuel = fuel
    generator = GroundTermGenerator(spec, seed=seed, max_depth=max_depth)
    checked = 0
    own_axioms = spec.axioms
    if not own_axioms:
        return 0
    per_axiom = max(1, instances // len(own_axioms))
    for axiom in own_axioms:
        for _ in range(per_axiom):
            try:
                sigma = generator.substitution_for(axiom.variables())
            except GenerationError:
                continue
            lhs = sigma.apply(axiom.lhs)
            rhs = sigma.apply(axiom.rhs)
            checked += 1
            try:
                normal_lhs = engine.normalize(lhs)
                normal_rhs = engine.normalize(rhs)
            except RewriteLimitError:
                continue
            if normal_lhs != normal_rhs:
                report.ground_witnesses.append(
                    GroundWitness(axiom, lhs, rhs, normal_lhs, normal_rhs)
                )
    return checked
