"""Guttag's sufficient-completeness check.

A specification is *sufficiently complete* when every ground term whose
sort is not the type of interest — i.e. every observation of a value —
reduces under the axioms to a term free of type-of-interest operations.
Intuitively: the axioms answer every question a program can ask.

This module implements the check in two cooperating parts:

1. **Static case analysis.**  For each non-constructor operation, the
   axioms' left-hand sides are laid out as a grid over the constructor
   cases of its type-of-interest arguments.  Missing cells are exactly
   the overlooked boundary conditions the paper warns about
   (``REMOVE(NEW)``); overlapping cells are reported too.  For the
   definitional axiom shape (constructor patterns one level deep,
   left-linear) the analysis is exact.

2. **Reduction certification.**  Case coverage alone does not guarantee
   that right-hand sides bottom out.  The checker certifies termination
   against a recursive path ordering with constructors below defined
   operations, and additionally normalises a fuzzed sample of ground
   observations, checking each normal form is constructor-only.

The combination is sound for the paper's class of specifications and is
what :mod:`repro.analysis.heuristics` builds its user prompts from.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Optional

from repro.algebra.signature import Operation
from repro.algebra.terms import App, Term, Var
from repro.spec.axioms import Axiom
from repro.spec.specification import Specification
from repro.analysis.classify import Classification, classify
from repro.rewriting.engine import RewriteEngine
from repro.rewriting.ordering import Precedence, rule_decreases
from repro.rewriting.rules import rule_from_axiom


@dataclass(frozen=True)
class MissingCase:
    """An uncovered cell of the case grid.

    ``pattern`` is the left-hand side the user should supply an axiom
    for, e.g. ``REMOVE(NEW)``.
    """

    operation: Operation
    pattern: Term

    def __str__(self) -> str:
        return f"no axiom covers {self.pattern}"


@dataclass(frozen=True)
class OverlappingCase:
    """Two axioms covering the same cell (ambiguous definition)."""

    operation: Operation
    first: Axiom
    second: Axiom
    pattern: Term

    def __str__(self) -> str:
        return (
            f"axioms {self.first} and {self.second} both cover {self.pattern}"
        )


@dataclass(frozen=True)
class NonDecreasingAxiom:
    """An axiom the termination ordering could not certify."""

    axiom: Axiom

    def __str__(self) -> str:
        return f"axiom {self.axiom} is not decreasing under the path ordering"


@dataclass(frozen=True)
class StuckObservation:
    """A ground observation whose normal form still mentions TOI
    operations — direct evidence of insufficient completeness."""

    term: Term
    normal_form: Term

    def __str__(self) -> str:
        return f"{self.term} normalises to {self.normal_form}, which still mentions the type of interest"


@dataclass
class CompletenessReport:
    """Everything the checker found about one specification."""

    spec_name: str
    classification: Classification
    missing: list[MissingCase] = field(default_factory=list)
    overlapping: list[OverlappingCase] = field(default_factory=list)
    non_decreasing: list[NonDecreasingAxiom] = field(default_factory=list)
    stuck: list[StuckObservation] = field(default_factory=list)
    sampled_observations: int = 0

    @property
    def sufficiently_complete(self) -> bool:
        return not self.missing and not self.non_decreasing and not self.stuck

    @property
    def unambiguous(self) -> bool:
        return not self.overlapping

    def __str__(self) -> str:
        lines = [f"sufficient-completeness report for {self.spec_name}"]
        lines.append(str(self.classification))
        verdict = "YES" if self.sufficiently_complete else "NO"
        lines.append(f"sufficiently complete: {verdict}")
        for group, items in (
            ("missing cases", self.missing),
            ("overlapping cases", self.overlapping),
            ("non-decreasing axioms", self.non_decreasing),
            ("stuck observations", self.stuck),
        ):
            if items:
                lines.append(f"{group}:")
                lines.extend(f"  {item}" for item in items)
        lines.append(f"(ground observations sampled: {self.sampled_observations})")
        return "\n".join(lines)


def case_patterns(
    operation: Operation, classification: Classification
) -> list[Term]:
    """The grid of required left-hand sides for ``operation``.

    One pattern per combination of constructor shapes of the operation's
    type-of-interest arguments.  Non-TOI arguments stay variables.
    ``REMOVE`` yields ``[REMOVE(NEW), REMOVE(ADD(q, i))]``.
    """
    toi_positions = classification.recursive_argument_positions(operation)
    if not toi_positions:
        return [_pattern(operation, {})]
    choices: list[list[Operation]] = [
        list(classification.constructors) for _ in toi_positions
    ]
    patterns: list[Term] = []
    for combo in itertools.product(*choices):
        by_position = dict(zip(toi_positions, combo))
        patterns.append(_pattern(operation, by_position))
    return patterns


_counter = itertools.count()


def _pattern(
    operation: Operation, constructors_at: dict[int, Operation]
) -> Term:
    args: list[Term] = []
    for index, sort in enumerate(operation.domain):
        constructor = constructors_at.get(index)
        if constructor is None:
            args.append(Var(f"v{index}", sort))
        else:
            inner = [
                Var(f"w{index}_{j}", inner_sort)
                for j, inner_sort in enumerate(constructor.domain)
            ]
            args.append(App(constructor, inner))
    return App(operation, args)


def _covers(axiom: Axiom, pattern: Term) -> bool:
    """Does ``axiom``'s LHS cover the case ``pattern`` describes?

    The axiom covers the case when its LHS is at least as general: the
    LHS matches the pattern (pattern variables acting as fresh
    constants).  For left-linear, one-constructor-deep axioms this test
    is exact.
    """
    from repro.algebra.matching import match

    return match(axiom.lhs, pattern) is not None


def check_sufficient_completeness(
    spec: Specification,
    classification: Optional[Classification] = None,
    sample_terms: int = 60,
    max_depth: int = 5,
    seed: int = 2026,
    fuel: int = 50_000,
    workers: Optional[int] = None,
) -> CompletenessReport:
    """Run the full sufficient-completeness check on ``spec``.

    ``workers=N`` shards the reduction-sampling stage across N worker
    processes (the dominant cost on large grids); the sampled terms,
    their verdicts, and the report are identical to the serial run.
    """
    cls = classification or classify(spec)
    report = CompletenessReport(spec.name, cls)

    # --- static case coverage -----------------------------------------
    for operation in cls.defined_operations:
        axioms = [a for a in spec.axioms if a.head == operation]
        for pattern in case_patterns(operation, cls):
            covering = [a for a in axioms if _covers(a, pattern)]
            if not covering:
                report.missing.append(MissingCase(operation, pattern))
            elif len(covering) > 1:
                report.overlapping.append(
                    OverlappingCase(operation, covering[0], covering[1], pattern)
                )

    # --- termination certification --------------------------------------
    defined = cls.defined_operations
    precedence = Precedence.definitional(cls.constructors, defined)
    for axiom in spec.axioms:
        rule = rule_from_axiom(axiom)
        if not rule_decreases(rule, precedence):
            report.non_decreasing.append(NonDecreasingAxiom(axiom))

    # --- dynamic reduction sampling --------------------------------------
    if not report.missing:
        report.sampled_observations = _sample_observations(
            spec, cls, report, sample_terms, max_depth, seed, fuel, workers
        )
    return report


def _sample_observations(
    spec: Specification,
    cls: Classification,
    report: CompletenessReport,
    sample_terms: int,
    max_depth: int,
    seed: int,
    fuel: int,
    workers: Optional[int] = None,
) -> int:
    from repro.testing.termgen import GroundTermGenerator

    engine = RewriteEngine.for_specification(spec)
    engine.fuel = fuel
    generator = GroundTermGenerator(spec, seed=seed, max_depth=max_depth)
    toi_ops = set(spec.own_operations())
    # Draw the whole sample first (generation must not interleave with
    # evaluation, so the drawn terms match the serial run exactly),
    # then evaluate as one fault-isolated batch — which is what lets
    # ``workers`` shard the grid without changing a single verdict.
    terms: list[Term] = []
    for observer in cls.defined_operations:
        for _ in range(max(1, sample_terms // max(1, len(cls.defined_operations)))):
            term = generator.observation(observer)
            if term is not None:
                terms.append(term)
    try:
        outcomes = engine.normalize_many_outcomes(terms, workers=workers)
    finally:
        engine.close_pools(wait=True)
    for term, outcome in zip(terms, outcomes):
        if not outcome.ok:
            report.stuck.append(StuckObservation(term, term))
        elif _mentions(outcome.term, toi_ops, cls):
            report.stuck.append(StuckObservation(term, outcome.term))
    return len(terms)


def _mentions(term: Term, toi_ops: set, cls: Classification) -> bool:
    """Does ``term`` still contain *defined* TOI operations (for TOI
    results, non-constructor ones; for observer results, any)?"""
    constructors = set(cls.constructors)
    operations = term.operations()
    for op in operations:
        if op in toi_ops and op not in constructors:
            return True
    if term.sort != cls.type_of_interest:
        # An observation's normal form must not mention the TOI at all.
        for op in operations:
            if op in constructors:
                return True
    return False
