"""Specification analysis: classification, sufficient completeness,
consistency, and the interactive completion heuristics."""

from repro.analysis.classify import Classification, classify
from repro.analysis.sufficient_completeness import (
    CompletenessReport,
    MissingCase,
    NonDecreasingAxiom,
    OverlappingCase,
    StuckObservation,
    case_patterns,
    check_sufficient_completeness,
)
from repro.analysis.consistency import (
    ConsistencyReport,
    GroundWitness,
    Verdict,
    check_consistency,
)
from repro.analysis.coverage import (
    AxiomCoverageReport,
    check_axiom_coverage,
)
from repro.analysis.lint import LintReport, lint_specification
from repro.analysis.heuristics import (
    CompletionSession,
    Prompt,
    default_boundary_oracle,
    prompts_for,
    scaffold,
)

__all__ = [
    "Classification",
    "classify",
    "CompletenessReport",
    "MissingCase",
    "NonDecreasingAxiom",
    "OverlappingCase",
    "StuckObservation",
    "case_patterns",
    "check_sufficient_completeness",
    "ConsistencyReport",
    "GroundWitness",
    "Verdict",
    "check_consistency",
    "AxiomCoverageReport",
    "check_axiom_coverage",
    "LintReport",
    "lint_specification",
    "CompletionSession",
    "Prompt",
    "default_boundary_oracle",
    "prompts_for",
    "scaffold",
]
