"""Axiom coverage: which equations actually do work.

A lint pass complementing sufficient completeness: run a sample of
ground observations through the engine and record which axioms ever
fire.  An axiom that never fires on a representative sample is either

* *shadowed* — an earlier axiom with an overlapping left-hand side
  always wins (an overlap the consistency checker reports only when the
  results disagree), or
* *unreachable* — its left-hand side describes terms the constructors
  cannot produce, or
* simply under-sampled, which the report's firing counts make easy to
  judge.

The analysis is dynamic and advisory (a clean completeness report plus
full coverage is strong evidence the specification is exactly the set of
facts intended, with nothing dead).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.spec.specification import Specification
from repro.rewriting.engine import RewriteEngine, RewriteLimitError
from repro.rewriting.rules import RuleSet, rule_from_axiom


@dataclass
class AxiomCoverageReport:
    spec_name: str
    firing_counts: dict[str, int] = field(default_factory=dict)
    observations_run: int = 0

    @property
    def uncovered(self) -> list[str]:
        """Labels (or renderings) of axioms that never fired."""
        return [label for label, count in self.firing_counts.items() if count == 0]

    @property
    def fully_covered(self) -> bool:
        return not self.uncovered

    def __str__(self) -> str:
        lines = [
            f"axiom coverage for {self.spec_name} "
            f"({self.observations_run} observation(s))"
        ]
        for label, count in self.firing_counts.items():
            marker = "" if count else "   <- never fired"
            lines.append(f"  {label}: {count}{marker}")
        return "\n".join(lines)


def check_axiom_coverage(
    spec: Specification,
    observations: int = 200,
    max_depth: int = 6,
    seed: int = 2026,
    fuel: int = 100_000,
) -> AxiomCoverageReport:
    """Sample ground observations and report per-axiom firing counts.

    Only this level's own axioms are reported (used levels are theirs to
    cover); the rule order is the specification's, so shadowing by an
    earlier axiom shows up exactly as it would in execution.
    """
    from repro.analysis.classify import classify
    from repro.testing.termgen import GroundTermGenerator

    rules = {axiom: rule_from_axiom(axiom) for axiom in spec.all_axioms()}
    ruleset = RuleSet(rules.values())
    engine = RewriteEngine(ruleset, fuel=fuel, cache_size=0)

    cls = classify(spec)
    generator = GroundTermGenerator(spec, seed=seed, max_depth=max_depth)
    run = 0
    per_operation = max(1, observations // max(1, len(cls.defined_operations)))
    for operation in cls.defined_operations:
        for _ in range(per_operation):
            term = generator.observation(operation)
            if term is None:
                continue
            run += 1
            try:
                engine.normalize(term)
            except RewriteLimitError:
                continue

    report = AxiomCoverageReport(spec.name, observations_run=run)
    for axiom in spec.axioms:
        label = axiom.label or str(axiom)
        report.firing_counts[label] = engine.stats.firing_count(
            rules[axiom]
        )
    return report
