"""Classification of a specification's operations.

Guttag's analyses are all relative to the *type of interest* (TOI).  The
operations of a specification split into:

* **constructors** — operations whose range is the TOI and that are
  *free*: no axiom rewrites them away (they never head a left-hand
  side).  Every value of the type is denoted by some composition of
  constructors (``NEW``/``ADD`` for Queue; ``INIT``/``ENTERBLOCK``/
  ``ADD`` for Symboltable).
* **extensions** — operations whose range is the TOI but that *are*
  defined by axioms (``REMOVE``, ``LEAVEBLOCK``): they denote values
  already expressible with constructors.
* **observers** — operations whose range is another sort (``FRONT``,
  ``IS_EMPTY?``, ``RETRIEVE``): they are how programs look inside
  values, and sufficient completeness is about them having defined
  results.

The paper's heuristic — axioms take the form
``op(constructor(...), ...) = ...`` for every non-constructor ``op`` and
every constructor — falls directly out of this classification.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.algebra.signature import Operation
from repro.algebra.sorts import Sort
from repro.spec.specification import Specification


@dataclass(frozen=True)
class Classification:
    """The operations of one specification level, partitioned."""

    type_of_interest: Sort
    constructors: tuple[Operation, ...]
    extensions: tuple[Operation, ...]
    observers: tuple[Operation, ...]

    @property
    def defined_operations(self) -> tuple[Operation, ...]:
        """Extensions and observers: everything axioms must cover."""
        return self.extensions + self.observers

    def is_constructor(self, operation: Operation) -> bool:
        return operation in self.constructors

    def recursive_argument_positions(self, operation: Operation) -> tuple[int, ...]:
        """Indices of ``operation``'s arguments of the type of interest.

        These are the positions the case analysis splits on: an axiom
        set must say what ``op`` does for each constructor form of each
        TOI argument.
        """
        return tuple(
            index
            for index, sort in enumerate(operation.domain)
            if sort == self.type_of_interest
        )

    def __str__(self) -> str:
        def names(ops: tuple[Operation, ...]) -> str:
            return ", ".join(op.name for op in ops) or "<none>"

        return (
            f"type of interest: {self.type_of_interest}\n"
            f"constructors: {names(self.constructors)}\n"
            f"extensions:   {names(self.extensions)}\n"
            f"observers:    {names(self.observers)}"
        )


def classify(spec: Specification) -> Classification:
    """Partition the operations declared at ``spec``'s own level.

    An operation is a constructor when its range is the type of interest
    and no axiom (at this level) heads with it.  Inherited operations
    (from used specifications) are not classified: they belong to their
    own level's classification.
    """
    toi = spec.type_of_interest
    heads = {axiom.head.name for axiom in spec.axioms}
    constructors: list[Operation] = []
    extensions: list[Operation] = []
    observers: list[Operation] = []
    for operation in spec.own_operations():
        if operation.range == toi:
            if operation.name in heads:
                extensions.append(operation)
            else:
                constructors.append(operation)
        else:
            observers.append(operation)
    return Classification(
        toi, tuple(constructors), tuple(extensions), tuple(observers)
    )
