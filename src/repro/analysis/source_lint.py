"""Source lint: broad exception handlers must be declared fault boundaries.

The resilience work (ISSUE 4) contains failures at a small set of
explicit *fault boundaries* — the degradation ladder in the engines, the
CLI's top level, speculative construction in the completion machinery.
Anywhere else, a bare ``except:`` or a blanket ``except Exception``
swallows exactly the injected faults the chaos suite relies on
observing, so this lint keeps the containment surface explicit: every
broad handler in ``src/repro`` must carry a justification marker on its
``except`` line::

    except Exception:  # fault-boundary: degrade to interpreted

A marker with no justification text does not count.  Run as a module
(CI does)::

    python -m repro.analysis.source_lint [ROOT ...]

Exit status 1 when any undeclared broad handler is found; the findings
print as ``path:line: message`` for editor navigation.
"""

from __future__ import annotations

import ast
import sys
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Optional, Sequence

#: The allowlist marker: the ``except`` line must contain this comment,
#: followed by a non-empty justification.
MARKER = "# fault-boundary:"

#: Exception names considered over-broad when caught directly.
BROAD_NAMES = frozenset({"Exception", "BaseException"})


@dataclass(frozen=True)
class Violation:
    """One undeclared broad handler."""

    path: str
    line: int
    message: str

    def __str__(self) -> str:
        return f"{self.path}:{self.line}: {self.message}"


def _broad_name(node: Optional[ast.expr]) -> Optional[str]:
    """The over-broad class name caught by this ``except`` clause, or
    ``None``.  A bare handler reports ``""``; tuples are searched."""
    if node is None:
        return ""
    if isinstance(node, ast.Name) and node.id in BROAD_NAMES:
        return node.id
    if isinstance(node, ast.Attribute) and node.attr in BROAD_NAMES:
        return node.attr
    if isinstance(node, ast.Tuple):
        for element in node.elts:
            name = _broad_name(element)
            if name is not None:
                return name
    return None


def _allowlisted(lines: Sequence[str], lineno: int) -> bool:
    """True when the handler's ``except`` line carries a justified
    fault-boundary marker."""
    if not 1 <= lineno <= len(lines):
        return False
    line = lines[lineno - 1]
    if MARKER not in line:
        return False
    justification = line.split(MARKER, 1)[1].strip()
    return bool(justification)


def lint_source(source: str, path: str = "<string>") -> list[Violation]:
    """Violations in one module's source text."""
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        return [Violation(path, exc.lineno or 0, f"syntax error: {exc.msg}")]
    lines = source.splitlines()
    violations = []
    for node in ast.walk(tree):
        if not isinstance(node, ast.ExceptHandler):
            continue
        name = _broad_name(node.type)
        if name is None or _allowlisted(lines, node.lineno):
            continue
        if name == "":
            message = (
                "bare 'except:' — catch specific exceptions, or mark the "
                f"line with '{MARKER} <why>'"
            )
        else:
            message = (
                f"over-broad 'except {name}' — catch specific exceptions, "
                f"or mark the line with '{MARKER} <why>'"
            )
        violations.append(Violation(path, node.lineno, message))
    return violations


def lint_paths(roots: Iterable[Path]) -> list[Violation]:
    """Violations across every ``.py`` file under ``roots`` (files are
    accepted too), sorted by location."""
    violations = []
    for root in roots:
        root = Path(root)
        files = [root] if root.is_file() else sorted(root.rglob("*.py"))
        for file in files:
            violations.extend(
                lint_source(file.read_text(encoding="utf-8"), str(file))
            )
    return sorted(violations, key=lambda v: (v.path, v.line))


def main(argv: Optional[Sequence[str]] = None) -> int:
    arguments = list(sys.argv[1:] if argv is None else argv)
    roots = [Path(a) for a in arguments] or [Path("src/repro")]
    missing = [root for root in roots if not root.exists()]
    if missing:
        for root in missing:
            print(f"error: no such path: {root}", file=sys.stderr)
        return 2
    violations = lint_paths(roots)
    for violation in violations:
        print(violation)
    if violations:
        print(
            f"{len(violations)} undeclared broad exception handler(s)",
            file=sys.stderr,
        )
        return 1
    scanned = ", ".join(str(root) for root in roots)
    print(f"broad-except lint clean: {scanned}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
