"""Source lint: library code must stay silent, fault boundaries explicit.

Two rules over ``src/repro``:

1. **Broad exception handlers must be declared fault boundaries.**  The
   resilience work (ISSUE 4) contains failures at a small set of
   explicit *fault boundaries* — the degradation ladder in the engines,
   the CLI's top level, speculative construction in the completion
   machinery.  Anywhere else, a bare ``except:`` or a blanket ``except
   Exception`` swallows exactly the injected faults the chaos suite
   relies on observing, so every broad handler must carry a
   justification marker on its ``except`` line::

       except Exception:  # fault-boundary: degrade to interpreted

2. **No ``print()`` outside the presentation layer.**  The
   observability work (ISSUE 5) routes diagnostics through
   :mod:`repro.obs` (structured trace events, metrics snapshots) and
   renders them in :mod:`repro.report` / the CLI.  A stray ``print`` in
   library code bypasses both the sampling knob and the JSONL sinks, so
   it is flagged everywhere except the presentation allowlist
   (``report/``, ``cli.py``, and this linter, whose output *is* its
   interface).  A deliberate exception elsewhere takes a justified
   marker on the call's line::

       print(banner)  # allow-print: example script output

Markers with no justification text do not count.  Run as a module
(CI does)::

    python -m repro.analysis.source_lint [ROOT ...]

Exit status 1 when any violation is found; the findings print as
``path:line: message`` for editor navigation.
"""

from __future__ import annotations

import ast
import sys
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Optional, Sequence

#: The allowlist marker: the ``except`` line must contain this comment,
#: followed by a non-empty justification.
MARKER = "# fault-boundary:"

#: Per-line exemption marker for the ``print()`` rule, same shape.
PRINT_MARKER = "# allow-print:"

#: Exception names considered over-broad when caught directly.
BROAD_NAMES = frozenset({"Exception", "BaseException"})

#: Directories whose modules *are* the presentation layer — ``print``
#: is their job, not a leak.
PRINT_ALLOWED_DIRS = frozenset({"report"})

#: Individual presentation-layer modules (matched by file name).
PRINT_ALLOWED_FILES = frozenset({"cli.py", "source_lint.py"})


@dataclass(frozen=True)
class Violation:
    """One undeclared broad handler."""

    path: str
    line: int
    message: str

    def __str__(self) -> str:
        return f"{self.path}:{self.line}: {self.message}"


def _broad_name(node: Optional[ast.expr]) -> Optional[str]:
    """The over-broad class name caught by this ``except`` clause, or
    ``None``.  A bare handler reports ``""``; tuples are searched."""
    if node is None:
        return ""
    if isinstance(node, ast.Name) and node.id in BROAD_NAMES:
        return node.id
    if isinstance(node, ast.Attribute) and node.attr in BROAD_NAMES:
        return node.attr
    if isinstance(node, ast.Tuple):
        for element in node.elts:
            name = _broad_name(element)
            if name is not None:
                return name
    return None


def _allowlisted(
    lines: Sequence[str], lineno: int, marker: str = MARKER
) -> bool:
    """True when the flagged line carries a justified marker."""
    if not 1 <= lineno <= len(lines):
        return False
    line = lines[lineno - 1]
    if marker not in line:
        return False
    justification = line.split(marker, 1)[1].strip()
    return bool(justification)


def _print_allowed_path(path: str) -> bool:
    """True when ``path`` lies in the presentation layer (where
    ``print`` is the module's interface rather than a leak)."""
    parts = Path(path).parts
    if set(parts) & PRINT_ALLOWED_DIRS:
        return True
    return parts[-1] in PRINT_ALLOWED_FILES if parts else False


def lint_source(source: str, path: str = "<string>") -> list[Violation]:
    """Violations in one module's source text."""
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        return [Violation(path, exc.lineno or 0, f"syntax error: {exc.msg}")]
    lines = source.splitlines()
    violations = []
    check_prints = not _print_allowed_path(path)
    for node in ast.walk(tree):
        if isinstance(node, ast.ExceptHandler):
            name = _broad_name(node.type)
            if name is None or _allowlisted(lines, node.lineno):
                continue
            if name == "":
                message = (
                    "bare 'except:' — catch specific exceptions, or mark "
                    f"the line with '{MARKER} <why>'"
                )
            else:
                message = (
                    f"over-broad 'except {name}' — catch specific "
                    f"exceptions, or mark the line with '{MARKER} <why>'"
                )
            violations.append(Violation(path, node.lineno, message))
        elif (
            check_prints
            and isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id == "print"
        ):
            if _allowlisted(lines, node.lineno, PRINT_MARKER):
                continue
            violations.append(
                Violation(
                    path,
                    node.lineno,
                    "print() in library code — emit a trace event or "
                    "metric (repro.obs) and render via repro.report, or "
                    f"mark the line with '{PRINT_MARKER} <why>'",
                )
            )
    return violations


def lint_paths(roots: Iterable[Path]) -> list[Violation]:
    """Violations across every ``.py`` file under ``roots`` (files are
    accepted too), sorted by location."""
    violations = []
    for root in roots:
        root = Path(root)
        files = [root] if root.is_file() else sorted(root.rglob("*.py"))
        for file in files:
            violations.extend(
                lint_source(file.read_text(encoding="utf-8"), str(file))
            )
    return sorted(violations, key=lambda v: (v.path, v.line))


def main(argv: Optional[Sequence[str]] = None) -> int:
    arguments = list(sys.argv[1:] if argv is None else argv)
    roots = [Path(a) for a in arguments] or [Path("src/repro")]
    missing = [root for root in roots if not root.exists()]
    if missing:
        for root in missing:
            print(f"error: no such path: {root}", file=sys.stderr)
        return 2
    violations = lint_paths(roots)
    for violation in violations:
        print(violation)
    if violations:
        print(f"{len(violations)} source lint violation(s)", file=sys.stderr)
        return 1
    scanned = ", ".join(str(root) for root in roots)
    print(f"source lint clean (broad-except, print): {scanned}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
