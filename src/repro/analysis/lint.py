"""One-call specification linting.

``lint_specification`` bundles the four analyses a specification author
wants before trusting a spec — sufficient completeness, consistency,
definitional-shape checks, and axiom coverage — into a single report
with a single verdict.  This is what the CLI's ``check`` command and the
completion session's exit criteria are built from.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.spec.axioms import check_definitional
from repro.spec.specification import Specification
from repro.analysis.consistency import ConsistencyReport, check_consistency
from repro.analysis.coverage import AxiomCoverageReport, check_axiom_coverage
from repro.analysis.sufficient_completeness import (
    CompletenessReport,
    check_sufficient_completeness,
)


@dataclass
class LintReport:
    spec_name: str
    completeness: CompletenessReport
    consistency: ConsistencyReport
    coverage: Optional[AxiomCoverageReport]
    shape_problems: list[str] = field(default_factory=list)

    @property
    def clean(self) -> bool:
        verdicts = [
            self.completeness.sufficiently_complete,
            self.consistency.consistent,
            not self.shape_problems,
        ]
        if self.coverage is not None:
            verdicts.append(self.coverage.fully_covered)
        return all(verdicts)

    def problems(self) -> list[str]:
        """Human-readable list of everything wrong (empty when clean)."""
        found: list[str] = []
        for case in self.completeness.missing:
            found.append(f"missing case: {case.pattern}")
        for case in self.completeness.overlapping:
            found.append(f"overlapping axioms cover {case.pattern}")
        for bad in self.completeness.non_decreasing:
            found.append(str(bad))
        for stuck in self.completeness.stuck:
            found.append(str(stuck))
        if not self.consistency.consistent:
            found.append(
                f"consistency: {self.consistency.verdict.name.lower()}"
            )
        found.extend(self.shape_problems)
        if self.coverage is not None:
            for label in self.coverage.uncovered:
                found.append(f"axiom ({label}) never fires (dead/shadowed?)")
        return found

    def __str__(self) -> str:
        verdict = "CLEAN" if self.clean else "PROBLEMS"
        lines = [f"lint of {self.spec_name}: {verdict}"]
        lines.extend(f"  {problem}" for problem in self.problems())
        return "\n".join(lines)


def lint_specification(
    spec: Specification,
    with_coverage: bool = True,
    observations: int = 150,
    seed: int = 2026,
) -> LintReport:
    """Run every specification check and combine the verdicts."""
    completeness = check_sufficient_completeness(spec, seed=seed)
    consistency = check_consistency(spec, seed=seed)
    coverage = (
        check_axiom_coverage(spec, observations=observations, seed=seed)
        if with_coverage
        else None
    )
    shape = check_definitional(spec.axioms)
    return LintReport(spec.name, completeness, consistency, coverage, shape)
