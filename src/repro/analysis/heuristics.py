"""The specification-construction heuristics and prompting system.

Section 3: "we have devised heuristics to aid the user in the initial
presentation of an axiomatic specification ... and a system to
mechanically 'verify' the sufficient-completeness of that specification.
... the system would begin to prompt the user to supply the additional
information necessary."

This module is that system.  Given a (possibly incomplete) draft
specification it produces:

* a *scaffold* — the full grid of left-hand sides the axiom set should
  cover, generated from the classification heuristic (one axiom per
  defined operation per constructor case);
* *prompts* — the concrete cases the draft fails to cover, boundary
  conditions first (the cases most likely to be overlooked), each with a
  suggested skeleton for the user to fill in;
* a *session* driver that applies user-supplied axioms and re-checks,
  mirroring the interactive loop the paper sketches.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.algebra.terms import App, Term
from repro.spec.axioms import Axiom
from repro.spec.specification import Specification
from repro.analysis.classify import classify
from repro.analysis.sufficient_completeness import (
    CompletenessReport,
    case_patterns,
    check_sufficient_completeness,
)


@dataclass(frozen=True)
class Prompt:
    """One question the system asks the user.

    ``pattern`` is the uncovered left-hand side; ``is_boundary`` marks
    cases built from base (non-recursive) constructors — the
    ``REMOVE(NEW)`` class of case the paper singles out as "particularly
    likely to be overlooked"; ``suggestion`` is a fill-in skeleton.
    """

    pattern: Term
    is_boundary: bool
    suggestion: str

    def __str__(self) -> str:
        marker = " [boundary condition]" if self.is_boundary else ""
        return f"please supply: {self.pattern} = ?{marker}"


def _is_boundary(pattern: Term) -> bool:
    """A case is a boundary condition when every constructor argument in
    the pattern is a base (non-recursive) constructor application."""
    assert isinstance(pattern, App)
    saw_constructor = False
    for arg in pattern.args:
        if isinstance(arg, App):
            saw_constructor = True
            if arg.args:
                return False
    return saw_constructor


def _suggest(pattern: Term) -> str:
    assert isinstance(pattern, App)
    if _is_boundary(pattern):
        return (
            f"{pattern} = error  -- boundary case; is an error the "
            f"intended meaning?"
        )
    return f"{pattern} = <term of sort {pattern.sort}>"


def scaffold(spec: Specification) -> dict[str, list[Term]]:
    """The complete case grid for ``spec``: operation name → patterns.

    This is the heuristics' "initial presentation" aid: before writing
    any axiom, the user can see exactly which left-hand sides a
    sufficiently complete axiom set must cover.
    """
    cls = classify(spec)
    grid: dict[str, list[Term]] = {}
    for operation in cls.defined_operations:
        grid[operation.name] = case_patterns(operation, cls)
    return grid


def prompts_for(
    spec: Specification, report: Optional[CompletenessReport] = None
) -> list[Prompt]:
    """The prompts a user must answer to complete ``spec``.

    Boundary conditions are listed first.
    """
    if report is None:
        report = check_sufficient_completeness(spec, sample_terms=0)
    prompts = [
        Prompt(case.pattern, _is_boundary(case.pattern), _suggest(case.pattern))
        for case in report.missing
    ]
    prompts.sort(key=lambda p: (not p.is_boundary, str(p.pattern)))
    return prompts


@dataclass
class SessionStep:
    """One round of the interactive completion session."""

    prompts: list[Prompt]
    answered: list[Axiom] = field(default_factory=list)


class CompletionSession:
    """The interactive loop: check → prompt → accept axioms → re-check.

    ``oracle`` plays the user: it is called with each prompt and returns
    an axiom (or ``None`` to skip).  :meth:`run` iterates until the
    specification is sufficiently complete, the oracle stops answering,
    or ``max_rounds`` is hit.
    """

    def __init__(
        self,
        spec: Specification,
        oracle: Callable[[Prompt], Optional[Axiom]],
        max_rounds: int = 8,
    ) -> None:
        self.spec = spec
        self.oracle = oracle
        self.max_rounds = max_rounds
        self.steps: list[SessionStep] = []

    def run(self) -> Specification:
        """Drive the session; returns the (possibly extended) spec."""
        current = self.spec
        for _ in range(self.max_rounds):
            report = check_sufficient_completeness(current, sample_terms=0)
            open_prompts = prompts_for(current, report)
            if not open_prompts:
                break
            step = SessionStep(open_prompts)
            self.steps.append(step)
            for prompt in open_prompts:
                answer = self.oracle(prompt)
                if answer is not None:
                    step.answered.append(answer)
            if not step.answered:
                break
            current = Specification(
                current.name,
                current.signature,
                current.type_of_interest,
                tuple(current.axioms) + tuple(step.answered),
                current.uses,
                current.parameter_sorts,
            )
        return current

    @property
    def rounds(self) -> int:
        return len(self.steps)


def default_boundary_oracle(prompt: Prompt) -> Optional[Axiom]:
    """An oracle that answers boundary prompts with ``= error`` and
    skips everything else — the paper's observation is that boundary
    cases usually *are* errors, so this closes most gaps mechanically."""
    from repro.algebra.terms import Err

    if not prompt.is_boundary:
        return None
    return Axiom(prompt.pattern, Err(prompt.pattern.sort), "auto")
