"""Structured evaluation outcomes.

Gaudel & Le Gall treat an implementation's observable behaviour under
*all* inputs — including degenerate ones — as the conformance surface.
An :class:`Outcome` makes the degenerate behaviours first-class values
instead of exceptions, so batch evaluation can be fault-isolating (one
pathological term yields one failed record, not an aborted batch) and
callers can route partial results instead of crashing.

The four statuses:

``normalized``
    A normal form was reached; ``term`` holds it.
``error_value``
    The normal form is the algebra's distinguished ``error`` — a
    *defined* result in the paper's semantics, carried separately so
    resilient callers need not pattern-match on :class:`Err`.
``truncated``
    Evaluation stopped short: ``reason`` says why (``fuel``, ``depth``,
    ``deadline``, ``memory``, or ``fault`` for a contained runtime
    failure) and ``term`` holds the best partial evidence available
    (the subject the engine was rewriting when the limit hit).
``diverged``
    The divergence diagnosis found a cycle: ``trace`` is the minimal
    repeating sequence of rewrite subjects, the actionable diagnostic
    for a bad axiom set.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.algebra.terms import Err, Term
from repro.runtime.render import summarize_term

NORMALIZED = "normalized"
TRUNCATED = "truncated"
DIVERGED = "diverged"
ERROR_VALUE = "error_value"

#: Every status an :class:`Outcome` can carry.
STATUSES = (NORMALIZED, TRUNCATED, DIVERGED, ERROR_VALUE)


@dataclass(frozen=True)
class Outcome:
    """The result of one resilient evaluation (see module docstring)."""

    status: str
    term: Optional[Term] = None
    reason: Optional[str] = None
    trace: tuple = ()
    detail: str = ""

    @property
    def ok(self) -> bool:
        """True when evaluation completed — reached a normal form or the
        algebra's ``error`` value (a defined result, per the paper)."""
        return self.status in (NORMALIZED, ERROR_VALUE)

    def value(self) -> Term:
        """The normal form, or raise ``ValueError`` for a non-``ok``
        outcome — the explicit unwrap for callers that want exceptions
        back."""
        if not self.ok:
            raise ValueError(f"no value for outcome: {self}")
        assert self.term is not None
        return self.term

    # -- constructors --------------------------------------------------
    @classmethod
    def of_normal_form(cls, term: Term) -> "Outcome":
        """Wrap a reached normal form (classifying ``error`` values)."""
        if isinstance(term, Err):
            return cls(ERROR_VALUE, term=term)
        return cls(NORMALIZED, term=term)

    @classmethod
    def from_limit(cls, exc) -> "Outcome":
        """Fold a ``RewriteLimitError`` (or anything carrying ``reason``
        / ``trace`` / ``term`` attributes) into an outcome."""
        reason = getattr(exc, "reason", "fuel")
        trace = tuple(getattr(exc, "trace", ()) or ())
        return cls(
            DIVERGED if reason == "cycle" else TRUNCATED,
            term=getattr(exc, "term", None),
            reason=reason,
            trace=trace,
            detail=getattr(exc, "detail", "") or str(exc),
        )

    @classmethod
    def of_fault(cls, term: Optional[Term], exc: BaseException) -> "Outcome":
        """A contained runtime failure: truncated with the input as the
        partial result and the exception as the detail."""
        return cls(
            TRUNCATED,
            term=term,
            reason="fault",
            detail=f"{type(exc).__name__}: {exc}",
        )

    def subject_summary(self) -> str:
        """The capped rendering of the carried term — the same
        :func:`~repro.runtime.render.summarize_term` helper the engine's
        error messages and the trace events use, so a truncated outcome,
        its ``RewriteLimitError`` twin, and the ``budget_exhausted``
        trace event all quote the subject identically."""
        return summarize_term(self.term) if self.term is not None else ""

    def __str__(self) -> str:
        if self.status == NORMALIZED:
            return f"normalized: {self.subject_summary()}"
        if self.status == ERROR_VALUE:
            return f"error value of sort {self.term.sort}"  # type: ignore[union-attr]
        bits = [self.status]
        if self.reason:
            bits.append(f"({self.reason})")
        if self.detail:
            bits.append(f"- {self.detail}")
        return " ".join(bits)
