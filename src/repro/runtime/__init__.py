"""The resilient evaluation runtime.

The paper's algebra is total: every operation has a defined value even
at the edges, with the distinguished ``error`` propagating strictly.
This package gives the *runtime* the same property.  Instead of an
ad-hoc fuel integer and raw exceptions, evaluation runs under an
:class:`EvaluationBudget` (fuel, wall-clock deadline, memory caps),
divergence is *diagnosed* (a cycling rewrite is distinguished from a
merely expensive one, with the minimal repeating trace as evidence),
and clients that cannot afford an exception get a structured
:class:`Outcome` instead — see
:meth:`repro.rewriting.engine.RewriteEngine.normalize_outcome`.

Modules
-------
:mod:`repro.runtime.budget`
    :class:`EvaluationBudget` / :class:`BudgetMeter` — declarative limits
    and the per-evaluation meter that enforces them, shared by the
    interpreted and compiled backends.
:mod:`repro.runtime.outcome`
    :class:`Outcome` — the structured result of resilient evaluation
    (``normalized | truncated | diverged | error_value``).
:mod:`repro.runtime.faults`
    The fault-point registry: named instrumentation sites inside the
    engines where the test harness (:mod:`repro.testing.faults`) can
    inject failures.
"""

from repro.runtime.budget import (
    DEFAULT_FUEL,
    BudgetExceeded,
    BudgetMeter,
    EvaluationBudget,
    REASON_CYCLE,
    REASON_DEADLINE,
    REASON_DEPTH,
    REASON_FAULT,
    REASON_FUEL,
    REASON_MEMORY,
)
from repro.runtime.outcome import (
    DIVERGED,
    ERROR_VALUE,
    NORMALIZED,
    Outcome,
    TRUNCATED,
)
from repro.runtime.faults import fault_point
from repro.runtime.render import SUMMARY_LIMIT, summarize_term

__all__ = [
    "BudgetExceeded",
    "BudgetMeter",
    "DEFAULT_FUEL",
    "DIVERGED",
    "ERROR_VALUE",
    "EvaluationBudget",
    "NORMALIZED",
    "Outcome",
    "REASON_CYCLE",
    "REASON_DEADLINE",
    "REASON_DEPTH",
    "REASON_FAULT",
    "REASON_FUEL",
    "REASON_MEMORY",
    "SUMMARY_LIMIT",
    "TRUNCATED",
    "fault_point",
    "summarize_term",
]
