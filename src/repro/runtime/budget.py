"""Evaluation budgets and the meters that enforce them.

An :class:`EvaluationBudget` is a declarative bundle of limits on one
evaluation:

* **fuel** — maximum rewrite steps, the classic divergence bound;
* **deadline** — wall-clock seconds, for callers that serve traffic and
  cannot wait for a pathological term to burn 200k steps;
* **max_intern_growth** — cap on *new* hash-consed term nodes created
  during the evaluation, the honest memory gauge for term explosion
  (a ``SPIN(l) = SPIN(SPIN(l))`` axiom grows the intern table without
  bound long before Python notices);
* **max_memo_entries** — cap on the engine's normal-form memo, applied
  at engine construction (the memo is engine state, not per-call state).

A :class:`BudgetMeter` is the live, per-evaluation counterpart.  It
subclasses ``list`` so the compiled backend's generated closures — which
decrement ``b[0]`` inline, with no attribute lookups on their hot path —
spend from the same cell the interpreted engine does; both backends
therefore enforce the same fuel bound exactly.  Deadline and memory are
checked at a pulse (every :data:`PULSE_INTERVAL` spends, and every
:data:`PULSE_INTERVAL` compiled root dispatches), so their granularity
is a few hundred steps on either backend.

Divergence diagnosis
--------------------

Terms are hash-consed, so "the evaluation is going in circles" is an
*identity* property of the sequence of root-rewrite subjects: a cycling
evaluation fires the same interned terms over and over, while a merely
expensive one fires an ever-fresh stream.  The meter exploits this
cheaply: only once remaining fuel drops below :data:`TRACK_RESERVE`
does it start recording fired subjects into a bounded ring; at
exhaustion it looks for a periodic tail.  A period means the final
``p`` subjects repeat the previous ``p`` identically (by interned
identity) — that slice is the **minimal repeating trace**, reported as
``reason="cycle"``.  A non-periodic tail is genuine fuel exhaustion
(``reason="fuel"``).  The happy path pays nothing: tracking never
activates for evaluations that finish with fuel to spare.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, replace
from time import monotonic
from typing import Optional

from repro.algebra.terms import intern_table_size

#: Default step budget, shared with the rewrite engine.  The paper's
#: specifications normalise any realistic term in far fewer steps; the
#: bound exists to catch runaway user axioms.
DEFAULT_FUEL = 200_000

#: Remaining-fuel watermark below which fired subjects are recorded for
#: the divergence diagnosis.
TRACK_RESERVE = 4096

#: Length of the subject ring: cycles with period up to half this are
#: diagnosed with their minimal repeating trace.
TRACE_WINDOW = 512

#: Deadline / memory caps are checked every this-many spends (a mask,
#: so it must be a power of two).
PULSE_INTERVAL = 256

# Why an evaluation stopped short of a normal form.
REASON_FUEL = "fuel"  #: step budget exhausted, no periodicity in the tail
REASON_DEPTH = "depth"  #: Python recursion blow-up (subclass hooks)
REASON_DEADLINE = "deadline"  #: wall-clock deadline passed
REASON_CYCLE = "cycle"  #: rewriting revisits the same terms periodically
REASON_MEMORY = "memory"  #: intern-table growth cap exceeded
REASON_FAULT = "fault"  #: an unexpected runtime failure was contained

#: All reasons a :class:`BudgetExceeded` / ``RewriteLimitError`` may carry.
REASONS = (
    REASON_FUEL,
    REASON_DEPTH,
    REASON_DEADLINE,
    REASON_CYCLE,
    REASON_MEMORY,
    REASON_FAULT,
)


class BudgetExceeded(Exception):
    """Raised by a meter when any budget dimension runs out.

    Internal to the runtime: the engines catch it and re-raise a
    :class:`~repro.rewriting.engine.RewriteLimitError` carrying the
    subject term, or fold it into an :class:`~repro.runtime.Outcome`.
    """

    def __init__(self, reason: str, trace: tuple = (), detail: str = "") -> None:
        super().__init__(detail or reason)
        self.reason = reason
        self.trace = trace
        self.detail = detail


@dataclass(frozen=True)
class EvaluationBudget:
    """Declarative limits on one evaluation (see module docstring).

    Budgets are immutable values: share them, put them in configuration,
    pass one per call.  ``start()`` mints the live meter.
    """

    fuel: int = DEFAULT_FUEL
    deadline: Optional[float] = None
    max_intern_growth: Optional[int] = None
    max_memo_entries: Optional[int] = None

    def start(self) -> "BudgetMeter":
        """A fresh meter for one evaluation under this budget."""
        return BudgetMeter(self)

    def with_fuel(self, fuel: int) -> "EvaluationBudget":
        """This budget with a different fuel bound (engines use it to
        honour post-construction ``engine.fuel`` adjustments)."""
        if fuel == self.fuel:
            return self
        return replace(self, fuel=fuel)


class BudgetMeter(list):
    """Live budget state for one evaluation.

    The single list element is the remaining fuel — compiled closures
    decrement it as ``b[0] -= 1`` and raise their private limit signal
    when it goes negative; the interpreted engine spends through
    :meth:`spend`, which also feeds the divergence tracker and the
    deadline/memory pulse.
    """

    def __init__(self, budget: EvaluationBudget) -> None:
        super().__init__((budget.fuel,))
        self.budget = budget
        self.track_below = min(budget.fuel, TRACK_RESERVE)
        self.deadline_at = (
            None if budget.deadline is None else monotonic() + budget.deadline
        )
        self.intern_base = (
            intern_table_size()
            if budget.max_intern_growth is not None
            else 0
        )
        self.trace: Optional[deque] = None
        self._pulse = 0

    # -- spending ------------------------------------------------------
    def spend(self, subject) -> None:
        """Account one rewrite step fired on ``subject``.

        Raises :class:`BudgetExceeded` when fuel runs out (with the
        cycle diagnosis), the deadline passes, or a memory cap trips.
        """
        remaining = self[0] = self[0] - 1
        if remaining < self.track_below:
            ring = self.trace
            if ring is None:
                ring = self.trace = deque(maxlen=TRACE_WINDOW)
            ring.append(subject)
            if remaining < 0:
                raise self.exhausted()
        pulse = self._pulse = self._pulse + 1
        if not (pulse & (PULSE_INTERVAL - 1)):
            self.checkpoint()

    def tick(self) -> None:
        """A pulse for drivers that spend fuel out of the meter's sight
        (the compiled driver calls this per root dispatch): checks the
        deadline and memory caps at the same cadence as :meth:`spend`."""
        pulse = self._pulse = self._pulse + 1
        if not (pulse & (PULSE_INTERVAL - 1)):
            self.checkpoint()

    def checkpoint(self) -> None:
        """Check the non-fuel budget dimensions now."""
        budget = self.budget
        if self.deadline_at is not None and monotonic() > self.deadline_at:
            raise BudgetExceeded(
                REASON_DEADLINE,
                detail=f"wall-clock deadline of {budget.deadline:g}s exceeded",
            )
        cap = budget.max_intern_growth
        if cap is not None and intern_table_size() - self.intern_base > cap:
            raise BudgetExceeded(
                REASON_MEMORY,
                detail=(
                    f"evaluation interned more than {cap} new term nodes"
                ),
            )

    # -- diagnosis -----------------------------------------------------
    def exhausted(self) -> BudgetExceeded:
        """The exception describing *why* fuel ran out: ``cycle`` with
        the minimal repeating trace when the tail of fired subjects is
        periodic, plain ``fuel`` otherwise."""
        cycle = self.detect_cycle()
        if cycle is not None:
            return BudgetExceeded(
                REASON_CYCLE,
                trace=cycle,
                detail=(
                    f"rewriting revisits the same {len(cycle)} term(s) "
                    "periodically"
                ),
            )
        return BudgetExceeded(REASON_FUEL)

    def detect_cycle(self) -> Optional[tuple]:
        """The minimal repeating trace in the recorded tail, or None.

        A period ``p`` qualifies when the last ``p`` subjects repeat the
        previous ``p`` identically — and, when the ring is long enough,
        the ``p`` before that too, so a coincidental one-off repeat of a
        long slice is not mistaken for a cycle.  Comparison is object
        identity in all the cases that matter (terms are interned).
        """
        if self.trace is None:
            return None
        ring = list(self.trace)
        n = len(ring)
        for period in range(1, n // 2 + 1):
            tail = ring[-period:]
            if ring[-2 * period : -period] != tail:
                continue
            if 3 * period <= n and ring[-3 * period : -2 * period] != tail:
                continue
            return tuple(tail)
        return None
