"""The fault-point registry: chaos hooks inside the evaluation runtime.

The engines call :func:`fault_point` at a handful of named sites —
rule selection, builtin evaluation, memo insertion, compiled dispatch,
fallback entry.  In production the hook is a module-global ``None``
check and costs nothing.  Under test, :mod:`repro.testing.faults`
installs an injector whose ``visit(site, payload)`` may raise a planned
exception (``RecursionError``, ``MemoryError``, a generic runtime
failure) or perturb the payload (e.g. evict memo entries, the benign
form of cache corruption the runtime must tolerate), at seeded
per-site probabilities.

The instrumented sites are the explicit allowlist of *fault
boundaries*: every ``except Exception`` in the runtime exists to
contain exactly the failures injectable here, and the chaos suite
(``tests/runtime/test_chaos.py``) holds the engines to their
invariants — batches never abort, caches stay consistent with a cold
engine, ``error`` propagation stays strict — under fire at each site.
"""

from __future__ import annotations

from typing import Optional, Protocol


class FaultInjector(Protocol):
    """What the registry expects of an installed injector."""

    def visit(self, site: str, payload: object = None) -> None:
        """Called at each instrumented site; may raise or perturb."""


#: The instrumented sites.  Keep in sync with the ``fault_point`` /
#: ``ACTIVE.visit`` calls in the engine modules; the chaos suite
#: iterates this tuple, so an uninstrumented name fails loudly there.
SITES = (
    "engine.match_root",  # interpreted rule selection
    "engine.builtin",  # builtin operation evaluation
    "engine.remember",  # ground normal-form memo insertion
    "compiled.root",  # compiled per-operation closure dispatch
    "compiled.fallback",  # compiled -> interpreted depth fallback
    "symbolic.apply",  # symbolic interpreter operation application
    "serve.handle",  # request handling, after admission (slow/failing handler)
    "serve.respond",  # response writing (dropped connection mid-reply)
)

#: The installed injector, or None (the fast path).  Engine hot paths
#: read this module attribute directly — ``if faults.ACTIVE is not
#: None`` — so installation is a plain assignment, no indirection.
ACTIVE: Optional[FaultInjector] = None


def install(injector: Optional[FaultInjector]) -> Optional[FaultInjector]:
    """Install ``injector`` (or None to disarm); returns the previous
    one so nesting restores correctly."""
    global ACTIVE
    previous = ACTIVE
    ACTIVE = injector
    return previous


def fault_point(site: str, payload: object = None) -> None:
    """Visit an instrumentation site.  No-op unless an injector is
    installed.  (Hot paths inline the ``ACTIVE`` check instead of
    calling this.)"""
    injector = ACTIVE
    if injector is not None:
        injector.visit(site, payload)
