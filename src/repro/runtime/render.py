"""Work-bounded term rendering for diagnostics.

Error messages, trace events and structured outcomes all need to quote
the term they are talking about, and that term may be pathologically
large — the whole point of a budget blowing is that something grew out
of hand.  :func:`summarize_term` bounds both the *output* and the
*work*: a huge term is summarised from its O(1) cached node count
without ever materialising its (possibly multi-megabyte) string, and a
term too deep even to print falls back to a node count.

One helper, used everywhere a subject is quoted — the
:class:`~repro.rewriting.engine.RewriteLimitError` message, the
divergence-trace rendering, and the observability layer's trace events
(:mod:`repro.obs.trace`) — so every diagnosis renders the same subject
the same way.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.algebra.terms import Term

#: Default rendering budget, in characters of output.
SUMMARY_LIMIT = 200


def summarize_term(term: "Term", limit: int = SUMMARY_LIMIT) -> str:
    """Render ``term`` for a diagnostic, capped at ``limit`` characters.

    The cap bounds the work too: terms whose cached node count exceeds
    ``2 * limit`` are summarised as ``<Sort term of N nodes>`` without
    being stringified at all.
    """
    try:
        if term.size() > 2 * limit:
            return f"<{term.sort} term of {term.size()} nodes>"
        rendered = str(term)
    except RecursionError:  # term too deep even to print
        return f"<term of {term.size()} nodes>"
    if len(rendered) > limit:
        rendered = rendered[:limit] + "..."
    return rendered
