"""Hypothesis strategies over a specification's term algebra.

``term_strategy(spec, sort)`` draws ground constructor terms of ``sort``
with proper shrinking (smaller terms first), so property tests get
minimal counterexamples.  ``value_strategy(binding, sort)`` additionally
evaluates the drawn term through an implementation binding, yielding
Python values of the abstract type for direct property testing.
"""

from __future__ import annotations

from typing import Optional, Sequence

from hypothesis import strategies as st

from repro.algebra.signature import Operation
from repro.algebra.sorts import Sort
from repro.algebra.terms import App, Lit, Term
from repro.spec.specification import Specification
from repro.testing.termgen import DEFAULT_POOLS
from repro.testing.oracle import ImplementationBinding


def constructor_table(spec: Specification) -> dict[Sort, list[Operation]]:
    """Free constructors per sort (operations never rewritten away)."""
    heads = {axiom.head.name for axiom in spec.all_axioms()}
    table: dict[Sort, list[Operation]] = {}
    for operation in spec.full_signature().operations:
        if operation.name in heads or operation.builtin is not None:
            continue
        table.setdefault(operation.range, []).append(operation)
    return table


def term_strategy(
    spec: Specification,
    sort: Sort,
    max_leaves: int = 12,
    pools: Optional[dict[str, Sequence[object]]] = None,
) -> st.SearchStrategy[Term]:
    """Ground constructor terms of ``sort`` under ``spec``."""
    table = constructor_table(spec)
    literal_pools = dict(DEFAULT_POOLS)
    if pools:
        for name, values in pools.items():
            literal_pools[name] = tuple(values)

    # Fail fast on uninhabited sorts (st.deferred would only surface the
    # problem at draw time).
    _check_inhabited(sort, table, literal_pools, spec)

    cache: dict[Sort, st.SearchStrategy[Term]] = {}

    def for_sort(target: Sort) -> st.SearchStrategy[Term]:
        if target in cache:
            return cache[target]
        strategy = st.deferred(lambda: build(target))
        cache[target] = strategy
        return strategy

    def build(target: Sort) -> st.SearchStrategy[Term]:
        alternatives: list[st.SearchStrategy[Term]] = []
        pool = literal_pools.get(str(target))
        if pool:
            alternatives.append(
                st.sampled_from(pool).map(lambda v, s=target: Lit(v, s))
            )
        constructors = table.get(target, [])
        bases = [op for op in constructors if not op.domain]
        recursives = [op for op in constructors if op.domain]
        alternatives.extend(st.just(App(op, ())) for op in bases)
        if not alternatives and not recursives:
            raise ValueError(f"sort {target} is uninhabited under {spec.name}")
        base = st.one_of(alternatives) if alternatives else None
        extensions = [
            st.tuples(*[for_sort(s) for s in op.domain]).map(
                lambda args, o=op: App(o, args)
            )
            for op in recursives
        ]
        if base is None:
            # Purely recursive sorts cannot terminate; guarded above.
            return st.one_of(extensions)
        if not extensions:
            return base
        return st.recursive(
            base,
            lambda children: st.one_of(
                [
                    st.tuples(
                        *[
                            children if s == target else for_sort(s)
                            for s in op.domain
                        ]
                    ).map(lambda args, o=op: App(o, args))
                    for op in recursives
                ]
            ),
            max_leaves=max_leaves,
        )

    return for_sort(sort)


def _check_inhabited(
    sort: Sort,
    table: dict[Sort, list[Operation]],
    pools: dict[str, Sequence[object]],
    spec: Specification,
) -> None:
    """Raise ValueError unless ground terms of ``sort`` exist.

    Least-fixed-point over the constructor table: a sort is inhabited
    when it has a literal pool or some constructor whose whole domain is
    inhabited.
    """
    inhabited: set[Sort] = {
        s
        for s in table
        if any(not op.domain for op in table[s])
    }
    for name, pool in pools.items():
        if not pool:
            continue
        try:
            inhabited.add(Sort(name))
        except ValueError:
            continue  # pool key is not a plain sort name
    changed = True
    while changed:
        changed = False
        for target, constructors in table.items():
            if target in inhabited:
                continue
            for op in constructors:
                if all(s in inhabited for s in op.domain):
                    inhabited.add(target)
                    changed = True
                    break
    if sort not in inhabited:
        raise ValueError(f"sort {sort} is uninhabited under {spec.name}")


def value_strategy(
    binding: ImplementationBinding,
    sort: Optional[Sort] = None,
    max_leaves: int = 12,
) -> st.SearchStrategy[object]:
    """Implementation values of the (by default) type of interest."""
    spec = binding.spec
    target = sort if sort is not None else spec.type_of_interest
    return term_strategy(spec, target, max_leaves=max_leaves).map(
        lambda term: binding.evaluate(term, {})
    )


def substitution_strategy(
    spec: Specification,
    variables,
    max_leaves: int = 8,
) -> st.SearchStrategy:
    """Ground substitutions covering ``variables`` (for axiom checks)."""
    from repro.algebra.substitution import Substitution

    ordered = sorted(variables, key=lambda v: v.name)
    return st.tuples(
        *[term_strategy(spec, v.sort, max_leaves=max_leaves) for v in ordered]
    ).map(lambda terms: Substitution(dict(zip(ordered, terms))))
