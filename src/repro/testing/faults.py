"""Seeded fault injection for the evaluation runtime.

Gaudel & Le Gall treat observable behaviour under *all* inputs —
including degenerate ones — as an implementation's conformance surface.
This harness extends that stance to the runtime itself: it arms the
fault points instrumented inside the engines
(:data:`repro.runtime.faults.SITES`) with seeded, per-site fault plans,
so the chaos suite can prove the resilience invariants hold *under
fire*: batches never abort, caches stay consistent with a cold engine,
``error`` propagation stays strict.

Usage::

    plan = FaultPlan(seed=2026, sites={
        "engine.match_root": FaultSpec(InjectedFault, probability=0.05),
        "engine.remember": FaultSpec(kind="evict", probability=0.2),
    })
    with inject_faults(plan) as injector:
        outcomes = engine.normalize_many_outcomes(terms)
    assert injector.fired  # the plan actually did something

Fault kinds per site:

* an exception class (``InjectedFault``, ``RecursionError``,
  ``MemoryError``) — raised at the site with the given probability,
  modelling rule-firing failures, recursion blow-ups, and allocation
  failures at the worst moments;
* ``kind="evict"`` — cache corruption of the recoverable sort: at the
  memo-insertion site, a random existing entry is deleted instead of an
  exception being raised.  The runtime's memo discipline (only
  completed normal forms are ever stored, inserts are all-or-nothing)
  makes eviction the *only* corruption a fault at that site can cause,
  and the chaos suite verifies results stay correct through it;
* ``kind="sleep"`` — a stall of ``delay`` seconds, for the serving
  boundary's request-level sites (``serve.handle``): a slow handler
  must make *its own* caller time out, not take the daemon's other
  in-flight requests with it.

Everything is driven by one ``random.Random(seed)``: the same plan and
seed replay the same faults, so a chaos failure is a reproducible bug
report, not a flake.
"""

from __future__ import annotations

import random
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Iterator, Mapping, Optional, Type, Union

from repro.obs import trace as _trace
from repro.runtime import faults as registry

#: Re-exported so tests can iterate every instrumented site.
SITES = registry.SITES


class InjectedFault(RuntimeError):
    """The generic injected runtime failure (a "rule firing failed")."""


@dataclass(frozen=True)
class FaultSpec:
    """What to do at one site: raise ``exception`` or perform ``kind``.

    ``probability`` is the per-visit chance of the fault firing;
    ``limit`` optionally caps the total number of firings (so a plan
    can inject exactly one fault and then stand down); ``delay`` is the
    stall duration for ``kind="sleep"``.
    """

    exception: Optional[Type[BaseException]] = InjectedFault
    probability: float = 1.0
    kind: str = "raise"
    limit: Optional[int] = None
    delay: float = 0.05


@dataclass(frozen=True)
class FaultPlan:
    """A seeded assignment of fault specs to instrumented sites."""

    seed: int = 2026
    sites: Mapping[str, FaultSpec] = field(default_factory=dict)

    @classmethod
    def single_site(
        cls,
        site: str,
        seed: int = 2026,
        exception: Type[BaseException] = InjectedFault,
        probability: float = 1.0,
        kind: str = "raise",
        limit: Optional[int] = None,
        delay: float = 0.05,
    ) -> "FaultPlan":
        """A plan that attacks exactly one site."""
        if site not in SITES:
            raise ValueError(f"unknown fault site: {site!r}")
        return cls(
            seed=seed,
            sites={
                site: FaultSpec(
                    exception=exception,
                    probability=probability,
                    kind=kind,
                    limit=limit,
                    delay=delay,
                )
            },
        )


class FaultInjector:
    """The live injector the registry calls at each fault point.

    Tracks what fired where (``fired`` maps site to count) so tests can
    assert the plan actually exercised something.
    """

    def __init__(self, plan: FaultPlan) -> None:
        unknown = set(plan.sites) - set(SITES)
        if unknown:
            raise ValueError(f"unknown fault site(s): {sorted(unknown)}")
        self.plan = plan
        self.rng = random.Random(plan.seed)
        self.fired: dict[str, int] = {}
        self.visits: dict[str, int] = {}

    def visit(self, site: str, payload: object = None) -> None:
        self.visits[site] = self.visits.get(site, 0) + 1
        spec = self.plan.sites.get(site)
        if spec is None:
            return
        if spec.limit is not None and self.fired.get(site, 0) >= spec.limit:
            return
        if self.rng.random() >= spec.probability:
            return
        self.fired[site] = self.fired.get(site, 0) + 1
        tracer = _trace.ACTIVE
        if tracer is not None:
            tracer.event("fault", site=site, kind=spec.kind)
        if spec.kind == "evict":
            self._evict(payload)
            return
        if spec.kind == "sleep":
            time.sleep(spec.delay)
            return
        assert spec.exception is not None
        raise spec.exception(f"injected fault at {site}")

    def _evict(self, payload: object) -> None:
        """Recoverable cache corruption: drop one random memo entry."""
        if isinstance(payload, dict) and payload:
            victim = self.rng.choice(list(payload))
            del payload[victim]

    @property
    def total_fired(self) -> int:
        return sum(self.fired.values())


@contextmanager
def inject_faults(
    plan: Union[FaultPlan, Mapping[str, FaultSpec]],
    seed: int = 2026,
) -> Iterator[FaultInjector]:
    """Arm the fault points with ``plan`` for the duration of the block.

    Accepts a full :class:`FaultPlan` or a bare site→spec mapping (the
    ``seed`` argument then applies).  Restores the previously installed
    injector on exit, so chaos scopes nest correctly.
    """
    if not isinstance(plan, FaultPlan):
        plan = FaultPlan(seed=seed, sites=dict(plan))
    injector = FaultInjector(plan)
    previous = registry.install(injector)
    try:
        yield injector
    finally:
        registry.install(previous)
