"""Spec-based testing: ground-term generation, the axiom oracle, and
hypothesis strategies."""

from repro.testing.termgen import (
    DEFAULT_POOLS,
    GenerationError,
    GroundTermGenerator,
)
from repro.testing.oracle import (
    BindingError,
    ERROR,
    ImplementationBinding,
    OracleFailure,
    OracleReport,
    check_axioms,
)
from repro.testing.bindings import (
    ALL_BINDINGS,
    array_binding,
    bag_binding,
    bounded_queue_binding,
    knowlist_binding,
    list_binding,
    map_binding,
    queue_binding,
    set_binding,
    stack_binding,
    symboltable_binding,
)
from repro.testing.strategies import (
    constructor_table,
    substitution_strategy,
    term_strategy,
    value_strategy,
)

__all__ = [
    "DEFAULT_POOLS",
    "GenerationError",
    "GroundTermGenerator",
    "BindingError",
    "ERROR",
    "ImplementationBinding",
    "OracleFailure",
    "OracleReport",
    "check_axioms",
    "ALL_BINDINGS",
    "array_binding",
    "bag_binding",
    "bounded_queue_binding",
    "knowlist_binding",
    "list_binding",
    "map_binding",
    "queue_binding",
    "set_binding",
    "stack_binding",
    "symboltable_binding",
    "constructor_table",
    "substitution_strategy",
    "term_strategy",
    "value_strategy",
]
