"""Standard implementation bindings for the ADT library.

One :class:`~repro.testing.oracle.ImplementationBinding` per concrete
implementation, ready for the axiom oracle and the hypothesis-based
property tests.
"""

from __future__ import annotations

from repro.testing.oracle import ImplementationBinding
from repro.adt.array import ARRAY_SPEC, HashArray
from repro.adt.boundedqueue import BOUNDED_QUEUE_SPEC, RingBufferQueue
from repro.adt.extras import (
    BAG_SPEC,
    FrozenSetModel,
    LIST_SPEC,
    MAP_SPEC,
    SET_SPEC,
    TupleBag,
)
from repro.adt.knowlist import (
    KNOWLIST_SPEC,
    TupleKnowlist,
)
from repro.adt.queue import ListQueue, QUEUE_SPEC
from repro.adt.stack import STACK_SPEC, LinkedStack
from repro.adt.symboltable import SYMBOLTABLE_SPEC, SymbolTable


def queue_binding() -> ImplementationBinding:
    return ImplementationBinding(
        QUEUE_SPEC,
        {
            "NEW": ListQueue.new,
            "ADD": lambda q, i: q.add(i),
            "FRONT": lambda q: q.front(),
            "REMOVE": lambda q: q.remove(),
            "IS_EMPTY?": lambda q: q.is_empty(),
        },
    )


def stack_binding() -> ImplementationBinding:
    return ImplementationBinding(
        STACK_SPEC,
        {
            "NEWSTACK": LinkedStack.newstack,
            "PUSH": lambda s, e: s.push(e),
            "POP": lambda s: s.pop(),
            "TOP": lambda s: s.top(),
            "IS_NEWSTACK?": lambda s: s.is_newstack(),
            "REPLACE": lambda s, e: s.replace(e),
        },
    )


def array_binding() -> ImplementationBinding:
    return ImplementationBinding(
        ARRAY_SPEC,
        {
            "EMPTY": HashArray.empty,
            "ASSIGN": lambda a, i, v: a.assign(i, v),
            "READ": lambda a, i: a.read(i),
            "IS_UNDEFINED?": lambda a, i: a.is_undefined(i),
        },
    )


def symboltable_binding() -> ImplementationBinding:
    return ImplementationBinding(
        SYMBOLTABLE_SPEC,
        {
            "INIT": SymbolTable.init,
            "ENTERBLOCK": lambda t: t.enterblock(),
            "LEAVEBLOCK": lambda t: t.leaveblock(),
            "ADD": lambda t, i, a: t.add(i, a),
            "IS_INBLOCK?": lambda t, i: t.is_inblock(i),
            "RETRIEVE": lambda t, i: t.retrieve(i),
        },
    )


def bounded_queue_binding(capacity: int = 64) -> ImplementationBinding:
    """Ring buffer checked against the (unbounded) queue axioms.

    The capacity is set above the oracle's term depth so no generated
    instance overflows — the conditional-correctness reading (stay
    within capacity and the queue axioms hold).
    """
    return ImplementationBinding(
        BOUNDED_QUEUE_SPEC,
        {
            "EMPTY_Q": lambda: RingBufferQueue.empty(capacity),
            "ADD_Q": lambda q, i: q.add(i),
            "FRONT_Q": lambda q: q.front(),
            "REMOVE_Q": lambda q: q.remove(),
            "IS_EMPTY_Q?": lambda q: q.is_empty(),
            "SIZE_Q": lambda q: q.size(),
        },
    )


def knowlist_binding() -> ImplementationBinding:
    return ImplementationBinding(
        KNOWLIST_SPEC,
        {
            "CREATE": TupleKnowlist.create,
            "APPEND": lambda k, i: k.append(i),
            "IS_IN?": lambda k, i: k.is_in(i),
        },
    )


def set_binding() -> ImplementationBinding:
    return ImplementationBinding(
        SET_SPEC,
        {
            "EMPTY_SET": FrozenSetModel.empty,
            "INSERT": lambda s, i: s.insert(i),
            "DELETE": lambda s, i: s.delete(i),
            "HAS?": lambda s, i: s.has(i),
        },
    )


def bag_binding() -> ImplementationBinding:
    return ImplementationBinding(
        BAG_SPEC,
        {
            "EMPTY_BAG": TupleBag.empty,
            "PUT": lambda b, i: b.put(i),
            "TAKE": lambda b, i: b.take(i),
            "COUNT": lambda b, i: b.count(i),
        },
    )


def list_binding() -> ImplementationBinding:
    return ImplementationBinding(
        LIST_SPEC,
        {
            "NIL": tuple,
            "CONS": lambda i, l: (i,) + l,
            "HEAD": _head,
            "TAIL": _tail,
            "LENGTH": len,
            "APPEND_L": lambda l, m: l + m,
            "IS_NIL?": lambda l: not l,
            "LAST": _last,
            "BUTLAST": _butlast,
        },
    )


def _head(items: tuple) -> object:
    from repro.spec.errors import AlgebraError

    if not items:
        raise AlgebraError("HEAD(NIL)")
    return items[0]


def _tail(items: tuple) -> tuple:
    from repro.spec.errors import AlgebraError

    if not items:
        raise AlgebraError("TAIL(NIL)")
    return items[1:]


def _last(items: tuple) -> object:
    from repro.spec.errors import AlgebraError

    if not items:
        raise AlgebraError("LAST(NIL)")
    return items[-1]


def _butlast(items: tuple) -> tuple:
    from repro.spec.errors import AlgebraError

    if not items:
        raise AlgebraError("BUTLAST(NIL)")
    return items[:-1]


def map_binding() -> ImplementationBinding:
    """Maps modelled as tuples of (key, value) pairs, newest first."""
    from repro.spec.errors import AlgebraError

    def lookup(binding_pairs: tuple, key: str) -> object:
        for bound_key, value in binding_pairs:
            if bound_key == key:
                return value
        raise AlgebraError(f"LOOKUP: {key!r} unbound")

    return ImplementationBinding(
        MAP_SPEC,
        {
            "EMPTY_MAP": tuple,
            "BIND": lambda m, k, v: ((k, v),) + m,
            "LOOKUP": lookup,
            "BOUND?": lambda m, k: any(bk == k for bk, _ in m),
        },
    )


def layered_store_binding():
    from repro.adt.store import store_binding

    return store_binding()


ALL_BINDINGS = {
    "Queue": queue_binding,
    "Store": layered_store_binding,
    "Stack": stack_binding,
    "Array": array_binding,
    "Symboltable": symboltable_binding,
    "BoundedQueue": bounded_queue_binding,
    "Knowlist": knowlist_binding,
    "Set": set_binding,
    "Bag": bag_binding,
    "List": list_binding,
    "Map": map_binding,
}
