"""The axiom oracle: testing implementations against specifications.

Section 5: "a system in which implementations and algebraic
specifications of abstract types are interchangeable ... should prove
valuable as a vehicle for facilitating the testing of software."

An :class:`ImplementationBinding` maps each operation of a specification
to a Python callable; the oracle then evaluates both sides of every
axiom on generated ground instances *through the implementation* and
compares results.  The paper's ``error`` corresponds to the callable
raising :class:`~repro.spec.errors.AlgebraError`; two sides are equal
when they produce equal values or both error.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Mapping, Optional

from repro.algebra.substitution import Substitution
from repro.algebra.terms import App, Err, Ite, Lit, Term, Var
from repro.obs.trace import maybe_span
from repro.spec.axioms import Axiom
from repro.spec.errors import AlgebraError
from repro.spec.specification import Specification


class _ErrorValue:
    """Sentinel for the algebra's ``error`` in Python evaluation."""

    _instance: Optional["_ErrorValue"] = None

    def __new__(cls) -> "_ErrorValue":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:
        return "ERROR"


#: The unique error value.
ERROR = _ErrorValue()


class BindingError(Exception):
    """Raised when a term mentions an operation the binding lacks."""


@dataclass
class ImplementationBinding:
    """Python callables implementing a specification's operations.

    ``impls`` maps operation names to callables; operations with a
    ``builtin`` evaluator (``ISSAME?``) and the Boolean prelude
    (``true``/``false``/``not``/``and``/``or``) need no entry.
    """

    spec: Specification
    impls: Mapping[str, Callable[..., object]]

    def evaluate(self, term: Term, env: Mapping[Var, object]) -> object:
        """The Python value of ``term`` under ``env``.

        Strict in ``error`` except through if-then-else branches,
        mirroring the term algebra's semantics.
        """
        if isinstance(term, Var):
            try:
                return env[term]
            except KeyError:
                raise BindingError(f"unbound variable {term}") from None
        if isinstance(term, Lit):
            return term.value
        if isinstance(term, Err):
            return ERROR
        if isinstance(term, Ite):
            condition = self.evaluate(term.cond, env)
            if condition is ERROR:
                return ERROR
            if not isinstance(condition, bool):
                raise BindingError(
                    f"if-condition evaluated to non-boolean {condition!r}"
                )
            branch = term.then_branch if condition else term.else_branch
            return self.evaluate(branch, env)
        assert isinstance(term, App)
        arguments = []
        for argument in term.args:
            value = self.evaluate(argument, env)
            if value is ERROR:
                return ERROR
            arguments.append(value)
        return self._apply(term.op.name, term.op, arguments)

    def _apply(self, name: str, operation, arguments: list) -> object:
        fn = self.impls.get(name)
        if fn is None:
            fn = _PRELUDE_IMPLS.get(name)
        if fn is None and operation.builtin is not None:
            fn = operation.builtin
        if fn is None:
            raise BindingError(f"no implementation bound for {name!r}")
        try:
            return fn(*arguments)
        except AlgebraError:
            return ERROR


def _not(value: bool) -> bool:
    return not value


def _and(left: bool, right: bool) -> bool:
    return left and right


def _or(left: bool, right: bool) -> bool:
    return left or right


_PRELUDE_IMPLS: dict[str, Callable[..., object]] = {
    "true": lambda: True,
    "false": lambda: False,
    "not": _not,
    "and": _and,
    "or": _or,
    "zero": lambda: 0,
    "succ": lambda n: n + 1,
}


@dataclass(frozen=True)
class OracleFailure:
    """One axiom instance the implementation got wrong."""

    axiom: Axiom
    substitution: Substitution
    lhs_value: object
    rhs_value: object

    def __str__(self) -> str:
        return (
            f"axiom {self.axiom} violated at {self.substitution}: "
            f"lhs = {self.lhs_value!r}, rhs = {self.rhs_value!r}"
        )


@dataclass
class OracleReport:
    spec_name: str
    instances_checked: int = 0
    failures: list[OracleFailure] = field(default_factory=list)
    #: Instances whose evaluation stopped short of a normal form
    #: (budget exhaustion, diagnosed divergence, contained faults).
    #: Undecided is not unequal: they count separately from failures.
    undecided: int = 0

    @property
    def ok(self) -> bool:
        return not self.failures

    def __str__(self) -> str:
        verdict = "PASS" if self.ok else "FAIL"
        suffix = (
            f", {self.undecided} undecided" if self.undecided else ""
        )
        lines = [
            f"axiom oracle for {self.spec_name}: {verdict} "
            f"({self.instances_checked} instance(s){suffix})"
        ]
        lines.extend(f"  {failure}" for failure in self.failures[:10])
        return "\n".join(lines)


def check_axioms(
    binding: ImplementationBinding,
    instances_per_axiom: int = 25,
    max_depth: int = 5,
    seed: int = 2026,
    axioms: Optional[tuple[Axiom, ...]] = None,
) -> OracleReport:
    """Evaluate every axiom of the binding's spec on random ground
    instances through the implementation."""
    from repro.testing.termgen import GenerationError, GroundTermGenerator

    spec = binding.spec
    generator = GroundTermGenerator(spec, seed=seed, max_depth=max_depth)
    report = OracleReport(spec.name)
    for axiom in axioms if axioms is not None else spec.axioms:
        for _ in range(instances_per_axiom):
            try:
                sigma = generator.substitution_for(axiom.variables())
            except GenerationError:
                continue
            env = {
                variable: binding.evaluate(term, {})
                for variable, term in sigma.items()
            }
            report.instances_checked += 1
            lhs_value = binding.evaluate(axiom.lhs, env)
            rhs_value = binding.evaluate(axiom.rhs, env)
            if not _values_equal(lhs_value, rhs_value):
                report.failures.append(
                    OracleFailure(axiom, sigma, lhs_value, rhs_value)
                )
    return report


def _values_equal(left: object, right: object) -> bool:
    if left is ERROR or right is ERROR:
        return left is right
    return left == right


def check_axioms_by_rewriting(
    spec: Specification,
    instances_per_axiom: int = 25,
    max_depth: int = 5,
    seed: int = 2026,
    axioms: Optional[tuple[Axiom, ...]] = None,
    backend: str = "interpreted",
    workers: Optional[int] = None,
) -> OracleReport:
    """Model-check the specification against *itself* by rewriting.

    The same ground instances :func:`check_axioms` would feed a Python
    implementation are instead normalised with the rewrite engine and
    compared as normal forms — both sides of every instance in one
    :meth:`~repro.rewriting.engine.RewriteEngine.normalize_many_outcomes`
    batch, so the shared substructure across an axiom's instances is
    evaluated once and one pathological instance cannot abort its
    neighbours (it is tallied in ``report.undecided`` instead).  A
    consistent specification passes trivially; the check earns its keep
    as a differential harness (run once per ``backend``) and as a smoke
    test for user-written axioms.

    ``workers=N`` shards each axiom's instance batch across worker
    processes — the engine (and its pool of warm worker engines)
    persists across axioms, so the spawn cost amortises over the whole
    check.
    """
    from repro.rewriting.engine import RewriteEngine
    from repro.testing.termgen import GenerationError, GroundTermGenerator

    engine = RewriteEngine.for_specification(spec, backend=backend)
    generator = GroundTermGenerator(spec, seed=seed, max_depth=max_depth)
    report = OracleReport(spec.name)
    for axiom in axioms if axioms is not None else spec.axioms:
        instances: list[tuple[Substitution, Term, Term]] = []
        for _ in range(instances_per_axiom):
            try:
                sigma = generator.substitution_for(axiom.variables())
            except GenerationError:
                continue
            instances.append(
                (sigma, sigma.apply(axiom.lhs), sigma.apply(axiom.rhs))
            )
        with maybe_span(
            "oracle.axiom",
            spec=spec.name,
            backend=backend,
            label=axiom.label or str(axiom.lhs),
            instances=len(instances),
        ):
            outcomes = engine.normalize_many_outcomes(
                [side for _, lhs, rhs in instances for side in (lhs, rhs)],
                workers=workers,
            )
        for i, (sigma, _, _) in enumerate(instances):
            left, right = outcomes[2 * i], outcomes[2 * i + 1]
            if not (left.ok and right.ok):
                report.undecided += 1
                continue  # divergent/truncated: not an inequality
            report.instances_checked += 1
            if left.term != right.term:
                report.failures.append(
                    OracleFailure(axiom, sigma, left.term, right.term)
                )
    engine.close_pools()
    return report
