"""Random ground-term generation.

Both the analysis layer (sampling observations for the
sufficient-completeness check) and the testing layer (axiom oracles,
hypothesis strategies) need ground terms of a given sort.  The
:class:`GroundTermGenerator` builds them from a specification's
constructors, drawing leaf values for literal-bearing sorts
(Identifier, Item, Attributelist, Nat) from small pools so that
collisions — the interesting case for ``ISSAME?`` — actually happen.
"""

from __future__ import annotations

import random
from typing import Iterable, Optional, Sequence

from repro.algebra.signature import Operation
from repro.algebra.sorts import NAT, Sort
from repro.algebra.terms import App, Lit, Term
from repro.spec.prelude import ATTRIBUTELIST, IDENTIFIER, ITEM
from repro.spec.specification import Specification

#: Default literal pools per sort name.  Small pools on purpose.
DEFAULT_POOLS: dict[str, tuple[object, ...]] = {
    str(IDENTIFIER): ("x", "y", "z", "tmp", "count"),
    str(ITEM): ("a", "b", "c", 1, 2),
    str(ATTRIBUTELIST): ("int", "real", "proc", ("int", 4)),
    str(NAT): (0, 1, 2, 3, 7),
    "Elem": ("e1", "e2", "e3"),
}


class GenerationError(Exception):
    """Raised when no ground term of a requested sort can be built."""


class GroundTermGenerator:
    """Generates random ground terms over a specification's signature.

    Parameters
    ----------
    spec:
        The specification whose constructors to use.  Constructors are
        determined per sort: operations with that range that never head
        an axiom (so values built here are in normal form already).
    seed:
        Seed for the private :class:`random.Random`; generation is
        deterministic given the seed.
    max_depth:
        Depth bound for generated terms.  At the bound, only
        non-recursive constructors (or literals) are used.
    pools:
        Overrides/extensions for the literal pools.
    """

    def __init__(
        self,
        spec: Specification,
        seed: int = 0,
        max_depth: int = 5,
        pools: Optional[dict[str, Sequence[object]]] = None,
    ) -> None:
        self.spec = spec
        self.max_depth = max_depth
        self._random = random.Random(seed)
        self._pools: dict[str, tuple[object, ...]] = dict(DEFAULT_POOLS)
        if pools:
            for name, values in pools.items():
                self._pools[name] = tuple(values)
        self._constructors = self._constructor_table()
        # Recursive constructors per sort, precomputed once rather than
        # refiltered on every generated node.
        self._recursive: dict[Sort, list[Operation]] = {
            sort: [op for op in ops if sort in op.domain]
            for sort, ops in self._constructors.items()
        }

    def _constructor_table(self) -> dict[Sort, list[Operation]]:
        signature = self.spec.full_signature()
        heads = {axiom.head.name for axiom in self.spec.all_axioms()}
        table: dict[Sort, list[Operation]] = {}
        for operation in signature.operations:
            if operation.name in heads or operation.builtin is not None:
                continue
            table.setdefault(operation.range, []).append(operation)
        return table

    # ------------------------------------------------------------------
    def term(self, sort: Sort, depth: Optional[int] = None) -> Term:
        """A random ground term of ``sort``."""
        budget = self.max_depth if depth is None else depth
        return self._term(sort, budget)

    def _term(self, sort: Sort, budget: int) -> Term:
        pool = self._pools.get(str(sort))
        constructors = self._constructors.get(sort, [])
        if budget <= 1:
            bases = [op for op in constructors if not op.domain]
            if bases:
                # Mix literal leaves in even when base constructors exist.
                if pool and self._random.random() < 0.3:
                    return Lit(self._random.choice(pool), sort)
                return App(self._random.choice(bases), ())
            if pool:
                return Lit(self._random.choice(pool), sort)
            raise GenerationError(f"no base case for sort {sort}")
        candidates: list[Optional[Operation]] = list(constructors)
        if pool:
            candidates.append(None)  # None stands for "emit a literal"
        if not candidates:
            raise GenerationError(f"no constructors or literals for sort {sort}")
        # Bias towards recursion while budget remains, so terms have meat.
        recursive = self._recursive.get(sort, [])
        if recursive and self._random.random() < 0.7:
            choice: Optional[Operation] = self._random.choice(recursive)
        else:
            choice = self._random.choice(candidates)
        if choice is None:
            return Lit(self._random.choice(pool), sort)  # type: ignore[arg-type]
        args = [self._term(arg_sort, budget - 1) for arg_sort in choice.domain]
        return App(choice, args)

    def observation(self, operation: Operation, depth: Optional[int] = None) -> Optional[Term]:
        """``operation`` applied to random ground arguments, or ``None``
        when some argument sort is uninhabited."""
        budget = self.max_depth if depth is None else depth
        try:
            args = [self._term(sort, budget) for sort in operation.domain]
        except GenerationError:
            return None
        return App(operation, args)

    def substitution_for(self, variables: Iterable) -> "object":
        """A ground substitution covering ``variables``."""
        from repro.algebra.substitution import Substitution

        mapping = {}
        for variable in variables:
            mapping[variable] = self.term(variable.sort)
        return Substitution(mapping)
