"""Self-healing shard pools: respawn with backoff, behind a breaker.

The :class:`~repro.parallel.pool.ShardPool` already guarantees that
losing workers never loses a batch — a dead worker degrades the pool to
parent-side serial evaluation (``parallel.degradations``).  But a
degraded pool *stays* degraded: for a CLI invocation that is the right
call (finish the batch, exit), for a long-lived daemon it would mean
one SIGKILLed worker permanently costs the process its parallelism.

:class:`PoolSupervisor` adds the replacement policy on top:

* after every batch it checks whether the pool broke, and if so counts
  a crash and schedules a *respawn* — a fresh pool from the factory —
  no earlier than an exponential backoff (``base * 2**(crashes-1)``,
  capped) from the crash;
* batches that arrive before the backoff elapses run on the broken
  pool, i.e. serially parent-side — degraded but correct, never queued
  behind a respawn;
* repeated crashes without an intervening healthy batch trip a
  *circuit breaker*: after ``max_crashes`` consecutive crashes the
  supervisor stops respawning for ``cooldown`` seconds (state
  ``open``), then allows exactly one probe respawn (``half_open``);
  a healthy batch on the probe closes the circuit and resets the
  crash count, another crash re-opens it.

Everything is time-*checked*, never slept: the supervisor does its
bookkeeping inline on the batch path, so a respawn decision costs a
monotonic-clock read and the daemon's request threads never block on
healing.  Counters land under ``serve.pool_respawns``,
``serve.worker_crashes`` and the ``serve.circuit_state`` gauge
(0 closed / 1 open / 2 half-open).
"""

from __future__ import annotations

import os
import threading
import time
from typing import Callable, Optional

from repro.obs import metrics as _metrics
from repro.parallel.pool import ShardPool
from repro.runtime import EvaluationBudget
from repro.runtime.outcome import Outcome

__all__ = ["PoolSupervisor"]

#: ``serve.circuit_state`` gauge values.
_CLOSED, _OPEN, _HALF_OPEN = 0, 1, 2


class PoolSupervisor:
    """Owns one :class:`ShardPool` and keeps it alive.

    ``factory`` builds a fresh pool (bound to rules + engine options);
    the supervisor warms it, routes batches through it, and replaces it
    per the backoff/breaker policy above.  Thread-safe: the daemon's
    request threads call :meth:`normalize_many_outcomes` concurrently.
    """

    def __init__(
        self,
        factory: Callable[[], ShardPool],
        *,
        backoff_base: float = 0.25,
        backoff_cap: float = 10.0,
        max_crashes: int = 4,
        cooldown: float = 30.0,
        registry: Optional[_metrics.MetricsRegistry] = None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self._factory = factory
        self.backoff_base = backoff_base
        self.backoff_cap = backoff_cap
        self.max_crashes = max_crashes
        self.cooldown = cooldown
        self._clock = clock
        self._lock = threading.Lock()
        registry = registry if registry is not None else _metrics.GLOBAL
        self.registry = registry  # the process-wide registry set is weak
        self._c_crashes = registry.counter(
            "serve.worker_crashes", "shard-pool breakages observed"
        )
        self._c_respawns = registry.counter(
            "serve.pool_respawns", "fresh pools spawned to replace broken ones"
        )
        self._g_circuit = registry.gauge(
            "serve.circuit_state",
            "respawn circuit: 0 closed, 1 open, 2 half-open",
        )
        self._crashes = 0  # consecutive, reset by a healthy batch
        self._crash_seen = False  # current pool's breakage already counted
        self._next_retry: Optional[float] = None
        self._state = _CLOSED
        self._g_circuit.set(_CLOSED)
        self._pool = factory()
        self._pids: list[int] = self._pool.warm()
        if self._pool._broken:
            self._note_crash()

    # -- policy ---------------------------------------------------------
    def _backoff(self) -> float:
        return min(
            self.backoff_cap, self.backoff_base * 2 ** max(0, self._crashes - 1)
        )

    def _note_crash(self) -> None:
        """Record the current pool's breakage (once per pool instance)
        and schedule the next respawn attempt.  Caller holds the lock
        (or is the constructor)."""
        if self._crash_seen:
            return
        self._crash_seen = True
        self._crashes += 1
        self._c_crashes.inc()
        if self._state == _HALF_OPEN or self._crashes >= self.max_crashes:
            # The probe died too, or we've crashed our way to the limit:
            # open the circuit and wait out the cooldown.
            self._state = _OPEN
            self._next_retry = self._clock() + self.cooldown
        else:
            self._next_retry = self._clock() + self._backoff()
        self._g_circuit.set(self._state)

    def _maybe_respawn_locked(self) -> None:
        if not self._pool._broken:
            return
        self._note_crash()
        now = self._clock()
        if self._next_retry is not None and now < self._next_retry:
            return
        if self._state == _OPEN:
            # Cooldown elapsed: one probe allowed.
            self._state = _HALF_OPEN
            self._g_circuit.set(self._state)
        old, self._pool = self._pool, self._factory()
        old.close()
        self._c_respawns.inc()
        self._crash_seen = False
        self._pids = self._pool.warm()
        if self._pool._broken:
            self._note_crash()

    def _after_batch(self) -> None:
        with self._lock:
            if self._pool._broken:
                self._note_crash()
            else:
                # A healthy parallel batch: close the circuit.
                self._crashes = 0
                self._next_retry = None
                if self._state != _CLOSED:
                    self._state = _CLOSED
                    self._g_circuit.set(_CLOSED)

    # -- the batch path -------------------------------------------------
    def normalize_many_outcomes(
        self, terms: list, budget: Optional[EvaluationBudget] = None
    ) -> list[Outcome]:
        """Run a batch on the healthiest pool available right now.

        Never raises for pool reasons: a broken pool evaluates the
        batch serially parent-side, and the healing bookkeeping happens
        around the call.
        """
        with self._lock:
            self._maybe_respawn_locked()
            pool = self._pool
        outcomes = pool.normalize_many_outcomes(terms, budget)
        self._after_batch()
        return outcomes

    # -- active healing -------------------------------------------------
    def _workers_alive_locked(self) -> bool:
        for pid in self._pids:
            try:
                os.kill(pid, 0)
            except OSError:
                return False
        return True

    def heal(self) -> bool:
        """Probe and heal *now*, without waiting for a batch.

        ``/readyz`` calls this: a SIGKILLed worker is invisible to the
        executor until the next submission, so readiness checks probe
        pid liveness directly, mark the pool broken if a worker is
        gone, and attempt the (backoff-gated) respawn.  Returns whether
        the parallel path is healthy afterwards.
        """
        with self._lock:
            if (
                not self._pool._broken
                and self._pids
                and not self._workers_alive_locked()
            ):
                self._pool._degrade("worker_died")
            self._maybe_respawn_locked()
            return not self._pool._broken

    # -- introspection / lifecycle --------------------------------------
    @property
    def healthy(self) -> bool:
        """True when the *parallel* path is live (pool not degraded)."""
        with self._lock:
            return not self._pool._broken

    @property
    def state(self) -> str:
        with self._lock:
            return {_CLOSED: "closed", _OPEN: "open", _HALF_OPEN: "half_open"}[
                self._state
            ]

    def worker_pids(self) -> list[int]:
        with self._lock:
            return list(self._pids) if not self._pool._broken else []

    def pool_snapshot(self) -> dict:
        """The current pool's merged worker metrics snapshot.

        ``/readyz`` folds the workers' ``engine.fuel_per_eval``
        histograms into its fuel-budget suggestion through this; the
        snapshot survives pool replacement only as far as the new
        pool's workers have re-observed, which is the honest view."""
        with self._lock:
            return self._pool.metrics_snapshot()

    def close(self) -> None:
        with self._lock:
            self._pool.close()
