"""Spec-as-a-service: the long-lived ``repro serve`` daemon.

Every CLI invocation today pays full cold-start: parse the spec, build
the signature, compile or generate the rule modules, warm the intern
table and the normal-form memo.  This package amortises all of that
behind a zero-dependency HTTP daemon that loads specifications once
into per-fingerprint warm engines and answers batched ``normalize`` /
``check`` / ``prove`` requests — the front end the PR-3 resilience
ladder and the PR-7 shard pool were built for.

Robustness is the headline:

* **admission control** (:mod:`repro.serve.admission`) — server-side
  ceilings clamp every per-request
  :class:`~repro.runtime.EvaluationBudget`, a bounded queue holds
  momentary overload, and load beyond it is *shed* with structured
  429/503 responses carrying ``Retry-After`` — never queued unboundedly,
  never a hung connection;
* **fault isolation** — every batch item resolves to a per-item
  :class:`~repro.runtime.Outcome`, so a diverging client term returns
  ``diverged`` to its caller while the process keeps serving;
* **self-healing** (:mod:`repro.serve.supervisor`) — shard workers that
  die trigger the pool→serial degradation *plus* pool respawn with
  exponential backoff, behind a circuit breaker that stops respawning
  after repeated crashes;
* **observability of failure** — ``/metrics`` renders the PR-5 registry
  in Prometheus text exposition format, ``/healthz`` and ``/readyz``
  report liveness and readiness, and each request emits a span event
  into the JSONL tracer when one is installed.

:mod:`repro.serve.client` is the matching stdlib client: timeouts and
jittered retry on 429/503.
"""

from repro.serve.admission import (
    AdmissionController,
    AdmissionDenied,
    ServeLimits,
    clamp_budget,
)
from repro.serve.client import ServeClient, ServeError, ServeUnavailable
from repro.serve.server import ReproServer
from repro.serve.supervisor import PoolSupervisor

__all__ = [
    "AdmissionController",
    "AdmissionDenied",
    "PoolSupervisor",
    "ReproServer",
    "ServeClient",
    "ServeError",
    "ServeLimits",
    "ServeUnavailable",
    "clamp_budget",
]
