"""Admission control and load shedding for the serving daemon.

The resilience ladder (PR 3) bounds *one* evaluation: fuel, deadline,
intern growth, memo growth.  A daemon needs the next layer up — bounds
on how much evaluation it accepts *at once*.  This module provides it:

* :class:`ServeLimits` — the server-side ceilings.  Every per-request
  :class:`~repro.runtime.EvaluationBudget` is clamped through
  :func:`clamp_budget`, so no client can ask a shared daemon for an
  unbounded evaluation, and every admitted request carries a deadline
  even when its client sent none.
* :class:`AdmissionController` — a concurrency gate with a *bounded*
  wait queue.  Up to ``max_inflight`` requests evaluate concurrently;
  up to ``queue_depth`` more wait at most ``queue_timeout`` seconds.
  Anything beyond is *shed immediately* with a structured 429; a
  queued request whose wait expires is shed with a 503.  Shedding —
  not unbounded queueing — is what keeps latency bounded and the
  process alive under overload, and the ``Retry-After`` hint turns
  shed clients into a jittered retry population instead of a stampede.

The controller is pure ``threading`` — one lock, one condition — so it
works identically under ``ThreadingHTTPServer`` and in unit tests that
drive it directly.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import Optional

from repro.obs import metrics as _metrics
from repro.runtime import EvaluationBudget

__all__ = [
    "AdmissionController",
    "AdmissionDenied",
    "ServeLimits",
    "clamp_budget",
]


@dataclass(frozen=True)
class ServeLimits:
    """Server-side ceilings governing what a request may ask for.

    ``max_fuel`` and ``max_deadline`` clamp the per-request budget;
    ``max_batch`` bounds terms per request; ``max_body_bytes`` bounds
    the raw request body (checked before JSON parsing, so a hostile
    body is rejected for the price of a header read); ``max_inflight``,
    ``queue_depth`` and ``queue_timeout`` parameterize the admission
    gate; ``retry_after`` is the hint sent with shed responses.
    """

    max_fuel: int = 200_000
    max_deadline: float = 30.0
    max_batch: int = 256
    max_body_bytes: int = 4 * 1024 * 1024
    max_inflight: int = 4
    queue_depth: int = 16
    queue_timeout: float = 5.0
    retry_after: float = 1.0


class AdmissionDenied(Exception):
    """A request was shed.  ``status`` is the HTTP status to return
    (429 queue full / 503 wait timed out), ``reason`` a stable
    machine-readable token, ``retry_after`` the backoff hint."""

    def __init__(self, status: int, reason: str, retry_after: float) -> None:
        super().__init__(reason)
        self.status = status
        self.reason = reason
        self.retry_after = retry_after


def clamp_budget(
    budget: Optional[EvaluationBudget], limits: ServeLimits
) -> EvaluationBudget:
    """Clamp a client budget to the server ceilings.

    A missing budget gets the ceilings themselves; a present one keeps
    its own (tighter) values where they are under the ceiling.  The
    result always carries a deadline — a daemon never grants an
    open-ended evaluation slot.
    """
    if budget is None:
        return EvaluationBudget(
            fuel=limits.max_fuel, deadline=limits.max_deadline
        )
    fuel = budget.fuel
    if fuel is None or fuel > limits.max_fuel:
        fuel = limits.max_fuel
    deadline = budget.deadline
    if deadline is None or deadline > limits.max_deadline:
        deadline = limits.max_deadline
    return EvaluationBudget(
        fuel=fuel,
        deadline=deadline,
        max_intern_growth=budget.max_intern_growth,
        max_memo_entries=budget.max_memo_entries,
    )


class AdmissionController:
    """Bounded-concurrency gate with load shedding.

    Use as a context manager around the work a request performs::

        with controller.admit():
            ... evaluate ...

    ``admit`` raises :class:`AdmissionDenied` instead of blocking
    indefinitely.  Counters land in the given registry (defaults to the
    process-global one) under ``serve.admitted``, ``serve.shed`` (a
    family keyed by reason) and the ``serve.queue_wait_seconds``
    histogram.
    """

    def __init__(
        self,
        limits: ServeLimits,
        registry: Optional[_metrics.MetricsRegistry] = None,
    ) -> None:
        self.limits = limits
        registry = registry if registry is not None else _metrics.GLOBAL
        self.registry = registry  # the process-wide registry set is weak
        self._lock = threading.Lock()
        self._slot_freed = threading.Condition(self._lock)
        self._inflight = 0
        self._waiting = 0
        self._admitted = registry.counter(
            "serve.admitted", "requests admitted past the gate"
        )
        self._shed = registry.family(
            "serve.shed", "requests shed, by reason"
        )
        self._inflight_gauge = registry.gauge(
            "serve.inflight", "requests currently evaluating"
        )
        self._wait = registry.histogram(
            "serve.queue_wait_seconds",
            bounds=_metrics.EVAL_SECONDS_BUCKETS,
            help="time spent queued before admission",
        )

    def _shed_now(self, status: int, reason: str) -> AdmissionDenied:
        self._shed.inc(reason)
        return AdmissionDenied(status, reason, self.limits.retry_after)

    def admit(self) -> "_Admission":
        """Reserve an evaluation slot or raise :class:`AdmissionDenied`.

        Returns a context manager that releases the slot on exit.
        """
        limits = self.limits
        with self._slot_freed:
            if self._inflight < limits.max_inflight:
                self._inflight += 1
                self._inflight_gauge.set(self._inflight)
                self._admitted.inc()
                self._wait.observe(0.0)
                return _Admission(self)
            if self._waiting >= limits.queue_depth:
                raise self._shed_now(429, "queue_full")
            self._waiting += 1
            started = time.monotonic()
            deadline = started + limits.queue_timeout
            try:
                while self._inflight >= limits.max_inflight:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0 or not self._slot_freed.wait(remaining):
                        if self._inflight >= limits.max_inflight:
                            raise self._shed_now(503, "queue_timeout")
                self._inflight += 1
            finally:
                self._waiting -= 1
            self._inflight_gauge.set(self._inflight)
            self._admitted.inc()
            self._wait.observe(time.monotonic() - started)
            return _Admission(self)

    def _release(self) -> None:
        with self._slot_freed:
            self._inflight -= 1
            self._inflight_gauge.set(self._inflight)
            self._slot_freed.notify()

    @property
    def inflight(self) -> int:
        with self._lock:
            return self._inflight

    @property
    def waiting(self) -> int:
        with self._lock:
            return self._waiting


class _Admission:
    """The held slot; releases exactly once."""

    def __init__(self, controller: AdmissionController) -> None:
        self._controller: Optional[AdmissionController] = controller

    def __enter__(self) -> "_Admission":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.release()

    def release(self) -> None:
        controller, self._controller = self._controller, None
        if controller is not None:
            controller._release()
