"""End-to-end serving smoke: ``python -m repro.serve.smoke``.

The CI ``serve`` job's script, kept in-tree so it can be run anywhere:

1. boot a daemon (Queue spec + a deliberately cycling spec, two shard
   workers per session);
2. drive a mixed healthy / diverging / fault-injected request load
   through the stdlib client;
3. SIGKILL a shard worker mid-batch;
4. assert ``/readyz`` reports recovery within the respawn backoff
   window;
5. scrape ``/metrics`` to ``--metrics-out`` (the CI artifact);
6. with ``--otlp-out``, run the whole load traced (``sample=1.0``),
   drive one traced client request (client span → daemon → shard
   workers), and validate every exported OTLP document's span-tree
   invariants — parent links resolve, worker spans nest under their
   request span, one trace id per document.

Exit status 0 means every step held; any broken invariant raises and
fails the job.  ``--quick`` shrinks the load for sub-second local runs.
"""

from __future__ import annotations

import argparse
import os
import signal
import sys
import threading
import time

from repro.adt.queue import FRONT, QUEUE_SPEC, queue_term
from repro.algebra.terms import App
from repro.serve import ReproServer, ServeClient, ServeLimits, ServeUnavailable
from repro.spec.parser import parse_specification
from repro.testing.faults import FaultSpec, inject_faults

CYCLE_SPEC_TEXT = """
type P

operations
  MKP:  -> P
  PING: P -> P
  PONG: P -> P

vars
  p: P

axioms
  (C1) PING(p) = PONG(p)
  (C2) PONG(p) = PING(p)
"""


def _queue_subjects(n: int, tag: str) -> list:
    return [
        App(FRONT, (queue_term([f"{tag}{i}a", f"{tag}{i}b"]),))
        for i in range(n)
    ]


def _drive_load(host, port, cycle_spec, requests, results):
    client = ServeClient(host, port, timeout=20.0, retries=2, backoff=0.01)
    cycling = App(
        cycle_spec.operation("PING"),
        (App(cycle_spec.operation("MKP"), ()),),
    )
    for i in range(requests):
        try:
            if i % 2:
                outcomes = client.normalize([cycling], spec=cycle_spec.name)
                assert outcomes[0].status in ("truncated", "diverged"), (
                    f"diverging term came back {outcomes[0].status}"
                )
            else:
                outcomes = client.normalize(
                    _queue_subjects(3, f"r{i}"), spec="Queue"
                )
                assert len(outcomes) == 3 and all(o.ok for o in outcomes)
            results.append("completed")  # list.append: thread-safe
        except ServeUnavailable:
            results.append("shed")  # structured 429/503/drop — acceptable


def _traced_exercise(host: str, port: int) -> None:
    """One fully traced request: the client holds its own tracer (the
    daemon shares this interpreter, so the global slot is the daemon's),
    sends ``traceparent``, asks for the span subtree back, and must end
    up holding the whole client → daemon → worker tree."""
    from repro.obs import trace as _trace
    from repro.obs.otlp import to_otlp, validate_otlp

    tracer = _trace.Tracer(sample=1.0)
    client = ServeClient(
        host, port, timeout=20.0, retries=2, tracer=tracer, trace_return=True
    )
    outcomes = client.normalize(_queue_subjects(6, "traced"), spec="Queue")
    assert all(outcome.ok for outcome in outcomes)
    names = {
        event["name"]
        for event in tracer.events
        if event["ev"] == "span_start"
    }
    for tier in ("client.request", "serve.request", "worker.chunk"):
        assert tier in names, f"traced request missing {tier} span: {names}"
    document = to_otlp(
        tracer.events,
        tracer.trace_id,
        span_hex=tracer.span_hex,
        resource={"service.name": "repro-smoke-client"},
    )
    problems = validate_otlp(document)
    assert not problems, f"client trace invalid: {problems}"
    print(  # allow-print: smoke script progress
        f"smoke: traced request spans {sorted(names)} — one trace, "
        "three tiers",
        flush=True,
    )


def _validate_otlp_artifact(path: str) -> None:
    """Every daemon-exported OTLP document must hold the span-tree
    invariants, and at least one must reach the shard workers."""
    from repro.obs.otlp import read_otlp_file, read_otlp_spans, validate_otlp

    documents = read_otlp_file(path)
    assert documents, f"no OTLP documents exported to {path}"
    worker_docs = 0
    for index, document in enumerate(documents):
        problems = validate_otlp(document)
        assert not problems, f"trace[{index}] invalid: {problems}"
        if any(
            span["name"] == "worker.chunk"
            for span in read_otlp_spans(document)
        ):
            worker_docs += 1
    assert worker_docs > 0, "no exported trace reached a shard worker"
    print(  # allow-print: smoke script progress
        f"smoke: {len(documents)} OTLP trace(s) valid, "
        f"{worker_docs} spanning shard workers",
        flush=True,
    )


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true")
    parser.add_argument("--metrics-out", default=None)
    parser.add_argument(
        "--otlp-out",
        default=None,
        help="trace every request (sample=1.0), append one OTLP/JSON "
        "document per request here, and validate the span trees",
    )
    args = parser.parse_args(argv)

    cycle_spec = parse_specification(CYCLE_SPEC_TEXT)
    threads = 2 if args.quick else 4
    requests = 4 if args.quick else 10

    with ReproServer(
        [QUEUE_SPEC, cycle_spec],
        workers=2,
        limits=ServeLimits(
            max_fuel=3_000,
            max_inflight=2,
            queue_depth=4,
            queue_timeout=1.0,
            retry_after=0.02,
        ),
        supervisor_options={"backoff_base": 0.05, "backoff_cap": 0.5},
        trace_sample=1.0 if args.otlp_out else None,
        otlp_path=args.otlp_out,
    ) as server:
        host, port = server.address
        print(f"smoke: daemon on {host}:{port}", flush=True)  # allow-print: smoke script progress
        plan = {
            "serve.handle": FaultSpec(
                kind="sleep", delay=0.02, probability=0.2
            ),
            "serve.respond": FaultSpec(
                exception=BrokenPipeError, probability=0.05, limit=2
            ),
        }
        results: list[str] = []
        workers = [
            threading.Thread(
                target=_drive_load,
                args=(host, port, cycle_spec, requests, results),
            )
            for _ in range(threads)
        ]
        with inject_faults(plan):
            for worker in workers:
                worker.start()
            time.sleep(0.1)
            victims = server.sessions["Queue"].supervisor.worker_pids()
            if victims:
                os.kill(victims[0], signal.SIGKILL)
                print(  # allow-print: smoke script progress
                    f"smoke: SIGKILLed shard worker {victims[0]}", flush=True
                )
            for worker in workers:
                worker.join(timeout=120.0)
            assert not any(w.is_alive() for w in workers), "hung client thread"

        total = threads * requests
        completed = results.count("completed")
        shed = results.count("shed")
        assert completed + shed == total, (
            f"lost requests: {completed}+{shed} of {total}"
        )
        assert completed > 0, "no request completed"
        print(  # allow-print: smoke script progress
            f"smoke: {completed}/{total} completed, "
            f"{shed} shed (structured)",
            flush=True,
        )

        client = ServeClient(host, port, timeout=10.0, retries=0)
        deadline = time.monotonic() + 15.0
        ready = client.readyz()
        while time.monotonic() < deadline and not ready["ready"]:
            time.sleep(0.1)
            ready = client.readyz()
        assert ready["ready"], f"/readyz never recovered: {ready}"
        assert ready["specs"]["Queue"]["circuit"] == "closed"
        if victims:
            assert victims[0] not in ready["specs"]["Queue"]["worker_pids"]
        print(  # allow-print: smoke script progress
            "smoke: /readyz recovered, circuit closed", flush=True
        )

        post = client.normalize(_queue_subjects(2, "post"), spec="Queue")
        assert all(outcome.ok for outcome in post)

        if args.otlp_out:
            _traced_exercise(host, port)
            _validate_otlp_artifact(args.otlp_out)

        if args.metrics_out:
            with open(args.metrics_out, "w") as handle:
                handle.write(client.metrics())
            print(  # allow-print: smoke script progress
                f"smoke: metrics scraped to {args.metrics_out}", flush=True
            )
    print("smoke: OK", flush=True)  # allow-print: smoke script progress
    return 0


if __name__ == "__main__":
    sys.exit(main())
