"""The ``repro serve`` daemon: warm engines behind a tiny HTTP surface.

Zero dependencies: ``http.server`` + ``socketserver`` from the stdlib,
JSON bodies, terms crossing in the :mod:`repro.parallel.wire` table
format (the same one chunks ride to shard workers).  The daemon loads
specifications once at boot — parse, signature, rule set, engine — and
every request after that pays only evaluation, which is the entire
point of serving: Guttag's specs are cheap to *run* and comparatively
expensive to *load*.

Surface:

``POST /v1/normalize``
    ``{"spec": name, "terms": <wire terms>, "budget": <wire budget>}``
    (or ``"text": [...]`` to let the server parse) → one wire-encoded
    :class:`~repro.runtime.Outcome` per term, in order.  Divergence,
    budget exhaustion and injected faults resolve *per item*; the
    process and its other requests keep serving.
``POST /v1/check``
    sufficient-completeness + consistency analysis of a loaded spec.
``POST /v1/prove``
    closed equations over a loaded spec's axioms, via the equational
    prover (terms skolemise first, so variables mean "for all").
``GET /healthz`` / ``GET /readyz``
    liveness (the process answers) vs readiness (engines warm, shard
    pool alive — a broken pool heals through the supervisor and flips
    readiness back).  ``/readyz`` actively probes worker liveness, so
    recovery does not wait for client traffic.
``GET /metrics``
    the process-wide metrics snapshot in Prometheus text exposition
    format (admission, shedding, crashes, respawns, engine counters).

Threading: ``ThreadingHTTPServer`` gives each connection a thread;
engines are *not* thread-safe, so serial evaluation and proving hold a
per-session lock, while supervised pools take batches concurrently
(worker processes do the evaluating).  Admission
(:mod:`repro.serve.admission`) bounds how many requests evaluate at
once and sheds the rest with structured 429/503 — the daemon's answer
to overload is a fast "not now", never an unbounded queue.

The two ``serve.*`` fault sites (``serve.handle``, ``serve.respond``)
let the chaos suite inject slow handlers, handler crashes and dropped
connections; each is contained to its own request.
"""

from __future__ import annotations

import json
import os
import socket
import threading
import time
from contextlib import nullcontext
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Optional, Sequence

from repro.analysis import check_consistency, check_sufficient_completeness
from repro.analysis.classify import classify
from repro.obs import metrics as _metrics
from repro.obs import render_prometheus
from repro.obs import trace as _trace
from repro.obs.otlp import OTLPExporter
from repro.parallel import wire
from repro.parallel.pool import ShardPool
from repro.rewriting import RewriteEngine
from repro.runtime import faults as _faults
from repro.serve.admission import (
    AdmissionController,
    AdmissionDenied,
    ServeLimits,
    clamp_budget,
)
from repro.serve.supervisor import PoolSupervisor
from repro.spec.parser import parse_term
from repro.spec.specification import Specification
from repro.verify.prover import EquationalProver
from repro.verify.skolem import skolemize_pair

__all__ = ["ReproServer", "ServeRequestError", "SpecSession"]


class ServeRequestError(Exception):
    """A request the server rejects deliberately (4xx): unknown spec,
    malformed wire payload, oversized batch."""

    def __init__(self, status: int, reason: str, detail: str = "") -> None:
        super().__init__(detail or reason)
        self.status = status
        self.reason = reason
        self.detail = detail


class SpecSession:
    """One loaded specification: warm engine, lock, optional pool.

    The engine answers serial requests under ``lock`` (engines are not
    thread-safe); when the server runs with workers, a
    :class:`PoolSupervisor` owns a shard pool for batch evaluation and
    the lock is not needed on that path — worker processes are the
    isolation.
    """

    def __init__(
        self,
        spec: Specification,
        *,
        backend: str = "interpreted",
        workers: Optional[int] = None,
        supervisor_options: Optional[dict] = None,
        registry: Optional[_metrics.MetricsRegistry] = None,
    ) -> None:
        self.spec = spec
        self.name = spec.name
        self.engine = RewriteEngine.for_specification(spec, backend=backend)
        self.key = self.engine.rules.fingerprint()
        self.lock = threading.Lock()
        self.classification = classify(spec)
        self.supervisor: Optional[PoolSupervisor] = None
        if workers is not None and workers > 1:
            rules, engine = self.engine.rules, self.engine

            def factory() -> ShardPool:
                return ShardPool(
                    rules,
                    workers,
                    backend=engine.backend,
                    fuel=engine.fuel,
                    budget=engine.budget,
                )

            self.supervisor = PoolSupervisor(
                factory, registry=registry, **(supervisor_options or {})
            )

    def normalize_outcomes(self, terms: list, budget) -> list:
        if self.supervisor is not None:
            return self.supervisor.normalize_many_outcomes(terms, budget)
        with self.lock:
            return self.engine.normalize_many_outcomes(terms, budget)

    def prover(self, fuel: int) -> EquationalProver:
        cls = self.classification
        return EquationalProver(
            self.engine.rules,
            constructors={cls.type_of_interest: tuple(cls.constructors)},
            fuel=fuel,
        )

    def ready(self, probe: bool = True) -> bool:
        """Serial sessions are ready once built; supervised ones when
        the pool is healthy.  ``probe`` lets ``/readyz`` drive healing
        instead of waiting for the next batch to trip over the wreck."""
        if self.supervisor is None:
            return True
        if probe:
            return self.supervisor.heal()
        return self.supervisor.healthy

    def close(self) -> None:
        if self.supervisor is not None:
            self.supervisor.close()
        self.engine.close_pools()


class ReproServer:
    """The daemon: sessions + admission + the HTTP listener.

    Listens on TCP (``host``/``port``; port 0 picks an ephemeral one)
    or a unix socket (``unix_socket`` path).  ``start()`` serves on a
    background thread and returns; use as a context manager or call
    ``close()`` to shut down, which also tears the sessions' worker
    pools down.
    """

    def __init__(
        self,
        specs: Sequence[Specification],
        *,
        backend: str = "interpreted",
        workers: Optional[int] = None,
        limits: Optional[ServeLimits] = None,
        host: str = "127.0.0.1",
        port: int = 0,
        unix_socket: Optional[str] = None,
        registry: Optional[_metrics.MetricsRegistry] = None,
        supervisor_options: Optional[dict] = None,
        trace_sample: Optional[float] = None,
        otlp_path: Optional[str] = None,
        otlp_endpoint: Optional[str] = None,
        access_log: Optional[str] = None,
    ) -> None:
        if not specs:
            raise ValueError("repro serve needs at least one specification")
        self.limits = limits if limits is not None else ServeLimits()
        registry = registry if registry is not None else _metrics.GLOBAL
        # Hold the registry: the process-wide registry set is weak, and
        # /metrics must keep seeing serve.* after the caller's reference
        # goes away.
        self.registry = registry
        self.sessions: dict[str, SpecSession] = {}
        for spec in specs:
            self.sessions[spec.name] = SpecSession(
                spec,
                backend=backend,
                workers=workers,
                supervisor_options=supervisor_options,
                registry=registry,
            )
        self.default_session = next(iter(self.sessions.values()))
        self.admission = AdmissionController(self.limits, registry)
        self.c_requests = registry.family(
            "serve.requests", "requests handled, by endpoint"
        )
        self.c_errors = registry.counter(
            "serve.errors", "requests that hit the internal fault boundary"
        )
        self.c_items = registry.counter(
            "serve.items", "terms evaluated via the serving surface"
        )
        self.h_latency = registry.histogram(
            "serve.request_seconds",
            bounds=_metrics.EVAL_SECONDS_BUCKETS,
            help="request handling latency",
        )
        self._host, self._port = host, port
        self._unix_socket = unix_socket
        self._httpd: Optional[ThreadingHTTPServer] = None
        self._thread: Optional[threading.Thread] = None
        self._started = time.monotonic()
        # -- distributed tracing -------------------------------------
        # The daemon traces requests when any trace surface is asked
        # for (an OTLP sink, an explicit sample rate, an access log
        # that wants trace ids) or when the process already has a
        # tracer installed (``repro serve --trace-out``).  With none of
        # those, ``self.tracer`` stays None and the request path pays
        # one attribute test — the ≤1% disabled-overhead budget.
        self.exporter: Optional[OTLPExporter] = (
            OTLPExporter(path=otlp_path, endpoint=otlp_endpoint)
            if (otlp_path or otlp_endpoint)
            else None
        )
        self._owns_tracer = False
        self._previous_tracer: Optional[_trace.Tracer] = None
        if _trace.ACTIVE is not None:
            self.tracer: Optional[_trace.Tracer] = _trace.ACTIVE
        elif trace_sample is not None or self.exporter is not None:
            self.tracer = _trace.Tracer(
                sample=1.0 if trace_sample is None else trace_sample
            )
            self._owns_tracer = True
        else:
            self.tracer = None
        self._access_log_path = access_log
        self._access_log_handle = None
        self._access_log_lock = threading.Lock()

    # -- per-request telemetry sinks ------------------------------------
    def _write_access_log(self, record: dict) -> None:
        handle = self._access_log_handle
        if handle is None:
            return
        line = json.dumps(record, default=str)
        with self._access_log_lock:
            try:
                handle.write(line + "\n")
                handle.flush()
            except (OSError, ValueError):
                # fault-boundary: a full disk or closed handle must
                # cost a log line, not a request.
                pass

    def _export_trace(self, events: list, trace_id: str) -> None:
        if self.exporter is None or not events:
            return
        assert self.tracer is not None
        self.exporter.export(
            events,
            trace_id,
            span_hex=self.tracer.span_hex,
            resource={"service.name": "repro-serve"},
        )

    # -- lifecycle ------------------------------------------------------
    def start(self) -> "ReproServer":
        if self._unix_socket is not None:
            if os.path.exists(self._unix_socket):
                os.unlink(self._unix_socket)
            self._httpd = _UnixHTTPServer(self._unix_socket, _Handler)
        else:
            self._httpd = ThreadingHTTPServer(
                (self._host, self._port), _Handler
            )
        self._httpd.daemon_threads = True
        self._httpd.app = self  # type: ignore[attr-defined]
        if self._owns_tracer:
            # Engines and shard pools read the module-global tracer;
            # the daemon's request spans must enclose their spans, so
            # the server's tracer becomes the process's for its
            # lifetime (restored on close).
            self._previous_tracer = _trace.install(self.tracer)
        if self._access_log_path is not None:
            self._access_log_handle = open(
                self._access_log_path, "a", encoding="utf-8"
            )
        self._thread = threading.Thread(
            target=self._httpd.serve_forever,
            name="repro-serve",
            daemon=True,
        )
        self._thread.start()
        return self

    @property
    def address(self) -> tuple[str, int]:
        """The bound ``(host, port)``; for unix sockets ``(path, 0)``."""
        assert self._httpd is not None, "server not started"
        if self._unix_socket is not None:
            return (self._unix_socket, 0)
        return self._httpd.server_address[:2]

    def close(self) -> None:
        httpd, self._httpd = self._httpd, None
        if httpd is not None:
            httpd.shutdown()
            httpd.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None
        for session in self.sessions.values():
            session.close()
        if self._owns_tracer and _trace.ACTIVE is self.tracer:
            _trace.install(self._previous_tracer)
        handle, self._access_log_handle = self._access_log_handle, None
        if handle is not None:
            handle.close()
        if self._unix_socket is not None and os.path.exists(
            self._unix_socket
        ):
            os.unlink(self._unix_socket)

    def __enter__(self) -> "ReproServer":
        return self.start() if self._httpd is None else self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # -- request helpers ------------------------------------------------
    def _session(self, request: dict) -> SpecSession:
        name = request.get("spec")
        if name is None:
            return self.default_session
        session = self.sessions.get(name)
        if session is None:
            raise ServeRequestError(
                404,
                "unknown_spec",
                f"no loaded specification named {name!r}; "
                f"loaded: {sorted(self.sessions)}",
            )
        return session

    def _terms(self, request: dict, session: SpecSession) -> list:
        payload = request.get("terms")
        if payload is not None:
            try:
                terms = wire.decode_terms(payload)
            except Exception as exc:  # fault-boundary: hostile payload -> 400
                raise ServeRequestError(400, "bad_wire", str(exc))
        else:
            texts = request.get("text")
            if not isinstance(texts, list):
                raise ServeRequestError(
                    400, "missing_terms", "send 'terms' (wire) or 'text'"
                )
            try:
                terms = [parse_term(t, session.spec) for t in texts]
            except Exception as exc:  # fault-boundary: unparsable text -> 400
                raise ServeRequestError(400, "bad_term", str(exc))
        if len(terms) > self.limits.max_batch:
            raise ServeRequestError(
                413,
                "batch_too_large",
                f"{len(terms)} terms > max_batch={self.limits.max_batch}",
            )
        return terms

    def _budget(self, request: dict):
        try:
            budget = wire.decode_budget(request.get("budget"))
        except Exception as exc:  # fault-boundary: hostile payload -> 400
            raise ServeRequestError(400, "bad_budget", str(exc))
        return clamp_budget(budget, self.limits)

    # -- endpoint bodies ------------------------------------------------
    def _h_normalize(self, request: dict) -> dict:
        session = self._session(request)
        terms = self._terms(request, session)
        budget = self._budget(request)
        with _trace.maybe_span(
            "serve.evaluate", spec=session.name, items=len(terms)
        ):
            outcomes = session.normalize_outcomes(terms, budget)
        self.c_items.inc(len(terms))
        return {
            "spec": session.name,
            "outcomes": wire.encode_outcomes(outcomes),
        }

    def _h_check(self, request: dict) -> dict:
        session = self._session(request)
        with session.lock:
            completeness = check_sufficient_completeness(
                session.spec,
                sample_terms=min(int(request.get("sample_terms", 60)), 500),
                max_depth=min(int(request.get("max_depth", 5)), 8),
                seed=int(request.get("seed", 2026)),
            )
            consistency = check_consistency(session.spec)
        return {
            "spec": session.name,
            "sufficiently_complete": completeness.sufficiently_complete,
            "consistent": consistency.consistent,
            "missing": [str(m) for m in completeness.missing],
            "overlapping": [str(o) for o in completeness.overlapping],
            "non_decreasing": [str(n) for n in completeness.non_decreasing],
            "stuck": [str(s) for s in completeness.stuck],
            "sampled_observations": completeness.sampled_observations,
        }

    def _h_prove(self, request: dict) -> dict:
        session = self._session(request)
        terms = self._terms(request, session)
        goals = request.get("goals")
        if not isinstance(goals, list) or not all(
            isinstance(g, list) and len(g) == 2 for g in goals
        ):
            raise ServeRequestError(
                400, "bad_goals", "'goals' must be a list of [lhs, rhs] "
                "index pairs into 'terms'/'text'"
            )
        fuel = min(int(request.get("fuel", self.limits.max_fuel)), self.limits.max_fuel)
        results = []
        with session.lock:
            prover = session.prover(fuel)
            for li, ri in goals:
                try:
                    lhs_open, rhs_open = terms[li], terms[ri]
                except (IndexError, TypeError):
                    raise ServeRequestError(
                        400, "bad_goals", f"goal [{li}, {ri}] out of range"
                    )
                lhs, rhs, _ = skolemize_pair(lhs_open, rhs_open)
                result = prover.prove(lhs, rhs)
                results.append(
                    {
                        "proved": result.proved,
                        "lhs": str(result.lhs),
                        "rhs": str(result.rhs),
                        "residual": (
                            [str(result.residual[0]), str(result.residual[1])]
                            if result.residual is not None
                            else None
                        ),
                    }
                )
        return {"spec": session.name, "results": results}

    # -- health surface -------------------------------------------------
    def _h_healthz(self) -> tuple[int, dict]:
        return 200, {
            "ok": True,
            "uptime_seconds": time.monotonic() - self._started,
        }

    def _h_readyz(self) -> tuple[int, dict]:
        specs = {}
        ready = True
        for name, session in self.sessions.items():
            session_ready = session.ready(probe=True)
            entry = {"ready": session_ready}
            if session.supervisor is not None:
                entry["circuit"] = session.supervisor.state
                entry["worker_pids"] = session.supervisor.worker_pids()
            entry["suggested_fuel_budget"] = self._suggest_fuel(session)
            specs[name] = entry
            ready = ready and session_ready
        return (200 if ready else 503), {"ready": ready, "specs": specs}

    @staticmethod
    def _suggest_fuel(session: SpecSession) -> Optional[int]:
        """A recommended per-spec fuel budget from the fuel actually
        spent serving this session — the parent engine's histogram
        merged with whatever the shard workers shipped home — so
        operators watching ``/readyz`` see circuit state *and* what to
        set ``max_fuel`` to, from the same probe."""
        snapshots = [
            {
                "histograms": {
                    "engine.fuel_per_eval": (
                        session.engine.stats.fuel_hist.snapshot()
                    )
                }
            }
        ]
        if session.supervisor is not None:
            snapshots.append(session.supervisor.pool_snapshot())
        merged = _metrics.merge_snapshots(snapshots)
        histogram = merged["histograms"].get("engine.fuel_per_eval")
        if histogram is None:
            return None
        return _metrics.suggest_fuel_budget(histogram)

    def _h_metrics(self) -> str:
        return render_prometheus(_metrics.aggregate_snapshot())


# ----------------------------------------------------------------------
# The HTTP layer
# ----------------------------------------------------------------------

_POST_ROUTES = {
    "/v1/normalize": "_h_normalize",
    "/v1/check": "_h_check",
    "/v1/prove": "_h_prove",
}


class _Handler(BaseHTTPRequestHandler):
    server_version = "repro-serve/1"
    # HTTP/1.1: connections persist across requests (every response
    # carries an explicit Content-Length), so a client reusing its
    # connection skips the TCP handshake that used to bound rps.
    protocol_version = "HTTP/1.1"
    # Persistent connections make Nagle + delayed-ACK stalls real:
    # without TCP_NODELAY a pipelined response can sit a full delayed
    # ACK (~40ms) behind the kernel, costing keep-alive clients more
    # than the handshake they saved.  Set per-connection in setup() —
    # AF_UNIX sockets refuse the option.
    disable_nagle_algorithm = False

    def setup(self) -> None:
        self.disable_nagle_algorithm = (
            self.request.family != socket.AF_UNIX
        )
        super().setup()
    # Bound the time a connection may dribble its request in; a stuck
    # peer costs one thread for this long, not forever.
    timeout = 30.0

    @property
    def app(self) -> ReproServer:
        return self.server.app  # type: ignore[attr-defined]

    def log_message(self, format: str, *args: object) -> None:
        """Silence the default stderr access log; telemetry goes
        through the tracer, metrics and the structured access log."""

    def _send_json(
        self,
        status: int,
        payload: dict,
        retry_after: Optional[float] = None,
    ) -> None:
        body = json.dumps(payload).encode()
        injector = _faults.ACTIVE
        if injector is not None:
            injector.visit("serve.respond")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        traceparent = getattr(self, "_traceparent", None)
        if traceparent is not None:
            self.send_header("traceparent", traceparent)
        if retry_after is not None:
            self.send_header("Retry-After", f"{retry_after:g}")
        self.end_headers()
        self.wfile.write(body)

    def _error(
        self,
        status: int,
        reason: str,
        detail: str = "",
        retry_after: Optional[float] = None,
    ) -> None:
        payload = {
            "error": {"status": status, "reason": reason, "detail": detail}
        }
        if retry_after is not None:
            payload["error"]["retry_after"] = retry_after
        self._send_json(status, payload, retry_after=retry_after)

    # -- GET: health + metrics -----------------------------------------
    def do_GET(self) -> None:  # noqa: N802 (BaseHTTPRequestHandler API)
        app = self.app
        # Reset per request: with keep-alive one handler instance
        # serves many requests, and a stale traceparent must not leak.
        self._traceparent = None
        started = time.monotonic()
        status = 500
        try:
            if self.path == "/healthz":
                status, payload = app._h_healthz()
                self._send_json(status, payload)
            elif self.path == "/readyz":
                status, payload = app._h_readyz()
                self._send_json(status, payload)
            elif self.path == "/metrics":
                body = app._h_metrics().encode("utf-8")
                status = 200
                self.send_response(200)
                self.send_header(
                    "Content-Type",
                    "text/plain; version=0.0.4; charset=utf-8",
                )
                self.send_header("Content-Length", str(len(body)))
                self.end_headers()
                self.wfile.write(body)
            else:
                status = 404
                self._error(404, "not_found", self.path)
            app.c_requests.inc(self.path)
        except (BrokenPipeError, ConnectionError, OSError):
            # fault-boundary: the peer (or an injected serve.respond
            # fault) dropped the connection; this request is done,
            # the daemon is not.
            self.close_connection = True
        finally:
            app._write_access_log(
                {
                    "ts": round(time.time(), 6),
                    "method": "GET",
                    "path": self.path,
                    "status": status,
                    "total_s": round(time.monotonic() - started, 6),
                }
            )

    # -- POST: the evaluation surface ----------------------------------
    def do_POST(self) -> None:  # noqa: N802 (BaseHTTPRequestHandler API)
        app = self.app
        tracer = app.tracer
        self._traceparent = None  # see do_GET: keep-alive reuse
        started = time.monotonic()
        incoming = _trace.TraceContext.parse_traceparent(
            self.headers.get("traceparent")
        )
        trace_id = (
            incoming.trace_id
            if incoming is not None
            else (tracer.trace_id if tracer is not None else None)
        )
        req_span: Optional[int] = None
        outcome = {
            "status": 500,
            "reason": "internal",
            "payload": None,
            "retry_after": None,
            "queue_s": None,
            "eval_s": None,
        }
        if tracer is not None:
            attrs = {"path": self.path, "method": "POST"}
            if incoming is not None:
                # The caller's span becomes the remote parent: the
                # OTLP export keeps the dangling 16-hex link so the
                # client's own trace can claim this subtree.
                attrs["remote_parent"] = incoming.span_id
            span_scope = tracer.span(
                "serve.request",
                sampled=incoming.sampled if incoming is not None else None,
                **attrs,
            )
        else:
            span_scope = nullcontext()
        try:
            with span_scope as req_span:
                self._handle_post(outcome, req_span is not None)
            self._finish_post(outcome, tracer, incoming, trace_id, req_span)
        except (BrokenPipeError, ConnectionError, OSError):
            # fault-boundary: dropped connection (peer or injected
            # serve.respond fault) — contained to this request; the
            # recorded subtree still must not pile up in the tracer.
            self.close_connection = True
            if tracer is not None and req_span is not None:
                tracer.pop_subtree(req_span)
        finally:
            elapsed = time.monotonic() - started
            app.c_requests.inc(self.path)
            exemplar = None
            if trace_id is not None and req_span is not None:
                assert tracer is not None
                exemplar = {
                    "trace_id": trace_id,
                    "span_id": tracer.span_hex(req_span),
                }
            app.h_latency.observe(elapsed, exemplar=exemplar)
            record = {
                "ts": round(time.time(), 6),
                "method": "POST",
                "path": self.path,
                "status": outcome["status"],
                "reason": outcome["reason"],
                "queue_s": outcome["queue_s"],
                "eval_s": outcome["eval_s"],
                "total_s": round(elapsed, 6),
            }
            if trace_id is not None:
                record["trace_id"] = trace_id
                record["sampled"] = req_span is not None
            app._write_access_log(record)

    def _handle_post(self, outcome: dict, traced: bool) -> None:
        """Parse, admit and dispatch one POST; fills ``outcome`` with
        status/reason/payload/timings but sends nothing — the caller
        responds *after* the request span has closed, so a returned
        trace subtree is complete."""
        app = self.app
        tracer = app.tracer if traced else None

        def fail(status, reason, detail, retry_after=None):
            outcome["status"], outcome["reason"] = status, reason
            outcome["retry_after"] = retry_after
            error = {"status": status, "reason": reason, "detail": detail}
            if retry_after is not None:
                error["retry_after"] = retry_after
            outcome["payload"] = {"error": error}

        method = _POST_ROUTES.get(self.path)
        if method is None:
            return fail(404, "not_found", self.path)
        length = int(self.headers.get("Content-Length") or 0)
        if length > app.limits.max_body_bytes:
            # Shed before reading or parsing: the hostile case costs a
            # header, not max_body_bytes of memory.
            app.admission._shed.inc("body_too_large")
            return fail(
                413,
                "body_too_large",
                f"{length} bytes > {app.limits.max_body_bytes}",
            )
        try:
            request = json.loads(self.rfile.read(length) or b"{}")
            if not isinstance(request, dict):
                raise ValueError("request body must be a JSON object")
        except (ValueError, UnicodeDecodeError) as exc:
            return fail(400, "bad_json", str(exc))
        queue_started = time.monotonic()
        try:
            with (
                tracer.span("serve.admission")
                if tracer is not None
                else nullcontext()
            ):
                slot = app.admission.admit()
        except AdmissionDenied as exc:
            outcome["queue_s"] = round(time.monotonic() - queue_started, 6)
            return fail(
                exc.status,
                exc.reason,
                "request shed; retry after the hinted backoff",
                retry_after=exc.retry_after,
            )
        outcome["queue_s"] = round(time.monotonic() - queue_started, 6)
        eval_started = time.monotonic()
        try:
            injector = _faults.ACTIVE
            if injector is not None:
                injector.visit("serve.handle")
            with (
                tracer.span("serve.dispatch", endpoint=self.path)
                if tracer is not None
                else nullcontext()
            ):
                payload = getattr(app, method)(request)
            outcome["status"], outcome["reason"] = 200, "ok"
            outcome["payload"] = payload
        except ServeRequestError as exc:
            fail(exc.status, exc.reason, exc.detail)
        except Exception as exc:  # fault-boundary: one request, not the daemon
            app.c_errors.inc()
            fail(500, "internal", f"{type(exc).__name__}: {exc}")
        finally:
            outcome["eval_s"] = round(time.monotonic() - eval_started, 6)
            slot.release()

    def _finish_post(
        self, outcome, tracer, incoming, trace_id, req_span
    ) -> None:
        """Export the request's trace subtree and send the response."""
        app = self.app
        if tracer is not None and req_span is not None:
            # The subtree leaves the tracer's buffer whether or not an
            # exporter is configured — the daemon's memory is bounded
            # by in-flight requests, not uptime.
            events = tracer.pop_subtree(req_span)
            app._export_trace(events, trace_id)
            self._traceparent = _trace.TraceContext(
                trace_id, tracer.span_hex(req_span), sampled=True
            ).to_traceparent()
            if (
                self.headers.get("x-repro-trace-return") == "1"
                and isinstance(outcome["payload"], dict)
                and "error" not in outcome["payload"]
            ):
                outcome["payload"]["trace"] = {
                    "trace_id": trace_id,
                    "events": events,
                }
        elif trace_id is not None:
            # Tracing on but this request unsampled (or the caller
            # asked for no sampling): echo the context with the
            # sampled flag down so the caller's view agrees.
            self._traceparent = _trace.TraceContext(
                trace_id, _trace.new_span_id_hex(), sampled=False
            ).to_traceparent()
        self._send_json(
            outcome["status"],
            outcome["payload"]
            if outcome["payload"] is not None
            else {"error": {"status": 500, "reason": "internal"}},
            retry_after=outcome["retry_after"],
        )


class _UnixHTTPServer(ThreadingHTTPServer):
    """``ThreadingHTTPServer`` over ``AF_UNIX``.

    ``http.server`` assumes a ``(host, port)`` socket name; a unix
    path needs both bind and name handling overridden.
    """

    address_family = socket.AF_UNIX

    def __init__(self, path: str, handler: type) -> None:
        super().__init__(path, handler, bind_and_activate=True)  # type: ignore[arg-type]

    def server_bind(self) -> None:
        self.socket.bind(self.server_address)
        self.server_name = str(self.server_address)
        self.server_port = 0

    def client_address_string(self) -> str:
        return "unix"
