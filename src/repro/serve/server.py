"""The ``repro serve`` daemon: warm engines behind a tiny HTTP surface.

Zero dependencies: ``http.server`` + ``socketserver`` from the stdlib,
JSON bodies, terms crossing in the :mod:`repro.parallel.wire` table
format (the same one chunks ride to shard workers).  The daemon loads
specifications once at boot — parse, signature, rule set, engine — and
every request after that pays only evaluation, which is the entire
point of serving: Guttag's specs are cheap to *run* and comparatively
expensive to *load*.

Surface:

``POST /v1/normalize``
    ``{"spec": name, "terms": <wire terms>, "budget": <wire budget>}``
    (or ``"text": [...]`` to let the server parse) → one wire-encoded
    :class:`~repro.runtime.Outcome` per term, in order.  Divergence,
    budget exhaustion and injected faults resolve *per item*; the
    process and its other requests keep serving.
``POST /v1/check``
    sufficient-completeness + consistency analysis of a loaded spec.
``POST /v1/prove``
    closed equations over a loaded spec's axioms, via the equational
    prover (terms skolemise first, so variables mean "for all").
``GET /healthz`` / ``GET /readyz``
    liveness (the process answers) vs readiness (engines warm, shard
    pool alive — a broken pool heals through the supervisor and flips
    readiness back).  ``/readyz`` actively probes worker liveness, so
    recovery does not wait for client traffic.
``GET /metrics``
    the process-wide metrics snapshot in Prometheus text exposition
    format (admission, shedding, crashes, respawns, engine counters).

Threading: ``ThreadingHTTPServer`` gives each connection a thread;
engines are *not* thread-safe, so serial evaluation and proving hold a
per-session lock, while supervised pools take batches concurrently
(worker processes do the evaluating).  Admission
(:mod:`repro.serve.admission`) bounds how many requests evaluate at
once and sheds the rest with structured 429/503 — the daemon's answer
to overload is a fast "not now", never an unbounded queue.

The two ``serve.*`` fault sites (``serve.handle``, ``serve.respond``)
let the chaos suite inject slow handlers, handler crashes and dropped
connections; each is contained to its own request.
"""

from __future__ import annotations

import json
import os
import socket
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Optional, Sequence

from repro.analysis import check_consistency, check_sufficient_completeness
from repro.analysis.classify import classify
from repro.obs import metrics as _metrics
from repro.obs import render_prometheus
from repro.obs import trace as _trace
from repro.parallel import wire
from repro.parallel.pool import ShardPool
from repro.rewriting import RewriteEngine
from repro.runtime import faults as _faults
from repro.serve.admission import (
    AdmissionController,
    AdmissionDenied,
    ServeLimits,
    clamp_budget,
)
from repro.serve.supervisor import PoolSupervisor
from repro.spec.parser import parse_term
from repro.spec.specification import Specification
from repro.verify.prover import EquationalProver
from repro.verify.skolem import skolemize_pair

__all__ = ["ReproServer", "ServeRequestError", "SpecSession"]


class ServeRequestError(Exception):
    """A request the server rejects deliberately (4xx): unknown spec,
    malformed wire payload, oversized batch."""

    def __init__(self, status: int, reason: str, detail: str = "") -> None:
        super().__init__(detail or reason)
        self.status = status
        self.reason = reason
        self.detail = detail


class SpecSession:
    """One loaded specification: warm engine, lock, optional pool.

    The engine answers serial requests under ``lock`` (engines are not
    thread-safe); when the server runs with workers, a
    :class:`PoolSupervisor` owns a shard pool for batch evaluation and
    the lock is not needed on that path — worker processes are the
    isolation.
    """

    def __init__(
        self,
        spec: Specification,
        *,
        backend: str = "interpreted",
        workers: Optional[int] = None,
        supervisor_options: Optional[dict] = None,
        registry: Optional[_metrics.MetricsRegistry] = None,
    ) -> None:
        self.spec = spec
        self.name = spec.name
        self.engine = RewriteEngine.for_specification(spec, backend=backend)
        self.key = self.engine.rules.fingerprint()
        self.lock = threading.Lock()
        self.classification = classify(spec)
        self.supervisor: Optional[PoolSupervisor] = None
        if workers is not None and workers > 1:
            rules, engine = self.engine.rules, self.engine

            def factory() -> ShardPool:
                return ShardPool(
                    rules,
                    workers,
                    backend=engine.backend,
                    fuel=engine.fuel,
                    budget=engine.budget,
                )

            self.supervisor = PoolSupervisor(
                factory, registry=registry, **(supervisor_options or {})
            )

    def normalize_outcomes(self, terms: list, budget) -> list:
        if self.supervisor is not None:
            return self.supervisor.normalize_many_outcomes(terms, budget)
        with self.lock:
            return self.engine.normalize_many_outcomes(terms, budget)

    def prover(self, fuel: int) -> EquationalProver:
        cls = self.classification
        return EquationalProver(
            self.engine.rules,
            constructors={cls.type_of_interest: tuple(cls.constructors)},
            fuel=fuel,
        )

    def ready(self, probe: bool = True) -> bool:
        """Serial sessions are ready once built; supervised ones when
        the pool is healthy.  ``probe`` lets ``/readyz`` drive healing
        instead of waiting for the next batch to trip over the wreck."""
        if self.supervisor is None:
            return True
        if probe:
            return self.supervisor.heal()
        return self.supervisor.healthy

    def close(self) -> None:
        if self.supervisor is not None:
            self.supervisor.close()
        self.engine.close_pools()


class ReproServer:
    """The daemon: sessions + admission + the HTTP listener.

    Listens on TCP (``host``/``port``; port 0 picks an ephemeral one)
    or a unix socket (``unix_socket`` path).  ``start()`` serves on a
    background thread and returns; use as a context manager or call
    ``close()`` to shut down, which also tears the sessions' worker
    pools down.
    """

    def __init__(
        self,
        specs: Sequence[Specification],
        *,
        backend: str = "interpreted",
        workers: Optional[int] = None,
        limits: Optional[ServeLimits] = None,
        host: str = "127.0.0.1",
        port: int = 0,
        unix_socket: Optional[str] = None,
        registry: Optional[_metrics.MetricsRegistry] = None,
        supervisor_options: Optional[dict] = None,
    ) -> None:
        if not specs:
            raise ValueError("repro serve needs at least one specification")
        self.limits = limits if limits is not None else ServeLimits()
        registry = registry if registry is not None else _metrics.GLOBAL
        # Hold the registry: the process-wide registry set is weak, and
        # /metrics must keep seeing serve.* after the caller's reference
        # goes away.
        self.registry = registry
        self.sessions: dict[str, SpecSession] = {}
        for spec in specs:
            self.sessions[spec.name] = SpecSession(
                spec,
                backend=backend,
                workers=workers,
                supervisor_options=supervisor_options,
                registry=registry,
            )
        self.default_session = next(iter(self.sessions.values()))
        self.admission = AdmissionController(self.limits, registry)
        self.c_requests = registry.family(
            "serve.requests", "requests handled, by endpoint"
        )
        self.c_errors = registry.counter(
            "serve.errors", "requests that hit the internal fault boundary"
        )
        self.c_items = registry.counter(
            "serve.items", "terms evaluated via the serving surface"
        )
        self.h_latency = registry.histogram(
            "serve.request_seconds",
            bounds=_metrics.EVAL_SECONDS_BUCKETS,
            help="request handling latency",
        )
        self._host, self._port = host, port
        self._unix_socket = unix_socket
        self._httpd: Optional[ThreadingHTTPServer] = None
        self._thread: Optional[threading.Thread] = None
        self._started = time.monotonic()

    # -- lifecycle ------------------------------------------------------
    def start(self) -> "ReproServer":
        if self._unix_socket is not None:
            if os.path.exists(self._unix_socket):
                os.unlink(self._unix_socket)
            self._httpd = _UnixHTTPServer(self._unix_socket, _Handler)
        else:
            self._httpd = ThreadingHTTPServer(
                (self._host, self._port), _Handler
            )
        self._httpd.daemon_threads = True
        self._httpd.app = self  # type: ignore[attr-defined]
        self._thread = threading.Thread(
            target=self._httpd.serve_forever,
            name="repro-serve",
            daemon=True,
        )
        self._thread.start()
        return self

    @property
    def address(self) -> tuple[str, int]:
        """The bound ``(host, port)``; for unix sockets ``(path, 0)``."""
        assert self._httpd is not None, "server not started"
        if self._unix_socket is not None:
            return (self._unix_socket, 0)
        return self._httpd.server_address[:2]

    def close(self) -> None:
        httpd, self._httpd = self._httpd, None
        if httpd is not None:
            httpd.shutdown()
            httpd.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None
        for session in self.sessions.values():
            session.close()
        if self._unix_socket is not None and os.path.exists(
            self._unix_socket
        ):
            os.unlink(self._unix_socket)

    def __enter__(self) -> "ReproServer":
        return self.start() if self._httpd is None else self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # -- request helpers ------------------------------------------------
    def _session(self, request: dict) -> SpecSession:
        name = request.get("spec")
        if name is None:
            return self.default_session
        session = self.sessions.get(name)
        if session is None:
            raise ServeRequestError(
                404,
                "unknown_spec",
                f"no loaded specification named {name!r}; "
                f"loaded: {sorted(self.sessions)}",
            )
        return session

    def _terms(self, request: dict, session: SpecSession) -> list:
        payload = request.get("terms")
        if payload is not None:
            try:
                terms = wire.decode_terms(payload)
            except Exception as exc:  # fault-boundary: hostile payload -> 400
                raise ServeRequestError(400, "bad_wire", str(exc))
        else:
            texts = request.get("text")
            if not isinstance(texts, list):
                raise ServeRequestError(
                    400, "missing_terms", "send 'terms' (wire) or 'text'"
                )
            try:
                terms = [parse_term(t, session.spec) for t in texts]
            except Exception as exc:  # fault-boundary: unparsable text -> 400
                raise ServeRequestError(400, "bad_term", str(exc))
        if len(terms) > self.limits.max_batch:
            raise ServeRequestError(
                413,
                "batch_too_large",
                f"{len(terms)} terms > max_batch={self.limits.max_batch}",
            )
        return terms

    def _budget(self, request: dict):
        try:
            budget = wire.decode_budget(request.get("budget"))
        except Exception as exc:  # fault-boundary: hostile payload -> 400
            raise ServeRequestError(400, "bad_budget", str(exc))
        return clamp_budget(budget, self.limits)

    # -- endpoint bodies ------------------------------------------------
    def _h_normalize(self, request: dict) -> dict:
        session = self._session(request)
        terms = self._terms(request, session)
        budget = self._budget(request)
        outcomes = session.normalize_outcomes(terms, budget)
        self.c_items.inc(len(terms))
        return {
            "spec": session.name,
            "outcomes": wire.encode_outcomes(outcomes),
        }

    def _h_check(self, request: dict) -> dict:
        session = self._session(request)
        with session.lock:
            completeness = check_sufficient_completeness(
                session.spec,
                sample_terms=min(int(request.get("sample_terms", 60)), 500),
                max_depth=min(int(request.get("max_depth", 5)), 8),
                seed=int(request.get("seed", 2026)),
            )
            consistency = check_consistency(session.spec)
        return {
            "spec": session.name,
            "sufficiently_complete": completeness.sufficiently_complete,
            "consistent": consistency.consistent,
            "missing": [str(m) for m in completeness.missing],
            "overlapping": [str(o) for o in completeness.overlapping],
            "non_decreasing": [str(n) for n in completeness.non_decreasing],
            "stuck": [str(s) for s in completeness.stuck],
            "sampled_observations": completeness.sampled_observations,
        }

    def _h_prove(self, request: dict) -> dict:
        session = self._session(request)
        terms = self._terms(request, session)
        goals = request.get("goals")
        if not isinstance(goals, list) or not all(
            isinstance(g, list) and len(g) == 2 for g in goals
        ):
            raise ServeRequestError(
                400, "bad_goals", "'goals' must be a list of [lhs, rhs] "
                "index pairs into 'terms'/'text'"
            )
        fuel = min(int(request.get("fuel", self.limits.max_fuel)), self.limits.max_fuel)
        results = []
        with session.lock:
            prover = session.prover(fuel)
            for li, ri in goals:
                try:
                    lhs_open, rhs_open = terms[li], terms[ri]
                except (IndexError, TypeError):
                    raise ServeRequestError(
                        400, "bad_goals", f"goal [{li}, {ri}] out of range"
                    )
                lhs, rhs, _ = skolemize_pair(lhs_open, rhs_open)
                result = prover.prove(lhs, rhs)
                results.append(
                    {
                        "proved": result.proved,
                        "lhs": str(result.lhs),
                        "rhs": str(result.rhs),
                        "residual": (
                            [str(result.residual[0]), str(result.residual[1])]
                            if result.residual is not None
                            else None
                        ),
                    }
                )
        return {"spec": session.name, "results": results}

    # -- health surface -------------------------------------------------
    def _h_healthz(self) -> tuple[int, dict]:
        return 200, {
            "ok": True,
            "uptime_seconds": time.monotonic() - self._started,
        }

    def _h_readyz(self) -> tuple[int, dict]:
        specs = {}
        ready = True
        for name, session in self.sessions.items():
            session_ready = session.ready(probe=True)
            entry = {"ready": session_ready}
            if session.supervisor is not None:
                entry["circuit"] = session.supervisor.state
                entry["worker_pids"] = session.supervisor.worker_pids()
            specs[name] = entry
            ready = ready and session_ready
        return (200 if ready else 503), {"ready": ready, "specs": specs}

    def _h_metrics(self) -> str:
        return render_prometheus(_metrics.aggregate_snapshot())


# ----------------------------------------------------------------------
# The HTTP layer
# ----------------------------------------------------------------------

_POST_ROUTES = {
    "/v1/normalize": "_h_normalize",
    "/v1/check": "_h_check",
    "/v1/prove": "_h_prove",
}


class _Handler(BaseHTTPRequestHandler):
    server_version = "repro-serve/1"
    protocol_version = "HTTP/1.0"
    # Bound the time a connection may dribble its request in; a stuck
    # peer costs one thread for this long, not forever.
    timeout = 30.0

    @property
    def app(self) -> ReproServer:
        return self.server.app  # type: ignore[attr-defined]

    def log_message(self, format: str, *args: object) -> None:
        """Silence the default stderr access log; telemetry goes
        through the tracer and metrics instead."""

    def _event(self, **fields: object) -> None:
        tracer = _trace.ACTIVE
        if tracer is not None:
            # Point events, not spans: Tracer's span stack is not
            # thread-safe, and requests run on per-connection threads.
            tracer.event("serve.request", **fields)

    def _send_json(
        self,
        status: int,
        payload: dict,
        retry_after: Optional[float] = None,
    ) -> None:
        body = json.dumps(payload).encode()
        injector = _faults.ACTIVE
        if injector is not None:
            injector.visit("serve.respond")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        if retry_after is not None:
            self.send_header("Retry-After", f"{retry_after:g}")
        self.end_headers()
        self.wfile.write(body)

    def _error(
        self,
        status: int,
        reason: str,
        detail: str = "",
        retry_after: Optional[float] = None,
    ) -> None:
        payload = {
            "error": {"status": status, "reason": reason, "detail": detail}
        }
        if retry_after is not None:
            payload["error"]["retry_after"] = retry_after
        self._send_json(status, payload, retry_after=retry_after)

    # -- GET: health + metrics -----------------------------------------
    def do_GET(self) -> None:  # noqa: N802 (BaseHTTPRequestHandler API)
        app = self.app
        try:
            if self.path == "/healthz":
                status, payload = app._h_healthz()
                self._send_json(status, payload)
            elif self.path == "/readyz":
                status, payload = app._h_readyz()
                self._send_json(status, payload)
            elif self.path == "/metrics":
                body = app._h_metrics().encode()
                self.send_response(200)
                self.send_header(
                    "Content-Type", "text/plain; version=0.0.4"
                )
                self.send_header("Content-Length", str(len(body)))
                self.end_headers()
                self.wfile.write(body)
            else:
                self._error(404, "not_found", self.path)
            app.c_requests.inc(self.path)
        except (BrokenPipeError, ConnectionError, OSError):
            # fault-boundary: the peer (or an injected serve.respond
            # fault) dropped the connection; this request is done,
            # the daemon is not.
            self.close_connection = True

    # -- POST: the evaluation surface ----------------------------------
    def do_POST(self) -> None:  # noqa: N802 (BaseHTTPRequestHandler API)
        app = self.app
        started = time.monotonic()
        method = _POST_ROUTES.get(self.path)
        status = 500
        reason = ""
        try:
            if method is None:
                status, reason = 404, "not_found"
                self._error(404, "not_found", self.path)
                return
            length = int(self.headers.get("Content-Length") or 0)
            if length > app.limits.max_body_bytes:
                # Shed before reading or parsing: the hostile case
                # costs a header, not max_body_bytes of memory.
                app.admission._shed.inc("body_too_large")
                status, reason = 413, "body_too_large"
                self._error(
                    413,
                    "body_too_large",
                    f"{length} bytes > {app.limits.max_body_bytes}",
                )
                return
            try:
                request = json.loads(self.rfile.read(length) or b"{}")
                if not isinstance(request, dict):
                    raise ValueError("request body must be a JSON object")
            except (ValueError, UnicodeDecodeError) as exc:
                status, reason = 400, "bad_json"
                self._error(400, "bad_json", str(exc))
                return
            try:
                slot = app.admission.admit()
            except AdmissionDenied as exc:
                status, reason = exc.status, exc.reason
                self._error(
                    exc.status,
                    exc.reason,
                    "request shed; retry after the hinted backoff",
                    retry_after=exc.retry_after,
                )
                return
            try:
                injector = _faults.ACTIVE
                if injector is not None:
                    injector.visit("serve.handle")
                payload = getattr(app, method)(request)
                status, reason = 200, "ok"
            except ServeRequestError as exc:
                status, reason = exc.status, exc.reason
                self._error(exc.status, exc.reason, exc.detail)
                return
            except Exception as exc:  # fault-boundary: one request, not the daemon
                app.c_errors.inc()
                status, reason = 500, "internal"
                self._error(500, "internal", f"{type(exc).__name__}: {exc}")
                return
            finally:
                slot.release()
            self._send_json(200, payload)
        except (BrokenPipeError, ConnectionError, OSError):
            # fault-boundary: dropped connection (peer or injected
            # serve.respond fault) — contained to this request.
            self.close_connection = True
        finally:
            elapsed = time.monotonic() - started
            app.c_requests.inc(self.path)
            app.h_latency.observe(elapsed)
            self._event(
                path=self.path,
                status=status,
                reason=reason,
                seconds=round(elapsed, 6),
            )


class _UnixHTTPServer(ThreadingHTTPServer):
    """``ThreadingHTTPServer`` over ``AF_UNIX``.

    ``http.server`` assumes a ``(host, port)`` socket name; a unix
    path needs both bind and name handling overridden.
    """

    address_family = socket.AF_UNIX

    def __init__(self, path: str, handler: type) -> None:
        super().__init__(path, handler, bind_and_activate=True)  # type: ignore[arg-type]

    def server_bind(self) -> None:
        self.socket.bind(self.server_address)
        self.server_name = str(self.server_address)
        self.server_port = 0

    def client_address_string(self) -> str:
        return "unix"
