"""Stdlib client for the ``repro serve`` daemon.

``http.client`` only — one connection per request (the daemon speaks
HTTP/1.0), a hard per-request ``timeout``, and *jittered retry* on the
shed statuses (429/503): the daemon's admission control turns overload
into fast structured refusals, and a well-behaved client turns those
refusals into a randomised backoff instead of a synchronised stampede.
The jitter draws from a seeded ``random.Random`` so tests replay
exactly.

Terms cross in the :mod:`repro.parallel.wire` format.  A caller that
has the specification loaded (the normal case for tests and batch
drivers) passes real :class:`~repro.algebra.terms.Term` objects and
gets real :class:`~repro.runtime.Outcome` objects back; a caller that
has only text passes ``text=[...]`` strings and the server parses.
"""

from __future__ import annotations

import http.client
import json
import random
import socket
import time
from typing import Optional, Sequence

from repro.parallel import wire
from repro.runtime import EvaluationBudget
from repro.runtime.outcome import Outcome

__all__ = ["ServeClient", "ServeError", "ServeUnavailable"]

#: Statuses worth retrying: the daemon shed the request, not judged it.
_RETRYABLE = frozenset({429, 503})


class ServeError(Exception):
    """A non-2xx the daemon judged final (4xx) — no retry."""

    def __init__(self, status: int, reason: str, detail: str = "") -> None:
        super().__init__(f"{status} {reason}: {detail}")
        self.status = status
        self.reason = reason
        self.detail = detail


class ServeUnavailable(ServeError):
    """Still shed (or unreachable) after every retry."""


class ServeClient:
    """Client for one daemon.

    ``host``/``port`` for TCP, or ``unix_socket=path``.  ``retries``
    counts *re*-attempts after the first; each shed response waits the
    server's ``Retry-After`` (or ``backoff``) scaled by a seeded jitter
    in ``[0.5, 1.5)``.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        unix_socket: Optional[str] = None,
        timeout: float = 30.0,
        retries: int = 3,
        backoff: float = 0.25,
        seed: int = 2026,
    ) -> None:
        self.host = host
        self.port = port
        self.unix_socket = unix_socket
        self.timeout = timeout
        self.retries = retries
        self.backoff = backoff
        self._rng = random.Random(seed)

    # -- transport ------------------------------------------------------
    def _connection(self) -> http.client.HTTPConnection:
        if self.unix_socket is not None:
            return _UnixConnection(self.unix_socket, timeout=self.timeout)
        return http.client.HTTPConnection(
            self.host, self.port, timeout=self.timeout
        )

    def _request_once(
        self, method: str, path: str, body: Optional[dict] = None
    ) -> tuple[int, dict, Optional[float]]:
        conn = self._connection()
        try:
            payload = None if body is None else json.dumps(body)
            conn.request(
                method,
                path,
                body=payload,
                headers={"Content-Type": "application/json"}
                if payload is not None
                else {},
            )
            response = conn.getresponse()
            raw = response.read()
            retry_after = response.getheader("Retry-After")
            try:
                decoded = json.loads(raw) if raw else {}
            except ValueError:
                decoded = {"raw": raw.decode(errors="replace")}
            return (
                response.status,
                decoded,
                float(retry_after) if retry_after else None,
            )
        finally:
            conn.close()

    def _request(
        self, method: str, path: str, body: Optional[dict] = None
    ) -> dict:
        last: Optional[ServeError] = None
        for attempt in range(self.retries + 1):
            try:
                status, decoded, retry_after = self._request_once(
                    method, path, body
                )
            except (ConnectionError, socket.timeout, OSError) as exc:
                # Dropped connection or dead daemon: retryable the same
                # way a shed is — the next attempt may find it healed.
                last = ServeUnavailable(0, "unreachable", str(exc))
                status, retry_after = None, None
            else:
                if status is not None and status < 400:
                    return decoded
                error = decoded.get("error", {})
                reason = error.get("reason", "error")
                detail = error.get("detail", "")
                if status not in _RETRYABLE:
                    raise ServeError(status, reason, detail)
                last = ServeUnavailable(status, reason, detail)
            if attempt < self.retries:
                hint = retry_after if retry_after is not None else self.backoff
                time.sleep(hint * (0.5 + self._rng.random()))
        assert last is not None
        raise last

    # -- the API --------------------------------------------------------
    def normalize(
        self,
        terms: Optional[Sequence] = None,
        *,
        text: Optional[Sequence[str]] = None,
        spec: Optional[str] = None,
        budget: Optional[EvaluationBudget] = None,
    ) -> list[Outcome]:
        """Batch-normalize; one :class:`Outcome` per term, in order."""
        body: dict = {}
        if spec is not None:
            body["spec"] = spec
        if terms is not None:
            body["terms"] = wire.encode_terms(list(terms))
        elif text is not None:
            body["text"] = list(text)
        else:
            raise ValueError("pass terms or text")
        if budget is not None:
            body["budget"] = wire.encode_budget(budget)
        reply = self._request("POST", "/v1/normalize", body)
        return wire.decode_outcomes(reply["outcomes"])

    def check(self, spec: Optional[str] = None, **params: object) -> dict:
        body: dict = dict(params)
        if spec is not None:
            body["spec"] = spec
        return self._request("POST", "/v1/check", body)

    def prove(
        self,
        goals: Sequence[tuple],
        *,
        spec: Optional[str] = None,
        fuel: Optional[int] = None,
    ) -> list[dict]:
        """Prove ``lhs = rhs`` term pairs; variables are universally
        quantified (the server skolemises)."""
        terms: list = []
        indices: list[list[int]] = []
        for lhs, rhs in goals:
            indices.append([len(terms), len(terms) + 1])
            terms.extend((lhs, rhs))
        body: dict = {"terms": wire.encode_terms(terms), "goals": indices}
        if spec is not None:
            body["spec"] = spec
        if fuel is not None:
            body["fuel"] = fuel
        return self._request("POST", "/v1/prove", body)["results"]

    def healthz(self) -> dict:
        return self._request("GET", "/healthz")

    def readyz(self) -> dict:
        """Readiness, *without* retry: callers poll this to watch
        recovery happen, so a 503 comes back as data."""
        status, decoded, _ = self._request_once("GET", "/readyz")
        decoded["status"] = status
        return decoded

    def metrics(self) -> str:
        conn = self._connection()
        try:
            conn.request("GET", "/metrics")
            response = conn.getresponse()
            return response.read().decode()
        finally:
            conn.close()


class _UnixConnection(http.client.HTTPConnection):
    """``HTTPConnection`` over an ``AF_UNIX`` socket path."""

    def __init__(self, path: str, timeout: float = 30.0) -> None:
        super().__init__("localhost", timeout=timeout)
        self._path = path

    def connect(self) -> None:
        self.sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        self.sock.settimeout(self.timeout)
        self.sock.connect(self._path)
