"""Stdlib client for the ``repro serve`` daemon.

``http.client`` only — a persistent keep-alive connection (the daemon
speaks HTTP/1.1; reuse skips the per-request TCP handshake that used
to bound rps), a hard per-request ``timeout``, and *jittered retry* on
the shed statuses (429/503): the daemon's admission control turns
overload into fast structured refusals, and a well-behaved client
turns those refusals into a randomised backoff instead of a
synchronised stampede.  The jitter draws from a seeded
``random.Random`` so tests replay exactly.

A stale cached connection (the server timed it out, or an HTTP/1.0
peer closes after every response) is detected on use and replayed once
on a fresh connection before the error surfaces; ``keepalive=False``
restores the old connection-per-request behaviour.

Distributed tracing: when a tracer is installed
(:func:`repro.obs.trace.tracing`), every request runs inside a
``client.request`` span and carries a W3C ``traceparent`` header, so
the daemon's spans — and, transitively, its shard workers' — join the
client's trace.  ``trace_return=True`` additionally asks the daemon to
ship its span subtree back in the response, which the client merges
under the request span: one process ends up holding the whole
client → daemon → worker tree, ready for OTLP export.

Terms cross in the :mod:`repro.parallel.wire` format.  A caller that
has the specification loaded (the normal case for tests and batch
drivers) passes real :class:`~repro.algebra.terms.Term` objects and
gets real :class:`~repro.runtime.Outcome` objects back; a caller that
has only text passes ``text=[...]`` strings and the server parses.
"""

from __future__ import annotations

import http.client
import json
import random
import socket
import time
from typing import Optional, Sequence

from repro.obs import trace as _trace
from repro.parallel import wire
from repro.runtime import EvaluationBudget
from repro.runtime.outcome import Outcome

__all__ = ["ServeClient", "ServeError", "ServeUnavailable"]

#: Statuses worth retrying: the daemon shed the request, not judged it.
_RETRYABLE = frozenset({429, 503})


class ServeError(Exception):
    """A non-2xx the daemon judged final (4xx) — no retry."""

    def __init__(self, status: int, reason: str, detail: str = "") -> None:
        super().__init__(f"{status} {reason}: {detail}")
        self.status = status
        self.reason = reason
        self.detail = detail


class ServeUnavailable(ServeError):
    """Still shed (or unreachable) after every retry."""


class ServeClient:
    """Client for one daemon.

    ``host``/``port`` for TCP, or ``unix_socket=path``.  ``retries``
    counts *re*-attempts after the first; each shed response waits the
    server's ``Retry-After`` (or ``backoff``) scaled by a seeded jitter
    in ``[0.5, 1.5)``.

    Not thread-safe (the cached connection is shared state): give each
    driving thread its own client, as the load tools do.  Use as a
    context manager, or :meth:`close`, to drop the cached connection.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        unix_socket: Optional[str] = None,
        timeout: float = 30.0,
        retries: int = 3,
        backoff: float = 0.25,
        seed: int = 2026,
        keepalive: bool = True,
        trace_return: bool = False,
        tracer: Optional[_trace.Tracer] = None,
    ) -> None:
        self.host = host
        self.port = port
        self.unix_socket = unix_socket
        self.timeout = timeout
        self.retries = retries
        self.backoff = backoff
        self.keepalive = keepalive
        self.trace_return = trace_return
        # An explicit tracer beats the global: in-process tests (and
        # the smoke script) run client and daemon in one interpreter,
        # where installing the client's tracer globally would hijack
        # the daemon's own instrumentation mid-request.
        self.tracer = tracer
        self._rng = random.Random(seed)
        self._conn: Optional[http.client.HTTPConnection] = None

    # -- transport ------------------------------------------------------
    def _connection(self) -> http.client.HTTPConnection:
        if self.unix_socket is not None:
            return _UnixConnection(self.unix_socket, timeout=self.timeout)
        conn = http.client.HTTPConnection(
            self.host, self.port, timeout=self.timeout
        )
        conn.connect()
        # Persistent connections + Nagle + the peer's delayed ACK can
        # stall small request writes ~40ms; requests here are one
        # logical write, so flush segments immediately.
        conn.sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        return conn

    def close(self) -> None:
        conn, self._conn = self._conn, None
        if conn is not None:
            conn.close()

    def __enter__(self) -> "ServeClient":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def _exchange(
        self,
        conn: http.client.HTTPConnection,
        method: str,
        path: str,
        payload: Optional[str],
        headers: dict,
    ) -> http.client.HTTPResponse:
        conn.request(method, path, body=payload, headers=headers)
        return conn.getresponse()

    def _request_once(
        self,
        method: str,
        path: str,
        body: Optional[dict] = None,
        headers: Optional[dict] = None,
    ) -> tuple[int, dict, Optional[float]]:
        payload = None if body is None else json.dumps(body)
        send_headers = dict(headers or {})
        if payload is not None:
            send_headers.setdefault("Content-Type", "application/json")
        reused = self.keepalive and self._conn is not None
        conn = self._conn if reused else self._connection()
        self._conn = None
        try:
            try:
                response = self._exchange(
                    conn, method, path, payload, send_headers
                )
            except (
                ConnectionError,
                http.client.HTTPException,
                socket.timeout,
                OSError,
            ):
                conn.close()
                if not reused:
                    raise
                # The cached connection went stale between requests
                # (server idle-timeout, HTTP/1.0 peer): replay once on
                # a fresh connection before surfacing anything.
                conn = self._connection()
                response = self._exchange(
                    conn, method, path, payload, send_headers
                )
            raw = response.read()
            retry_after = response.getheader("Retry-After")
            try:
                decoded = json.loads(raw) if raw else {}
            except ValueError:
                decoded = {"raw": raw.decode(errors="replace")}
            if self.keepalive and not response.will_close:
                self._conn = conn
            else:
                conn.close()
            return (
                response.status,
                decoded,
                float(retry_after) if retry_after else None,
            )
        except BaseException:  # fault-boundary: close the socket, re-raise
            conn.close()
            raise

    def _request(
        self, method: str, path: str, body: Optional[dict] = None
    ) -> dict:
        tracer = self.tracer if self.tracer is not None else _trace.ACTIVE
        if tracer is None:
            return self._request_attempts(method, path, body, {})
        with tracer.span(
            "client.request", path=path, method=method
        ) as span:
            if span is not None:
                context = _trace.TraceContext(
                    tracer.trace_id, tracer.span_hex(span), sampled=True
                )
            else:
                # Unsampled by the client's policy: still propagate the
                # context so the daemon honours the decision instead of
                # re-rolling its own.
                context = _trace.TraceContext.generate(sampled=False)
            headers = {"traceparent": context.to_traceparent()}
            if span is not None and self.trace_return:
                headers["x-repro-trace-return"] = "1"
            reply = self._request_attempts(method, path, body, headers)
            if span is not None and isinstance(reply.get("trace"), dict):
                # The daemon shipped its span subtree home: graft it
                # under this request's span — the client now holds the
                # whole client → daemon → worker tree.
                tracer.merge_remote_events(
                    reply["trace"].get("events", []), parent=span
                )
            return reply

    def _request_attempts(
        self,
        method: str,
        path: str,
        body: Optional[dict],
        headers: dict,
    ) -> dict:
        last: Optional[ServeError] = None
        for attempt in range(self.retries + 1):
            try:
                status, decoded, retry_after = self._request_once(
                    method, path, body, headers
                )
            except (ConnectionError, socket.timeout, OSError) as exc:
                # Dropped connection or dead daemon: retryable the same
                # way a shed is — the next attempt may find it healed.
                last = ServeUnavailable(0, "unreachable", str(exc))
                status, retry_after = None, None
            else:
                if status is not None and status < 400:
                    return decoded
                error = decoded.get("error", {})
                reason = error.get("reason", "error")
                detail = error.get("detail", "")
                if status not in _RETRYABLE:
                    raise ServeError(status, reason, detail)
                last = ServeUnavailable(status, reason, detail)
            if attempt < self.retries:
                hint = retry_after if retry_after is not None else self.backoff
                time.sleep(hint * (0.5 + self._rng.random()))
        assert last is not None
        raise last

    # -- the API --------------------------------------------------------
    def normalize(
        self,
        terms: Optional[Sequence] = None,
        *,
        text: Optional[Sequence[str]] = None,
        spec: Optional[str] = None,
        budget: Optional[EvaluationBudget] = None,
    ) -> list[Outcome]:
        """Batch-normalize; one :class:`Outcome` per term, in order."""
        body: dict = {}
        if spec is not None:
            body["spec"] = spec
        if terms is not None:
            body["terms"] = wire.encode_terms(list(terms))
        elif text is not None:
            body["text"] = list(text)
        else:
            raise ValueError("pass terms or text")
        if budget is not None:
            body["budget"] = wire.encode_budget(budget)
        reply = self._request("POST", "/v1/normalize", body)
        return wire.decode_outcomes(reply["outcomes"])

    def check(self, spec: Optional[str] = None, **params: object) -> dict:
        body: dict = dict(params)
        if spec is not None:
            body["spec"] = spec
        return self._request("POST", "/v1/check", body)

    def prove(
        self,
        goals: Sequence[tuple],
        *,
        spec: Optional[str] = None,
        fuel: Optional[int] = None,
    ) -> list[dict]:
        """Prove ``lhs = rhs`` term pairs; variables are universally
        quantified (the server skolemises)."""
        terms: list = []
        indices: list[list[int]] = []
        for lhs, rhs in goals:
            indices.append([len(terms), len(terms) + 1])
            terms.extend((lhs, rhs))
        body: dict = {"terms": wire.encode_terms(terms), "goals": indices}
        if spec is not None:
            body["spec"] = spec
        if fuel is not None:
            body["fuel"] = fuel
        return self._request("POST", "/v1/prove", body)["results"]

    def healthz(self) -> dict:
        return self._request("GET", "/healthz")

    def readyz(self) -> dict:
        """Readiness, *without* retry: callers poll this to watch
        recovery happen, so a 503 comes back as data."""
        status, decoded, _ = self._request_once("GET", "/readyz")
        decoded["status"] = status
        return decoded

    def metrics(self) -> str:
        status, decoded, _ = self._request_once("GET", "/metrics")
        if "raw" in decoded and len(decoded) == 1:
            return decoded["raw"]
        # A metrics body that happens to parse as JSON (improbable but
        # cheap to honour) comes back re-serialised.
        return json.dumps(decoded)


class _UnixConnection(http.client.HTTPConnection):
    """``HTTPConnection`` over an ``AF_UNIX`` socket path."""

    def __init__(self, path: str, timeout: float = 30.0) -> None:
        super().__init__("localhost", timeout=timeout)
        self._path = path

    def connect(self) -> None:
        self.sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        self.sock.settimeout(self.timeout)
        self.sock.connect(self._path)
