"""repro — algebraic specification of abstract data types.

A production-grade reproduction of John Guttag, *Abstract Data Types and
the Development of Data Structures* (CACM 20(6), 1977): a many-sorted
term algebra, the algebraic specification language with its ``error``
algebra and if-then-else, a rewrite engine giving specifications an
operational reading, Guttag's sufficient-completeness and consistency
analyses with the interactive completion heuristics, symbolic
interpretation (specs as implementations), representation verification
(proof obligations, equational proving, generator induction, model
checking), the full symbol-table case study, and a compiler front end
built on it.

Quickstart::

    from repro import parse_specification, facade_class

    spec = parse_specification(QUEUE_TEXT)
    Queue = facade_class(spec)
    Queue.new().add('a').add('b').front()   # -> 'a'
"""

from repro.algebra import (
    BOOLEAN,
    NAT,
    Operation,
    Signature,
    Sort,
    SortError,
    Term,
)
from repro.spec import (
    AlgebraError,
    Axiom,
    ParseError,
    Specification,
    parse_specification,
    parse_specifications,
)
from repro.rewriting import RewriteEngine, RewriteLimitError, RuleSet
from repro.runtime import EvaluationBudget, Outcome
from repro.analysis import (
    CompletionSession,
    check_axiom_coverage,
    check_consistency,
    check_sufficient_completeness,
    classify,
    lint_specification,
    prompts_for,
)
from repro.interp import SymbolicInterpreter, facade_class
from repro.verify import (
    Mode,
    Representation,
    model_check,
    obligations_for,
    verify_representation,
)
from repro.testing import ImplementationBinding, check_axioms

__version__ = "1.0.0"

__all__ = [
    "BOOLEAN",
    "NAT",
    "Operation",
    "Signature",
    "Sort",
    "SortError",
    "Term",
    "AlgebraError",
    "Axiom",
    "ParseError",
    "Specification",
    "parse_specification",
    "parse_specifications",
    "RewriteEngine",
    "RewriteLimitError",
    "RuleSet",
    "EvaluationBudget",
    "Outcome",
    "CompletionSession",
    "check_axiom_coverage",
    "check_consistency",
    "check_sufficient_completeness",
    "classify",
    "lint_specification",
    "prompts_for",
    "SymbolicInterpreter",
    "facade_class",
    "Mode",
    "Representation",
    "model_check",
    "obligations_for",
    "verify_representation",
    "ImplementationBinding",
    "check_axioms",
    "__version__",
]
