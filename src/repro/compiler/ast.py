"""Abstract syntax of the Block language.

::

    program  ::= block
    block    ::= "begin" ["knows" ident ("," ident)*] item* "end"
    item     ::= declare | stmt
    declare  ::= "declare" ident ":" type ";"
    type     ::= "int" | "bool"
    stmt     ::= assign | block ";" | if | while
    assign   ::= ident ":=" expr ";"
    if       ::= "if" expr "then" stmt* ["else" stmt*] "fi" ";"
    while    ::= "while" expr "do" stmt* "od" ";"
    expr     ::= comparison
    comparison ::= sum (("="|"<") sum)?
    sum      ::= product (("+"|"-") product)*
    product  ::= atom ("*" atom)*
    atom     ::= INT | "true" | "false" | ident | "(" expr ")"

The ``knows`` clause is only legal in the knows-list dialect.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Union


@dataclass(frozen=True)
class Span:
    """Source position of a node (line/column of its first token)."""

    line: int
    column: int

    def __str__(self) -> str:
        return f"line {self.line}, column {self.column}"


# -- expressions --------------------------------------------------------
@dataclass(frozen=True)
class IntLit:
    value: int
    span: Span


@dataclass(frozen=True)
class BoolLit:
    value: bool
    span: Span


@dataclass(frozen=True)
class Name:
    ident: str
    span: Span


@dataclass(frozen=True)
class BinOp:
    op: str  # one of + - * = <
    left: "Expr"
    right: "Expr"
    span: Span


Expr = Union[IntLit, BoolLit, Name, BinOp]


# -- statements ----------------------------------------------------------
@dataclass(frozen=True)
class Declare:
    ident: str
    type_name: str  # "int" | "bool"
    span: Span


@dataclass(frozen=True)
class Assign:
    ident: str
    value: Expr
    span: Span


@dataclass(frozen=True)
class If:
    condition: Expr
    then_body: tuple["Stmt", ...]
    else_body: tuple["Stmt", ...]
    span: Span


@dataclass(frozen=True)
class While:
    condition: Expr
    body: tuple["Stmt", ...]
    span: Span


@dataclass(frozen=True)
class Block:
    items: tuple["Stmt", ...]
    knows: Optional[tuple[str, ...]]  # None = plain dialect
    span: Span


Stmt = Union[Declare, Assign, If, While, Block]


def walk_expr_names(expr: Expr):
    """Yield every :class:`Name` use in ``expr``."""
    if isinstance(expr, Name):
        yield expr
    elif isinstance(expr, BinOp):
        yield from walk_expr_names(expr.left)
        yield from walk_expr_names(expr.right)
