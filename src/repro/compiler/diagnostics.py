"""Diagnostics produced by semantic analysis."""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum, auto

from repro.compiler.ast import Span


class Severity(Enum):
    ERROR = auto()
    WARNING = auto()


class Code(Enum):
    DUPLICATE_DECLARATION = auto()
    UNDECLARED_IDENTIFIER = auto()
    NOT_IN_KNOWS_LIST = auto()
    TYPE_MISMATCH = auto()
    EXTRA_END = auto()
    UNKNOWN_KNOWS_NAME = auto()


@dataclass(frozen=True)
class Diagnostic:
    severity: Severity
    code: Code
    message: str
    span: Span

    def __str__(self) -> str:
        return f"{self.severity.name.lower()} at {self.span}: {self.message}"


@dataclass
class DiagnosticBag:
    """Collects diagnostics during a semantic pass."""

    diagnostics: list[Diagnostic] = field(default_factory=list)

    def error(self, code: Code, message: str, span: Span) -> None:
        self.diagnostics.append(
            Diagnostic(Severity.ERROR, code, message, span)
        )

    def warning(self, code: Code, message: str, span: Span) -> None:
        self.diagnostics.append(
            Diagnostic(Severity.WARNING, code, message, span)
        )

    @property
    def errors(self) -> list[Diagnostic]:
        return [d for d in self.diagnostics if d.severity is Severity.ERROR]

    @property
    def warnings(self) -> list[Diagnostic]:
        return [d for d in self.diagnostics if d.severity is Severity.WARNING]

    @property
    def ok(self) -> bool:
        return not self.errors

    def codes(self) -> list[Code]:
        return [d.code for d in self.diagnostics]

    def __str__(self) -> str:
        if not self.diagnostics:
            return "no diagnostics"
        return "\n".join(str(d) for d in self.diagnostics)
