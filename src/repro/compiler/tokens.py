"""Tokens for the Block language.

The Block language is the small block-structured language this package
compiles the front half of; its whole purpose is to exercise the symbol
table the paper designs (nested scopes, shadowing, duplicate-declaration
checks, and in the dialect of section 4's adaptability exercise, knows
lists at block entry).
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum, auto


class TokKind(Enum):
    IDENT = auto()
    INT = auto()
    KEYWORD = auto()
    ASSIGN = auto()      # :=
    COLON = auto()       # :
    SEMI = auto()        # ;
    COMMA = auto()       # ,
    LPAREN = auto()      # (
    RPAREN = auto()      # )
    PLUS = auto()        # +
    MINUS = auto()       # -
    STAR = auto()        # *
    EQUAL = auto()       # =
    LESS = auto()        # <
    EOF = auto()


KEYWORDS = frozenset(
    {
        "begin",
        "end",
        "declare",
        "if",
        "then",
        "else",
        "fi",
        "while",
        "do",
        "od",
        "true",
        "false",
        "knows",
        "int",
        "bool",
    }
)


@dataclass(frozen=True)
class Tok:
    kind: TokKind
    text: str
    line: int
    column: int

    def is_keyword(self, word: str) -> bool:
        return self.kind is TokKind.KEYWORD and self.text == word

    def __str__(self) -> str:
        return f"{self.text!r} at line {self.line}, column {self.column}"
