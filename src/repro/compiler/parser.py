"""Recursive-descent parser for the Block language."""

from __future__ import annotations

from typing import Optional, Sequence

from repro.compiler.ast import (
    Assign,
    BinOp,
    Block,
    BoolLit,
    Declare,
    Expr,
    If,
    IntLit,
    Name,
    Span,
    Stmt,
    While,
)
from repro.compiler.lexer import tokenize
from repro.compiler.tokens import Tok, TokKind


class BlockParseError(Exception):
    """Raised on syntax errors in Block programs."""


class _Parser:
    def __init__(self, tokens: Sequence[Tok], allow_knows: bool) -> None:
        self._tokens = list(tokens)
        self._pos = 0
        self._allow_knows = allow_knows

    # -- plumbing -----------------------------------------------------------
    def _peek(self) -> Tok:
        return self._tokens[self._pos]

    def _next(self) -> Tok:
        token = self._tokens[self._pos]
        if token.kind is not TokKind.EOF:
            self._pos += 1
        return token

    def _expect(self, kind: TokKind, what: str) -> Tok:
        token = self._next()
        if token.kind is not kind:
            raise BlockParseError(f"expected {what}, found {token}")
        return token

    def _expect_keyword(self, word: str) -> Tok:
        token = self._next()
        if not token.is_keyword(word):
            raise BlockParseError(f"expected {word!r}, found {token}")
        return token

    @staticmethod
    def _span(token: Tok) -> Span:
        return Span(token.line, token.column)

    # -- grammar -----------------------------------------------------------
    def parse_program(self) -> Block:
        block = self.parse_block()
        trailing = self._peek()
        if trailing.kind is not TokKind.EOF:
            raise BlockParseError(f"unexpected input after program: {trailing}")
        return block

    def parse_block(self) -> Block:
        begin = self._expect_keyword("begin")
        knows: Optional[tuple[str, ...]] = None
        if self._peek().is_keyword("knows"):
            if not self._allow_knows:
                raise BlockParseError(
                    f"'knows' clause at {self._span(self._peek())} is only "
                    f"legal in the knows-list dialect"
                )
            self._next()
            names = [self._expect(TokKind.IDENT, "identifier").text]
            while self._peek().kind is TokKind.COMMA:
                self._next()
                names.append(self._expect(TokKind.IDENT, "identifier").text)
            knows = tuple(names)
        elif self._allow_knows:
            # In the dialect, every non-global block must say what it
            # knows; an absent clause means "knows nothing".
            knows = ()
        items: list[Stmt] = []
        while not self._peek().is_keyword("end"):
            if self._peek().kind is TokKind.EOF:
                raise BlockParseError("unexpected end of input: missing 'end'")
            items.append(self.parse_item())
        self._next()  # consume 'end'
        return Block(tuple(items), knows, self._span(begin))

    def parse_item(self) -> Stmt:
        token = self._peek()
        if token.is_keyword("declare"):
            return self.parse_declare()
        return self.parse_stmt()

    def parse_declare(self) -> Declare:
        keyword = self._expect_keyword("declare")
        name = self._expect(TokKind.IDENT, "identifier")
        self._expect(TokKind.COLON, "':'")
        type_token = self._next()
        if not (type_token.is_keyword("int") or type_token.is_keyword("bool")):
            raise BlockParseError(f"expected a type, found {type_token}")
        self._expect(TokKind.SEMI, "';'")
        return Declare(name.text, type_token.text, self._span(keyword))

    def parse_stmt(self) -> Stmt:
        token = self._peek()
        if token.is_keyword("begin"):
            block = self.parse_block()
            self._expect(TokKind.SEMI, "';' after block")
            return block
        if token.is_keyword("if"):
            return self.parse_if()
        if token.is_keyword("while"):
            return self.parse_while()
        if token.kind is TokKind.IDENT:
            name = self._next()
            self._expect(TokKind.ASSIGN, "':='")
            value = self.parse_expr()
            self._expect(TokKind.SEMI, "';'")
            return Assign(name.text, value, self._span(name))
        raise BlockParseError(f"expected a statement, found {token}")

    def parse_if(self) -> If:
        keyword = self._expect_keyword("if")
        condition = self.parse_expr()
        self._expect_keyword("then")
        then_body: list[Stmt] = []
        while not (
            self._peek().is_keyword("else") or self._peek().is_keyword("fi")
        ):
            then_body.append(self.parse_item())
        else_body: list[Stmt] = []
        if self._peek().is_keyword("else"):
            self._next()
            while not self._peek().is_keyword("fi"):
                else_body.append(self.parse_item())
        self._expect_keyword("fi")
        self._expect(TokKind.SEMI, "';'")
        return If(
            condition, tuple(then_body), tuple(else_body), self._span(keyword)
        )

    def parse_while(self) -> While:
        keyword = self._expect_keyword("while")
        condition = self.parse_expr()
        self._expect_keyword("do")
        body: list[Stmt] = []
        while not self._peek().is_keyword("od"):
            body.append(self.parse_item())
        self._next()
        self._expect(TokKind.SEMI, "';'")
        return While(condition, tuple(body), self._span(keyword))

    # -- expressions ---------------------------------------------------------
    def parse_expr(self) -> Expr:
        left = self.parse_sum()
        token = self._peek()
        if token.kind in (TokKind.EQUAL, TokKind.LESS):
            self._next()
            right = self.parse_sum()
            return BinOp(token.text, left, right, self._span(token))
        return left

    def parse_sum(self) -> Expr:
        left = self.parse_product()
        while self._peek().kind in (TokKind.PLUS, TokKind.MINUS):
            token = self._next()
            right = self.parse_product()
            left = BinOp(token.text, left, right, self._span(token))
        return left

    def parse_product(self) -> Expr:
        left = self.parse_atom()
        while self._peek().kind is TokKind.STAR:
            token = self._next()
            right = self.parse_atom()
            left = BinOp(token.text, left, right, self._span(token))
        return left

    def parse_atom(self) -> Expr:
        token = self._next()
        if token.kind is TokKind.INT:
            return IntLit(int(token.text), self._span(token))
        if token.is_keyword("true"):
            return BoolLit(True, self._span(token))
        if token.is_keyword("false"):
            return BoolLit(False, self._span(token))
        if token.kind is TokKind.IDENT:
            return Name(token.text, self._span(token))
        if token.kind is TokKind.LPAREN:
            inner = self.parse_expr()
            self._expect(TokKind.RPAREN, "')'")
            return inner
        raise BlockParseError(f"expected an expression, found {token}")


def parse_program(source: str, dialect: str = "plain") -> Block:
    """Parse a Block program.

    ``dialect`` is ``"plain"`` (lexical scope, full inheritance) or
    ``"knows"`` (globals visible only through knows lists).
    """
    if dialect not in ("plain", "knows"):
        raise ValueError(f"unknown dialect {dialect!r}")
    parser = _Parser(tokenize(source), allow_knows=dialect == "knows")
    return parser.parse_program()
