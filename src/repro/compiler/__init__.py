"""A front end for the Block language, built on the symbol-table ADT.

Lexer, parser, AST, and a semantic analyser whose scope handling is
written purely against the abstract symbol-table operations — with
interchangeable backends (concrete implementation, symbolically
interpreted specification, hand-rolled native table).
"""

from repro.compiler.ast import (
    Assign,
    BinOp,
    Block,
    BoolLit,
    Declare,
    Expr,
    If,
    IntLit,
    Name,
    Span,
    Stmt,
    While,
)
from repro.compiler.lexer import BlockLexError, tokenize
from repro.compiler.parser import BlockParseError, parse_program
from repro.compiler.diagnostics import (
    Code,
    Diagnostic,
    DiagnosticBag,
    Severity,
)
from repro.compiler.backends import (
    ConcreteBackend,
    KnowsConcreteBackend,
    KnowsSpecBackend,
    NativeBackend,
    SpecBackend,
    SymbolTableBackend,
)
from repro.compiler.semantic import (
    AnalysisResult,
    AnalysisStats,
    SemanticAnalyzer,
    analyze_source,
)
from repro.compiler.interp import (
    BlockRuntimeError,
    ExecutionResult,
    Interpreter,
    run_source,
)
from repro.compiler.codegen import (
    CodegenError,
    CodeGenerator,
    CompiledProgram,
    Instr,
    Op,
    StorageAttributes,
    compile_program,
)
from repro.compiler.vm import VirtualMachine, compile_and_run
from repro.compiler.workloads import (
    DIAGNOSTIC_SAMPLE,
    WorkloadShape,
    generate_program,
)

__all__ = [
    "Assign",
    "BinOp",
    "Block",
    "BoolLit",
    "Declare",
    "Expr",
    "If",
    "IntLit",
    "Name",
    "Span",
    "Stmt",
    "While",
    "BlockLexError",
    "tokenize",
    "BlockParseError",
    "parse_program",
    "Code",
    "Diagnostic",
    "DiagnosticBag",
    "Severity",
    "ConcreteBackend",
    "KnowsConcreteBackend",
    "KnowsSpecBackend",
    "NativeBackend",
    "SpecBackend",
    "SymbolTableBackend",
    "AnalysisResult",
    "AnalysisStats",
    "SemanticAnalyzer",
    "analyze_source",
    "DIAGNOSTIC_SAMPLE",
    "WorkloadShape",
    "generate_program",
    "BlockRuntimeError",
    "ExecutionResult",
    "Interpreter",
    "run_source",
    "CodegenError",
    "CodeGenerator",
    "CompiledProgram",
    "Instr",
    "Op",
    "StorageAttributes",
    "compile_program",
    "VirtualMachine",
    "compile_and_run",
]
