"""Synthetic Block programs for tests and benchmarks.

Benchmark E9 needs programs of controlled size and nesting depth; the
generator here emits well-formed Block source (optionally with seeded
scope errors, for exercising the diagnostic paths) in either dialect.
Generation is deterministic given the seed.
"""

from __future__ import annotations

import random
from dataclasses import dataclass


@dataclass(frozen=True)
class WorkloadShape:
    """Parameters of a generated program."""

    blocks: int = 10
    declarations_per_block: int = 4
    statements_per_block: int = 6
    max_depth: int = 4
    error_rate: float = 0.0  # fraction of statements using undeclared names
    seed: int = 0


def generate_program(shape: WorkloadShape, dialect: str = "plain") -> str:
    """Emit Block source with roughly ``shape.blocks`` nested/sequential
    blocks.  In the knows dialect every block gets a knows list covering
    the visible names it uses."""
    rng = random.Random(shape.seed)
    counter = [0]

    def fresh_name() -> str:
        counter[0] += 1
        return f"v{counter[0]}"

    def emit_block(depth: int, visible: list[str], budget: list[int]) -> list[str]:
        lines: list[str] = []
        local: list[str] = []
        for _ in range(shape.declarations_per_block):
            name = fresh_name()
            type_name = rng.choice(("int", "bool"))
            lines.append(f"declare {name}: {type_name};")
            local.append(name)
        usable = visible + local
        for _ in range(shape.statements_per_block):
            if rng.random() < shape.error_rate:
                lines.append(f"{fresh_name()}_undeclared := 1;")
            elif usable:
                target = rng.choice(usable)
                source = rng.choice(usable)
                lines.append(f"{target} := {source};")
        # The outermost level keeps emitting until the block budget is
        # spent (so `blocks` really controls program size); inner levels
        # nest probabilistically up to max_depth.
        while (
            budget[0] > 0
            and depth < shape.max_depth
            and (depth == 1 or rng.random() < 0.6)
        ):
            budget[0] -= 1
            inherited = usable if dialect == "plain" else list(usable)
            inner = emit_block(depth + 1, inherited, budget)
            if dialect == "knows":
                knows = ", ".join(inherited) if inherited else ""
                head = f"begin knows {knows}" if knows else "begin"
            else:
                head = "begin"
            lines.append(head)
            lines.extend("  " + line for line in inner)
            lines.append("end;")
        return lines

    budget = [shape.blocks]
    body = emit_block(1, [], budget)
    return "begin\n" + "\n".join("  " + line for line in body) + "\nend"


#: A small hand-written program exercising every diagnostic path.
DIAGNOSTIC_SAMPLE = """
begin
  declare x: int;
  declare flag: bool;
  declare x: int;          -- duplicate declaration
  x := 1;
  flag := x;               -- type mismatch warning
  y := 2;                  -- undeclared identifier
  begin
    declare x: bool;       -- legal shadowing
    x := true;
    while x do
      x := false;
    od;
  end;
  if x < 3 then
    x := x + 1;
  else
    x := 0;
  fi;
end
"""
