"""Semantic analysis of Block programs, driven by the symbol table.

The analyser performs the checks the paper lists as the symbol table's
reasons for existing:

* ``IS_INBLOCK?`` before each declaration — duplicate declarations in a
  scope are errors;
* ``RETRIEVE`` for each identifier use — undeclared identifiers are
  errors (in the knows dialect, a name hidden by a missing knows-list
  entry is reported distinctly);
* the attributes stored at declaration (the declared type) drive a
  simple type check of assignments and conditions — mismatches are
  warnings, keeping scope analysis and type analysis distinguishable in
  the diagnostics.

The analyser is written purely against the abstract operations, so any
backend from :mod:`repro.compiler.backends` can sit behind it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from repro.spec.errors import AlgebraError
from repro.compiler.ast import (
    Assign,
    BinOp,
    Block,
    BoolLit,
    Declare,
    Expr,
    If,
    IntLit,
    Name,
    Stmt,
    While,
)
from repro.compiler.backends import (
    ConcreteBackend,
    KnowsConcreteBackend,
    SymbolTableBackend,
)
from repro.compiler.diagnostics import Code, DiagnosticBag


@dataclass
class AnalysisStats:
    """Symbol-table operation counts (benchmark E9 reports these)."""

    enterblocks: int = 0
    leaveblocks: int = 0
    adds: int = 0
    is_inblocks: int = 0
    retrieves: int = 0

    @property
    def total(self) -> int:
        return (
            self.enterblocks
            + self.leaveblocks
            + self.adds
            + self.is_inblocks
            + self.retrieves
        )


@dataclass
class AnalysisResult:
    diagnostics: DiagnosticBag
    stats: AnalysisStats

    @property
    def ok(self) -> bool:
        return self.diagnostics.ok


class SemanticAnalyzer:
    """Scope- and type-checks one Block program."""

    def __init__(
        self,
        backend: Optional[SymbolTableBackend] = None,
        knows_dialect: bool = False,
    ) -> None:
        if backend is None:
            backend = (
                KnowsConcreteBackend() if knows_dialect else ConcreteBackend()
            )
        self._initial = backend
        self._knows_dialect = knows_dialect

    # ------------------------------------------------------------------
    def analyze(self, program: Block) -> AnalysisResult:
        bag = DiagnosticBag()
        stats = AnalysisStats()
        # The backend is constructed initialised (INIT establishes the
        # global scope), so the outermost block does not ENTERBLOCK.
        table = self._initial
        table = self._analyze_items(program.items, table, bag, stats)
        return AnalysisResult(bag, stats)

    # ------------------------------------------------------------------
    def _analyze_items(
        self,
        items: Sequence[Stmt],
        table: SymbolTableBackend,
        bag: DiagnosticBag,
        stats: AnalysisStats,
    ) -> SymbolTableBackend:
        for item in items:
            table = self._analyze_item(item, table, bag, stats)
        return table

    def _analyze_item(
        self,
        item: Stmt,
        table: SymbolTableBackend,
        bag: DiagnosticBag,
        stats: AnalysisStats,
    ) -> SymbolTableBackend:
        if isinstance(item, Declare):
            stats.is_inblocks += 1
            if table.is_inblock(item.ident):
                bag.error(
                    Code.DUPLICATE_DECLARATION,
                    f"{item.ident!r} is already declared in this block",
                    item.span,
                )
                return table
            stats.adds += 1
            return table.add(item.ident, item.type_name)

        if isinstance(item, Assign):
            target_type = self._lookup(item.ident, item.span, table, bag, stats)
            value_type = self._type_of(item.value, table, bag, stats)
            if (
                target_type is not None
                and value_type is not None
                and target_type != value_type
            ):
                bag.warning(
                    Code.TYPE_MISMATCH,
                    f"assigning {value_type} to {item.ident!r} of type "
                    f"{target_type}",
                    item.span,
                )
            return table

        if isinstance(item, If):
            self._check_condition(item.condition, table, bag, stats)
            table = self._analyze_items(item.then_body, table, bag, stats)
            table = self._analyze_items(item.else_body, table, bag, stats)
            return table

        if isinstance(item, While):
            self._check_condition(item.condition, table, bag, stats)
            return self._analyze_items(item.body, table, bag, stats)

        if isinstance(item, Block):
            stats.enterblocks += 1
            if self._knows_dialect:
                knows = item.knows or ()
                for name in knows:
                    if self._lookup_quietly(name, table, stats) is None:
                        bag.warning(
                            Code.UNKNOWN_KNOWS_NAME,
                            f"knows-list name {name!r} is not visible at "
                            f"block entry",
                            item.span,
                        )
                inner = table.enterblock(knows)  # type: ignore[call-arg]
            else:
                inner = table.enterblock()
            inner = self._analyze_items(item.items, inner, bag, stats)
            stats.leaveblocks += 1
            try:
                inner.leaveblock()
            except AlgebraError:
                bag.error(
                    Code.EXTRA_END,
                    "extra 'end': no enclosing block to return to",
                    item.span,
                )
            return table

        raise TypeError(f"unknown statement node {item!r}")

    # ------------------------------------------------------------------
    def _lookup(
        self,
        name: str,
        span,
        table: SymbolTableBackend,
        bag: DiagnosticBag,
        stats: AnalysisStats,
    ) -> Optional[str]:
        stats.retrieves += 1
        try:
            return table.retrieve(name)  # type: ignore[return-value]
        except AlgebraError as exc:
            code = (
                Code.NOT_IN_KNOWS_LIST
                if "knows list" in str(exc)
                else Code.UNDECLARED_IDENTIFIER
            )
            bag.error(code, f"{name!r}: {exc}", span)
            return None

    def _lookup_quietly(
        self, name: str, table: SymbolTableBackend, stats: AnalysisStats
    ) -> Optional[str]:
        stats.retrieves += 1
        try:
            return table.retrieve(name)  # type: ignore[return-value]
        except AlgebraError:
            return None

    def _type_of(
        self,
        expr: Expr,
        table: SymbolTableBackend,
        bag: DiagnosticBag,
        stats: AnalysisStats,
    ) -> Optional[str]:
        if isinstance(expr, IntLit):
            return "int"
        if isinstance(expr, BoolLit):
            return "bool"
        if isinstance(expr, Name):
            return self._lookup(expr.ident, expr.span, table, bag, stats)
        if isinstance(expr, BinOp):
            left = self._type_of(expr.left, table, bag, stats)
            right = self._type_of(expr.right, table, bag, stats)
            if expr.op in ("+", "-", "*"):
                for side, side_type in (("left", left), ("right", right)):
                    if side_type is not None and side_type != "int":
                        bag.warning(
                            Code.TYPE_MISMATCH,
                            f"{side} operand of {expr.op!r} has type "
                            f"{side_type}, expected int",
                            expr.span,
                        )
                return "int"
            if left is not None and right is not None and left != right:
                bag.warning(
                    Code.TYPE_MISMATCH,
                    f"comparing {left} with {right}",
                    expr.span,
                )
            return "bool"
        raise TypeError(f"unknown expression node {expr!r}")

    def _check_condition(
        self,
        expr: Expr,
        table: SymbolTableBackend,
        bag: DiagnosticBag,
        stats: AnalysisStats,
    ) -> None:
        condition_type = self._type_of(expr, table, bag, stats)
        if condition_type is not None and condition_type != "bool":
            span = getattr(expr, "span")
            bag.warning(
                Code.TYPE_MISMATCH,
                f"condition has type {condition_type}, expected bool",
                span,
            )


def analyze_source(
    source: str,
    backend: Optional[SymbolTableBackend] = None,
    dialect: str = "plain",
) -> AnalysisResult:
    """Parse and analyse ``source`` in one call."""
    from repro.compiler.parser import parse_program

    program = parse_program(source, dialect)
    analyzer = SemanticAnalyzer(backend, knows_dialect=dialect == "knows")
    return analyzer.analyze(program)
