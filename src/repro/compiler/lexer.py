"""Lexer for the Block language."""

from __future__ import annotations

from repro.compiler.tokens import KEYWORDS, Tok, TokKind


class BlockLexError(Exception):
    """Raised on characters the Block language does not use."""


_PUNCT = {
    ";": TokKind.SEMI,
    ",": TokKind.COMMA,
    "(": TokKind.LPAREN,
    ")": TokKind.RPAREN,
    "+": TokKind.PLUS,
    "-": TokKind.MINUS,
    "*": TokKind.STAR,
    "=": TokKind.EQUAL,
    "<": TokKind.LESS,
}


def tokenize(source: str) -> list[Tok]:
    """Tokenize ``source``; ``--`` comments run to end of line."""
    tokens: list[Tok] = []
    line = 1
    column = 1
    i = 0
    n = len(source)
    while i < n:
        char = source[i]
        if char == "\n":
            line += 1
            column = 1
            i += 1
            continue
        if char in " \t\r":
            i += 1
            column += 1
            continue
        if source.startswith("--", i):
            while i < n and source[i] != "\n":
                i += 1
            continue
        if source.startswith(":=", i):
            tokens.append(Tok(TokKind.ASSIGN, ":=", line, column))
            i += 2
            column += 2
            continue
        if char == ":":
            tokens.append(Tok(TokKind.COLON, ":", line, column))
            i += 1
            column += 1
            continue
        if char in _PUNCT:
            tokens.append(Tok(_PUNCT[char], char, line, column))
            i += 1
            column += 1
            continue
        if char.isdigit():
            j = i
            while j < n and source[j].isdigit():
                j += 1
            tokens.append(Tok(TokKind.INT, source[i:j], line, column))
            column += j - i
            i = j
            continue
        if char.isalpha() or char == "_":
            j = i
            while j < n and (source[j].isalnum() or source[j] == "_"):
                j += 1
            text = source[i:j]
            kind = TokKind.KEYWORD if text in KEYWORDS else TokKind.IDENT
            tokens.append(Tok(kind, text, line, column))
            column += j - i
            i = j
            continue
        raise BlockLexError(
            f"unexpected character {char!r} at line {line}, column {column}"
        )
    tokens.append(Tok(TokKind.EOF, "", line, column))
    return tokens
