"""Symbol-table backends for semantic analysis.

The whole point of the paper's exercise: the compiler is written against
the *abstract* symbol-table operations, so any model of the axioms can
sit behind it.  Three interchangeable backends (plus knows-dialect
variants) demonstrate it:

* :class:`ConcreteBackend` — the stack-of-hash-arrays implementation;
* :class:`SpecBackend` — the algebraic specification itself, run by the
  rewrite engine ("in the absence of an implementation ... interpreted
  symbolically");
* :class:`NativeBackend` — a hand-rolled list-of-dicts table, the
  conventional baseline for benchmark E9.

Every backend is persistent and exposes the abstract operations; scope
errors surface as :class:`~repro.spec.errors.AlgebraError`.
"""

from __future__ import annotations

from typing import Optional, Protocol, Sequence

from repro.spec.errors import AlgebraError
from repro.adt.knowlist import KnowsSymbolTable, TupleKnowlist
from repro.adt.symboltable import SYMBOLTABLE_SPEC, SymbolTable


class SymbolTableBackend(Protocol):
    """What semantic analysis requires of a symbol table."""

    def enterblock(self) -> "SymbolTableBackend": ...

    def leaveblock(self) -> "SymbolTableBackend": ...

    def add(self, name: str, attrs: object) -> "SymbolTableBackend": ...

    def is_inblock(self, name: str) -> bool: ...

    def retrieve(self, name: str) -> object: ...


class ConcreteBackend:
    """The paper's representation: :class:`~repro.adt.symboltable.SymbolTable`."""

    def __init__(self, table: Optional[SymbolTable] = None) -> None:
        self._table = table if table is not None else SymbolTable.init()

    def enterblock(self) -> "ConcreteBackend":
        return ConcreteBackend(self._table.enterblock())

    def leaveblock(self) -> "ConcreteBackend":
        return ConcreteBackend(self._table.leaveblock())

    def add(self, name: str, attrs: object) -> "ConcreteBackend":
        return ConcreteBackend(self._table.add(name, attrs))

    def is_inblock(self, name: str) -> bool:
        return self._table.is_inblock(name)

    def retrieve(self, name: str) -> object:
        return self._table.retrieve(name)


class SpecBackend:
    """The specification as the implementation, via the symbolic façade.

    ``backend`` selects the rewrite engine's evaluation path
    (``"interpreted"`` or ``"compiled"``); one façade class is built and
    shared per path, so the E9 benchmark can compare them directly.
    """

    _facade_classes: dict = {}

    def __init__(
        self,
        value: Optional[object] = None,
        backend: str = "interpreted",
    ) -> None:
        cls = type(self)._ensure_facade(backend)
        self._backend = backend
        self._value = value if value is not None else cls.init()

    @classmethod
    def _ensure_facade(cls, backend: str = "interpreted"):
        facade = SpecBackend._facade_classes.get(backend)
        if facade is None:
            from repro.interp.facade import facade_class

            facade = facade_class(SYMBOLTABLE_SPEC, backend=backend)
            SpecBackend._facade_classes[backend] = facade
        return facade

    def enterblock(self) -> "SpecBackend":
        return SpecBackend(self._value.enterblock(), self._backend)

    def leaveblock(self) -> "SpecBackend":
        result = self._value.leaveblock()
        if _is_error(result):
            raise AlgebraError("LEAVEBLOCK on the global scope")
        return SpecBackend(result, self._backend)

    def add(self, name: str, attrs: object) -> "SpecBackend":
        return SpecBackend(self._value.add(name, attrs), self._backend)

    def is_inblock(self, name: str) -> bool:
        result = self._value.is_inblock(name)
        if not isinstance(result, bool):
            raise AlgebraError("IS_INBLOCK? did not reduce to a Boolean")
        return result

    def retrieve(self, name: str) -> object:
        return self._value.retrieve(name)


def _is_error(value: object) -> bool:
    from repro.algebra.terms import Err

    term = getattr(value, "term", None)
    return isinstance(term, Err)


class NativeBackend:
    """A conventional hand-written table: a tuple of dict scopes."""

    def __init__(self, scopes: tuple[dict, ...] = ({},)) -> None:
        self._scopes = scopes

    def enterblock(self) -> "NativeBackend":
        return NativeBackend(self._scopes + ({},))

    def leaveblock(self) -> "NativeBackend":
        if len(self._scopes) <= 1:
            raise AlgebraError("LEAVEBLOCK would discard the global scope")
        return NativeBackend(self._scopes[:-1])

    def add(self, name: str, attrs: object) -> "NativeBackend":
        scopes = self._scopes[:-1] + (dict(self._scopes[-1], **{name: attrs}),)
        return NativeBackend(scopes)

    def is_inblock(self, name: str) -> bool:
        return name in self._scopes[-1]

    def retrieve(self, name: str) -> object:
        for scope in reversed(self._scopes):
            if name in scope:
                return scope[name]
        raise AlgebraError(f"RETRIEVE: {name!r} not declared in any scope")


class KnowsSpecBackend:
    """Knows-dialect backend running the modified specification
    symbolically — the adaptability exercise end to end: change the
    axioms, recompile nothing, the front end follows."""

    _facade_class = None

    def __init__(self, value: Optional[object] = None) -> None:
        cls = type(self)._ensure_facade()
        self._value = value if value is not None else cls.init()

    @classmethod
    def _ensure_facade(cls):
        if KnowsSpecBackend._facade_class is None:
            from repro.adt.knowlist import SYMBOLTABLE_KNOWS_SPEC
            from repro.interp.facade import facade_class

            KnowsSpecBackend._facade_class = facade_class(
                SYMBOLTABLE_KNOWS_SPEC
            )
        return KnowsSpecBackend._facade_class

    def enterblock(self, knows: Sequence[str] = ()) -> "KnowsSpecBackend":
        from repro.adt.knowlist import knowlist_term
        from repro.interp.symbolic import SymbolicValue

        facade = type(self)._ensure_facade()
        interpreter = facade._interpreter
        klist = SymbolicValue(
            interpreter, interpreter.engine.normalize(knowlist_term(knows))
        )
        return KnowsSpecBackend(self._value.enterblock(klist))

    def leaveblock(self) -> "KnowsSpecBackend":
        result = self._value.leaveblock()
        if _is_error(result):
            raise AlgebraError("LEAVEBLOCK on the global scope")
        return KnowsSpecBackend(result)

    def add(self, name: str, attrs: object) -> "KnowsSpecBackend":
        return KnowsSpecBackend(self._value.add(name, attrs))

    def is_inblock(self, name: str) -> bool:
        result = self._value.is_inblock(name)
        if not isinstance(result, bool):
            raise AlgebraError("IS_INBLOCK? did not reduce to a Boolean")
        return result

    def retrieve(self, name: str) -> object:
        return self._value.retrieve(name)


class KnowsConcreteBackend:
    """Knows-dialect backend over :class:`KnowsSymbolTable`."""

    def __init__(self, table: Optional[KnowsSymbolTable] = None) -> None:
        self._table = table if table is not None else KnowsSymbolTable.init()

    def enterblock(
        self, knows: Sequence[str] = ()
    ) -> "KnowsConcreteBackend":
        return KnowsConcreteBackend(
            self._table.enterblock(TupleKnowlist(knows))
        )

    def leaveblock(self) -> "KnowsConcreteBackend":
        return KnowsConcreteBackend(self._table.leaveblock())

    def add(self, name: str, attrs: object) -> "KnowsConcreteBackend":
        return KnowsConcreteBackend(self._table.add(name, attrs))

    def is_inblock(self, name: str) -> bool:
        return self._table.is_inblock(name)

    def retrieve(self, name: str) -> object:
        return self._table.retrieve(name)
