"""A tree-walking evaluator for the Block language.

Executes programs directly over the AST, with a stack of scope frames
mirroring the symbol table's blocks.  Serves as the reference semantics
the bytecode VM (:mod:`repro.compiler.vm`) is differentially tested
against.

Programs are assumed to have passed semantic analysis; runtime
violations that analysis cannot rule out (reading a declared-but-never-
assigned variable) surface as :class:`BlockRuntimeError`.  ``while``
loops run under a step budget so buggy inputs terminate.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.compiler.ast import (
    Assign,
    BinOp,
    Block,
    BoolLit,
    Declare,
    Expr,
    If,
    IntLit,
    Name,
    Stmt,
    While,
)

#: A variable that was declared but never assigned reads as the zero
#: value of its declared type, like the paper's era would initialise
#: static storage.
DEFAULT_VALUES = {"int": 0, "bool": False}


class BlockRuntimeError(Exception):
    """Raised on runtime violations (undeclared name, step overrun)."""


@dataclass
class ExecutionResult:
    """Outcome of running a program."""

    globals: dict[str, object]
    steps: int

    def value(self, name: str) -> object:
        try:
            return self.globals[name]
        except KeyError:
            raise BlockRuntimeError(
                f"{name!r} is not a global of the program"
            ) from None


@dataclass
class _Frame:
    values: dict[str, object] = field(default_factory=dict)


class Interpreter:
    """Evaluates one program."""

    def __init__(self, max_steps: int = 100_000) -> None:
        self.max_steps = max_steps

    def run(self, program: Block) -> ExecutionResult:
        frames: list[_Frame] = [_Frame()]
        steps = [0]
        self._run_items(program.items, frames, steps)
        return ExecutionResult(dict(frames[0].values), steps[0])

    # ------------------------------------------------------------------
    def _spend(self, steps: list[int]) -> None:
        steps[0] += 1
        if steps[0] > self.max_steps:
            raise BlockRuntimeError(
                f"program exceeded {self.max_steps} steps"
            )

    def _run_items(
        self, items, frames: list[_Frame], steps: list[int]
    ) -> None:
        for item in items:
            self._run_item(item, frames, steps)

    def _run_item(
        self, item: Stmt, frames: list[_Frame], steps: list[int]
    ) -> None:
        self._spend(steps)
        if isinstance(item, Declare):
            frames[-1].values[item.ident] = DEFAULT_VALUES[item.type_name]
            return
        if isinstance(item, Assign):
            value = self._eval(item.value, frames, steps)
            for frame in reversed(frames):
                if item.ident in frame.values:
                    frame.values[item.ident] = value
                    return
            raise BlockRuntimeError(f"assignment to undeclared {item.ident!r}")
        if isinstance(item, If):
            condition = self._eval(item.condition, frames, steps)
            branch = item.then_body if condition else item.else_body
            self._run_items(branch, frames, steps)
            return
        if isinstance(item, While):
            while self._eval(item.condition, frames, steps):
                self._spend(steps)
                self._run_items(item.body, frames, steps)
            return
        if isinstance(item, Block):
            frames.append(_Frame())
            try:
                self._run_items(item.items, frames, steps)
            finally:
                frames.pop()
            return
        raise TypeError(f"unknown statement {item!r}")

    def _eval(self, expr: Expr, frames: list[_Frame], steps: list[int]):
        self._spend(steps)
        if isinstance(expr, IntLit):
            return expr.value
        if isinstance(expr, BoolLit):
            return expr.value
        if isinstance(expr, Name):
            for frame in reversed(frames):
                if expr.ident in frame.values:
                    return frame.values[expr.ident]
            raise BlockRuntimeError(f"read of undeclared {expr.ident!r}")
        if isinstance(expr, BinOp):
            left = self._eval(expr.left, frames, steps)
            right = self._eval(expr.right, frames, steps)
            if expr.op == "+":
                return left + right
            if expr.op == "-":
                return left - right
            if expr.op == "*":
                return left * right
            if expr.op == "=":
                return left == right
            if expr.op == "<":
                return left < right
            raise TypeError(f"unknown operator {expr.op!r}")
        raise TypeError(f"unknown expression {expr!r}")


def run_source(source: str, max_steps: int = 100_000) -> ExecutionResult:
    """Parse, check, and run ``source``; analysis errors abort."""
    from repro.compiler.parser import parse_program
    from repro.compiler.semantic import SemanticAnalyzer

    program = parse_program(source)
    analysis = SemanticAnalyzer().analyze(program)
    if not analysis.ok:
        raise BlockRuntimeError(
            "program has semantic errors:\n" + str(analysis.diagnostics)
        )
    return Interpreter(max_steps).run(program)
