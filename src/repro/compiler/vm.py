"""The stack-machine VM executing compiled Block programs.

The machine state is an operand stack plus a stack of scope *frames*
(lists of cells); ``LOAD``/``STORE`` address cells directly by the
``(depth, slot)`` lexical addresses the code generator retrieved from
the symbol table — no name lookup happens at runtime, which is the
payoff of resolving names at compile time.
"""

from __future__ import annotations


from repro.compiler.codegen import CompiledProgram, Op
from repro.compiler.interp import BlockRuntimeError, ExecutionResult


class VirtualMachine:
    """Executes compiled programs under a step budget."""

    def __init__(self, max_steps: int = 200_000) -> None:
        self.max_steps = max_steps

    def run(self, program: CompiledProgram) -> ExecutionResult:
        code = program.code
        stack: list[object] = []
        frames: list[list[object]] = [[]]
        pc = 0
        steps = 0
        while True:
            steps += 1
            if steps > self.max_steps:
                raise BlockRuntimeError(
                    f"VM exceeded {self.max_steps} steps"
                )
            instr = code[pc]
            pc += 1
            op = instr.op
            if op is Op.HALT:
                break
            if op is Op.CONST:
                stack.append(instr.b)
            elif op is Op.LOAD:
                frames_index, slot = instr.a, instr.b
                stack.append(frames[frames_index][slot])
            elif op is Op.STORE:
                frames_index, slot = instr.a, instr.b
                frames[frames_index][slot] = stack.pop()
            elif op is Op.ALLOC:
                frame = frames[-1]
                slot = instr.a  # type: ignore[assignment]
                while len(frame) <= slot:
                    frame.append(0)
                frame[slot] = instr.b
            elif op is Op.ENTER:
                frames.append([])
            elif op is Op.LEAVE:
                frames.pop()
            elif op is Op.ADD:
                right = stack.pop()
                stack.append(stack.pop() + right)  # type: ignore[operator]
            elif op is Op.SUB:
                right = stack.pop()
                stack.append(stack.pop() - right)  # type: ignore[operator]
            elif op is Op.MUL:
                right = stack.pop()
                stack.append(stack.pop() * right)  # type: ignore[operator]
            elif op is Op.EQ:
                right = stack.pop()
                stack.append(stack.pop() == right)
            elif op is Op.LT:
                right = stack.pop()
                stack.append(stack.pop() < right)  # type: ignore[operator]
            elif op is Op.JUMP:
                pc = instr.a  # type: ignore[assignment]
            elif op is Op.JUMP_IF_FALSE:
                if not stack.pop():
                    pc = instr.a  # type: ignore[assignment]
            else:  # pragma: no cover - exhaustive over Op
                raise BlockRuntimeError(f"unknown instruction {instr}")
        globals_frame = frames[0]
        values = {
            name: globals_frame[slot]
            for name, slot in program.global_names.items()
        }
        return ExecutionResult(values, steps)


def compile_and_run(
    source: str, max_steps: int = 200_000
) -> ExecutionResult:
    """Parse, check, compile, and execute ``source``."""
    from repro.compiler.codegen import compile_program
    from repro.compiler.parser import parse_program
    from repro.compiler.semantic import SemanticAnalyzer

    program = parse_program(source)
    analysis = SemanticAnalyzer().analyze(program)
    if not analysis.ok:
        raise BlockRuntimeError(
            "program has semantic errors:\n" + str(analysis.diagnostics)
        )
    compiled = compile_program(program)
    return VirtualMachine(max_steps).run(compiled)
