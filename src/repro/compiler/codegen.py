"""Bytecode generation for the Block language.

This pass is where the symbol table earns its keep exactly as the paper
frames it: "ADD: add an identifier and its attributes to the symbol
table ... RETRIEVE: return the attributes associated with a specified
identifier".  Here the *attributes* are storage attributes — the lexical
address ``(depth, slot)`` assigned at declaration — and code generation
RETRIEVEs them to emit direct loads and stores, so the emitted code
never searches scopes at runtime.

The backend is any model of the symbol-table axioms; the generator is
written against the abstract operations only, like the analyser.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum, auto
from typing import Optional, Union

from repro.spec.errors import AlgebraError
from repro.compiler.ast import (
    Assign,
    BinOp,
    Block,
    BoolLit,
    Declare,
    Expr,
    If,
    IntLit,
    Name,
    Stmt,
    While,
)
from repro.compiler.backends import ConcreteBackend, SymbolTableBackend


class Op(Enum):
    CONST = auto()        # push a constant
    LOAD = auto()         # push frames[depth][slot]
    STORE = auto()        # frames[depth][slot] := pop
    ADD = auto()
    SUB = auto()
    MUL = auto()
    EQ = auto()
    LT = auto()
    JUMP = auto()         # pc := arg
    JUMP_IF_FALSE = auto()  # if not pop: pc := arg
    ENTER = auto()        # push a new frame
    LEAVE = auto()        # pop the top frame
    ALLOC = auto()        # append a default cell to the top frame
    HALT = auto()


@dataclass(frozen=True)
class Instr:
    op: Op
    a: Optional[int] = None
    b: Optional[Union[int, object]] = None

    def __str__(self) -> str:
        parts = [self.op.name.lower()]
        if self.a is not None:
            parts.append(str(self.a))
        if self.b is not None:
            parts.append(repr(self.b))
        return " ".join(parts)


@dataclass(frozen=True)
class StorageAttributes:
    """What the symbol table stores per declaration."""

    depth: int
    slot: int
    type_name: str


@dataclass
class CompiledProgram:
    code: list[Instr]
    global_names: dict[str, int]  # name -> slot in frame 0

    def disassemble(self) -> str:
        return "\n".join(
            f"{index:4d}  {instr}" for index, instr in enumerate(self.code)
        )


class CodegenError(Exception):
    """Raised when generation hits an unresolvable name (should have
    been caught by semantic analysis)."""


_BINOPS = {
    "+": Op.ADD,
    "-": Op.SUB,
    "*": Op.MUL,
    "=": Op.EQ,
    "<": Op.LT,
}


class CodeGenerator:
    """Compiles one checked program to stack-machine code."""

    def __init__(self, backend: Optional[SymbolTableBackend] = None) -> None:
        self._initial = backend if backend is not None else ConcreteBackend()

    def compile(self, program: Block) -> CompiledProgram:
        code: list[Instr] = []
        table = self._initial
        depth = 0
        slots = [0]  # next free slot per open frame
        globals_map: dict[str, int] = {}
        table = self._gen_items(
            program.items, table, depth, slots, code, globals_map
        )
        code.append(Instr(Op.HALT))
        return CompiledProgram(code, globals_map)

    # ------------------------------------------------------------------
    def _gen_items(
        self, items, table, depth, slots, code, globals_map
    ):
        for item in items:
            table = self._gen_item(
                item, table, depth, slots, code, globals_map
            )
        return table

    def _gen_item(self, item: Stmt, table, depth, slots, code, globals_map):
        if isinstance(item, Declare):
            from repro.compiler.interp import DEFAULT_VALUES

            slot = slots[depth]
            slots[depth] += 1
            # ALLOC(slot, default) ensures the cell exists *and* resets
            # it — so re-executing a declaration (inside a loop body)
            # re-initialises the variable, matching the tree-walker.
            code.append(
                Instr(Op.ALLOC, slot, DEFAULT_VALUES[item.type_name])
            )
            attributes = StorageAttributes(depth, slot, item.type_name)
            if depth == 0:
                globals_map[item.ident] = slot
            return table.add(item.ident, attributes)

        if isinstance(item, Assign):
            self._gen_expr(item.value, table, code)
            attributes = self._storage(table, item.ident)
            code.append(Instr(Op.STORE, attributes.depth, attributes.slot))
            return table

        if isinstance(item, If):
            self._gen_expr(item.condition, table, code)
            branch_jump = len(code)
            code.append(Instr(Op.JUMP_IF_FALSE, 0))
            table = self._gen_items(
                item.then_body, table, depth, slots, code, globals_map
            )
            if item.else_body:
                exit_jump = len(code)
                code.append(Instr(Op.JUMP, 0))
                code[branch_jump] = Instr(Op.JUMP_IF_FALSE, len(code))
                table = self._gen_items(
                    item.else_body, table, depth, slots, code, globals_map
                )
                code[exit_jump] = Instr(Op.JUMP, len(code))
            else:
                code[branch_jump] = Instr(Op.JUMP_IF_FALSE, len(code))
            return table

        if isinstance(item, While):
            top = len(code)
            self._gen_expr(item.condition, table, code)
            exit_jump = len(code)
            code.append(Instr(Op.JUMP_IF_FALSE, 0))
            table = self._gen_items(
                item.body, table, depth, slots, code, globals_map
            )
            code.append(Instr(Op.JUMP, top))
            code[exit_jump] = Instr(Op.JUMP_IF_FALSE, len(code))
            return table

        if isinstance(item, Block):
            code.append(Instr(Op.ENTER))
            inner = table.enterblock()
            slots.append(0)
            inner = self._gen_items(
                item.items, inner, depth + 1, slots, code, globals_map
            )
            slots.pop()
            inner.leaveblock()
            code.append(Instr(Op.LEAVE))
            return table

        raise TypeError(f"unknown statement {item!r}")

    def _gen_expr(self, expr: Expr, table, code) -> None:
        if isinstance(expr, IntLit):
            code.append(Instr(Op.CONST, b=expr.value))
            return
        if isinstance(expr, BoolLit):
            code.append(Instr(Op.CONST, b=expr.value))
            return
        if isinstance(expr, Name):
            attributes = self._storage(table, expr.ident)
            code.append(Instr(Op.LOAD, attributes.depth, attributes.slot))
            return
        if isinstance(expr, BinOp):
            self._gen_expr(expr.left, table, code)
            self._gen_expr(expr.right, table, code)
            code.append(Instr(_BINOPS[expr.op]))
            return
        raise TypeError(f"unknown expression {expr!r}")

    def _storage(self, table, name: str) -> StorageAttributes:
        try:
            attributes = table.retrieve(name)
        except AlgebraError as exc:
            raise CodegenError(f"unresolved identifier {name!r}: {exc}") from exc
        if not isinstance(attributes, StorageAttributes):
            raise CodegenError(
                f"{name!r} carries non-storage attributes "
                f"{attributes!r}; run codegen on its own table"
            )
        return attributes


def compile_program(
    program: Block, backend: Optional[SymbolTableBackend] = None
) -> CompiledProgram:
    """Compile a (semantically valid) program to bytecode."""
    return CodeGenerator(backend).compile(program)
