"""Top-level drivers for representation verification.

Three readings of "the implementation is correct", in increasing
strength, all from section 4 of the paper:

* ``UNCONDITIONAL`` — every obligation proved with representation
  variables ranging over *all* values of the representation sort.
  (For the symbol table this fails: unreachable states break Axioms 6
  and 9, exactly the paper's observation.)
* ``CONDITIONAL`` — proved under environment assumptions (Assumption 1).
  "The representation of the abstract type is correct if the enclosing
  program obeys certain constraints."
* ``REACHABLE`` — proved by generator induction over reachable values,
  using reachability lemmas.  Self-contained: no constraints on the
  enclosing program beyond using only the type's own operations.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum, auto
from typing import Optional, Sequence

from repro.algebra.sorts import Sort
from repro.verify.induction import GeneratorInduction, Lemma
from repro.verify.obligations import ProofObligation, obligations_for
from repro.verify.prover import EquationalProver, Fact, ProofResult
from repro.verify.representation import Representation
from repro.verify.skolem import skolemize_pair


class Mode(Enum):
    UNCONDITIONAL = auto()
    CONDITIONAL = auto()
    REACHABLE = auto()


@dataclass
class ObligationOutcome:
    obligation: ProofObligation
    proved: bool
    detail: object  # ProofResult or InductionResult

    def __str__(self) -> str:
        verdict = "proved" if self.proved else "NOT PROVED"
        return f"({self.obligation.label}) {verdict}"


@dataclass
class VerificationReport:
    representation_name: str
    mode: Mode
    outcomes: list[ObligationOutcome] = field(default_factory=list)
    lemma_outcomes: list[tuple[str, bool]] = field(default_factory=list)

    @property
    def all_proved(self) -> bool:
        return all(outcome.proved for outcome in self.outcomes)

    @property
    def failed_labels(self) -> tuple[str, ...]:
        return tuple(
            outcome.obligation.label
            for outcome in self.outcomes
            if not outcome.proved
        )

    def __str__(self) -> str:
        lines = [
            f"verification of {self.representation_name} "
            f"[{self.mode.name.lower()} mode]"
        ]
        for name, proved in self.lemma_outcomes:
            lines.append(f"lemma {name}: {'proved' if proved else 'NOT PROVED'}")
        lines.extend(f"  {outcome}" for outcome in self.outcomes)
        verdict = "all proved" if self.all_proved else (
            f"failed: {', '.join(self.failed_labels)}"
        )
        lines.append(verdict)
        return "\n".join(lines)


def _constructor_table(
    representation: Representation,
) -> dict[Sort, tuple]:
    """Free constructors of every concrete sort, for constructor splits."""

    table: dict[Sort, list] = {}
    concrete = representation.concrete
    heads = {axiom.head.name for axiom in concrete.all_axioms()}
    for operation in concrete.full_signature().operations:
        if operation.name in heads or operation.builtin is not None:
            continue
        table.setdefault(operation.range, []).append(operation)
    # Only offer splitting for the representation sort: splitting e.g.
    # Boolean constants is never useful and splitting Arrays explodes.
    rep = representation.rep_sort
    return {rep: tuple(table.get(rep, ()))}


def make_prover(
    representation: Representation,
    fuel: int = 100_000,
    max_fact_splits: int = 16,
    max_constructor_splits: int = 4,
) -> EquationalProver:
    return EquationalProver(
        representation.rules(),
        constructors=_constructor_table(representation),
        max_fact_splits=max_fact_splits,
        max_constructor_splits=max_constructor_splits,
        fuel=fuel,
    )


def _prove_closed(
    prover: EquationalProver, obligation: ProofObligation
) -> ProofResult:
    """Free/conditional-mode proof: skolemise everything, attach the
    obligation's assumption facts, and prove."""
    from repro.algebra.terms import App

    lhs, rhs, mapping = skolemize_pair(obligation.lhs, obligation.rhs)
    facts = []
    for assumption in obligation.assumptions:
        predicate_op = _find_operation(prover, assumption.predicate_name)
        constant = mapping[assumption.variable]
        facts.append(Fact(App(predicate_op, (constant,)), assumption.value))
    return prover.prove(lhs, rhs, facts=facts)


def _find_operation(prover: EquationalProver, name: str):
    from repro.algebra.terms import App

    for rule in prover.rules:
        for side in (rule.lhs, rule.rhs):
            for _, node in side.subterms():
                if isinstance(node, App) and node.op.name == name:
                    return node.op
    raise ValueError(f"assumption predicate {name!r} not found in rules")


@dataclass(frozen=True)
class RemoteProofSummary:
    """What a worker-process proof ships home: the verdict and a
    printable account.  Terms stay in the worker (they would unpickle
    as unshared copies); the labels, flags and renderings here are all
    the report surface ever consumes."""

    proved: bool
    lhs: str
    rhs: str
    residual: Optional[tuple[str, str]] = None

    def __str__(self) -> str:
        verdict = "PROVED" if self.proved else "FAILED"
        lines = [f"{verdict}: {self.lhs} = {self.rhs}"]
        if self.residual is not None:
            lines.append(f"residual: {self.residual[0]} = {self.residual[1]}")
        return "\n".join(lines)


# -- worker-process side of parallel obligation discharge ---------------
# One prover per worker, built in the initializer from the pickled
# representation and reused for every obligation the worker draws.
_WORKER_PROVER: Optional[EquationalProver] = None


def _verify_worker_init(representation: Representation, fuel: int) -> None:
    global _WORKER_PROVER
    _WORKER_PROVER = make_prover(representation, fuel=fuel)


def _verify_worker_run(obligation: ProofObligation) -> RemoteProofSummary:
    assert _WORKER_PROVER is not None
    result = _prove_closed(_WORKER_PROVER, obligation)
    return RemoteProofSummary(
        proved=result.proved,
        lhs=str(result.lhs),
        rhs=str(result.rhs),
        residual=(
            (str(result.residual[0]), str(result.residual[1]))
            if result.residual is not None
            else None
        ),
    )


def _discharge_parallel(
    representation: Representation,
    obligations: Sequence[ProofObligation],
    fuel: int,
    workers: int,
) -> Optional[list[ObligationOutcome]]:
    """Prove the obligations across worker processes, in order.

    Returns None when parallel discharge is unavailable (unpicklable
    representation, no multiprocessing, a worker died) — the caller
    falls back to the serial loop, so ``workers`` can never cost a
    verdict.  Proofs are independent, so per-obligation verdicts are
    identical to the serial run by construction.
    """
    import multiprocessing
    from concurrent.futures import ProcessPoolExecutor

    try:
        methods = multiprocessing.get_all_start_methods()
        method = "fork" if "fork" in methods else methods[0]
        with ProcessPoolExecutor(
            max_workers=min(workers, len(obligations)),
            mp_context=multiprocessing.get_context(method),
            initializer=_verify_worker_init,
            initargs=(representation, fuel),
        ) as executor:
            futures = [
                executor.submit(_verify_worker_run, obligation)
                for obligation in obligations
            ]
            return [
                ObligationOutcome(obligation, summary.proved, summary)
                for obligation, summary in zip(
                    obligations, (f.result() for f in futures)
                )
            ]
    except Exception:  # fault-boundary: broken pool / unpicklable -> serial
        return None


def verify_representation(
    representation: Representation,
    mode: Mode = Mode.REACHABLE,
    lemmas: Sequence[Lemma] = (),
    fuel: int = 100_000,
    workers: Optional[int] = None,
) -> VerificationReport:
    """Discharge every inherent-invariant obligation of
    ``representation`` in the requested ``mode``.

    ``workers=N`` shards UNCONDITIONAL/CONDITIONAL obligation discharge
    across N worker processes (obligations are independent closed
    proofs); per-obligation verdicts match the serial run.  REACHABLE
    mode stays serial: generator induction threads lemmas through one
    prover, an inherently sequential proof state.
    """
    report = VerificationReport(representation.abstract.name, mode)
    prover = make_prover(representation, fuel=fuel)

    if mode is Mode.REACHABLE:
        induction = GeneratorInduction(representation, prover)
        for lemma in lemmas:
            outcome = induction.establish_lemma(lemma)
            report.lemma_outcomes.append((lemma.name, outcome.proved))
        obligations = obligations_for(representation, with_assumption_1=False)
        for obligation in obligations:
            if obligation.rep_variables:
                variable = obligation.rep_variables[0]
                detail = induction.prove(
                    obligation.lhs, obligation.rhs, variable
                )
                report.outcomes.append(
                    ObligationOutcome(obligation, detail.proved, detail)
                )
            else:
                lhs, rhs, _ = skolemize_pair(obligation.lhs, obligation.rhs)
                proof = prover.prove(lhs, rhs)
                report.outcomes.append(
                    ObligationOutcome(obligation, proof.proved, proof)
                )
        return report

    with_assumption = mode is Mode.CONDITIONAL
    obligations = obligations_for(
        representation, with_assumption_1=with_assumption
    )
    if workers is not None and workers > 1 and len(obligations) > 1:
        outcomes = _discharge_parallel(
            representation, obligations, fuel, workers
        )
        if outcomes is not None:
            report.outcomes.extend(outcomes)
            return report
    for obligation in obligations:
        proof = _prove_closed(prover, obligation)
        report.outcomes.append(
            ObligationOutcome(obligation, proof.proved, proof)
        )
    return report
