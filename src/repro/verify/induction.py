"""Generator induction (Wegbreit's term, adopted by the paper).

"All that need be shown is that INIT' establishes the invariants and
that if on entry to an operation all invariants hold ... then all
invariants hold upon completion."  Formally: the reachable values of the
representation are those built by the *generators* — the primed forms of
the abstract constructors (``INIT'``, ``ENTERBLOCK'``, ``ADD'``) — and a
property of all reachable values is proved by structural induction over
generator terms:

* one **base case** per generator with no representation-sorted
  argument;
* one **step case** per recursive generator, in which the property may
  be assumed (the induction hypothesis) for the generator's
  representation-sorted arguments, along with any previously proved
  reachability *lemmas* (e.g. ``IS_NEWSTACK?(x) = false`` for all
  reachable ``x`` — the theorem that discharges the paper's
  Assumption 1 for reachable states).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

from repro.algebra.substitution import Substitution
from repro.algebra.terms import App, Term, Var
from repro.rewriting.rules import RewriteRule
from repro.verify.prover import EquationalProver, ProofResult
from repro.verify.representation import Representation
from repro.verify.skolem import fresh_constant, skolemize_pair


@dataclass(frozen=True)
class Lemma:
    """A proved (or to-be-proved) fact about all reachable values.

    ``variable`` is the universally quantified reachable value; ``lhs``
    and ``rhs`` are templates over it (other variables in the templates
    stay universally quantified and become pattern variables of the
    instantiated rule).
    """

    name: str
    variable: Var
    lhs: Term
    rhs: Term

    def instantiate(self, value: Term) -> RewriteRule:
        sigma = Substitution({self.variable: value})
        return RewriteRule(sigma.apply(self.lhs), sigma.apply(self.rhs), self.name)

    def __str__(self) -> str:
        return f"lemma {self.name}: {self.lhs} = {self.rhs} for reachable {self.variable}"


@dataclass
class InductionResult:
    proved: bool
    cases: list[tuple[str, ProofResult]] = field(default_factory=list)

    def __str__(self) -> str:
        verdict = "PROVED" if self.proved else "FAILED"
        lines = [f"induction {verdict}"]
        for name, result in self.cases:
            lines.append(f"-- case {name}:")
            lines.append(str(result))
        return "\n".join(lines)


class GeneratorInduction:
    """Proves ``∀ reachable x. lhs(x) = rhs(x)`` by generator induction."""

    def __init__(
        self,
        representation: Representation,
        prover: EquationalProver,
        lemmas: Sequence[Lemma] = (),
    ) -> None:
        if not representation.generators:
            raise ValueError(
                "generator induction needs the representation to declare "
                "its generators"
            )
        self.representation = representation
        self.prover = prover
        self.lemmas = list(lemmas)

    # ------------------------------------------------------------------
    def prove(
        self,
        lhs: Term,
        rhs: Term,
        variable: Var,
        use_hypothesis: bool = True,
    ) -> InductionResult:
        """Prove ``lhs = rhs`` for all reachable values of ``variable``.

        Other free variables of the equation are universally quantified:
        they are skolemised per case (and left general in the induction
        hypothesis, which is sound — the hypothesis holds for *all*
        values of its non-induction variables).
        """
        result = InductionResult(True)
        rep_sort = self.representation.rep_sort
        if variable.sort != rep_sort:
            raise ValueError(
                f"induction variable {variable} is not of the "
                f"representation sort {rep_sort}"
            )
        for definition in self.representation.generator_definitions():
            generator = definition.operation
            sub_constants: list[Term] = []
            args: list[Term] = []
            for sort in generator.domain:
                constant = fresh_constant(sort.name.lower(), sort)
                args.append(constant)
                if sort == rep_sort:
                    sub_constants.append(constant)
            case_term: Term = App(generator, args)
            case_name = str(case_term)

            goal_lhs, goal_rhs, _ = skolemize_pair(
                Substitution({variable: case_term}).apply(lhs),
                Substitution({variable: case_term}).apply(rhs),
            )

            extra_rules: list[RewriteRule] = []
            for constant in sub_constants:
                for lemma in self.lemmas:
                    extra_rules.append(lemma.instantiate(constant))
                if use_hypothesis:
                    hypothesis = self._hypothesis(lhs, rhs, variable, constant)
                    if hypothesis is not None:
                        extra_rules.append(hypothesis)

            proof = self.prover.prove(goal_lhs, goal_rhs, extra_rules)
            result.cases.append((case_name, proof))
            if not proof.proved:
                result.proved = False
        return result

    def _hypothesis(
        self, lhs: Term, rhs: Term, variable: Var, constant: Term
    ) -> Optional[RewriteRule]:
        sigma = Substitution({variable: constant})
        hyp_lhs = sigma.apply(lhs)
        hyp_rhs = sigma.apply(rhs)
        if not isinstance(hyp_lhs, App):
            return None
        if hyp_rhs.variables() - hyp_lhs.variables():
            return None
        return RewriteRule(hyp_lhs, hyp_rhs, "IH")

    # ------------------------------------------------------------------
    def establish_lemma(self, lemma: Lemma) -> InductionResult:
        """Prove ``lemma`` by generator induction and, on success, make
        it available to subsequent proofs."""
        outcome = self.prove(lemma.lhs, lemma.rhs, lemma.variable)
        if outcome.proved:
            self.lemmas.append(lemma)
        return outcome


def not_newstack_lemma(representation: Representation) -> Lemma:
    """The reachability lemma discharging Assumption 1.

    ``IS_NEWSTACK?(x) = false`` for every reachable ``x``: no reachable
    symbol-table representation is the empty stack, because ``INIT'``
    pushes the first (global) scope.
    """
    predicate = representation.concrete.operation("IS_NEWSTACK?")
    from repro.spec.prelude import false_term

    variable = Var("reachable", representation.rep_sort)
    return Lemma(
        "reachable-not-newstack",
        variable,
        App(predicate, (variable,)),
        false_term(),
    )
