"""Skolemization: fixed-but-arbitrary constants for proof variables.

The prover establishes ``∀ x. lhs(x) = rhs(x)`` by proving
``lhs(c) = rhs(c)`` for a *fresh constant* ``c``.  Using constants
instead of free variables keeps every assumption the prover accumulates
(case-split facts like ``ISSAME?(c1, c2) = true``, Assumption 1
instances, induction hypotheses at the induction constant) an *exact*
rewrite about specific values — a free variable in an assumption would
silently generalise it to everything of its sort, which is unsound.
"""

from __future__ import annotations

import itertools
from typing import Iterable, Mapping

from repro.algebra.signature import Operation
from repro.algebra.sorts import Sort
from repro.algebra.substitution import Substitution
from repro.algebra.terms import App, Term, Var

_counter = itertools.count(1)


def fresh_constant(name: str, sort: Sort) -> App:
    """A fresh skolem constant of ``sort``, printed ``name$k``."""
    operation = Operation(f"{name}${next(_counter)}", (), sort)
    return App(operation, ())


def is_skolem(term: Term) -> bool:
    """True when ``term`` is a skolem constant from this module."""
    return isinstance(term, App) and not term.args and "$" in term.op.name


def skolemize(
    term: Term, skolems: Mapping[Var, Term] | None = None
) -> tuple[Term, dict[Var, Term]]:
    """Replace every free variable of ``term`` with a skolem constant.

    ``skolems`` carries constants already chosen for some variables (so
    that the two sides of an equation share them).  Returns the
    skolemised term and the updated mapping.
    """
    mapping: dict[Var, Term] = dict(skolems) if skolems else {}
    for variable in sorted(term.variables(), key=lambda v: v.name):
        if variable not in mapping:
            mapping[variable] = fresh_constant(variable.name, variable.sort)
    return Substitution(mapping).apply(term), mapping


def skolemize_pair(
    lhs: Term, rhs: Term, keep: Iterable[Var] = ()
) -> tuple[Term, Term, dict[Var, Term]]:
    """Skolemise both sides of an equation with shared constants.

    Variables listed in ``keep`` are left free (the induction engine
    keeps its induction variable free until it expands it into
    constructor cases).
    """
    kept = set(keep)
    mapping: dict[Var, Term] = {}
    for variable in sorted(
        (lhs.variables() | rhs.variables()) - kept, key=lambda v: v.name
    ):
        mapping[variable] = fresh_constant(variable.name, variable.sort)
    sigma = Substitution(mapping)
    return sigma.apply(lhs), sigma.apply(rhs), mapping
