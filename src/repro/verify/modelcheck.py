"""Ground model checking of representation obligations.

A complement to the symbolic prover: obligations are evaluated on
concrete representation values and the two sides compared.  Cheap,
complete in spirit (up to the enumeration bound), and the tool that
exhibits *counterexamples* — e.g. instantiating the rep variable of
Axiom 9's obligation with the **unreachable** empty stack shows exactly
why the paper needs Assumption 1.
"""

from __future__ import annotations

import itertools
import random
from dataclasses import dataclass, field
from typing import Iterable, Optional, Sequence

from repro.algebra.substitution import Substitution
from repro.algebra.terms import App, Term
from repro.obs.trace import maybe_span
from repro.rewriting.engine import RewriteEngine
from repro.verify.obligations import ProofObligation
from repro.verify.representation import Representation


@dataclass(frozen=True)
class Counterexample:
    """A ground instantiation on which an obligation's sides differ."""

    obligation_label: str
    substitution: Substitution
    lhs_value: Term
    rhs_value: Term

    def __str__(self) -> str:
        return (
            f"obligation ({self.obligation_label}) fails at "
            f"{self.substitution}: {self.lhs_value} != {self.rhs_value}"
        )


@dataclass
class ModelCheckReport:
    obligation_label: str
    instances_checked: int = 0
    counterexamples: list[Counterexample] = field(default_factory=list)
    #: Instances that stopped short of normal forms (budget exhaustion,
    #: divergence, contained faults) — skipped, not counterexamples.
    undecided: int = 0

    @property
    def holds(self) -> bool:
        return not self.counterexamples

    def __str__(self) -> str:
        verdict = "holds" if self.holds else "FAILS"
        suffix = f", {self.undecided} undecided" if self.undecided else ""
        lines = [
            f"obligation ({self.obligation_label}) {verdict} on "
            f"{self.instances_checked} ground instance(s){suffix}"
        ]
        lines.extend(f"  {ce}" for ce in self.counterexamples[:5])
        return "\n".join(lines)


def reachable_states(
    representation: Representation,
    depth: int,
    identifiers: Sequence[str] = ("x", "y", "z"),
    attribute_values: Sequence[object] = ("int", "real"),
    limit: int = 200,
    seed: int = 7,
) -> list[Term]:
    """Ground representation values built from the generators.

    Breadth-first composition of the generator operations up to
    ``depth`` applications, with literal pools for the non-representation
    arguments.  Results are *normalised* concrete terms (stacks of
    arrays), deduplicated.  ``limit`` caps the frontier per level (a
    random sample keeps variety when the space explodes).
    """
    from repro.spec.prelude import attributes, identifier

    engine = RewriteEngine(representation.rules())
    rng = random.Random(seed)
    rep_sort = representation.rep_sort
    id_terms = [identifier(name) for name in identifiers]
    attr_terms = [attributes(value) for value in attribute_values]

    states: list[Term] = []
    seen: set[Term] = set()
    frontier: list[Term] = []
    with maybe_span("modelcheck.reachable_states", depth=depth):
        for definition in representation.generator_definitions():
            if rep_sort not in definition.operation.domain:
                base = engine.normalize(App(definition.operation, ()))
                if base not in seen:
                    seen.add(base)
                    states.append(base)
                    frontier.append(base)

        for _ in range(depth):
            next_frontier: list[Term] = []
            for state in frontier:
                for definition in representation.generator_definitions():
                    operation = definition.operation
                    if rep_sort not in operation.domain:
                        continue
                    arg_choices: list[list[Term]] = []
                    for sort in operation.domain:
                        if sort == rep_sort:
                            arg_choices.append([state])
                        elif str(sort) == "Identifier":
                            arg_choices.append(list(id_terms))
                        elif str(sort) == "Attributelist":
                            arg_choices.append(list(attr_terms))
                        else:
                            arg_choices.append([])
                    if any(not choices for choices in arg_choices):
                        continue
                    for combo in itertools.product(*arg_choices):
                        outcome = engine.normalize_outcome(
                            App(operation, combo)
                        )
                        if not outcome.ok:
                            continue
                        value = outcome.term
                        if value not in seen:
                            seen.add(value)
                            states.append(value)
                            next_frontier.append(value)
            if len(next_frontier) > limit:
                next_frontier = rng.sample(next_frontier, limit)
            frontier = next_frontier
            if not frontier:
                break
    return states


def model_check(
    obligation: ProofObligation,
    representation: Representation,
    rep_values: Iterable[Term],
    identifiers: Sequence[str] = ("x", "y", "z"),
    attribute_values: Sequence[object] = ("int", "real"),
    max_instances: int = 400,
    fuel: int = 100_000,
    extra_pools: Optional[dict[str, Sequence[Term]]] = None,
    workers: Optional[int] = None,
) -> ModelCheckReport:
    """Evaluate ``obligation`` on ground instantiations.

    Representation variables range over ``rep_values`` (pass reachable
    states for the conditional-correctness reading, or include raw
    unreachable terms such as ``NEWSTACK`` to hunt for the paper's
    Assumption 1 counterexample); other variables range over the literal
    pools.  ``extra_pools`` maps sort names to term pools for sorts
    beyond the built-in Identifier/Attributelist/Item trio.

    Both sides of every instance go through one fault-isolating
    :meth:`~repro.rewriting.engine.RewriteEngine.normalize_many_outcomes`
    batch; ``workers=N`` shards that batch (the enumeration grid is
    embarrassingly parallel) with per-instance verdicts unchanged.
    """
    from repro.spec.prelude import attributes, identifier, item

    engine = RewriteEngine(representation.rules(), fuel=fuel)
    report = ModelCheckReport(obligation.label)
    variables = sorted(
        obligation.lhs.variables() | obligation.rhs.variables(),
        key=lambda v: v.name,
    )
    custom = {name: list(terms) for name, terms in (extra_pools or {}).items()}
    pools: list[list[Term]] = []
    for variable in variables:
        sort_name = str(variable.sort)
        if variable.sort == representation.rep_sort:
            pools.append(list(rep_values))
        elif sort_name in custom:
            pools.append(custom[sort_name])
        elif sort_name == "Identifier":
            pools.append([identifier(name) for name in identifiers])
        elif sort_name == "Attributelist":
            pools.append([attributes(value) for value in attribute_values])
        elif sort_name == "Item":
            pools.append([item(value) for value in ("a", "b", 1)])
        else:
            raise ValueError(
                f"no ground pool for variable {variable} of sort "
                f"{variable.sort}"
            )

    with maybe_span("modelcheck.obligation", label=obligation.label):
        substitutions = [
            Substitution(dict(zip(variables, combo)))
            for combo in itertools.islice(
                itertools.product(*pools), max_instances
            )
        ]
        outcomes = engine.normalize_many_outcomes(
            [
                side
                for sigma in substitutions
                for side in (
                    sigma.apply(obligation.lhs),
                    sigma.apply(obligation.rhs),
                )
            ],
            workers=workers,
        )
        for i, sigma in enumerate(substitutions):
            left, right = outcomes[2 * i], outcomes[2 * i + 1]
            report.instances_checked += 1
            if not (left.ok and right.ok):
                report.undecided += 1
                continue
            if left.term != right.term:
                report.counterexamples.append(
                    Counterexample(
                        obligation.label, sigma, left.term, right.term
                    )
                )
    engine.close_pools()
    return report
