"""Proof obligations for representation correctness.

For every abstract axiom ``f(x*) = z`` the paper demands (section 4):

* (a) if the range of ``f`` is the type being defined,
  ``Φ(f'(x*)) = Φ(z')`` for all legal assignments to the free variables;
* (b) otherwise, ``f'(x*) = z'``.

These are the *inherent invariants*.  This module builds one
:class:`ProofObligation` per abstract axiom, including the variable
constraints induced by environment assumptions such as the paper's
Assumption 1 ("for any term ADD'(symtab, id, attrs),
IS_NEWSTACK?(symtab) = false").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional

from repro.algebra.terms import App, Term, Var
from repro.spec.axioms import Axiom
from repro.verify.representation import Representation


@dataclass(frozen=True)
class Assumption:
    """A constraint an environment assumption places on one variable.

    ``predicate_name`` names a Boolean observer of the representation
    sort; the assumption is that it yields ``value`` on the variable.
    Assumption 1 is ``Assumption(var, "IS_NEWSTACK?", False)``.
    """

    variable: Var
    predicate_name: str
    value: bool

    def __str__(self) -> str:
        return f"{self.predicate_name}({self.variable}) = {str(self.value).lower()}"


@dataclass
class ProofObligation:
    """One inherent invariant to discharge.

    ``lhs``/``rhs`` are already translated to the concrete level and,
    when the abstract axiom's sort is the type of interest, wrapped in
    Φ.  ``rep_variables`` are the free variables of representation sort
    (the ones induction or case analysis ranges over).
    """

    label: str
    axiom: Axiom
    lhs: Term
    rhs: Term
    rep_variables: tuple[Var, ...]
    assumptions: tuple[Assumption, ...] = ()

    @property
    def uses_phi(self) -> bool:
        return isinstance(self.lhs, App) and self.lhs.op.name.startswith("Φ")

    def __str__(self) -> str:
        header = f"obligation ({self.label}): {self.lhs} = {self.rhs}"
        if self.assumptions:
            assumed = " and ".join(str(a) for a in self.assumptions)
            header += f"  [assuming {assumed}]"
        return header


def derive_assumption_1(
    representation: Representation, lhs: Term, rhs: Term
) -> tuple[Assumption, ...]:
    """Instances of the paper's Assumption 1 present in an obligation.

    Every occurrence of ``ADD'(v, ...)`` with ``v`` a variable yields
    the constraint ``IS_NEWSTACK?(v) = false``.
    """
    add_defined = representation.defined.get("ADD")
    if add_defined is None:
        return ()
    # Assumption 1 is stated in terms of the representation's emptiness
    # predicate; a representation whose concrete level has no
    # IS_NEWSTACK? (e.g. Queue over lists) has no such assumption.
    concrete = representation.concrete.full_signature()
    if not concrete.has_operation("IS_NEWSTACK?"):
        return ()
    predicate = concrete.operation("IS_NEWSTACK?")
    if predicate.domain != (representation.rep_sort,):
        return ()
    found: dict[Var, Assumption] = {}
    for side in (lhs, rhs):
        for _, node in side.subterms():
            if (
                isinstance(node, App)
                and node.op == add_defined.operation
                and node.args
                and isinstance(node.args[0], Var)
            ):
                variable = node.args[0]
                found[variable] = Assumption(variable, "IS_NEWSTACK?", False)
    return tuple(found.values())


def obligations_for(
    representation: Representation,
    with_assumption_1: bool = False,
    axioms: Optional[Iterable[Axiom]] = None,
) -> list[ProofObligation]:
    """The inherent-invariant obligations of ``representation``.

    ``with_assumption_1`` attaches the paper's environment assumption to
    the obligations it applies to (those whose translation contains
    ``ADD'`` applied to a variable).
    """
    source = tuple(axioms) if axioms is not None else representation.abstract.axioms
    toi = representation.abstract.type_of_interest
    result: list[ProofObligation] = []
    for axiom in source:
        vmap: dict[Var, Var] = {}
        lhs = representation.translate(axiom.lhs, vmap)
        rhs = representation.translate(axiom.rhs, vmap)
        if axiom.lhs.sort == toi:
            lhs = representation.wrap_phi(lhs)
            rhs = representation.wrap_phi(rhs)
        rep_vars = tuple(
            sorted(
                {
                    v
                    for v in (lhs.variables() | rhs.variables())
                    if v.sort == representation.rep_sort
                },
                key=lambda v: v.name,
            )
        )
        assumptions: tuple[Assumption, ...] = ()
        if with_assumption_1:
            assumptions = derive_assumption_1(representation, lhs, rhs)
        result.append(
            ProofObligation(
                axiom.label or str(axiom.head.name),
                axiom,
                lhs,
                rhs,
                rep_vars,
                assumptions,
            )
        )
    return result
