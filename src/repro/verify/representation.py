"""Representations of abstract types (section 4 of the paper).

"A representation of a type T consists of (i) an interpretation of the
operations of the type that is a model for the axioms of the
specification of T, and (ii) a function Φ that maps terms in the model
domain onto their representatives in the abstract domain."

Concretely, a :class:`Representation` is:

* the **abstract** specification being implemented (Symboltable);
* the **concrete** specification implementing it (Stack-of-Arrays plus
  Array, themselves algebraic specifications — the paper's levels);
* one **defined operation** ``f'`` per abstract operation ``f``, whose
  body is a term over the concrete level (the paper's ``::`` "code");
* the **abstraction function Φ**, given — exactly as in the paper — by
  equations over the concrete constructors;
* optionally, a set of **generators**: the abstract operations whose
  primed forms produce every *reachable* concrete value.  Generator
  induction quantifies over these.

The class turns all of that into the rewrite rules the prover runs on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from repro.algebra.signature import Operation
from repro.algebra.sorts import Sort
from repro.algebra.terms import App, Err, Ite, Lit, Term, Var
from repro.spec.axioms import Axiom
from repro.spec.specification import Specification
from repro.rewriting.rules import RewriteRule, RuleSet


class RepresentationError(Exception):
    """Raised for ill-formed representations."""


@dataclass(frozen=True)
class DefinedOperation:
    """``f'(params...) :: body`` — an abstract operation's implementation
    as a term over the concrete level (plus other defined operations,
    which may be recursive, like ``RETRIEVE'``)."""

    operation: Operation
    params: tuple[Var, ...]
    body: Term

    def __post_init__(self) -> None:
        if len(self.params) != self.operation.arity:
            raise RepresentationError(
                f"{self.operation.name}: {len(self.params)} parameter(s) "
                f"for arity {self.operation.arity}"
            )
        for param, sort in zip(self.params, self.operation.domain):
            if param.sort != sort:
                raise RepresentationError(
                    f"{self.operation.name}: parameter {param} has sort "
                    f"{param.sort}, expected {sort}"
                )
        if self.body.sort != self.operation.range:
            raise RepresentationError(
                f"{self.operation.name}: body sort {self.body.sort} does "
                f"not match range {self.operation.range}"
            )
        stray = self.body.variables() - set(self.params)
        if stray:
            names = ", ".join(sorted(v.name for v in stray))
            raise RepresentationError(
                f"{self.operation.name}: body mentions unbound {names}"
            )

    def definition_rule(self) -> RewriteRule:
        """``f'(params...) -> body`` for the prover's rule set."""
        return RewriteRule(
            App(self.operation, self.params),
            self.body,
            f"def {self.operation.name}",
        )

    def rules(self) -> tuple[RewriteRule, ...]:
        return (self.definition_rule(),)

    def __str__(self) -> str:
        params = ", ".join(str(p) for p in self.params)
        head = f"{self.operation.name}({params})" if params else self.operation.name
        return f"{head} :: {self.body}"


@dataclass(frozen=True)
class CaseDefinedOperation:
    """An implementation operation defined by per-constructor case
    axioms rather than a single body.

    Recursive observers over a representation (``READ'`` over an
    association list) are most naturally written one equation per
    constructor of the representation sort — the same definitional shape
    as specification axioms, and structure-consuming, so the prover
    unfolds them freely.
    """

    operation: Operation
    cases: tuple[Axiom, ...]

    def __post_init__(self) -> None:
        if not self.cases:
            raise RepresentationError(
                f"{self.operation.name}: at least one case is required"
            )
        for case in self.cases:
            if case.head != self.operation:
                raise RepresentationError(
                    f"{self.operation.name}: case {case} is headed by "
                    f"{case.head.name}"
                )

    def rules(self) -> tuple[RewriteRule, ...]:
        return tuple(
            RewriteRule(case.lhs, case.rhs, case.label or f"def {self.operation.name}")
            for case in self.cases
        )

    def __str__(self) -> str:
        return "\n".join(f"{case.lhs} :: {case.rhs}" for case in self.cases)


class Representation:
    """Everything needed to state — and prove — that an implementation
    satisfies its abstract specification."""

    def __init__(
        self,
        abstract: Specification,
        concrete: Specification,
        rep_sort: Sort,
        defined: Sequence[DefinedOperation],
        phi: Operation,
        phi_axioms: Sequence[Axiom],
        generators: Sequence[str] = (),
    ) -> None:
        self.abstract = abstract
        self.concrete = concrete
        self.rep_sort = rep_sort
        self.defined: dict[str, DefinedOperation] = {}
        for definition in defined:
            base = _unprimed(definition.operation.name)
            if not abstract.full_signature().has_operation(base):
                raise RepresentationError(
                    f"defined operation {definition.operation.name} does not "
                    f"correspond to an abstract operation"
                )
            self.defined[base] = definition
        self.phi = phi
        if phi.domain != (rep_sort,) or phi.range != abstract.type_of_interest:
            raise RepresentationError(
                f"Φ must map {rep_sort} to {abstract.type_of_interest}, "
                f"got {phi}"
            )
        self.phi_axioms = tuple(phi_axioms)
        for name in generators:
            if name not in self.defined:
                raise RepresentationError(
                    f"generator {name!r} has no defined operation"
                )
        self.generators = tuple(generators)
        self._check_coverage()

    def _check_coverage(self) -> None:
        missing = [
            op.name
            for op in self.abstract.own_operations()
            if op.name not in self.defined
        ]
        if missing:
            raise RepresentationError(
                f"no defined operation for abstract operation(s): "
                f"{', '.join(missing)}"
            )

    # ------------------------------------------------------------------
    def defined_for(self, operation: Operation) -> DefinedOperation:
        try:
            return self.defined[operation.name]
        except KeyError:
            raise RepresentationError(
                f"no defined operation for {operation.name}"
            ) from None

    def rules(self) -> RuleSet:
        """The prover's rule set: the concrete level's axioms, the
        definitions of the primed operations, and the Φ equations.

        The *abstract* axioms are deliberately excluded — they are the
        proof obligations; including them would beg the question.
        """
        ruleset = RuleSet.from_specification(self.concrete)
        for definition in self.defined.values():
            for rule in definition.rules():
                ruleset.add(rule)
        for axiom in self.phi_axioms:
            ruleset.add(RewriteRule(axiom.lhs, axiom.rhs, axiom.label or "Φ"))
        return ruleset

    # ------------------------------------------------------------------
    def translate(self, term: Term, variable_map: Optional[dict[Var, Var]] = None) -> Term:
        """Replace abstract operations with their primed counterparts.

        Variables of the abstract type of interest become variables of
        the representation sort ("replace all instances of each function
        appearing in the axiomatization with its interpretation").
        """
        if variable_map is None:
            variable_map = {}
        return self._translate(term, variable_map)

    def _translate(self, term: Term, vmap: dict[Var, Var]) -> Term:
        toi = self.abstract.type_of_interest
        if isinstance(term, Var):
            if term.sort == toi:
                mapped = vmap.get(term)
                if mapped is None:
                    mapped = Var(term.name, self.rep_sort)
                    vmap[term] = mapped
                return mapped
            return term
        if isinstance(term, Lit):
            return term
        if isinstance(term, Err):
            return Err(self.rep_sort) if term.sort == toi else term
        if isinstance(term, Ite):
            return Ite(
                self._translate(term.cond, vmap),
                self._translate(term.then_branch, vmap),
                self._translate(term.else_branch, vmap),
            )
        assert isinstance(term, App)
        args = [self._translate(arg, vmap) for arg in term.args]
        definition = self.defined.get(term.op.name)
        if definition is not None:
            return App(definition.operation, args)
        return App(term.op, args)

    def wrap_phi(self, term: Term) -> Term:
        """``Φ(term)`` — applied to obligation sides of the rep sort."""
        return App(self.phi, (term,))

    def generator_definitions(self) -> tuple[DefinedOperation, ...]:
        return tuple(self.defined[name] for name in self.generators)

    def __str__(self) -> str:
        lines = [
            f"representation of {self.abstract.name} over {self.rep_sort}",
            "defined operations:",
        ]
        lines.extend(f"  {d}" for d in self.defined.values())
        lines.append("Φ equations:")
        lines.extend(f"  {a}" for a in self.phi_axioms)
        if self.generators:
            lines.append(f"generators: {', '.join(self.generators)}")
        return "\n".join(lines)


def _unprimed(name: str) -> str:
    """``INIT_P`` / ``INIT'`` → ``INIT``.

    Primed operation names use a ``_P`` suffix in code (``'`` is not an
    identifier character in the DSL); both spellings are accepted.
    """
    if name.endswith("'"):
        return name[:-1]
    if name.endswith("_P"):
        return name[:-2]
    # ``IS_INBLOCK?_P`` style: the suffix sits before a trailing '?'.
    if name.endswith("_P?"):
        return name[:-3] + "?"
    return name
