"""A small equational prover for representation proofs.

The proof method is the paper's: "by using the axiomatizations of the
operations used in constructing the representations, it is shown that
the left-hand side of each axiom is equivalent to the right-hand side".
Mechanically, the prover:

1. **simplifies** both sides by rewriting — the concrete axioms, the
   primed definitions and the Φ equations, with strict ``error``
   propagation and *conditional lifting* (``f(if c then a else b)``
   becomes ``if c then f(a) else f(b)``, sound because the condition
   selects which argument ``f`` actually receives);
2. when the sides still differ, **splits on a condition**: an undecided
   ``if`` condition is assumed ``true`` in one branch and ``false`` in
   the other (it is a closed term — all proof variables are skolem
   constants — so the added fact is exact);
3. when no condition helps, **splits a skolem constant by
   constructor**: a stack is ``NEWSTACK`` or ``PUSH(s, a)``; both cases
   are proved.  Cases contradicting an accumulated fact (e.g. Assumption
   1 rules out ``NEWSTACK``) are vacuous and skipped.

Every step is recorded in a transcript, so a failed proof shows the
residual equation and the case path that produced it — which for the
paper's Axiom 9 without Assumption 1 is precisely the unreachable-state
counterexample.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Optional, Sequence

from repro.algebra.matching import match_bindings
from repro.algebra.signature import Operation
from repro.algebra.sorts import Sort
from repro.algebra.substitution import apply_bindings
from repro.algebra.terms import App, Err, Ite, Lit, Term, Var, map_terms
from repro.spec.prelude import boolean_term, is_false, is_true
from repro.obs.trace import maybe_span
from repro.rewriting.engine import RewriteEngine, RewriteLimitError
from repro.rewriting.rules import RewriteRule, RuleSet
from repro.verify.skolem import fresh_constant, is_skolem


class ProverEngine(RewriteEngine):
    """The rewrite engine extended for symbolic proof work.

    Two extensions over the base engine's ``simplify``:

    * **conditional lifting** — ``f(if c then a else b)`` becomes
      ``if c then f(a) else f(b)``;
    * **guarded unfolding of recursive definitions** — a rule whose
      right-hand side mentions its own head symbol (``RETRIEVE'``) is
      only applied when its body's leading ``if`` condition decides
      under the current rules; unguarded unfolding of such definitions
      on open terms never terminates (``RETRIEVE'(POP(s))`` would beget
      ``RETRIEVE'(POP(POP(s)))`` forever).
    """

    def _is_recursive(self, rule: RewriteRule) -> bool:
        """True for rules that can unfold forever on open terms:
        recursive, *and* with nothing but bare variables on the left (so
        each unfold consumes no structure).  Rules that pattern-match a
        constructor (axiom 18's ``IS_UNDEFINED?(ASSIGN(...), idl)``)
        strictly shrink their argument and are safe to unfold freely."""
        cache = getattr(self, "_recursive_cache", None)
        if cache is None:
            cache = {}
            self._recursive_cache = cache
        key = id(rule)
        if key not in cache:
            assert isinstance(rule.lhs, App)
            consumes_structure = any(
                not isinstance(arg, Var) for arg in rule.lhs.args
            )
            cache[key] = (
                rule.head in rule.rhs.operations() and not consumes_structure
            )
        return cache[key]

    def _guard_decides(self, result: Term, budget: list[int]) -> bool:
        """After a speculative unfold, does the outermost condition
        settle?  Non-conditional bodies always count as progress."""
        if not isinstance(result, Ite):
            return True
        cond = self._simplify(result.cond, budget)
        return is_true(cond) or is_false(cond) or isinstance(cond, Err)

    def _root_step(self, term: App, budget: list[int]):
        builtin = term.op.builtin
        if builtin is not None and all(isinstance(a, Lit) for a in term.args):
            self.stats.builtin_firings += 1
            return self._run_builtin(term)
        for rule in self._candidates(term):
            result = rule.apply_at_root(term)
            if result is None:
                continue
            if self._is_recursive(rule) and not self._guard_decides(
                result, budget
            ):
                continue
            self.stats.record_firing(rule)
            return result
        return None

    def _match_root(self, term: App, budget: list[int]):
        """Value-mode hook: apply the same unfolding guard as
        :meth:`_root_step`, so ``normalize`` on open terms cannot unfold
        a recursive definition whose guard does not decide."""
        for rule in self._candidates(term):
            bindings = match_bindings(rule.lhs, term)
            if bindings is None:
                continue
            if self._is_recursive(rule) and not self._guard_decides(
                apply_bindings(rule.rhs, bindings), budget
            ):
                continue
            self.stats.record_firing(rule)
            return rule, bindings
        return None, None

    def _simplify(self, term: Term, budget: list[int]) -> Term:
        if isinstance(term, (Var, Lit, Err)):
            return term
        if isinstance(term, Ite):
            cond = self._simplify(term.cond, budget)
            if isinstance(cond, Err):
                self.stats.error_propagations += 1
                return Err(term.sort)
            if is_true(cond):
                return self._simplify(term.then_branch, budget)
            if is_false(cond):
                return self._simplify(term.else_branch, budget)
            then_branch = self._simplify(term.then_branch, budget)
            else_branch = self._simplify(term.else_branch, budget)
            if then_branch == else_branch:
                return then_branch
            if (
                cond is term.cond
                and then_branch is term.then_branch
                and else_branch is term.else_branch
            ):
                return term
            return Ite(cond, then_branch, else_branch)
        assert isinstance(term, App)
        args = [self._simplify(arg, budget) for arg in term.args]
        if any(isinstance(arg, Err) for arg in args):
            self.stats.error_propagations += 1
            return Err(term.sort)
        for index, arg in enumerate(args):
            if isinstance(arg, Ite):
                # Conditional lifting: distribute the application over
                # the branches and re-simplify each copy.
                self._spend(budget, term)
                then_args = list(args)
                then_args[index] = arg.then_branch
                else_args = list(args)
                else_args[index] = arg.else_branch
                return self._simplify(
                    Ite(
                        arg.cond,
                        App(term.op, then_args),
                        App(term.op, else_args),
                    ),
                    budget,
                )
        node = term if all(new is old for new, old in zip(args, term.args)) else App(term.op, args)
        step = self._root_step(node, budget)
        if step is None:
            return node
        self._spend(budget, node)
        return self._simplify(step, budget)


@dataclass(frozen=True)
class Fact:
    """An assumed truth value for a closed Boolean term."""

    condition: Term
    value: bool

    def as_rule(self) -> RewriteRule:
        if not isinstance(self.condition, App):
            raise ValueError(f"cannot assume a non-application: {self.condition}")
        return RewriteRule(
            self.condition, boolean_term(self.value), "assume"
        )

    def __str__(self) -> str:
        return f"{self.condition} = {str(self.value).lower()}"


@dataclass
class ProofStep:
    description: str
    depth: int

    def __str__(self) -> str:
        return "  " * self.depth + self.description


@dataclass
class ProofResult:
    proved: bool
    lhs: Term
    rhs: Term
    transcript: list[ProofStep] = field(default_factory=list)
    residual: Optional[tuple[Term, Term]] = None
    failing_facts: tuple[Fact, ...] = ()

    def __str__(self) -> str:
        verdict = "PROVED" if self.proved else "FAILED"
        lines = [f"{verdict}: {self.lhs} = {self.rhs}"]
        lines.extend(str(step) for step in self.transcript)
        if self.residual is not None:
            lines.append(f"residual: {self.residual[0]} = {self.residual[1]}")
        if self.failing_facts:
            facts = ", ".join(str(f) for f in self.failing_facts)
            lines.append(f"under: {facts}")
        return "\n".join(lines)


@dataclass(frozen=True)
class ConstructorCase:
    """One branch of a constructor split: the constant that was split
    and the case term it became."""

    constant: Term
    case_term: Term


def replace_constant(term: Term, constant: Term, replacement: Term) -> Term:
    """``term`` with every occurrence of the (nullary) ``constant``
    replaced by ``replacement``."""
    return map_terms(
        term, lambda node: replacement if node == constant else None
    )


class EquationalProver:
    """Proves closed equations under a rule set.

    Parameters
    ----------
    rules:
        Base rewrite rules (concrete axioms, definitions, Φ equations).
    constructors:
        Free constructors per sort, used for constructor splits on
        skolem constants (e.g. ``{Stack: (NEWSTACK, PUSH)}``).
    max_fact_splits / max_constructor_splits:
        Case-analysis budgets.
    fuel:
        Rewrite step budget per simplification.
    """

    def __init__(
        self,
        rules: RuleSet,
        constructors: Optional[dict[Sort, Sequence[Operation]]] = None,
        max_fact_splits: int = 16,
        max_constructor_splits: int = 4,
        fuel: int = 100_000,
    ) -> None:
        self.rules = rules
        self.constructors = {
            sort: tuple(ops) for sort, ops in (constructors or {}).items()
        }
        self.max_fact_splits = max_fact_splits
        self.max_constructor_splits = max_constructor_splits
        self.fuel = fuel

    # ------------------------------------------------------------------
    def prove(
        self,
        lhs: Term,
        rhs: Term,
        extra_rules: Iterable[RewriteRule] = (),
        facts: Iterable[Fact] = (),
    ) -> ProofResult:
        """Attempt to prove the closed equation ``lhs = rhs``."""
        result = ProofResult(False, lhs, rhs)
        base = RuleSet(list(self.rules) + list(extra_rules))
        with maybe_span(
            "prover.prove", lhs=str(lhs)[:80], rhs=str(rhs)[:80]
        ):
            proved = self._prove(
                lhs,
                rhs,
                base,
                list(facts),
                result,
                depth=0,
                fact_budget=self.max_fact_splits,
                constructor_budget=self.max_constructor_splits,
            )
        result.proved = proved
        return result

    # ------------------------------------------------------------------
    def _engine(self, base: RuleSet, facts: Sequence[Fact]) -> ProverEngine:
        rules = RuleSet(list(base))
        for fact in facts:
            rules.add(fact.as_rule())
        return ProverEngine(rules, fuel=self.fuel)

    def _prove(
        self,
        lhs: Term,
        rhs: Term,
        base: RuleSet,
        facts: list[Fact],
        result: ProofResult,
        depth: int,
        fact_budget: int,
        constructor_budget: int,
    ) -> bool:
        engine = self._engine(base, facts)
        try:
            left = engine.simplify(lhs)
            right = engine.simplify(rhs)
        except RewriteLimitError:
            result.transcript.append(
                ProofStep("simplification ran out of fuel", depth)
            )
            result.residual = (lhs, rhs)
            result.failing_facts = tuple(facts)
            return False
        if left == right:
            result.transcript.append(
                ProofStep(f"both sides simplify to {left}", depth)
            )
            return True

        condition = self._pick_condition(left) or self._pick_condition(right)
        if condition is not None and fact_budget > 0:
            result.transcript.append(
                ProofStep(f"case split on {condition}", depth)
            )
            for value in (True, False):
                result.transcript.append(
                    ProofStep(f"case {condition} = {str(value).lower()}:", depth)
                )
                if not self._prove(
                    left,
                    right,
                    base,
                    facts + [Fact(condition, value)],
                    result,
                    depth + 1,
                    fact_budget - 1,
                    constructor_budget,
                ):
                    return False
            return True

        constant = self._pick_splittable_constant(left, right, facts)
        if constant is not None and constructor_budget > 0:
            return self._constructor_split(
                constant,
                left,
                right,
                base,
                facts,
                result,
                depth,
                fact_budget,
                constructor_budget - 1,
            )

        result.transcript.append(
            ProofStep(f"stuck: {left} = {right}", depth)
        )
        result.residual = (left, right)
        result.failing_facts = tuple(facts)
        return False

    # ------------------------------------------------------------------
    def _pick_condition(self, term: Term) -> Optional[Term]:
        """An outermost undecided ``if`` condition, closed and splittable."""
        for _, node in sorted(term.subterms(), key=lambda pair: len(pair[0])):
            if isinstance(node, Ite):
                cond = node.cond
                if (
                    isinstance(cond, App)
                    and not cond.variables()
                    and not is_true(cond)
                    and not is_false(cond)
                ):
                    return cond
        return None

    def _pick_splittable_constant(
        self, left: Term, right: Term, facts: Sequence[Fact]
    ) -> Optional[Term]:
        """A skolem constant of a sort we know the constructors of."""
        for side in (left, right):
            for _, node in side.subterms():
                if is_skolem(node) and node.sort in self.constructors:
                    return node
        return None

    def _constructor_split(
        self,
        constant: Term,
        left: Term,
        right: Term,
        base: RuleSet,
        facts: list[Fact],
        result: ProofResult,
        depth: int,
        fact_budget: int,
        constructor_budget: int,
    ) -> bool:
        result.transcript.append(
            ProofStep(f"constructor split on {constant}", depth)
        )
        for constructor in self.constructors[constant.sort]:
            args = [
                fresh_constant(sort.name.lower(), sort)
                for sort in constructor.domain
            ]
            case_term = App(constructor, args)
            result.transcript.append(
                ProofStep(f"case {constant} = {case_term}:", depth)
            )
            case_left = replace_constant(left, constant, case_term)
            case_right = replace_constant(right, constant, case_term)
            case_facts: list[Fact] = []
            vacuous = False
            for fact in facts:
                cond = replace_constant(fact.condition, constant, case_term)
                simplified = self._engine(base, case_facts).simplify(cond)
                if is_true(simplified) or is_false(simplified):
                    if is_true(simplified) != fact.value:
                        vacuous = True
                        break
                    continue  # the fact became trivially true; drop it
                case_facts.append(Fact(cond, fact.value))
            if vacuous:
                result.transcript.append(
                    ProofStep("vacuous (contradicts an assumption)", depth + 1)
                )
                continue
            if not self._prove(
                case_left,
                case_right,
                base,
                case_facts,
                result,
                depth + 1,
                fact_budget,
                constructor_budget,
            ):
                return False
        return True
