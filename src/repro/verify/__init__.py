"""Verification of representations: obligations, equational proving,
generator induction, and ground model checking."""

from repro.verify.representation import (
    CaseDefinedOperation,
    DefinedOperation,
    Representation,
    RepresentationError,
)
from repro.verify.obligations import (
    Assumption,
    ProofObligation,
    derive_assumption_1,
    obligations_for,
)
from repro.verify.prover import (
    ConstructorCase,
    EquationalProver,
    Fact,
    ProofResult,
    ProofStep,
    ProverEngine,
    replace_constant,
)
from repro.verify.induction import (
    GeneratorInduction,
    InductionResult,
    Lemma,
    not_newstack_lemma,
)
from repro.verify.modelcheck import (
    Counterexample,
    ModelCheckReport,
    model_check,
    reachable_states,
)
from repro.verify.driver import (
    Mode,
    ObligationOutcome,
    VerificationReport,
    make_prover,
    verify_representation,
)
from repro.verify.skolem import fresh_constant, is_skolem, skolemize, skolemize_pair
from repro.verify.client import (
    Assertion,
    ClientProgram,
    ClientProgramError,
    ClientVerificationReport,
    parse_client_program,
    verify_client,
)

__all__ = [
    "CaseDefinedOperation",
    "DefinedOperation",
    "Representation",
    "RepresentationError",
    "Assumption",
    "ProofObligation",
    "derive_assumption_1",
    "obligations_for",
    "ConstructorCase",
    "EquationalProver",
    "Fact",
    "ProofResult",
    "ProofStep",
    "ProverEngine",
    "replace_constant",
    "GeneratorInduction",
    "InductionResult",
    "Lemma",
    "not_newstack_lemma",
    "Counterexample",
    "ModelCheckReport",
    "model_check",
    "reachable_states",
    "Mode",
    "ObligationOutcome",
    "VerificationReport",
    "make_prover",
    "verify_representation",
    "fresh_constant",
    "is_skolem",
    "skolemize",
    "skolemize_pair",
    "Assertion",
    "ClientProgram",
    "ClientProgramError",
    "ClientVerificationReport",
    "parse_client_program",
    "verify_client",
]
