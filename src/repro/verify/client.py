"""Verification of client programs against algebraic specifications.

Section 5: "For verifications of programs that use abstract types, the
algebraic specification of the types used provides a set of powerful
rules of inference ... a technique for factoring the proof is provided."

A *client program* is a straight-line sequence of let-bindings over the
operations of one or more specifications, with input variables, followed
by assertions (equations between program expressions).  Verification is
the paper's factoring, executed:

1. symbolically evaluate the program — every binding becomes a term over
   the inputs;
2. discharge each assertion with the equational prover, using *only* the
   specifications' axioms as rules of inference.

No implementation is consulted anywhere: a proof here holds for every
correct implementation of the types ("provided that the implementations
of the abstract operations that it uses are consistent with their
specifications").

Programs can be built with the Python API or parsed from a small text
form::

    input i: Item
    input j: Item
    let q  := ADD(ADD(NEW, i), j)
    let f  := FRONT(q)
    let r  := REMOVE(q)
    assert f = i
    assert FRONT(r) = j
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.algebra.sorts import Sort
from repro.algebra.substitution import Substitution
from repro.algebra.terms import Term, Var
from repro.spec.lexer import TokenKind, tokenize
from repro.spec.parser import ParseError, _Parser
from repro.spec.specification import Specification
from repro.rewriting.rules import RuleSet
from repro.verify.prover import EquationalProver, ProofResult
from repro.verify.skolem import skolemize_pair


class ClientProgramError(Exception):
    """Raised for malformed client programs."""


@dataclass(frozen=True)
class Assertion:
    """One equation the program claims about its bindings."""

    lhs: Term
    rhs: Term
    label: str = ""

    def __str__(self) -> str:
        prefix = f"[{self.label}] " if self.label else ""
        return f"{prefix}{self.lhs} = {self.rhs}"


class ClientProgram:
    """A straight-line program over abstract operations.

    Build programmatically::

        program = ClientProgram(QUEUE_SPEC)
        i = program.input("i", ITEM)
        q = program.let("q", app(ADD, app(NEW), i))
        program.assert_equal(app(FRONT, q), i)
    """

    def __init__(self, *specs: Specification) -> None:
        if not specs:
            raise ClientProgramError("a client program needs at least one spec")
        self.specs = specs
        self._inputs: dict[str, Var] = {}
        self._bindings: dict[str, Term] = {}
        self._order: list[str] = []
        self.assertions: list[Assertion] = []

    # ------------------------------------------------------------------
    def input(self, name: str, sort: Sort) -> Var:
        """Declare an input variable (universally quantified)."""
        if name in self._inputs or name in self._bindings:
            raise ClientProgramError(f"{name!r} is already defined")
        variable = Var(name, sort)
        self._inputs[name] = variable
        return variable

    def let(self, name: str, term: Term) -> Term:
        """Bind ``name`` to ``term``; returns the *expanded* term (all
        earlier bindings substituted), which is what later expressions
        should reference."""
        if name in self._inputs or name in self._bindings:
            raise ClientProgramError(f"{name!r} is already defined")
        expanded = self._expand(term)
        self._bindings[name] = expanded
        self._order.append(name)
        return expanded

    def assert_equal(self, lhs: Term, rhs: Term, label: str = "") -> None:
        left = self._expand(lhs)
        right = self._expand(rhs)
        if left.sort != right.sort:
            raise ClientProgramError(
                f"assertion sides have different sorts: {left.sort} vs "
                f"{right.sort}"
            )
        self.assertions.append(Assertion(left, right, label))

    def _expand(self, term: Term) -> Term:
        """Replace references to bound names (as variables) with their
        definitions."""
        mapping = {
            Var(name, value.sort): value
            for name, value in self._bindings.items()
        }
        return Substitution(mapping).apply(term)

    # ------------------------------------------------------------------
    @property
    def inputs(self) -> tuple[Var, ...]:
        return tuple(self._inputs.values())

    def binding(self, name: str) -> Term:
        try:
            return self._bindings[name]
        except KeyError:
            raise ClientProgramError(f"no binding {name!r}") from None

    def rules(self) -> RuleSet:
        merged: list = []
        seen: set[tuple] = set()
        for spec in self.specs:
            for axiom in spec.all_axioms():
                key = (axiom.lhs, axiom.rhs)
                if key not in seen:
                    seen.add(key)
                    merged.append(axiom)
        return RuleSet.from_axioms(merged)

    def __str__(self) -> str:
        lines = [
            f"input {v.name}: {v.sort}" for v in self._inputs.values()
        ]
        lines.extend(
            f"let {name} := {self._bindings[name]}" for name in self._order
        )
        lines.extend(f"assert {a}" for a in self.assertions)
        return "\n".join(lines)


@dataclass
class ClientVerificationReport:
    program: ClientProgram
    outcomes: list[tuple[Assertion, ProofResult]] = field(default_factory=list)

    @property
    def all_proved(self) -> bool:
        return all(result.proved for _, result in self.outcomes)

    @property
    def failures(self) -> list[Assertion]:
        return [a for a, result in self.outcomes if not result.proved]

    def __str__(self) -> str:
        lines = []
        for assertion, result in self.outcomes:
            verdict = "proved" if result.proved else "NOT PROVED"
            lines.append(f"assert {assertion}: {verdict}")
        return "\n".join(lines)


def verify_client(
    program: ClientProgram,
    fuel: int = 100_000,
    max_fact_splits: int = 16,
) -> ClientVerificationReport:
    """Discharge every assertion of ``program`` from the axioms alone."""
    prover = EquationalProver(
        program.rules(),
        max_fact_splits=max_fact_splits,
        fuel=fuel,
    )
    report = ClientVerificationReport(program)
    for assertion in program.assertions:
        lhs, rhs, _ = skolemize_pair(assertion.lhs, assertion.rhs)
        report.outcomes.append((assertion, prover.prove(lhs, rhs)))
    return report


# ----------------------------------------------------------------------
# The text form
# ----------------------------------------------------------------------
def parse_client_program(
    source: str, *specs: Specification
) -> ClientProgram:
    """Parse the ``input/let/assert`` text form against ``specs``."""
    program = ClientProgram(*specs)
    operations = {}
    sorts = {}
    for spec in specs:
        for op in spec.full_signature().operations:
            operations[op.name] = op
        for sort in spec.full_signature().sorts:
            sorts[str(sort)] = sort

    parser = _Parser(tokenize(source), {})
    scope: dict[str, Var] = {}

    def next_keyword() -> Optional[str]:
        token = parser._peek()
        if token.kind is TokenKind.EOF:
            return None
        if token.kind is not TokenKind.IDENT or token.text not in (
            "input",
            "let",
            "assert",
        ):
            raise ParseError(
                f"expected input/let/assert, found {token}"
            )
        return token.text

    while True:
        keyword = next_keyword()
        if keyword is None:
            break
        parser._next()
        if keyword == "input":
            name = parser._expect(TokenKind.IDENT, "input name").text
            parser._expect(TokenKind.COLON, "':'")
            sort_name = parser._expect(TokenKind.IDENT, "sort").text
            sort = sorts.get(sort_name)
            if sort is None:
                raise ParseError(f"unknown sort {sort_name!r}")
            scope[name] = program.input(name, sort)
        elif keyword == "let":
            name = parser._expect(TokenKind.IDENT, "binding name").text
            colon = parser._next()
            equals = parser._next()
            if colon.kind is not TokenKind.COLON or equals.kind is not TokenKind.EQUALS:
                raise ParseError(f"expected ':=' after let {name}")
            term = parser._parse_term(operations, scope, expected=None)
            bound = program.let(name, term)
            scope[name] = Var(name, bound.sort)
        else:  # assert
            lhs = parser._parse_term(operations, scope, expected=None)
            parser._expect(TokenKind.EQUALS, "'='")
            rhs = parser._parse_term(operations, scope, expected=lhs.sort)
            program.assert_equal(lhs, rhs)
    return program
