"""Many-sorted syntactic unification.

Unification finds a substitution σ with ``σ(s) == σ(t)``; unlike
matching, variables on both sides may be bound.  It is needed to compute
*critical pairs* between axioms, which drive the consistency analysis:
two axioms whose left-hand sides overlap may rewrite one term two ways,
and the results must be joinable for the specification to be consistent.

The algorithm is Robinson's, with an occurs check and the sort
discipline that a variable may only be bound to a term of its sort.
"""

from __future__ import annotations

import itertools
from typing import Optional

from repro.algebra.terms import App, Err, Ite, Lit, Term, Var
from repro.algebra.substitution import Substitution


class UnificationError(Exception):
    """Raised internally when two terms cannot be unified."""


def unify(left: Term, right: Term) -> Optional[Substitution]:
    """The most general unifier of ``left`` and ``right``, or ``None``."""
    try:
        bindings = _solve([(left, right)], {})
    except UnificationError:
        return None
    return Substitution(bindings)


def _solve(
    problems: list[tuple[Term, Term]], bindings: dict[Var, Term]
) -> dict[Var, Term]:
    while problems:
        left, right = problems.pop()
        left = _walk(left, bindings)
        right = _walk(right, bindings)
        if left == right:
            continue
        if isinstance(left, Var):
            _bind(left, right, bindings)
        elif isinstance(right, Var):
            _bind(right, left, bindings)
        elif isinstance(left, App) and isinstance(right, App):
            if left.op != right.op:
                raise UnificationError(f"{left.op.name} != {right.op.name}")
            problems.extend(zip(left.args, right.args))
        elif isinstance(left, Ite) and isinstance(right, Ite):
            problems.extend(zip(left.children(), right.children()))
        elif isinstance(left, (Lit, Err)) or isinstance(right, (Lit, Err)):
            raise UnificationError(f"{left} != {right}")
        else:
            raise UnificationError(f"{left} != {right}")
    # Fully resolve bindings so the result is idempotent.
    return {v: _resolve(t, bindings) for v, t in bindings.items()}


def _walk(term: Term, bindings: dict[Var, Term]) -> Term:
    while isinstance(term, Var) and term in bindings:
        term = bindings[term]
    return term


def _bind(variable: Var, term: Term, bindings: dict[Var, Term]) -> None:
    if variable.sort != term.sort:
        raise UnificationError(
            f"sort clash binding {variable}: {variable.sort} vs {term.sort}"
        )
    if _occurs(variable, term, bindings):
        raise UnificationError(f"occurs check: {variable} in {term}")
    bindings[variable] = term


def _occurs(variable: Var, term: Term, bindings: dict[Var, Term]) -> bool:
    term = _walk(term, bindings)
    if term == variable:
        return True
    if term.is_ground():
        # A ground subtree contains no variables at all.
        return False
    return any(_occurs(variable, kid, bindings) for kid in term.children())


def _resolve(term: Term, bindings: dict[Var, Term]) -> Term:
    term = _walk(term, bindings)
    if term.is_ground():
        return term
    kids = term.children()
    if not kids:
        return term
    new_kids = [_resolve(kid, bindings) for kid in kids]
    if all(new is old for new, old in zip(new_kids, kids)):
        return term
    return term.with_children(new_kids)


_FRESH_COUNTER = itertools.count()


def rename_apart(term: Term, taken: set[Var]) -> tuple[Term, Substitution]:
    """Rename the variables of ``term`` away from ``taken``.

    Returns the renamed term and the renaming used.  Needed before
    computing critical pairs, where the two axioms' variables must be
    disjoint.
    """
    renaming: dict[Var, Term] = {}
    for variable in sorted(term.variables(), key=lambda v: v.name):
        if variable in taken:
            fresh = variable
            while fresh in taken or fresh in renaming:
                fresh = Var(f"{variable.name}#{next(_FRESH_COUNTER)}", variable.sort)
            renaming[variable] = fresh
    sigma = Substitution(renaming)
    return sigma.apply(term), sigma
