"""Operations and signatures for many-sorted algebras.

The *syntactic specification* of an abstract type (Guttag, section 2)
"provides the syntactic information that many programming languages
already require: the names, domains, and ranges of the operations
associated with the type".  A :class:`Signature` is exactly that: a set
of sorts and a set of :class:`Operation` symbols with their arities.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterable, Iterator, Mapping, Optional, Sequence

from repro.algebra.sorts import Sort, SortError

#: Optional Python-level evaluator attached to an operation.  The rewrite
#: engine calls it when every argument is a literal; it must return a
#: Python value of the operation's range sort (or raise
#: :class:`~repro.spec.errors.AlgebraError` to denote the distinguished
#: ``error`` result).  Used for "imported" operations such as ``ISSAME?``
#: on Identifiers and ``HASH``.
BuiltinFn = Callable[..., object]


@dataclass(frozen=True)
class Operation:
    """An operation symbol ``name: domain -> range``.

    Examples from the paper::

        NEW:        -> Queue          Operation("NEW", (), QUEUE)
        ADD:  Queue x Item -> Queue   Operation("ADD", (QUEUE, ITEM), QUEUE)
        FRONT:     Queue -> Item      Operation("FRONT", (QUEUE,), ITEM)

    ``builtin`` attaches a Python evaluator for operations whose meaning
    is imported from outside the algebra (identifier equality, hashing).
    It is excluded from equality/hash so that structurally identical
    declarations compare equal.
    """

    name: str
    domain: tuple[Sort, ...]
    range: Sort
    builtin: Optional[BuiltinFn] = field(default=None, compare=False)

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("operation name must be non-empty")
        # Operations are hashed on every term-interning probe; the
        # dataclass-generated hash rebuilds a field tuple per call, so
        # compute it once.  (``builtin`` is excluded, matching equality.)
        object.__setattr__(
            self, "_hash", hash((self.name, self.domain, self.range))
        )

    def __hash__(self) -> int:
        return self._hash  # type: ignore[attr-defined]

    @property
    def arity(self) -> int:
        return len(self.domain)

    @property
    def is_constant(self) -> bool:
        """True for nullary operations such as ``NEW`` or ``EMPTY``."""
        return not self.domain

    def __str__(self) -> str:
        if self.domain:
            dom = " x ".join(str(s) for s in self.domain)
            return f"{self.name}: {dom} -> {self.range}"
        return f"{self.name}: -> {self.range}"

    def instantiate(self, binding: Mapping[Sort, Sort]) -> "Operation":
        """Instantiate parameter sorts (for type schemas)."""
        bind = dict(binding)
        return Operation(
            self.name,
            tuple(s.instantiate(bind) for s in self.domain),
            self.range.instantiate(bind),
            self.builtin,
        )


class SignatureError(Exception):
    """Raised on malformed signatures (duplicate or unknown symbols)."""


class Signature:
    """A many-sorted signature: sorts plus operation symbols.

    The signature is the "syntactic specification" half of an algebraic
    type definition.  Operation names are unique within a signature (the
    paper never overloads names and unique names keep the text DSL and
    error messages unambiguous).
    """

    def __init__(
        self,
        sorts: Iterable[Sort] = (),
        operations: Iterable[Operation] = (),
    ) -> None:
        self._sorts: dict[str, Sort] = {}
        self._operations: dict[str, Operation] = {}
        for sort in sorts:
            self.add_sort(sort)
        for operation in operations:
            self.add_operation(operation)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add_sort(self, sort: Sort) -> Sort:
        """Add ``sort`` to the signature (idempotent)."""
        existing = self._sorts.get(str(sort))
        if existing is not None and existing != sort:
            raise SignatureError(f"conflicting declarations for sort {sort}")
        self._sorts[str(sort)] = sort
        return sort

    def add_operation(self, operation: Operation) -> Operation:
        """Add ``operation``; its sorts must already be declared."""
        if operation.name in self._operations:
            existing = self._operations[operation.name]
            if existing == operation:
                return existing
            raise SignatureError(
                f"operation {operation.name!r} declared twice with different "
                f"profiles: {existing} vs {operation}"
            )
        for sort in (*operation.domain, operation.range):
            if str(sort) not in self._sorts:
                raise SignatureError(
                    f"operation {operation} uses undeclared sort {sort}"
                )
        self._operations[operation.name] = operation
        return operation

    def merged(self, other: "Signature") -> "Signature":
        """A new signature containing this one plus ``other``.

        Shared names must agree exactly.  Merging is how specification
        *levels* combine (e.g. Symboltable's signature merged with the
        Stack and Array signatures it is represented with).
        """
        result = Signature(self.sorts, self.operations)
        for sort in other.sorts:
            result.add_sort(sort)
        for operation in other.operations:
            result.add_operation(operation)
        return result

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    @property
    def sorts(self) -> tuple[Sort, ...]:
        return tuple(self._sorts.values())

    @property
    def operations(self) -> tuple[Operation, ...]:
        return tuple(self._operations.values())

    def sort(self, name: str) -> Sort:
        try:
            return self._sorts[name]
        except KeyError:
            raise SortError(f"unknown sort {name!r}") from None

    def has_sort(self, name: str) -> bool:
        return name in self._sorts

    def operation(self, name: str) -> Operation:
        try:
            return self._operations[name]
        except KeyError:
            raise SignatureError(f"unknown operation {name!r}") from None

    def has_operation(self, name: str) -> bool:
        return name in self._operations

    def operations_with_range(self, sort: Sort) -> tuple[Operation, ...]:
        """All operations whose range is ``sort``.

        These are the candidates for generating values of ``sort``; the
        sufficient-completeness analysis narrows them down to the actual
        constructor set.
        """
        return tuple(op for op in self._operations.values() if op.range == sort)

    def operations_using(self, sort: Sort) -> tuple[Operation, ...]:
        """All operations mentioning ``sort`` in domain or range."""
        return tuple(
            op
            for op in self._operations.values()
            if op.range == sort or sort in op.domain
        )

    # ------------------------------------------------------------------
    # Dunder conveniences
    # ------------------------------------------------------------------
    def __contains__(self, name: str) -> bool:
        return name in self._operations

    def __iter__(self) -> Iterator[Operation]:
        return iter(self._operations.values())

    def __len__(self) -> int:
        return len(self._operations)

    def __str__(self) -> str:
        lines = [f"sorts: {', '.join(sorted(self._sorts))}"]
        lines.extend(str(op) for op in self._operations.values())
        return "\n".join(lines)

    def __repr__(self) -> str:
        return (
            f"Signature(sorts={len(self._sorts)}, "
            f"operations={len(self._operations)})"
        )


def make_signature(
    sort_names: Sequence[str],
    profiles: Mapping[str, tuple[Sequence[str], str]],
) -> Signature:
    """Build a signature from plain strings.

    ``profiles`` maps an operation name to ``(domain_sort_names,
    range_sort_name)``.  Convenience used heavily by tests::

        sig = make_signature(
            ["Queue", "Item", "Boolean"],
            {"NEW": ([], "Queue"), "ADD": (["Queue", "Item"], "Queue")},
        )
    """
    sig = Signature()
    for name in sort_names:
        sig.add_sort(Sort(name))
    for op_name, (domain, range_name) in profiles.items():
        sig.add_operation(
            Operation(
                op_name,
                tuple(sig.sort(d) for d in domain),
                sig.sort(range_name),
            )
        )
    return sig
