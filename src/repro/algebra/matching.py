"""One-way matching of patterns against terms.

Matching finds a substitution σ with ``σ(pattern) == subject``.  It is
the workhorse of rewriting: an axiom's left-hand side is a pattern, and
a rewrite step fires wherever it matches.

Patterns are ordinary terms; variables in the pattern may be bound,
everything in the subject is treated as fixed (subject variables only
match themselves).  ``Ite`` nodes may appear in either side and match
structurally — axiom left-hand sides in the paper never contain
if-then-else, but the prover matches inside right-hand sides too.
"""

from __future__ import annotations

from typing import Iterator, Optional

from repro.algebra.terms import App, Err, Ite, Lit, Position, Term, Var
from repro.algebra.substitution import Substitution


def match(pattern: Term, subject: Term) -> Optional[Substitution]:
    """The most general substitution σ with ``σ(pattern) == subject``,
    or ``None`` when no such substitution exists."""
    bindings = match_bindings(pattern, subject)
    if bindings is None:
        return None
    # The Var case binds only sort-identical subjects, so the bindings
    # already satisfy Substitution's sort discipline.
    return Substitution._trusted(bindings)


def match_bindings(pattern: Term, subject: Term) -> Optional[dict[Var, Term]]:
    """Like :func:`match` but returns the raw binding dict — the rewrite
    engine's hot path, which skips the :class:`Substitution` wrapper."""
    bindings: dict[Var, Term] = {}
    if _match_into(pattern, subject, bindings):
        return bindings
    return None


def _match_into(pattern: Term, subject: Term, bindings: dict[Var, Term]) -> bool:
    if pattern._ground:
        # A ground pattern binds nothing: it matches exactly itself.
        # With hash-consed terms this equality is usually an identity
        # test, so whole ground subtrees are skipped in O(1).
        return pattern == subject
    if isinstance(pattern, Var):
        if pattern.sort != subject.sort:
            return False
        bound = bindings.get(pattern)
        if bound is None:
            bindings[pattern] = subject
            return True
        return bound == subject
    if isinstance(pattern, Lit) or isinstance(pattern, Err):
        return pattern == subject
    if isinstance(pattern, App):
        if not isinstance(subject, App):
            return False
        if pattern.op is not subject.op and pattern.op != subject.op:
            return False
        for p, s in zip(pattern.args, subject.args):
            if not _match_into(p, s, bindings):
                return False
        return True
    if isinstance(pattern, Ite):
        if not isinstance(subject, Ite):
            return False
        for p, s in zip(pattern.children(), subject.children()):
            if not _match_into(p, s, bindings):
                return False
        return True
    raise TypeError(f"unknown term node: {pattern!r}")


def matches(pattern: Term, subject: Term) -> bool:
    """True when ``pattern`` matches ``subject``."""
    return match(pattern, subject) is not None


def find_matches(
    pattern: Term, subject: Term
) -> Iterator[tuple[Position, Substitution]]:
    """Yield every ``(position, substitution)`` at which ``pattern``
    matches a subterm of ``subject``, in preorder."""
    for position, node in subject.subterms():
        sigma = match(pattern, node)
        if sigma is not None:
            yield position, sigma


def is_instance_of(general: Term, specific: Term) -> bool:
    """True when ``specific`` is a substitution instance of ``general``.

    Unlike :func:`matches`, variables in ``specific`` are allowed: they
    are treated as opaque constants, so ``ADD(q, i)`` is an instance of
    the more general pattern ``ADD(q', i')`` but not vice versa unless
    both are renamings of each other.
    """
    return match(general, specific) is not None


def variant_of(left: Term, right: Term) -> bool:
    """True when the two terms are equal up to renaming of variables."""
    return is_instance_of(left, right) and is_instance_of(right, left)
