"""Terms over a many-sorted signature.

A term is one of:

* :class:`Var` — a typed free variable, like the ``q`` and ``i`` in the
  paper's Queue axioms;
* :class:`App` — an operation applied to argument terms, e.g.
  ``ADD(q, i)``;
* :class:`Lit` — a literal value imported from outside the algebra
  (identifier names, naturals, item payloads).  Literals let the
  parameter types of a schema (``Item``, ``Identifier``) have concrete
  inhabitants without axiomatising them;
* :class:`Err` — the paper's distinguished ``error`` value, one per sort,
  with the property that "the value of any operation applied to an
  argument list containing error is error";
* :class:`Ite` — the ``if-then-else`` construct used on axiom right-hand
  sides.  It is a polymorphic term former, not an operation of the
  signature, exactly as in the paper where it appears only in the
  metalanguage of axioms.

Terms are immutable and hashable; equality is structural.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterator, Optional, Sequence, Union

from repro.algebra.signature import Operation
from repro.algebra.sorts import BOOLEAN, Sort, SortError

#: A position in a term: the path of argument indices from the root.
#: ``()`` is the root; ``(0, 2)`` is the third argument of the first
#: argument.  For :class:`Ite`, index 0 is the condition, 1 the then
#: branch and 2 the else branch.
Position = tuple[int, ...]


class Term:
    """Abstract base for all term node classes."""

    __slots__ = ()

    #: The sort of the value this term denotes.
    sort: Sort

    # -- structure -----------------------------------------------------
    def children(self) -> tuple["Term", ...]:
        """Immediate subterms, in position order."""
        raise NotImplementedError

    def with_children(self, children: Sequence["Term"]) -> "Term":
        """A copy of this node with ``children`` as immediate subterms."""
        raise NotImplementedError

    # -- queries ---------------------------------------------------------
    def is_ground(self) -> bool:
        """True when the term contains no variables."""
        stack: list[Term] = [self]
        while stack:
            node = stack.pop()
            if isinstance(node, Var):
                return False
            stack.extend(node.children())
        return True

    def variables(self) -> set["Var"]:
        """The set of variables occurring in the term."""
        result: set[Var] = set()
        stack: list[Term] = [self]
        while stack:
            node = stack.pop()
            if isinstance(node, Var):
                result.add(node)
            else:
                stack.extend(node.children())
        return result

    def size(self) -> int:
        """Number of nodes in the term."""
        return sum(1 for _ in self.subterms())

    def depth(self) -> int:
        """Height of the term: a leaf has depth 1."""
        deepest = 1
        stack: list[tuple[Term, int]] = [(self, 1)]
        while stack:
            node, level = stack.pop()
            if level > deepest:
                deepest = level
            for child in node.children():
                stack.append((child, level + 1))
        return deepest

    def subterms(self) -> Iterator[tuple[Position, "Term"]]:
        """Yield every ``(position, subterm)`` pair, preorder."""
        stack: list[tuple[Position, Term]] = [((), self)]
        while stack:
            pos, node = stack.pop()
            yield pos, node
            for i, child in enumerate(node.children()):
                stack.append((pos + (i,), child))

    def at(self, position: Position) -> "Term":
        """The subterm at ``position``."""
        node: Term = self
        for index in position:
            kids = node.children()
            if index >= len(kids):
                raise IndexError(f"no position {position} in {self}")
            node = kids[index]
        return node

    def replace_at(self, position: Position, replacement: "Term") -> "Term":
        """A copy of this term with ``replacement`` grafted at ``position``."""
        if not position:
            return replacement
        head, *rest = position
        kids = list(self.children())
        if head >= len(kids):
            raise IndexError(f"no position {position} in {self}")
        kids[head] = kids[head].replace_at(tuple(rest), replacement)
        return self.with_children(kids)

    def operations(self) -> set[Operation]:
        """All operation symbols occurring in the term."""
        result: set[Operation] = set()
        stack: list[Term] = [self]
        while stack:
            node = stack.pop()
            if isinstance(node, App):
                result.add(node.op)
            stack.extend(node.children())
        return result

    def contains_error(self) -> bool:
        """True when an :class:`Err` node occurs anywhere in the term."""
        return any(isinstance(node, Err) for _, node in self.subterms())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}({self})"


@dataclass(frozen=True, repr=False)
class Var(Term):
    """A typed free variable, e.g. ``symtab: Symboltable``."""

    name: str
    sort: Sort

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("variable name must be non-empty")

    def children(self) -> tuple[Term, ...]:
        return ()

    def with_children(self, children: Sequence[Term]) -> Term:
        if children:
            raise ValueError("variables have no children")
        return self

    def is_ground(self) -> bool:
        return False

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True, repr=False)
class Lit(Term):
    """A literal value of a parameter sort (Identifier names, Nats, ...).

    ``value`` must be hashable; two literals are equal when both value
    and sort agree.
    """

    value: object
    sort: Sort

    def children(self) -> tuple[Term, ...]:
        return ()

    def with_children(self, children: Sequence[Term]) -> Term:
        if children:
            raise ValueError("literals have no children")
        return self

    def __str__(self) -> str:
        return repr(self.value) if isinstance(self.value, str) else str(self.value)


@dataclass(frozen=True, repr=False)
class Err(Term):
    """The distinguished ``error`` value of a sort.

    The paper introduces a single polymorphic ``error``; in a many-sorted
    setting it is one error constant per sort, all printed ``error``.
    """

    sort: Sort

    def children(self) -> tuple[Term, ...]:
        return ()

    def with_children(self, children: Sequence[Term]) -> Term:
        if children:
            raise ValueError("error constants have no children")
        return self

    def __str__(self) -> str:
        return "error"


class App(Term):
    """An operation applied to arguments: ``op(args...)``.

    Argument sorts are checked against the operation's domain at
    construction time, so ill-sorted terms cannot be built.  ``App`` is a
    hand-written class (rather than a dataclass) so the hash can be
    computed once: rewriting hammers on term equality and hashing.
    """

    __slots__ = ("op", "args", "sort", "_hash")

    def __init__(self, op: Operation, args: Sequence[Term] = ()) -> None:
        args = tuple(args)
        if len(args) != op.arity:
            raise SortError(
                f"{op.name} expects {op.arity} argument(s), got {len(args)}"
            )
        for expected, arg in zip(op.domain, args):
            if arg.sort != expected:
                raise SortError(
                    f"{op.name}: argument {arg} has sort {arg.sort}, "
                    f"expected {expected}"
                )
        self.op = op
        self.args = args
        self.sort = op.range
        self._hash = hash((op.name, op.range, args))

    def children(self) -> tuple[Term, ...]:
        return self.args

    def with_children(self, children: Sequence[Term]) -> Term:
        return App(self.op, tuple(children))

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, App)
            and self._hash == other._hash
            and self.op == other.op
            and self.args == other.args
        )

    def __hash__(self) -> int:
        return self._hash

    def __str__(self) -> str:
        if not self.args:
            return self.op.name
        inner = ", ".join(str(a) for a in self.args)
        return f"{self.op.name}({inner})"


class Ite(Term):
    """``if cond then then_branch else else_branch``.

    The condition must have sort Boolean and the branches must share a
    sort, which becomes the sort of the whole term.
    """

    __slots__ = ("cond", "then_branch", "else_branch", "sort", "_hash")

    def __init__(self, cond: Term, then_branch: Term, else_branch: Term) -> None:
        if cond.sort != BOOLEAN:
            raise SortError(f"if-condition must be Boolean, got {cond.sort}")
        if then_branch.sort != else_branch.sort:
            raise SortError(
                "if-branches must share a sort: "
                f"{then_branch.sort} vs {else_branch.sort}"
            )
        self.cond = cond
        self.then_branch = then_branch
        self.else_branch = else_branch
        self.sort = then_branch.sort
        self._hash = hash(("__ite__", cond, then_branch, else_branch))

    def children(self) -> tuple[Term, ...]:
        return (self.cond, self.then_branch, self.else_branch)

    def with_children(self, children: Sequence[Term]) -> Term:
        cond, then_branch, else_branch = children
        return Ite(cond, then_branch, else_branch)

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Ite)
            and self._hash == other._hash
            and self.cond == other.cond
            and self.then_branch == other.then_branch
            and self.else_branch == other.else_branch
        )

    def __hash__(self) -> int:
        return self._hash

    def __str__(self) -> str:
        return (
            f"if {self.cond} then {self.then_branch} else {self.else_branch}"
        )


# ----------------------------------------------------------------------
# Construction helpers
# ----------------------------------------------------------------------
def app(op: Operation, *args: Term) -> App:
    """``app(ADD, q, i)`` reads better than ``App(ADD, (q, i))``."""
    return App(op, args)


def var(name: str, sort: Sort) -> Var:
    return Var(name, sort)


def lit(value: object, sort: Sort) -> Lit:
    return Lit(value, sort)


def err(sort: Sort) -> Err:
    return Err(sort)


def ite(cond: Term, then_branch: Term, else_branch: Term) -> Ite:
    return Ite(cond, then_branch, else_branch)


def constructor_only(term: Term, constructors: set[Operation]) -> bool:
    """True when every operation in ``term`` is drawn from ``constructors``.

    Sufficient-completeness asks that terms of the type of interest reduce
    to constructor-only form; terms of other sorts must reduce to terms
    free of type-of-interest operations entirely.
    """
    return all(
        node.op in constructors
        for _, node in term.subterms()
        if isinstance(node, App)
    )


def map_terms(term: Term, fn: Callable[[Term], Optional[Term]]) -> Term:
    """Rebuild ``term`` bottom-up, replacing nodes where ``fn`` returns
    a term and keeping them where it returns ``None``."""
    kids = term.children()
    if kids:
        rebuilt = term.with_children([map_terms(kid, fn) for kid in kids])
    else:
        rebuilt = term
    replacement = fn(rebuilt)
    return rebuilt if replacement is None else replacement


TermLike = Union[Term]
