"""Terms over a many-sorted signature.

A term is one of:

* :class:`Var` — a typed free variable, like the ``q`` and ``i`` in the
  paper's Queue axioms;
* :class:`App` — an operation applied to argument terms, e.g.
  ``ADD(q, i)``;
* :class:`Lit` — a literal value imported from outside the algebra
  (identifier names, naturals, item payloads).  Literals let the
  parameter types of a schema (``Item``, ``Identifier``) have concrete
  inhabitants without axiomatising them;
* :class:`Err` — the paper's distinguished ``error`` value, one per sort,
  with the property that "the value of any operation applied to an
  argument list containing error is error";
* :class:`Ite` — the ``if-then-else`` construct used on axiom right-hand
  sides.  It is a polymorphic term former, not an operation of the
  signature, exactly as in the paper where it appears only in the
  metalanguage of axioms.

Terms are immutable and hashable; equality is structural.

Hash consing
------------

Term nodes are *interned*: construction goes through a per-process
weak-value table keyed on the node's structural identity, so two
structurally equal terms built anywhere in the process are the **same
object**.  Consequences the rest of the system relies on:

* equality is identity-first (``a is b`` decides almost every
  comparison the rewrite engine makes — the structural fallback only
  runs for terms built while interning was disabled);
* ``hash``, ``size``, ``depth``, ``is_ground`` and ``contains_error``
  are computed once at construction from the children's cached values,
  so all five queries are O(1);
* rebuilding a term from existing pieces (substitution, rule
  application) yields maximal sharing for free — common subtrees are
  physically shared, and a rebuild that changes nothing returns the
  original node.

The table holds weak references: terms no longer reachable from client
code are garbage collected normally.  :func:`set_interning` /
:func:`interning_disabled` exist for the E10 ablation benchmark only;
with interning off, construction allocates fresh nodes and equality
falls back to the structural definition, so behaviour is unchanged.
"""

from __future__ import annotations

import contextlib
import weakref
from typing import Callable, Iterator, Optional, Sequence, Union

from repro.algebra.signature import Operation
from repro.algebra.sorts import BOOLEAN, Sort, SortError

#: A position in a term: the path of argument indices from the root.
#: ``()`` is the root; ``(0, 2)`` is the third argument of the first
#: argument.  For :class:`Ite`, index 0 is the condition, 1 the then
#: branch and 2 the else branch.
Position = tuple[int, ...]


# ----------------------------------------------------------------------
# The intern table
# ----------------------------------------------------------------------
# A hand-rolled weak-value mapping rather than weakref.WeakValueDictionary:
# constructors probe and fill this table on every term built, and the
# raw-dict form saves a Python-level wrapper call on each of those
# operations.  Values are KeyedRefs; a dead referent removes its own
# entry via _evict (the identity guard keeps a late callback from
# clobbering a re-interned replacement).
_INTERNING = True
_TABLE: dict[tuple, "weakref.KeyedRef"] = {}
_KeyedRef = weakref.KeyedRef

# Substrate counters, as bare one-element list cells so this bottom
# layer imports nothing from the observability layer: repro.obs.metrics
# adopts these slots into its global registry at import time.  A hit is
# a construction answered from the table; a miss allocated and interned
# a fresh node (a dead weakref counts as a miss — the node is rebuilt).
INTERN_HITS = [0]
INTERN_MISSES = [0]


def _evict(ref: "weakref.KeyedRef", _table=_TABLE) -> None:
    if _table.get(ref.key) is ref:
        del _table[ref.key]


def interning_enabled() -> bool:
    """Whether term construction currently goes through the intern table."""
    return _INTERNING


def set_interning(enabled: bool) -> bool:
    """Enable/disable hash consing; returns the previous setting.

    Exists for the E10 ablation benchmark.  Terms built while interning
    is off are ordinary unshared nodes; they compare structurally equal
    to interned ones, so correctness is unaffected.
    """
    global _INTERNING
    previous = _INTERNING
    _INTERNING = bool(enabled)
    return previous


@contextlib.contextmanager
def interning_disabled():
    """Context manager: build unshared terms for the duration."""
    previous = set_interning(False)
    try:
        yield
    finally:
        set_interning(previous)


def intern_table_size() -> int:
    """Number of live interned terms — the process's peak-sharing gauge
    reported by the benchmark driver."""
    return len(_TABLE)


def clear_intern_table() -> None:
    """Drop all intern entries (live terms stay valid; future
    constructions re-intern).  Benchmarks use this between runs."""
    _TABLE.clear()


class Term:
    """Abstract base for all term node classes."""

    __slots__ = ("__weakref__",)

    #: The sort of the value this term denotes.
    sort: Sort

    # Cached structural metadata.  Leaf classes use these class-level
    # defaults; App/Ite shadow them with per-instance slots computed at
    # construction.  Reading the attribute directly (``term._size``) is
    # the hot path; the methods below are the public face.
    _size = 1
    _depth = 1
    _ground = True
    _haserr = False

    # -- structure -----------------------------------------------------
    def children(self) -> tuple["Term", ...]:
        """Immediate subterms, in position order."""
        raise NotImplementedError

    def with_children(self, children: Sequence["Term"]) -> "Term":
        """A copy of this node with ``children`` as immediate subterms."""
        raise NotImplementedError

    # -- queries ---------------------------------------------------------
    def is_ground(self) -> bool:
        """True when the term contains no variables.  O(1): cached at
        construction."""
        return self._ground

    def variables(self) -> set["Var"]:
        """The set of variables occurring in the term."""
        result: set[Var] = set()
        stack: list[Term] = [self]
        while stack:
            node = stack.pop()
            if isinstance(node, Var):
                result.add(node)
            elif not node._ground:
                # Ground subtrees cannot contain variables: skip them.
                stack.extend(node.children())
        return result

    def size(self) -> int:
        """Number of nodes in the term.  O(1): cached at construction."""
        return self._size

    def depth(self) -> int:
        """Height of the term: a leaf has depth 1.  O(1): cached at
        construction."""
        return self._depth

    def subterms(self) -> Iterator[tuple[Position, "Term"]]:
        """Yield every ``(position, subterm)`` pair, preorder."""
        stack: list[tuple[Position, Term]] = [((), self)]
        while stack:
            pos, node = stack.pop()
            yield pos, node
            for i, child in enumerate(node.children()):
                stack.append((pos + (i,), child))

    def at(self, position: Position) -> "Term":
        """The subterm at ``position``."""
        node: Term = self
        for index in position:
            kids = node.children()
            if index >= len(kids):
                raise IndexError(f"no position {position} in {self}")
            node = kids[index]
        return node

    def replace_at(self, position: Position, replacement: "Term") -> "Term":
        """A copy of this term with ``replacement`` grafted at ``position``."""
        if not position:
            return replacement
        head, *rest = position
        kids = list(self.children())
        if head >= len(kids):
            raise IndexError(f"no position {position} in {self}")
        kids[head] = kids[head].replace_at(tuple(rest), replacement)
        return self.with_children(kids)

    def operations(self) -> set[Operation]:
        """All operation symbols occurring in the term."""
        result: set[Operation] = set()
        stack: list[Term] = [self]
        while stack:
            node = stack.pop()
            if isinstance(node, App):
                result.add(node.op)
            stack.extend(node.children())
        return result

    def contains_error(self) -> bool:
        """True when an :class:`Err` node occurs anywhere in the term.
        O(1): cached at construction."""
        return self._haserr

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}({self})"


class Var(Term):
    """A typed free variable, e.g. ``symtab: Symboltable``."""

    __slots__ = ("name", "sort", "_hash")

    _ground = False

    def __new__(cls, name: str, sort: Sort) -> "Var":
        if not name:
            raise ValueError("variable name must be non-empty")
        key = (cls, name, sort)
        if _INTERNING:
            ref = _TABLE.get(key)
            if ref is not None:
                cached = ref()
                if cached is not None:
                    INTERN_HITS[0] += 1
                    return cached  # type: ignore[return-value]
        self = object.__new__(cls)
        self.name = name
        self.sort = sort
        self._hash = hash(key)
        if _INTERNING:
            INTERN_MISSES[0] += 1
            _TABLE[key] = _KeyedRef(self, _evict, key)
        return self

    def __reduce__(self):
        return (Var, (self.name, self.sort))

    def children(self) -> tuple[Term, ...]:
        return ()

    def with_children(self, children: Sequence[Term]) -> Term:
        if children:
            raise ValueError("variables have no children")
        return self

    def __eq__(self, other: object) -> bool:
        if self is other:
            return True
        return (
            isinstance(other, Var)
            and self.name == other.name
            and self.sort == other.sort
        )

    def __hash__(self) -> int:
        return self._hash

    def __str__(self) -> str:
        return self.name


class Lit(Term):
    """A literal value of a parameter sort (Identifier names, Nats, ...).

    ``value`` must be hashable; two literals are equal when both value
    and sort agree.
    """

    __slots__ = ("value", "sort", "_hash")

    def __new__(cls, value: object, sort: Sort) -> "Lit":
        key = (cls, value, sort)
        if _INTERNING:
            ref = _TABLE.get(key)
            if ref is not None:
                cached = ref()
                if cached is not None:
                    INTERN_HITS[0] += 1
                    return cached  # type: ignore[return-value]
        self = object.__new__(cls)
        self.value = value
        self.sort = sort
        self._hash = hash(key)
        if _INTERNING:
            INTERN_MISSES[0] += 1
            _TABLE[key] = _KeyedRef(self, _evict, key)
        return self

    def __reduce__(self):
        return (Lit, (self.value, self.sort))

    def children(self) -> tuple[Term, ...]:
        return ()

    def with_children(self, children: Sequence[Term]) -> Term:
        if children:
            raise ValueError("literals have no children")
        return self

    def __eq__(self, other: object) -> bool:
        if self is other:
            return True
        return (
            isinstance(other, Lit)
            and self.value == other.value
            and self.sort == other.sort
        )

    def __hash__(self) -> int:
        return self._hash

    def __str__(self) -> str:
        return repr(self.value) if isinstance(self.value, str) else str(self.value)


class Err(Term):
    """The distinguished ``error`` value of a sort.

    The paper introduces a single polymorphic ``error``; in a many-sorted
    setting it is one error constant per sort, all printed ``error``.
    """

    __slots__ = ("sort", "_hash")

    _haserr = True

    def __new__(cls, sort: Sort) -> "Err":
        key = (cls, sort)
        if _INTERNING:
            ref = _TABLE.get(key)
            if ref is not None:
                cached = ref()
                if cached is not None:
                    INTERN_HITS[0] += 1
                    return cached  # type: ignore[return-value]
        self = object.__new__(cls)
        self.sort = sort
        self._hash = hash(key)
        if _INTERNING:
            INTERN_MISSES[0] += 1
            _TABLE[key] = _KeyedRef(self, _evict, key)
        return self

    def __reduce__(self):
        return (Err, (self.sort,))

    def children(self) -> tuple[Term, ...]:
        return ()

    def with_children(self, children: Sequence[Term]) -> Term:
        if children:
            raise ValueError("error constants have no children")
        return self

    def __eq__(self, other: object) -> bool:
        if self is other:
            return True
        return isinstance(other, Err) and self.sort == other.sort

    def __hash__(self) -> int:
        return self._hash

    def __str__(self) -> str:
        return "error"


class App(Term):
    """An operation applied to arguments: ``op(args...)``.

    Argument sorts are checked against the operation's domain at
    construction time, so ill-sorted terms cannot be built.  Sort
    checking only runs on an intern miss: a hit means the identical
    ``(op, args)`` combination was validated when first built.
    """

    __slots__ = ("op", "args", "sort", "_hash", "_size", "_depth", "_ground", "_haserr")

    def __new__(cls, op: Operation, args: Sequence[Term] = ()) -> "App":
        if type(args) is not tuple:
            args = tuple(args)
        key = (cls, op, args)
        if _INTERNING:
            ref = _TABLE.get(key)
            if ref is not None:
                cached = ref()
                if cached is not None:
                    INTERN_HITS[0] += 1
                    return cached  # type: ignore[return-value]
        if len(args) != op.arity:
            raise SortError(
                f"{op.name} expects {op.arity} argument(s), got {len(args)}"
            )
        for expected, arg in zip(op.domain, args):
            if arg.sort != expected:
                raise SortError(
                    f"{op.name}: argument {arg} has sort {arg.sort}, "
                    f"expected {expected}"
                )
        self = object.__new__(cls)
        self.op = op
        self.args = args
        self.sort = op.range
        self._hash = hash((op.name, op.range, args))
        size = 1
        depth = 0
        ground = True
        haserr = False
        for arg in args:
            size += arg._size
            if arg._depth > depth:
                depth = arg._depth
            if ground and not arg._ground:
                ground = False
            if not haserr and arg._haserr:
                haserr = True
        self._size = size
        self._depth = depth + 1
        self._ground = ground
        self._haserr = haserr
        if _INTERNING:
            INTERN_MISSES[0] += 1
            _TABLE[key] = _KeyedRef(self, _evict, key)
        return self

    def __reduce__(self):
        return (App, (self.op, self.args))

    def children(self) -> tuple[Term, ...]:
        return self.args

    def with_children(self, children: Sequence[Term]) -> Term:
        return App(self.op, children)

    def __eq__(self, other: object) -> bool:
        if self is other:
            return True
        return (
            isinstance(other, App)
            and self._hash == other._hash
            and self.op == other.op
            and self.args == other.args
        )

    def __hash__(self) -> int:
        return self._hash

    def __str__(self) -> str:
        if not self.args:
            return self.op.name
        inner = ", ".join(str(a) for a in self.args)
        return f"{self.op.name}({inner})"


class Ite(Term):
    """``if cond then then_branch else else_branch``.

    The condition must have sort Boolean and the branches must share a
    sort, which becomes the sort of the whole term.
    """

    __slots__ = (
        "cond",
        "then_branch",
        "else_branch",
        "sort",
        "_hash",
        "_size",
        "_depth",
        "_ground",
        "_haserr",
    )

    def __new__(cls, cond: Term, then_branch: Term, else_branch: Term) -> "Ite":
        key = (cls, cond, then_branch, else_branch)
        if _INTERNING:
            ref = _TABLE.get(key)
            if ref is not None:
                cached = ref()
                if cached is not None:
                    INTERN_HITS[0] += 1
                    return cached  # type: ignore[return-value]
        if cond.sort != BOOLEAN:
            raise SortError(f"if-condition must be Boolean, got {cond.sort}")
        if then_branch.sort != else_branch.sort:
            raise SortError(
                "if-branches must share a sort: "
                f"{then_branch.sort} vs {else_branch.sort}"
            )
        self = object.__new__(cls)
        self.cond = cond
        self.then_branch = then_branch
        self.else_branch = else_branch
        self.sort = then_branch.sort
        self._hash = hash(("__ite__", cond, then_branch, else_branch))
        kids = (cond, then_branch, else_branch)
        self._size = 1 + sum(kid._size for kid in kids)
        self._depth = 1 + max(kid._depth for kid in kids)
        self._ground = all(kid._ground for kid in kids)
        self._haserr = any(kid._haserr for kid in kids)
        if _INTERNING:
            INTERN_MISSES[0] += 1
            _TABLE[key] = _KeyedRef(self, _evict, key)
        return self

    def __reduce__(self):
        return (Ite, (self.cond, self.then_branch, self.else_branch))

    def children(self) -> tuple[Term, ...]:
        return (self.cond, self.then_branch, self.else_branch)

    def with_children(self, children: Sequence[Term]) -> Term:
        cond, then_branch, else_branch = children
        return Ite(cond, then_branch, else_branch)

    def __eq__(self, other: object) -> bool:
        if self is other:
            return True
        return (
            isinstance(other, Ite)
            and self._hash == other._hash
            and self.cond == other.cond
            and self.then_branch == other.then_branch
            and self.else_branch == other.else_branch
        )

    def __hash__(self) -> int:
        return self._hash

    def __str__(self) -> str:
        return (
            f"if {self.cond} then {self.then_branch} else {self.else_branch}"
        )


# ----------------------------------------------------------------------
# Construction helpers
# ----------------------------------------------------------------------
def app(op: Operation, *args: Term) -> App:
    """``app(ADD, q, i)`` reads better than ``App(ADD, (q, i))``."""
    return App(op, args)


def var(name: str, sort: Sort) -> Var:
    return Var(name, sort)


def lit(value: object, sort: Sort) -> Lit:
    return Lit(value, sort)


def err(sort: Sort) -> Err:
    return Err(sort)


def ite(cond: Term, then_branch: Term, else_branch: Term) -> Ite:
    return Ite(cond, then_branch, else_branch)


def constructor_only(term: Term, constructors: set[Operation]) -> bool:
    """True when every operation in ``term`` is drawn from ``constructors``.

    Sufficient-completeness asks that terms of the type of interest reduce
    to constructor-only form; terms of other sorts must reduce to terms
    free of type-of-interest operations entirely.
    """
    return all(
        node.op in constructors
        for _, node in term.subterms()
        if isinstance(node, App)
    )


def map_terms(term: Term, fn: Callable[[Term], Optional[Term]]) -> Term:
    """Rebuild ``term`` bottom-up, replacing nodes where ``fn`` returns
    a term and keeping them where it returns ``None``."""
    kids = term.children()
    if kids:
        new_kids = [map_terms(kid, fn) for kid in kids]
        if all(new is old for new, old in zip(new_kids, kids)):
            rebuilt = term
        else:
            rebuilt = term.with_children(new_kids)
    else:
        rebuilt = term
    replacement = fn(rebuilt)
    return rebuilt if replacement is None else replacement


TermLike = Union[Term]
