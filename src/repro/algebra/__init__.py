"""Many-sorted algebra substrate.

This package provides the mathematical foundation Guttag's technique is
built on (the heterogeneous algebras of Birkhoff and Lipson): sorts,
signatures, terms, substitutions, matching and unification.
"""

from repro.algebra.sorts import BOOLEAN, NAT, Sort, SortError
from repro.algebra.signature import (
    Operation,
    Signature,
    SignatureError,
    make_signature,
)
from repro.algebra.terms import (
    App,
    Err,
    Ite,
    Lit,
    Position,
    Term,
    Var,
    app,
    clear_intern_table,
    constructor_only,
    err,
    intern_table_size,
    interning_disabled,
    interning_enabled,
    ite,
    lit,
    map_terms,
    set_interning,
    var,
)
from repro.algebra.substitution import EMPTY, Substitution
from repro.algebra.matching import find_matches, is_instance_of, match, matches, variant_of
from repro.algebra.unification import rename_apart, unify

__all__ = [
    "BOOLEAN",
    "NAT",
    "Sort",
    "SortError",
    "Operation",
    "Signature",
    "SignatureError",
    "make_signature",
    "App",
    "Err",
    "Ite",
    "Lit",
    "Position",
    "Term",
    "Var",
    "app",
    "clear_intern_table",
    "constructor_only",
    "err",
    "intern_table_size",
    "interning_disabled",
    "interning_enabled",
    "ite",
    "lit",
    "map_terms",
    "set_interning",
    "var",
    "EMPTY",
    "Substitution",
    "find_matches",
    "is_instance_of",
    "match",
    "matches",
    "variant_of",
    "rename_apart",
    "unify",
]
