"""Substitutions: finite maps from variables to terms.

A substitution assigns terms to typed variables.  Applying one to a term
replaces every occurrence of a mapped variable; sort discipline is
enforced at construction (a variable can only be sent to a term of its
own sort), so application can never build an ill-sorted term.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Mapping, Optional

from repro.algebra.sorts import SortError
from repro.algebra.terms import Term, Var


class Substitution(Mapping[Var, Term]):
    """An immutable, sort-respecting map from variables to terms."""

    __slots__ = ("_map",)

    def __init__(self, mapping: Optional[Mapping[Var, Term]] = None) -> None:
        items = dict(mapping) if mapping else {}
        for variable, term in items.items():
            if not isinstance(variable, Var):
                raise TypeError(f"substitution keys must be variables: {variable!r}")
            if variable.sort != term.sort:
                raise SortError(
                    f"cannot bind {variable} (sort {variable.sort}) to "
                    f"{term} (sort {term.sort})"
                )
        self._map: dict[Var, Term] = items

    @classmethod
    def _trusted(cls, mapping: dict[Var, Term]) -> "Substitution":
        """Wrap ``mapping`` without copying or re-validating it.

        Internal fast path for callers that construct the bindings
        themselves and have already enforced sort discipline (the
        matcher checks ``variable.sort == subject.sort`` before
        binding).  The mapping must not be mutated afterwards.
        """
        self = object.__new__(cls)
        self._map = mapping
        return self

    # -- Mapping protocol -------------------------------------------------
    def __getitem__(self, variable: Var) -> Term:
        return self._map[variable]

    def __iter__(self) -> Iterator[Var]:
        return iter(self._map)

    def __len__(self) -> int:
        return len(self._map)

    def __hash__(self) -> int:
        return hash(frozenset(self._map.items()))

    def __eq__(self, other: object) -> bool:
        if isinstance(other, Substitution):
            return self._map == other._map
        if isinstance(other, Mapping):
            return self._map == dict(other)
        return NotImplemented

    def __str__(self) -> str:
        if not self._map:
            return "{}"
        inner = ", ".join(
            f"{v} -> {t}" for v, t in sorted(self._map.items(), key=lambda p: p[0].name)
        )
        return "{" + inner + "}"

    def __repr__(self) -> str:
        return f"Substitution({self})"

    # -- operations --------------------------------------------------------
    def apply(self, term: Term) -> Term:
        """``term`` with every mapped variable replaced by its image."""
        if not self._map:
            return term
        return _apply_bindings(term, self._map)

    def extended(self, variable: Var, term: Term) -> "Substitution":
        """A new substitution additionally binding ``variable``.

        Raises :class:`ValueError` if ``variable`` is already bound to a
        different term — bindings never silently change.
        """
        existing = self._map.get(variable)
        if existing is not None:
            if existing == term:
                return self
            raise ValueError(
                f"{variable} already bound to {existing}, cannot rebind to {term}"
            )
        merged = dict(self._map)
        merged[variable] = term
        return Substitution(merged)

    def compose(self, inner: "Substitution") -> "Substitution":
        """``self . inner``: applying the result is applying ``inner``
        first, then ``self``."""
        merged: dict[Var, Term] = {
            variable: self.apply(term) for variable, term in inner._map.items()
        }
        for variable, term in self._map.items():
            merged.setdefault(variable, term)
        return Substitution(merged)

    def restricted(self, variables: Iterable[Var]) -> "Substitution":
        """The substitution restricted to ``variables``."""
        keep = set(variables)
        return Substitution(
            {v: t for v, t in self._map.items() if v in keep}
        )

    def is_ground(self) -> bool:
        """True when every image term is ground."""
        return all(term.is_ground() for term in self._map.values())


def apply_bindings(term: Term, bindings: Mapping[Var, Term]) -> Term:
    """Apply a raw binding dict to ``term`` — the engine's hot path,
    equivalent to ``Substitution(bindings).apply(term)`` without the
    wrapper.  Callers must have enforced sort discipline themselves
    (the matcher does)."""
    if not bindings:
        return term
    return _apply_bindings(term, bindings)


def _apply_bindings(term: Term, bindings: Mapping[Var, Term]) -> Term:
    if isinstance(term, Var):
        return bindings.get(term, term)
    if term._ground:
        # No variables anywhere below: the subtree is returned as-is
        # (an O(1) test on hash-consed terms), preserving sharing.
        return term
    kids = term.children()
    if not kids:
        return term
    new_kids = []
    changed = False
    for kid in kids:
        image = _apply_bindings(kid, bindings)
        if image is not kid:
            changed = True
        new_kids.append(image)
    if not changed:
        return term
    return term.with_children(new_kids)


#: The identity substitution.
EMPTY = Substitution()
