"""Sorts for many-sorted (heterogeneous) algebras.

Guttag's algebraic specifications are built on the heterogeneous algebras
of Birkhoff and Lipson: a family of carrier sets indexed by *sorts*
(``Queue``, ``Item``, ``Boolean``, ...) together with operations between
them.  A :class:`Sort` is a name for one carrier set.

Sorts compare by name, so two independently constructed ``Sort("Queue")``
objects denote the same carrier.  Attributes beyond the name (such as
whether the sort carries literal values) are *descriptive*: they do not
participate in equality.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable


@dataclass(frozen=True, order=True)
class Sort:
    """A sort (carrier set name) in a many-sorted signature.

    Parameters
    ----------
    name:
        The sort's name, e.g. ``"Queue"``.  Names are case-sensitive and
        must be non-empty.
    parameters:
        For *type schemas* (Guttag: "the specification may be viewed as
        defining a type schema rather than a single type") a sort may be
        parameterised, e.g. ``Queue[Item]``.  Parameters are recorded for
        documentation and instantiation; they take part in equality so
        ``Queue[Item]`` and ``Queue[Job]`` are distinct sorts.
    """

    name: str
    parameters: tuple["Sort", ...] = field(default=())

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("sort name must be non-empty")
        if not all(part.isidentifier() or part == "?" for part in self.name.split(".")):
            # Allow dotted names for qualified sorts; '?' never appears in
            # sort names but the check keeps error messages precise.
            raise ValueError(f"invalid sort name: {self.name!r}")

    def __str__(self) -> str:
        if self.parameters:
            inner = ", ".join(str(p) for p in self.parameters)
            return f"{self.name}[{inner}]"
        return self.name

    def instantiate(self, binding: dict["Sort", "Sort"]) -> "Sort":
        """Replace parameter sorts according to ``binding``.

        Used when instantiating a type schema, e.g. mapping the formal
        ``Item`` to an actual ``Integer``.
        """
        if self in binding:
            return binding[self]
        if not self.parameters:
            return self
        return Sort(self.name, tuple(p.instantiate(binding) for p in self.parameters))


#: The sort of truth values.  Guttag's specifications use ``Boolean``
#: results for the ``IS_...?`` observers; it is predefined because the
#: ``if-then-else`` construct in axiom right-hand sides requires it.
BOOLEAN = Sort("Boolean")

#: The sort of natural numbers, used by bounded types (e.g. the bounded
#: queue's capacity) and by ``HASH`` in the Array implementation.
NAT = Sort("Nat")


class SortError(Exception):
    """Raised when a term or operation is not well-sorted."""


def check_known(sort: Sort, known: Iterable[Sort], context: str) -> None:
    """Raise :class:`SortError` unless ``sort`` is among ``known``.

    ``context`` names the construct being checked, for error messages.
    """
    known_set = set(known)
    if sort not in known_set:
        names = ", ".join(sorted(str(s) for s in known_set)) or "<none>"
        raise SortError(f"{context}: unknown sort {sort} (known sorts: {names})")
