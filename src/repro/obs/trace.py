"""The span tracer: JSONL trace events with context propagation.

A :class:`Tracer` records a tree of **spans** (named, timed scopes with
parent links) and the point events that happen inside them — rewrite
steps with their rule and a capped subject summary, aggregated compiled
rule firings, budget exhaustions, fault-injection hits.  Installation
follows the fault registry's pattern: a module-global :data:`ACTIVE`
that instrumented code checks with one attribute load, so the disabled
path costs a ``None`` test and nothing else.

Event schema (one JSON object per line when written to a sink)::

    {"ev": "span_start", "span": 3, "parent": 1, "name": "engine.normalize",
     "ts": 12.345678, ...attrs}
    {"ev": "span_end",   "span": 3, "name": "...", "ts": ..., "dur_us": ...}
    {"ev": "step",       "span": 3, "rule": "[4] FRONT(ADD(q, i)) -> ...",
     "subject": "FRONT(ADD(NEW, 'a'))", "ts": ...}
    {"ev": "firings",    "span": 3, "counts": {"[4] ...": 17, ...}, "ts": ...}
    {"ev": "budget_exhausted", "reason": "fuel", "subject": "...", ...}
    {"ev": "fault",      "site": "engine.match_root", "kind": "raise", ...}

``step`` events are emitted per rule firing by the interpreted backend;
the compiled backend's closures count firings in flat lists instead, so
it emits one aggregated ``firings`` event per evaluation with the
per-rule deltas.  :func:`firing_counts` folds both forms into one
per-rule count dict, which — with sampling off — matches the metrics
registry's firing family exactly, on either backend.

Sampling: the ``sample`` knob (0.0–1.0) decides, deterministically by
running credit rather than by random draw, whether each **top-level**
span is recorded; an unrecorded span suppresses its entire subtree,
steps included.  ``sample=0.0`` records nothing; metrics counters are
unaffected by sampling (they are always on).

Distributed tracing: span scopes (the open-span stack, the mute depth,
the sampling credit) are **thread-local**, so one tracer serves every
request thread of the ``repro serve`` daemon with correct parent links,
while span ids stay process-unique.  A :class:`TraceContext` carries the
W3C ``traceparent`` triple (``trace_id``/``span_id``/``sampled``) across
process boundaries — the client sends it, the daemon honours its
sampling decision, and shard workers ship their span batches home for
:meth:`Tracer.merge_remote_events` to graft into the parent's tree.
Span ids are small process-local ints in the JSONL form; the OTLP
export maps them through :meth:`Tracer.span_hex` (a per-tracer random
base) so ids from different processes never collide inside one trace.
"""

from __future__ import annotations

import json
import os
import re
import threading
from contextlib import contextmanager, nullcontext
from dataclasses import dataclass
from itertools import count
from time import monotonic, time
from typing import Iterable, Optional

from repro.runtime.render import summarize_term

__all__ = [
    "ACTIVE",
    "TraceContext",
    "Tracer",
    "firing_counts",
    "install",
    "maybe_span",
    "new_span_id_hex",
    "new_trace_id",
    "read_trace",
    "rule_id",
    "tracing",
]


def rule_id(rule: object) -> str:
    """The canonical trace/metrics label for a rewrite rule: its full
    ``[label] lhs -> rhs`` rendering (unique per distinct rule)."""
    return str(rule)


# ----------------------------------------------------------------------
# W3C trace context
# ----------------------------------------------------------------------

_TRACEPARENT = re.compile(
    r"^00-([0-9a-f]{32})-([0-9a-f]{16})-([0-9a-f]{2})$"
)


def new_trace_id() -> str:
    """A fresh random 128-bit trace id (32 lowercase hex chars, nonzero)."""
    value = os.urandom(16).hex()
    return value if value != "0" * 32 else new_trace_id()


def new_span_id_hex() -> str:
    """A fresh random 64-bit span id (16 lowercase hex chars, nonzero)."""
    value = os.urandom(8).hex()
    return value if value != "0" * 16 else new_span_id_hex()


@dataclass(frozen=True)
class TraceContext:
    """One hop of W3C trace context: the ``traceparent`` header triple.

    ``trace_id`` identifies the whole distributed trace, ``span_id`` the
    caller's span (the remote parent of whatever the callee starts), and
    ``sampled`` carries the caller's recording decision — a callee must
    not record a trace the caller decided to drop, or sampling would
    re-roll at every hop and traces would arrive as fragments.
    """

    trace_id: str
    span_id: str
    sampled: bool = True

    def to_traceparent(self) -> str:
        return f"00-{self.trace_id}-{self.span_id}-{'01' if self.sampled else '00'}"

    @classmethod
    def parse_traceparent(cls, header: Optional[str]) -> Optional["TraceContext"]:
        """Parse a ``traceparent`` header; ``None`` for a missing or
        malformed one (a bad header must not fail the request — the
        trace degrades to a fresh root, the evaluation proceeds)."""
        if not header:
            return None
        match = _TRACEPARENT.match(header.strip().lower())
        if match is None:
            return None
        trace_id, span_id, flags = match.groups()
        if trace_id == "0" * 32 or span_id == "0" * 16:
            return None
        return cls(trace_id, span_id, sampled=bool(int(flags, 16) & 0x01))

    @classmethod
    def generate(cls, sampled: bool = True) -> "TraceContext":
        return cls(new_trace_id(), new_span_id_hex(), sampled=sampled)


class _Scope(threading.local):
    """Per-thread span scope: the open-span stack, the mute depth for
    unsampled subtrees, and the deterministic sampling credit."""

    def __init__(self) -> None:
        self.stack: list[int] = []
        self.mute = 0
        self.credit = 0.0


class Tracer:
    """Records trace events, in memory and optionally to a JSONL sink.

    Parameters
    ----------
    sink:
        A writable text stream; each event is written as one JSON line
        as it happens.  Events are *also* retained in ``self.events``
        (as dicts) so post-processing — the per-rule profile, the CLI
        summary — needs no re-parse.
    sample:
        Fraction of top-level spans to record (see module docstring).
    trace_id:
        The 32-hex W3C trace id this tracer's spans belong to by
        default (requests that arrive with their own ``traceparent``
        override it per subtree).  Auto-generated when omitted.

    Thread-safety: span scopes are thread-local and emission holds a
    lock, so one tracer instance serves concurrent request threads;
    span ids come from one shared counter and stay process-unique.
    """

    def __init__(
        self,
        sink=None,
        sample: float = 1.0,
        trace_id: Optional[str] = None,
    ) -> None:
        if not 0.0 <= sample <= 1.0:
            raise ValueError(f"sample must be in [0, 1], got {sample}")
        self.sink = sink
        self.sample = sample
        self.trace_id = trace_id if trace_id is not None else new_trace_id()
        self.events: list[dict] = []
        self._ids = count(1)
        self._scope = _Scope()
        self._emit_lock = threading.Lock()
        # Fast mute: thread-local reads cost ~2.5x a plain attribute,
        # which the per-firing ``step()`` hot path cannot afford when
        # tracing is effectively off.  A ``sample=0.0`` tracer keeps
        # this plain flag set except while a *forced* span (an incoming
        # sampled traceparent) is open, so instrumented code pays one
        # plain attribute test — the PR-5 disabled-overhead contract.
        self.never = sample == 0.0
        self._forced_open = 0
        # Per-process random base for 16-hex span ids: XORing the small
        # process-local int ids with one random 64-bit value keeps them
        # unique in-process and collision-free (p ~ 2^-64) against the
        # ids another process contributes to the same distributed trace.
        self._hex_base = int.from_bytes(os.urandom(8), "big") or 1

    # -- plumbing ------------------------------------------------------
    def _emit(self, event: dict) -> None:
        with self._emit_lock:
            self.events.append(event)
            if self.sink is not None:
                self.sink.write(json.dumps(event, default=str) + "\n")

    def _sampled(self, forced: Optional[bool]) -> bool:
        if forced is not None:
            return forced
        scope = self._scope
        scope.credit += self.sample
        if scope.credit >= 1.0:
            scope.credit -= 1.0
            return True
        return False

    @property
    def active_span(self) -> Optional[int]:
        stack = self._scope.stack
        return stack[-1] if stack else None

    def span_hex(self, span_id: int) -> str:
        """The 16-hex OTLP form of a process-local span id."""
        return f"{self._hex_base ^ span_id:016x}"

    def context(self, sampled: bool = True) -> TraceContext:
        """The outgoing :class:`TraceContext` for the calling thread:
        this tracer's trace id and the currently open span (or a fresh
        random span id when none is open)."""
        span = self.active_span
        span_hex = (
            self.span_hex(span) if span is not None else new_span_id_hex()
        )
        return TraceContext(self.trace_id, span_hex, sampled=sampled)

    # -- spans ---------------------------------------------------------
    @contextmanager
    def span(self, name: str, sampled: Optional[bool] = None, **attrs):
        """A named, timed scope.  Nested spans carry ``parent`` links —
        the propagated context that stitches an engine evaluation to the
        façade call to the oracle run that caused it.

        ``sampled`` overrides the credit-based sampling decision for a
        *top-level* span: ``True`` forces recording, ``False`` forces
        muting — the hook an incoming ``traceparent`` flag uses to make
        the caller's sampling decision stick across the process hop.
        """
        scope = self._scope
        if (self.never and sampled is not True) or (
            scope.mute
            or (not scope.stack and not self._sampled(sampled))
        ):
            scope.mute += 1
            try:
                yield None
            finally:
                scope.mute -= 1
            return
        span_id = next(self._ids)
        parent = scope.stack[-1] if scope.stack else None
        forced_on_never = self.sample == 0.0
        if forced_on_never:
            # A forced span on a never-sampling tracer: lift the fast
            # mute while it is open so nested spans and steps record.
            with self._emit_lock:
                self._forced_open += 1
                self.never = False
        start = monotonic()
        event = {
            "ev": "span_start",
            "span": span_id,
            "name": name,
            "ts": round(time(), 6),
        }
        if parent is not None:
            event["parent"] = parent
        event.update(attrs)
        self._emit(event)
        scope.stack.append(span_id)
        try:
            yield span_id
        finally:
            scope.stack.pop()
            end = monotonic()
            self._emit(
                {
                    "ev": "span_end",
                    "span": span_id,
                    "name": name,
                    "ts": round(time(), 6),
                    "dur_us": round((end - start) * 1e6, 1),
                }
            )
            if forced_on_never:
                with self._emit_lock:
                    self._forced_open -= 1
                    if self._forced_open == 0:
                        self.never = True

    # -- point events --------------------------------------------------
    def step(self, rule: object, subject=None) -> None:
        """One rewrite step: the fired rule and a capped subject
        summary.  Emitted by the interpreted backend per firing."""
        if self.never:
            return
        scope = self._scope
        if scope.mute:
            return
        event: dict = {
            "ev": "step",
            "ts": round(time(), 6),
            "rule": rule_id(rule),
        }
        stack = scope.stack
        if stack:
            event["span"] = stack[-1]
        if subject is not None:
            event["subject"] = summarize_term(subject)
        self._emit(event)

    def firings(self, counts: dict) -> None:
        """Aggregated per-rule firing deltas for one compiled
        evaluation (the closures count in flat lists; per-step events
        would mean a Python call per firing on the compiled hot path)."""
        if self.never:
            return
        scope = self._scope
        if scope.mute or not counts:
            return
        event: dict = {
            "ev": "firings",
            "ts": round(time(), 6),
            "counts": {rule_id(rule): n for rule, n in counts.items()},
        }
        stack = scope.stack
        if stack:
            event["span"] = stack[-1]
        self._emit(event)

    def event(self, ev: str, **fields) -> None:
        """A generic point event (``budget_exhausted``, ``fault``...)."""
        if self.never:
            return
        scope = self._scope
        if scope.mute:
            return
        event: dict = {"ev": ev, "ts": round(time(), 6)}
        stack = scope.stack
        if stack:
            event["span"] = stack[-1]
        event.update(fields)
        self._emit(event)

    # -- cross-process stitching ---------------------------------------
    def merge_remote_events(
        self,
        events: Iterable[dict],
        parent: Optional[int] = None,
        **root_attrs,
    ) -> dict[int, int]:
        """Graft a span batch recorded by another process into this
        tracer's tree.

        Remote span ids are remapped onto fresh local ids (the two
        processes' counters both start at 1, so ids would collide);
        remote parent links are rewritten through the same mapping; and
        remote *root* spans — those with no parent of their own — are
        re-parented under ``parent`` and stamped with ``root_attrs``
        (the shard pool passes the worker pid).  Timestamps ship as-is:
        both processes record epoch seconds, so the merged timeline is
        coherent on one machine.  Returns the id mapping.
        """
        mapping: dict[int, int] = {}
        for event in events:
            event = dict(event)
            span = event.get("span")
            if span is not None:
                if event.get("ev") == "span_start" and span not in mapping:
                    mapping[span] = next(self._ids)
                local = mapping.get(span)
                if local is None:
                    # An event for a span that never started in this
                    # batch (truncated ship); keep it parentless rather
                    # than aliasing someone else's id.
                    del event["span"]
                else:
                    event["span"] = local
            if event.get("ev") == "span_start":
                remote_parent = event.get("parent")
                if remote_parent is not None and remote_parent in mapping:
                    event["parent"] = mapping[remote_parent]
                else:
                    event.pop("parent", None)
                    if parent is not None:
                        event["parent"] = parent
                    event.update(root_attrs)
            self._emit(event)
        return mapping

    def pop_subtree(self, root_span: int) -> list[dict]:
        """Remove and return every retained event in ``root_span``'s
        subtree (the span's own start/end, nested spans, and their point
        events).  The ``repro serve`` daemon calls this per finished
        request: the subtree becomes the request's exported trace, and
        the in-memory event list stays bounded by the *in-flight*
        requests instead of growing for the daemon's lifetime."""
        members = {root_span}
        taken: list[dict] = []
        kept: list[dict] = []
        with self._emit_lock:
            for event in self.events:
                if (
                    event.get("ev") == "span_start"
                    and event.get("parent") in members
                ):
                    members.add(event["span"])
                if event.get("span") in members:
                    taken.append(event)
                else:
                    kept.append(event)
            self.events[:] = kept
        return taken


#: The installed tracer, or None (the fast path).  Instrumented code
#: reads this module attribute directly — ``if trace.ACTIVE is not
#: None`` — so installation is a plain assignment.
ACTIVE: Optional[Tracer] = None


def install(tracer: Optional[Tracer]) -> Optional[Tracer]:
    """Install ``tracer`` (or None to disable); returns the previous
    one so scopes nest correctly."""
    global ACTIVE
    previous = ACTIVE
    ACTIVE = tracer
    return previous


@contextmanager
def tracing(tracer: Tracer):
    """Install ``tracer`` for the duration of the block."""
    previous = install(tracer)
    try:
        yield tracer
    finally:
        install(previous)


def maybe_span(name: str, **attrs):
    """A span on the active tracer, or a no-op context when tracing is
    off — the one-liner for instrumenting non-hot call sites."""
    tracer = ACTIVE
    if tracer is None:
        return nullcontext()
    return tracer.span(name, **attrs)


# ----------------------------------------------------------------------
# Trace analysis
# ----------------------------------------------------------------------
def firing_counts(events: Iterable[dict]) -> dict[str, int]:
    """Per-rule firing counts from a trace: one per ``step`` event,
    plus the aggregated ``firings`` deltas the compiled backend emits.
    With sampling off, this matches the metrics registry's
    ``engine.rule_firings`` family exactly."""
    counts: dict[str, int] = {}
    for event in events:
        kind = event.get("ev")
        if kind == "step":
            rule = event["rule"]
            counts[rule] = counts.get(rule, 0) + 1
        elif kind == "firings":
            for rule, n in event["counts"].items():
                counts[rule] = counts.get(rule, 0) + n
    return counts


def read_trace(path) -> list[dict]:
    """Parse a JSONL trace file back into event dicts."""
    with open(path, encoding="utf-8") as handle:
        return [json.loads(line) for line in handle if line.strip()]
