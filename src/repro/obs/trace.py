"""The span tracer: JSONL trace events with context propagation.

A :class:`Tracer` records a tree of **spans** (named, timed scopes with
parent links) and the point events that happen inside them — rewrite
steps with their rule and a capped subject summary, aggregated compiled
rule firings, budget exhaustions, fault-injection hits.  Installation
follows the fault registry's pattern: a module-global :data:`ACTIVE`
that instrumented code checks with one attribute load, so the disabled
path costs a ``None`` test and nothing else.

Event schema (one JSON object per line when written to a sink)::

    {"ev": "span_start", "span": 3, "parent": 1, "name": "engine.normalize",
     "ts": 12.345678, ...attrs}
    {"ev": "span_end",   "span": 3, "name": "...", "ts": ..., "dur_us": ...}
    {"ev": "step",       "span": 3, "rule": "[4] FRONT(ADD(q, i)) -> ...",
     "subject": "FRONT(ADD(NEW, 'a'))", "ts": ...}
    {"ev": "firings",    "span": 3, "counts": {"[4] ...": 17, ...}, "ts": ...}
    {"ev": "budget_exhausted", "reason": "fuel", "subject": "...", ...}
    {"ev": "fault",      "site": "engine.match_root", "kind": "raise", ...}

``step`` events are emitted per rule firing by the interpreted backend;
the compiled backend's closures count firings in flat lists instead, so
it emits one aggregated ``firings`` event per evaluation with the
per-rule deltas.  :func:`firing_counts` folds both forms into one
per-rule count dict, which — with sampling off — matches the metrics
registry's firing family exactly, on either backend.

Sampling: the ``sample`` knob (0.0–1.0) decides, deterministically by
running credit rather than by random draw, whether each **top-level**
span is recorded; an unrecorded span suppresses its entire subtree,
steps included.  ``sample=0.0`` records nothing; metrics counters are
unaffected by sampling (they are always on).
"""

from __future__ import annotations

import json
from contextlib import contextmanager, nullcontext
from itertools import count
from time import monotonic
from typing import Iterable, Optional

from repro.runtime.render import summarize_term

__all__ = [
    "ACTIVE",
    "Tracer",
    "firing_counts",
    "install",
    "maybe_span",
    "read_trace",
    "rule_id",
    "tracing",
]


def rule_id(rule: object) -> str:
    """The canonical trace/metrics label for a rewrite rule: its full
    ``[label] lhs -> rhs`` rendering (unique per distinct rule)."""
    return str(rule)


class Tracer:
    """Records trace events, in memory and optionally to a JSONL sink.

    Parameters
    ----------
    sink:
        A writable text stream; each event is written as one JSON line
        as it happens.  Events are *also* retained in ``self.events``
        (as dicts) so post-processing — the per-rule profile, the CLI
        summary — needs no re-parse.
    sample:
        Fraction of top-level spans to record (see module docstring).
    """

    def __init__(self, sink=None, sample: float = 1.0) -> None:
        if not 0.0 <= sample <= 1.0:
            raise ValueError(f"sample must be in [0, 1], got {sample}")
        self.sink = sink
        self.sample = sample
        self.events: list[dict] = []
        self._ids = count(1)
        self._stack: list[int] = []  # ids of open, recorded spans
        self._mute = 0  # depth inside an unsampled top-level span
        self._credit = 0.0  # deterministic sampling accumulator

    # -- plumbing ------------------------------------------------------
    def _emit(self, event: dict) -> None:
        self.events.append(event)
        if self.sink is not None:
            self.sink.write(json.dumps(event, default=str) + "\n")

    def _sampled(self) -> bool:
        self._credit += self.sample
        if self._credit >= 1.0:
            self._credit -= 1.0
            return True
        return False

    @property
    def active_span(self) -> Optional[int]:
        return self._stack[-1] if self._stack else None

    # -- spans ---------------------------------------------------------
    @contextmanager
    def span(self, name: str, **attrs):
        """A named, timed scope.  Nested spans carry ``parent`` links —
        the propagated context that stitches an engine evaluation to the
        façade call to the oracle run that caused it."""
        if self._mute or (not self._stack and not self._sampled()):
            self._mute += 1
            try:
                yield None
            finally:
                self._mute -= 1
            return
        span_id = next(self._ids)
        parent = self.active_span
        start = monotonic()
        event = {
            "ev": "span_start",
            "span": span_id,
            "name": name,
            "ts": round(start, 6),
        }
        if parent is not None:
            event["parent"] = parent
        event.update(attrs)
        self._emit(event)
        self._stack.append(span_id)
        try:
            yield span_id
        finally:
            self._stack.pop()
            end = monotonic()
            self._emit(
                {
                    "ev": "span_end",
                    "span": span_id,
                    "name": name,
                    "ts": round(end, 6),
                    "dur_us": round((end - start) * 1e6, 1),
                }
            )

    # -- point events --------------------------------------------------
    def step(self, rule: object, subject=None) -> None:
        """One rewrite step: the fired rule and a capped subject
        summary.  Emitted by the interpreted backend per firing."""
        if self._mute:
            return
        event: dict = {
            "ev": "step",
            "ts": round(monotonic(), 6),
            "rule": rule_id(rule),
        }
        span = self.active_span
        if span is not None:
            event["span"] = span
        if subject is not None:
            event["subject"] = summarize_term(subject)
        self._emit(event)

    def firings(self, counts: dict) -> None:
        """Aggregated per-rule firing deltas for one compiled
        evaluation (the closures count in flat lists; per-step events
        would mean a Python call per firing on the compiled hot path)."""
        if self._mute or not counts:
            return
        event: dict = {
            "ev": "firings",
            "ts": round(monotonic(), 6),
            "counts": {rule_id(rule): n for rule, n in counts.items()},
        }
        span = self.active_span
        if span is not None:
            event["span"] = span
        self._emit(event)

    def event(self, ev: str, **fields) -> None:
        """A generic point event (``budget_exhausted``, ``fault``...)."""
        if self._mute:
            return
        event: dict = {"ev": ev, "ts": round(monotonic(), 6)}
        span = self.active_span
        if span is not None:
            event["span"] = span
        event.update(fields)
        self._emit(event)


#: The installed tracer, or None (the fast path).  Instrumented code
#: reads this module attribute directly — ``if trace.ACTIVE is not
#: None`` — so installation is a plain assignment.
ACTIVE: Optional[Tracer] = None


def install(tracer: Optional[Tracer]) -> Optional[Tracer]:
    """Install ``tracer`` (or None to disable); returns the previous
    one so scopes nest correctly."""
    global ACTIVE
    previous = ACTIVE
    ACTIVE = tracer
    return previous


@contextmanager
def tracing(tracer: Tracer):
    """Install ``tracer`` for the duration of the block."""
    previous = install(tracer)
    try:
        yield tracer
    finally:
        install(previous)


def maybe_span(name: str, **attrs):
    """A span on the active tracer, or a no-op context when tracing is
    off — the one-liner for instrumenting non-hot call sites."""
    tracer = ACTIVE
    if tracer is None:
        return nullcontext()
    return tracer.span(name, **attrs)


# ----------------------------------------------------------------------
# Trace analysis
# ----------------------------------------------------------------------
def firing_counts(events: Iterable[dict]) -> dict[str, int]:
    """Per-rule firing counts from a trace: one per ``step`` event,
    plus the aggregated ``firings`` deltas the compiled backend emits.
    With sampling off, this matches the metrics registry's
    ``engine.rule_firings`` family exactly."""
    counts: dict[str, int] = {}
    for event in events:
        kind = event.get("ev")
        if kind == "step":
            rule = event["rule"]
            counts[rule] = counts.get(rule, 0) + 1
        elif kind == "firings":
            for rule, n in event["counts"].items():
                counts[rule] = counts.get(rule, 0) + n
    return counts


def read_trace(path) -> list[dict]:
    """Parse a JSONL trace file back into event dicts."""
    with open(path, encoding="utf-8") as handle:
        return [json.loads(line) for line in handle if line.strip()]
