"""OTLP/JSON export for JSONL traces.

Converts the tracer's event stream (span_start / span_end pairs plus
the point events inside them) into the OpenTelemetry Protocol's JSON
encoding — one ``{"resourceSpans": [...]}`` document per trace — so
any OTLP-speaking backend (Jaeger, Tempo, an OpenTelemetry collector)
can ingest ``repro`` traces without this repo growing a dependency.

The JSONL form keeps span ids as small process-local ints; the OTLP
form needs 16-hex ids that stay unique when several processes
contribute to one distributed trace, so :func:`to_otlp` takes the
originating tracer's ``span_hex`` mapping (a random per-process base)
and falls back to zero-padded ints for offline conversions of a single
process's trace file.

A span whose parent lives in *another* process (the daemon's
``serve.request`` under the client's span) carries the remote parent's
16-hex id in a ``remote_parent`` field on its ``span_start``; the
exported span keeps that ``parentSpanId`` and is stamped with a
``repro.parent.remote`` attribute so :func:`validate_otlp` knows the
dangling link is deliberate.

:class:`OTLPExporter` is the sink: one JSON document per line to a
file, or an HTTP POST per trace to an ``--otlp-endpoint`` (the
standard ``/v1/traces`` shape).  Export failures are recorded, never
raised — tracing must not take down serving.

Run ``python -m repro.obs.otlp trace.jsonl --out trace.otlp.json`` to
convert offline, or ``--validate`` to check the span-tree invariants
CI enforces.
"""

from __future__ import annotations

import json
import threading
import urllib.error
import urllib.request
from typing import Callable, Iterable, Optional

__all__ = [
    "OTLPExporter",
    "read_otlp_spans",
    "to_otlp",
    "validate_otlp",
]

_SPAN_KIND_INTERNAL = 1

#: span_start keys that are structural, not user attributes.
_RESERVED = {"ev", "span", "name", "ts", "parent", "remote_parent", "dur_us"}


def _attr_value(value) -> dict:
    if isinstance(value, bool):
        return {"boolValue": value}
    if isinstance(value, int):
        return {"intValue": str(value)}  # OTLP/JSON encodes int64 as string
    if isinstance(value, float):
        return {"doubleValue": value}
    return {"stringValue": str(value)}


def _attrs(mapping: dict) -> list[dict]:
    return [
        {"key": key, "value": _attr_value(value)}
        for key, value in sorted(mapping.items())
    ]


def _nanos(ts: float) -> str:
    return str(int(ts * 1e9))


def to_otlp(
    events: Iterable[dict],
    trace_id: str,
    span_hex: Optional[Callable[[int], str]] = None,
    resource: Optional[dict] = None,
) -> dict:
    """Build one OTLP/JSON trace document from JSONL trace events.

    ``span_hex`` maps process-local int span ids to 16-hex OTLP ids
    (pass the tracer's own mapping when exporting live; offline
    conversion defaults to zero-padded ints).  Point events become
    span events on their enclosing span; an unclosed span is exported
    with its start time as its end time rather than dropped.
    """
    if span_hex is None:
        span_hex = lambda sid: f"{sid:016x}"  # noqa: E731
    spans: dict[int, dict] = {}
    order: list[int] = []
    for event in events:
        kind = event.get("ev")
        sid = event.get("span")
        if kind == "span_start":
            record = {
                "traceId": trace_id,
                "spanId": span_hex(sid),
                "name": event.get("name", "span"),
                "kind": _SPAN_KIND_INTERNAL,
                "startTimeUnixNano": _nanos(event.get("ts", 0.0)),
                "endTimeUnixNano": _nanos(event.get("ts", 0.0)),
            }
            attrs = {
                key: value
                for key, value in event.items()
                if key not in _RESERVED
            }
            parent = event.get("parent")
            if parent is not None:
                record["parentSpanId"] = span_hex(parent)
            elif event.get("remote_parent"):
                record["parentSpanId"] = str(event["remote_parent"])
                attrs["repro.parent.remote"] = True
            record["attributes"] = _attrs(attrs)
            record["events"] = []
            spans[sid] = record
            order.append(sid)
        elif kind == "span_end":
            record = spans.get(sid)
            if record is not None:
                record["endTimeUnixNano"] = _nanos(event.get("ts", 0.0))
        elif kind is not None and sid in spans:
            fields = {
                key: value
                for key, value in event.items()
                if key not in ("ev", "span", "ts")
            }
            if kind == "firings":
                # The counts dict would explode into one attribute per
                # rule; total it and keep the detail in JSONL form.
                counts = fields.pop("counts", {})
                fields["firings"] = sum(counts.values())
                fields["rules"] = len(counts)
            spans[sid]["events"].append(
                {
                    "name": kind,
                    "timeUnixNano": _nanos(event.get("ts", 0.0)),
                    "attributes": _attrs(fields),
                }
            )
    resource_attrs = {"service.name": "repro"}
    if resource:
        resource_attrs.update(resource)
    return {
        "resourceSpans": [
            {
                "resource": {"attributes": _attrs(resource_attrs)},
                "scopeSpans": [
                    {
                        "scope": {"name": "repro.obs.trace", "version": "1"},
                        "spans": [spans[sid] for sid in order],
                    }
                ],
            }
        ]
    }


def read_otlp_spans(doc: dict) -> list[dict]:
    """Flatten an OTLP/JSON document to its span records."""
    spans: list[dict] = []
    for resource_spans in doc.get("resourceSpans", []):
        for scope_spans in resource_spans.get("scopeSpans", []):
            spans.extend(scope_spans.get("spans", []))
    return spans


def _has_attr(span: dict, key: str) -> bool:
    return any(attr.get("key") == key for attr in span.get("attributes", []))


def validate_otlp(doc: dict) -> list[str]:
    """Check the span-tree invariants CI enforces; returns the list of
    violations (empty means valid).

    * every span has a nonzero ``traceId``/``spanId``, and all spans in
      one document share the trace id;
    * every ``parentSpanId`` resolves to a span in the document, unless
      the span is explicitly marked ``repro.parent.remote`` (its parent
      lives in another process's export);
    * spans end no earlier than they start;
    * when the document contains ``serve.request`` spans, every
      ``worker.*`` span must sit under one — worker evaluation that
      doesn't nest under a request means context propagation broke.
    """
    problems: list[str] = []
    spans = read_otlp_spans(doc)
    if not spans:
        return ["document contains no spans"]
    by_id = {span.get("spanId"): span for span in spans}
    trace_ids = {span.get("traceId") for span in spans}
    if len(trace_ids) != 1:
        problems.append(f"mixed trace ids in one document: {sorted(trace_ids)}")
    for span in spans:
        name = span.get("name", "?")
        sid = span.get("spanId", "")
        if not sid or set(sid) == {"0"}:
            problems.append(f"span {name!r}: missing or zero spanId")
        if not span.get("traceId") or set(span.get("traceId", "")) == {"0"}:
            problems.append(f"span {name!r}: missing or zero traceId")
        parent = span.get("parentSpanId")
        if (
            parent is not None
            and parent not in by_id
            and not _has_attr(span, "repro.parent.remote")
        ):
            problems.append(
                f"span {name!r} ({sid}): parent {parent} not in document"
            )
        if int(span.get("endTimeUnixNano", 0)) < int(
            span.get("startTimeUnixNano", 0)
        ):
            problems.append(f"span {name!r} ({sid}): ends before it starts")
    has_requests = any(
        span.get("name") == "serve.request" for span in spans
    )
    if has_requests:
        for span in spans:
            if not str(span.get("name", "")).startswith("worker."):
                continue
            seen = set()
            cursor = span
            under_request = False
            while cursor is not None and cursor.get("spanId") not in seen:
                seen.add(cursor.get("spanId"))
                if cursor.get("name") == "serve.request":
                    under_request = True
                    break
                cursor = by_id.get(cursor.get("parentSpanId"))
            if not under_request:
                problems.append(
                    f"span {span.get('name')!r} ({span.get('spanId')}): "
                    "worker span not nested under a serve.request span"
                )
    return problems


class OTLPExporter:
    """Ships OTLP/JSON trace documents to a file sink or HTTP endpoint.

    ``path`` appends one JSON document per line (a JSONL stream of
    traces — the shape the CI artifact and the offline validator read);
    ``endpoint`` POSTs each document to an OTLP/HTTP collector's
    ``/v1/traces``.  Both may be set.  Failures increment ``errors``
    and are otherwise swallowed: the exporter sits on the daemon's
    request path and must never fail a request.
    """

    def __init__(
        self,
        path: Optional[str] = None,
        endpoint: Optional[str] = None,
        timeout: float = 2.0,
    ) -> None:
        if path is None and endpoint is None:
            raise ValueError("OTLPExporter needs a path or an endpoint")
        self.path = path
        self.endpoint = endpoint
        self.timeout = timeout
        self.exported = 0
        self.errors = 0
        self._lock = threading.Lock()

    def export(
        self,
        events: Iterable[dict],
        trace_id: str,
        span_hex: Optional[Callable[[int], str]] = None,
        resource: Optional[dict] = None,
    ) -> Optional[dict]:
        """Convert and ship one trace; returns the document (or None
        when there was nothing to export)."""
        doc = to_otlp(events, trace_id, span_hex=span_hex, resource=resource)
        if not read_otlp_spans(doc):
            return None
        payload = json.dumps(doc, separators=(",", ":"))
        with self._lock:
            try:
                if self.path is not None:
                    with open(self.path, "a", encoding="utf-8") as handle:
                        handle.write(payload + "\n")
                if self.endpoint is not None:
                    request = urllib.request.Request(
                        self.endpoint,
                        data=payload.encode("utf-8"),
                        headers={"Content-Type": "application/json"},
                        method="POST",
                    )
                    with urllib.request.urlopen(
                        request, timeout=self.timeout
                    ):
                        pass
                self.exported += 1
            except (OSError, urllib.error.URLError, ValueError):
                # fault-boundary: a full disk or unreachable collector
                # must cost a dropped trace, not a failed request.
                self.errors += 1
        return doc


def read_otlp_file(path: str) -> list[dict]:
    """Parse OTLP/JSON trace documents: line-delimited (the exporter's
    append format) or one pretty-printed document (``repro trace
    --otlp-out``)."""
    with open(path, encoding="utf-8") as handle:
        text = handle.read()
    try:
        return [
            json.loads(line) for line in text.splitlines() if line.strip()
        ]
    except ValueError:
        return [json.loads(text)]


def main(argv=None) -> int:
    """Offline convert/validate: ``python -m repro.obs.otlp``."""
    import argparse

    parser = argparse.ArgumentParser(
        description="Convert a JSONL trace to OTLP/JSON, or validate "
        "an OTLP/JSON trace file's span-tree invariants."
    )
    parser.add_argument("path", help="input trace file")
    parser.add_argument(
        "--out", default=None, help="write OTLP/JSON here (convert mode)"
    )
    parser.add_argument(
        "--validate",
        action="store_true",
        help="treat input as OTLP/JSON documents and validate them",
    )
    args = parser.parse_args(argv)

    if args.validate:
        docs = read_otlp_file(args.path)
        failures = 0
        total_spans = 0
        for index, doc in enumerate(docs):
            total_spans += len(read_otlp_spans(doc))
            for problem in validate_otlp(doc):
                print(f"trace[{index}]: {problem}")  # allow-print: CLI output
                failures += 1
        print(  # allow-print: CLI output
            f"{len(docs)} trace(s), {total_spans} span(s), "
            f"{failures} violation(s)"
        )
        return 1 if failures else 0

    from repro.obs.trace import new_trace_id, read_trace

    events = read_trace(args.path)
    doc = to_otlp(events, new_trace_id())
    problems = validate_otlp(doc)
    rendered = json.dumps(doc, indent=2)
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            handle.write(rendered + "\n")
        print(  # allow-print: CLI output
            f"wrote {len(read_otlp_spans(doc))} span(s) to {args.out}"
        )
    else:
        print(rendered)  # allow-print: CLI output
    for problem in problems:
        print(f"warning: {problem}")  # allow-print: CLI output
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
