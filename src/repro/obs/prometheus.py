"""Prometheus text exposition of metrics snapshots.

The ``repro serve`` daemon's ``/metrics`` endpoint renders the
process-wide :func:`repro.obs.metrics.aggregate_snapshot` in the
`Prometheus text exposition format
<https://prometheus.io/docs/instrumenting/exposition_formats/>`_ —
exposition format first, OTLP later, per the roadmap.  The renderer
works on *snapshot dicts* (the :meth:`MetricsRegistry.snapshot` shape),
not on live registries, so the same function serves a warm daemon, a
``--metrics-out`` file, and a worker snapshot shipped across a process
boundary.

Mapping:

* counters      → one sample per counter, name suffixed ``_total``;
* gauges        → one sample, name as-is;
* histograms    → cumulative ``_bucket{le=...}`` samples (including the
  mandatory ``le="+Inf"``) plus ``_sum`` and ``_count``;
* counter families → one metric with a ``key`` label per entry, values
  escaped per the exposition rules.

Metric names arrive dotted (``engine.rule_firings``); dots and any
other character outside ``[a-zA-Z0-9_:]`` become underscores, and a
``repro_`` namespace prefix keeps the daemon's metrics from colliding
with anything else a scraper ingests.
"""

from __future__ import annotations

import math
from typing import Optional

__all__ = ["render_prometheus"]

#: Characters legal in a Prometheus metric name (after the first, which
#: additionally may not be a digit — the ``repro_`` prefix handles that).
_NAME_OK = set("abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789_:")


def _metric_name(name: str, prefix: str) -> str:
    cleaned = "".join(c if c in _NAME_OK else "_" for c in name)
    return f"{prefix}{cleaned}"


def _escape_label(value: str) -> str:
    """Escape a label value per the exposition format: backslash,
    double-quote and newline."""
    return (
        value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
    )


def _format_value(value) -> str:
    if isinstance(value, bool):
        return "1" if value else "0"
    if isinstance(value, float):
        if math.isinf(value):
            return "+Inf" if value > 0 else "-Inf"
        if math.isnan(value):
            return "NaN"
        return repr(value)
    return str(value)


def render_prometheus(
    snapshot: dict, prefix: str = "repro_", help_text: Optional[dict] = None
) -> str:
    """Render a snapshot dict as Prometheus text exposition.

    ``help_text`` optionally maps *original* (dotted) metric names to
    HELP strings; metrics without an entry get a TYPE line only.
    Output ends with a newline, as scrapers expect.
    """
    help_text = help_text or {}
    lines: list[str] = []

    def header(original: str, name: str, kind: str) -> None:
        doc = help_text.get(original)
        if doc:
            lines.append(f"# HELP {name} {_escape_help(doc)}")
        lines.append(f"# TYPE {name} {kind}")

    for original, value in snapshot.get("counters", {}).items():
        name = _metric_name(original, prefix) + "_total"
        header(original, name, "counter")
        lines.append(f"{name} {_format_value(value)}")

    for original, value in snapshot.get("gauges", {}).items():
        name = _metric_name(original, prefix)
        header(original, name, "gauge")
        lines.append(f"{name} {_format_value(value)}")

    for original, hist in snapshot.get("histograms", {}).items():
        name = _metric_name(original, prefix)
        header(original, name, "histogram")
        cumulative = 0
        for bound, count in zip(hist["bounds"], hist["counts"]):
            cumulative += count
            lines.append(
                f'{name}_bucket{{le="{_format_value(float(bound))}"}} '
                f"{cumulative}"
            )
        lines.append(f'{name}_bucket{{le="+Inf"}} {hist["count"]}')
        lines.append(f"{name}_sum {_format_value(float(hist['sum']))}")
        lines.append(f"{name}_count {hist['count']}")

    for original, entries in snapshot.get("families", {}).items():
        name = _metric_name(original, prefix) + "_total"
        header(original, name, "counter")
        for key, count in entries.items():
            lines.append(
                f'{name}{{key="{_escape_label(str(key))}"}} '
                f"{_format_value(count)}"
            )

    return "\n".join(lines) + "\n"


def _escape_help(text: str) -> str:
    return text.replace("\\", "\\\\").replace("\n", "\\n")
