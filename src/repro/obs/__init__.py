"""Observability: metrics, span tracing, and profiling.

Guttag's abstract-data-type programme trades efficiency for abstraction
— symbolic interpretation runs the specification directly, "at a
significant loss in efficiency".  This package makes that loss *visible*
without adding dependencies or measurable overhead when disabled:

* :mod:`repro.obs.metrics` — a registry of counters, gauges,
  histograms and labelled counter families.  Engine statistics
  (:class:`repro.rewriting.engine.EngineStats`) are now views over a
  per-engine registry; process-wide substrate counters (intern table,
  discrimination-tree shape memo) live in :data:`repro.obs.metrics.GLOBAL`;
  :func:`repro.obs.metrics.aggregate_snapshot` merges everything for
  ``--metrics-out``.
* :mod:`repro.obs.trace` — a span tracer emitting JSONL events
  (span start/end, rewrite steps with rule id and subject summary,
  budget exhaustions, fault hits) behind a deterministic sampling knob.
  Disabled is the default, and the disabled check is one ``is None``
  test on a module global.
* :mod:`repro.obs.profile` — post-processing of traces into a
  per-rule self-time profile: which axiom costs the most.
"""

from repro.obs.metrics import (
    EVAL_SECONDS_BUCKETS,
    FUEL_BUCKETS,
    GLOBAL,
    Counter,
    CounterFamily,
    Gauge,
    Histogram,
    MetricsRegistry,
    aggregate_snapshot,
    histogram_quantile,
    merge_snapshots,
    register_snapshot_source,
    substrate_counters,
    suggest_fuel_budget,
)
from repro.obs.profile import profile_diff, rule_profile, top_rules
from repro.obs.prometheus import render_prometheus
from repro.obs.trace import (
    Tracer,
    firing_counts,
    install,
    maybe_span,
    read_trace,
    rule_id,
    tracing,
)

__all__ = [
    "Counter",
    "CounterFamily",
    "EVAL_SECONDS_BUCKETS",
    "FUEL_BUCKETS",
    "GLOBAL",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "Tracer",
    "aggregate_snapshot",
    "firing_counts",
    "histogram_quantile",
    "install",
    "maybe_span",
    "merge_snapshots",
    "profile_diff",
    "register_snapshot_source",
    "render_prometheus",
    "read_trace",
    "rule_id",
    "rule_profile",
    "substrate_counters",
    "suggest_fuel_budget",
    "top_rules",
    "tracing",
]
