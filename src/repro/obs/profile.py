"""Per-rule self-time attribution: "which axiom costs the most".

A trace (see :mod:`repro.obs.trace`) carries timestamps on every event.
Within one span, the interval from a ``step`` event to the next event
boundary (the following step, or the span's end) is time spent building
and reducing the fired rule's right-hand side — so it is attributed to
that rule as *self time*.  The compiled backend's aggregated ``firings``
events carry no per-step timestamps; their rules receive a share of the
enclosing span's duration proportional to their firing counts, which is
an estimate (and flagged as such in the profile rows).

The result is deliberately a plain list of dicts — JSON-ready for
``--metrics-out``-style dumps and directly renderable by
:func:`repro.report.pretty.format_rule_profile`.
"""

from __future__ import annotations

from typing import Iterable, Optional

__all__ = ["rule_profile", "top_rules"]


def rule_profile(events: Iterable[dict]) -> list[dict]:
    """Aggregate a trace into per-rule rows.

    Returns rows ``{"rule", "firings", "self_s", "share", "estimated"}``
    sorted by self time (then firings) descending.  ``share`` is the
    fraction of the profile's total self time; ``estimated`` is True
    when any of the rule's time came from proportional attribution of a
    compiled ``firings`` event rather than step timestamps.
    """
    events = list(events)
    span_end: dict = {}
    for event in events:
        if event.get("ev") == "span_end" and "span" in event:
            span_end[event["span"]] = event

    firings: dict[str, int] = {}
    self_s: dict[str, float] = {}
    estimated: dict[str, bool] = {}

    def charge(rule: str, count: int, seconds: float, est: bool) -> None:
        firings[rule] = firings.get(rule, 0) + count
        self_s[rule] = self_s.get(rule, 0.0) + seconds
        estimated[rule] = estimated.get(rule, False) or est

    # Exact attribution: step-to-next-boundary deltas within a span.
    steps_by_span: dict = {}
    for event in events:
        if event.get("ev") == "step":
            steps_by_span.setdefault(event.get("span"), []).append(event)
    for span, steps in steps_by_span.items():
        steps.sort(key=lambda e: e["ts"])
        end = span_end.get(span)
        for i, step in enumerate(steps):
            if i + 1 < len(steps):
                boundary = steps[i + 1]["ts"]
            elif end is not None:
                boundary = end["ts"]
            else:  # span never closed (error unwind): no interval
                boundary = step["ts"]
            charge(step["rule"], 1, max(0.0, boundary - step["ts"]), False)

    # Proportional attribution for the compiled backend's aggregates.
    for event in events:
        if event.get("ev") != "firings":
            continue
        counts = event["counts"]
        total = sum(counts.values())
        end = span_end.get(event.get("span"))
        duration = (end["dur_us"] / 1e6) if end is not None else 0.0
        for rule, count in counts.items():
            charge(rule, count, duration * count / total, True)

    grand_total = sum(self_s.values())
    rows = [
        {
            "rule": rule,
            "firings": firings[rule],
            "self_s": round(self_s[rule], 9),
            "share": round(self_s[rule] / grand_total, 4)
            if grand_total > 0
            else 0.0,
            "estimated": estimated[rule],
        }
        for rule in firings
    ]
    rows.sort(key=lambda r: (-r["self_s"], -r["firings"], r["rule"]))
    return rows


def top_rules(
    events: Iterable[dict], limit: Optional[int] = 10
) -> list[dict]:
    """The ``limit`` most expensive rules of a trace (all, if None)."""
    rows = rule_profile(events)
    return rows if limit is None else rows[:limit]
