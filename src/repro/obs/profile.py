"""Per-rule self-time attribution: "which axiom costs the most".

A trace (see :mod:`repro.obs.trace`) carries timestamps on every event.
Within one span, the interval from a ``step`` event to the next event
boundary (the following step, or the span's end) is time spent building
and reducing the fired rule's right-hand side — so it is attributed to
that rule as *self time*.  The compiled backend's aggregated ``firings``
events carry no per-step timestamps; their rules receive a share of the
enclosing span's duration proportional to their firing counts, which is
an estimate (and flagged as such in the profile rows).

The result is deliberately a plain list of dicts — JSON-ready for
``--metrics-out``-style dumps and directly renderable by
:func:`repro.report.pretty.format_rule_profile`.
"""

from __future__ import annotations

from typing import Iterable, Optional

__all__ = ["profile_diff", "rule_profile", "top_rules"]


def rule_profile(events: Iterable[dict]) -> list[dict]:
    """Aggregate a trace into per-rule rows.

    Returns rows ``{"rule", "firings", "self_s", "share", "estimated"}``
    sorted by self time (then firings) descending.  ``share`` is the
    fraction of the profile's total self time; ``estimated`` is True
    when any of the rule's time came from proportional attribution of a
    compiled ``firings`` event rather than step timestamps.
    """
    events = list(events)
    span_end: dict = {}
    for event in events:
        if event.get("ev") == "span_end" and "span" in event:
            span_end[event["span"]] = event

    firings: dict[str, int] = {}
    self_s: dict[str, float] = {}
    estimated: dict[str, bool] = {}

    def charge(rule: str, count: int, seconds: float, est: bool) -> None:
        firings[rule] = firings.get(rule, 0) + count
        self_s[rule] = self_s.get(rule, 0.0) + seconds
        estimated[rule] = estimated.get(rule, False) or est

    # Exact attribution: step-to-next-boundary deltas within a span.
    steps_by_span: dict = {}
    for event in events:
        if event.get("ev") == "step":
            steps_by_span.setdefault(event.get("span"), []).append(event)
    for span, steps in steps_by_span.items():
        steps.sort(key=lambda e: e["ts"])
        end = span_end.get(span)
        for i, step in enumerate(steps):
            if i + 1 < len(steps):
                boundary = steps[i + 1]["ts"]
            elif end is not None:
                boundary = end["ts"]
            else:  # span never closed (error unwind): no interval
                boundary = step["ts"]
            charge(step["rule"], 1, max(0.0, boundary - step["ts"]), False)

    # Proportional attribution for the compiled backend's aggregates.
    for event in events:
        if event.get("ev") != "firings":
            continue
        counts = event["counts"]
        total = sum(counts.values())
        end = span_end.get(event.get("span"))
        duration = (end["dur_us"] / 1e6) if end is not None else 0.0
        for rule, count in counts.items():
            charge(rule, count, duration * count / total, True)

    grand_total = sum(self_s.values())
    rows = [
        {
            "rule": rule,
            "firings": firings[rule],
            "self_s": round(self_s[rule], 9),
            "share": round(self_s[rule] / grand_total, 4)
            if grand_total > 0
            else 0.0,
            "estimated": estimated[rule],
        }
        for rule in firings
    ]
    rows.sort(key=lambda r: (-r["self_s"], -r["firings"], r["rule"]))
    return rows


def top_rules(
    events: Iterable[dict], limit: Optional[int] = 10
) -> list[dict]:
    """The ``limit`` most expensive rules of a trace (all, if None)."""
    rows = rule_profile(events)
    return rows if limit is None else rows[:limit]


def profile_diff(
    events_a: Iterable[dict], events_b: Iterable[dict]
) -> list[dict]:
    """Per-rule deltas between two traces (``b`` minus ``a``).

    Profiles both traces with :func:`rule_profile` and joins the rows by
    rule id.  Each output row carries both sides' firing counts and self
    times plus the deltas, so an A/B comparison (two backends, or a
    before/after of one optimisation) reads directly as "rule X fired
    the same but got 40% cheaper".  Rules present in only one trace
    appear with zeros on the other side.  Rows are sorted by
    ``abs(self_s_delta)`` (then ``abs(firings_delta)``) descending —
    the biggest movers first, in either direction.
    """
    rows_a = {row["rule"]: row for row in rule_profile(events_a)}
    rows_b = {row["rule"]: row for row in rule_profile(events_b)}
    diff = []
    for rule in rows_a.keys() | rows_b.keys():
        a = rows_a.get(rule)
        b = rows_b.get(rule)
        firings_a = a["firings"] if a else 0
        firings_b = b["firings"] if b else 0
        self_a = a["self_s"] if a else 0.0
        self_b = b["self_s"] if b else 0.0
        diff.append(
            {
                "rule": rule,
                "firings_a": firings_a,
                "firings_b": firings_b,
                "firings_delta": firings_b - firings_a,
                "self_s_a": self_a,
                "self_s_b": self_b,
                "self_s_delta": round(self_b - self_a, 9),
                "estimated": bool(a and a["estimated"])
                or bool(b and b["estimated"]),
            }
        )
    diff.sort(
        key=lambda r: (
            -abs(r["self_s_delta"]),
            -abs(r["firings_delta"]),
            r["rule"],
        )
    )
    return diff
