"""The metrics registry: counters, gauges, histograms, counter families.

Zero-dependency, and cheap enough to stay on in the hot path.  The core
trick is the one :class:`~repro.runtime.budget.BudgetMeter` plays with
fuel: a :class:`Counter` owns a one-element list, and hot code pre-binds
that list into a local (``hits = counter.slot``) and increments
``hits[0] += 1`` inline — no attribute lookup, no method call, no
registry involvement per event.  A counter can also *adopt* a slot that
already exists, which is how the process-wide substrate counters work:
:mod:`repro.algebra.terms` and :mod:`repro.rewriting.rules` own bare
module-level list cells (so the bottom layers import nothing from the
observability layer), and :data:`GLOBAL` wraps them at import time.

Registries come in two scopes:

* :data:`GLOBAL` — one per process, holding the substrate metrics
  (intern-table hits/misses, discrimination-tree shape-memo hits/misses,
  live intern-table size);
* one per engine — every
  :class:`~repro.rewriting.engine.EngineStats` owns a private registry
  with the engine's counters (steps, firings, memo traffic, fallbacks,
  outcome statuses, fuel spent, an evaluation-latency histogram) and the
  per-rule firing :class:`CounterFamily`.

Every registry is tracked in a weak set, and
:func:`aggregate_snapshot` merges the lot — the process-wide view the
CLI's ``--metrics-out`` dumps.
"""

from __future__ import annotations

import weakref
from bisect import bisect_left
from typing import Callable, Iterable, Optional, Sequence

__all__ = [
    "Counter",
    "CounterFamily",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "GLOBAL",
    "EVAL_SECONDS_BUCKETS",
    "FUEL_BUCKETS",
    "aggregate_snapshot",
    "histogram_quantile",
    "merge_snapshots",
    "register_snapshot_source",
    "substrate_counters",
    "suggest_fuel_budget",
]

#: Fixed bucket boundaries (seconds) for evaluation-latency histograms.
#: Fixed rather than adaptive so snapshots from different runs, engines
#: and processes are directly comparable, bucket by bucket.
EVAL_SECONDS_BUCKETS = (1e-5, 1e-4, 1e-3, 1e-2, 0.1, 1.0, 10.0)

#: Fixed bucket boundaries (rewrite steps) for the per-evaluation fuel
#: histogram — roughly geometric, resolving both the single-digit spends
#: of memo-warm drains and six-figure pathological evaluations.
FUEL_BUCKETS = (
    1, 2, 4, 8, 16, 32, 64, 128, 256, 1024, 4096, 16384, 65536, 262144
)


class Counter:
    """A monotonically increasing count.

    ``slot`` is the one-element backing list; hot paths bind it into a
    local and increment ``slot[0]`` directly.  Pass an existing list to
    adopt a slot owned elsewhere (the substrate counters).
    """

    __slots__ = ("name", "help", "slot")

    def __init__(
        self, name: str, help: str = "", slot: Optional[list] = None
    ) -> None:
        self.name = name
        self.help = help
        self.slot = [0] if slot is None else slot

    def inc(self, amount: int = 1) -> None:
        self.slot[0] += amount

    @property
    def value(self) -> int:
        return self.slot[0]

    def reset(self) -> None:
        self.slot[0] = 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Counter({self.name}={self.slot[0]})"


class Gauge:
    """A point-in-time value: set directly, or computed by a callable
    at snapshot time (``fn``) for values the process already tracks,
    like the live intern-table size."""

    __slots__ = ("name", "help", "_value", "fn")

    def __init__(
        self,
        name: str,
        help: str = "",
        fn: Optional[Callable[[], float]] = None,
    ) -> None:
        self.name = name
        self.help = help
        self.fn = fn
        self._value: float = 0

    def set(self, value: float) -> None:
        self._value = value

    @property
    def value(self) -> float:
        return self.fn() if self.fn is not None else self._value

    def reset(self) -> None:
        self._value = 0


class Histogram:
    """Counts of observations in fixed, cumulative-comparable buckets.

    ``bounds`` are the upper bucket boundaries; observations above the
    last bound land in the overflow bucket.  ``sum``/``count`` allow
    mean latency to be derived from a snapshot.
    """

    __slots__ = (
        "name", "help", "bounds", "counts", "sum", "count", "exemplars"
    )

    def __init__(
        self, name: str, bounds: Sequence[float], help: str = ""
    ) -> None:
        if list(bounds) != sorted(bounds):
            raise ValueError("histogram bounds must be sorted")
        self.name = name
        self.help = help
        self.bounds = tuple(bounds)
        self.counts = [0] * (len(self.bounds) + 1)
        self.sum = 0.0
        self.count = 0
        #: Per-bucket exemplars (bucket index -> label dict): the most
        #: recent traced observation that landed in each bucket, so an
        #: operator staring at a latency bucket can jump straight to a
        #: representative trace.  Populated only by callers that pass
        #: ``exemplar=`` — the plain hot path stores nothing.
        self.exemplars: dict[int, dict] = {}

    def observe(self, value: float, exemplar: Optional[dict] = None) -> None:
        # bisect_left gives Prometheus-style ``le`` buckets: a value
        # equal to a bound counts in that bound's bucket.
        index = bisect_left(self.bounds, value)
        self.counts[index] += 1
        self.sum += value
        self.count += 1
        if exemplar is not None:
            self.exemplars[index] = {**exemplar, "value": value}

    def reset(self) -> None:
        self.counts = [0] * (len(self.bounds) + 1)
        self.sum = 0.0
        self.count = 0
        self.exemplars = {}

    def snapshot(self) -> dict:
        snap = {
            "bounds": list(self.bounds),
            "counts": list(self.counts),
            "sum": round(self.sum, 9),
            "count": self.count,
        }
        # Only histograms that actually carry exemplars grow the key, so
        # snapshot shapes (and every test comparing them) are unchanged
        # for the rest of the fleet.
        if self.exemplars:
            snap["exemplars"] = {
                str(index): dict(labels)
                for index, labels in sorted(self.exemplars.items())
            }
        return snap


class CounterFamily:
    """A set of counters distinguished by a label key — e.g. rule
    firings per rewrite rule, outcome counts per status.

    ``counts`` is a plain dict (label object → int): hot paths update it
    with one ``dict.get``/store, and callers that used to hold the old
    ``EngineStats.firings_by_rule`` dict hold exactly this object.
    Snapshots stringify the keys (rules render as ``[label] lhs ->
    rhs``), keeping the JSON form stable and readable.
    """

    __slots__ = ("name", "help", "counts")

    def __init__(self, name: str, help: str = "") -> None:
        self.name = name
        self.help = help
        self.counts: dict = {}

    def inc(self, key: object, amount: int = 1) -> None:
        counts = self.counts
        counts[key] = counts.get(key, 0) + amount

    def get(self, key: object) -> int:
        return self.counts.get(key, 0)

    @property
    def total(self) -> int:
        return sum(self.counts.values())

    def reset(self) -> None:
        self.counts.clear()

    def ranked(self, limit: Optional[int] = None) -> list:
        """(key, count) pairs, busiest first, ties broken by rendering."""
        ranked = sorted(
            self.counts.items(), key=lambda kv: (-kv[1], str(kv[0]))
        )
        return ranked if limit is None else ranked[:limit]

    def summary(self, limit: Optional[int] = None) -> str:
        """A repr-stable rendering: busiest labels first, each line
        ``<count>  <label>``."""
        lines = [f"{count:>8}  {key}" for key, count in self.ranked(limit)]
        return "\n".join(lines) if lines else "(no rule firings recorded)"

    def snapshot(self) -> dict:
        return {str(key): count for key, count in self.ranked()}


def histogram_quantile(histogram, q: float) -> Optional[float]:
    """The upper bucket bound covering quantile ``q`` of observations.

    Accepts a live :class:`Histogram` or a ``snapshot()`` dict (also the
    aggregated form), so it works on in-process engines and on metrics
    files alike.  Returns ``None`` when the histogram is empty or the
    quantile falls in the overflow bucket (no finite bound covers it) —
    callers must treat that as "no estimate", not zero.
    """
    if not 0.0 <= q <= 1.0:
        raise ValueError(f"quantile must be in [0, 1], got {q!r}")
    if isinstance(histogram, Histogram):
        bounds, counts, total = (
            histogram.bounds,
            histogram.counts,
            histogram.count,
        )
    else:
        bounds = histogram["bounds"]
        counts = histogram["counts"]
        total = histogram["count"]
    if not total:
        return None
    need = q * total
    cumulative = 0
    for bound, count in zip(bounds, counts):
        cumulative += count
        if cumulative >= need:
            return bound
    return None  # the quantile lives in the overflow bucket


def suggest_fuel_budget(
    histogram, quantile: float = 0.99, margin: float = 2.0
) -> Optional[int]:
    """A fuel budget suggestion from observed per-evaluation spends:
    the ``quantile`` bucket bound of the ``engine.fuel_per_eval``
    histogram times a safety ``margin`` (headroom for workloads slightly
    heavier than those observed).  ``None`` when there is no data — or
    when the tail escapes the finite buckets, in which case no budget
    derived from this histogram would be trustworthy.
    """
    estimate = histogram_quantile(histogram, quantile)
    if estimate is None:
        return None
    return max(1, int(estimate * margin))


#: Every live registry, for :func:`aggregate_snapshot`.
_REGISTRIES: "weakref.WeakSet[MetricsRegistry]" = weakref.WeakSet()

#: External snapshot providers — objects with a ``metrics_snapshot()``
#: method returning a plain snapshot dict.  The sharded evaluation pool
#: registers itself here so metrics shipped home from worker *processes*
#: (which no live registry in this process can see) still appear in the
#: process-wide :func:`aggregate_snapshot` view.
_SNAPSHOT_SOURCES: "weakref.WeakSet" = weakref.WeakSet()


def register_snapshot_source(source) -> None:
    """Track ``source`` (weakly) as an external snapshot provider.

    ``source.metrics_snapshot()`` must return a snapshot dict in the
    :meth:`MetricsRegistry.snapshot` shape; it is consulted by
    :func:`aggregate_snapshot` whenever the process-wide view is built.
    """
    _SNAPSHOT_SOURCES.add(source)


class MetricsRegistry:
    """A named collection of metrics with get-or-create accessors.

    All accessors are idempotent: asking for an existing name returns
    the existing metric (and ignores the creation arguments), so
    modules can declare the metrics they touch without coordinating.
    """

    __slots__ = (
        "name",
        "counters",
        "gauges",
        "histograms",
        "families",
        "__weakref__",
    )

    def __init__(self, name: str = "") -> None:
        self.name = name
        self.counters: dict[str, Counter] = {}
        self.gauges: dict[str, Gauge] = {}
        self.histograms: dict[str, Histogram] = {}
        self.families: dict[str, CounterFamily] = {}
        _REGISTRIES.add(self)

    # -- get-or-create accessors ---------------------------------------
    def counter(
        self, name: str, help: str = "", slot: Optional[list] = None
    ) -> Counter:
        metric = self.counters.get(name)
        if metric is None:
            metric = self.counters[name] = Counter(name, help, slot)
        return metric

    def gauge(
        self,
        name: str,
        help: str = "",
        fn: Optional[Callable[[], float]] = None,
    ) -> Gauge:
        metric = self.gauges.get(name)
        if metric is None:
            metric = self.gauges[name] = Gauge(name, help, fn)
        return metric

    def histogram(
        self,
        name: str,
        bounds: Sequence[float] = EVAL_SECONDS_BUCKETS,
        help: str = "",
    ) -> Histogram:
        metric = self.histograms.get(name)
        if metric is None:
            metric = self.histograms[name] = Histogram(name, bounds, help)
        return metric

    def family(self, name: str, help: str = "") -> CounterFamily:
        metric = self.families.get(name)
        if metric is None:
            metric = self.families[name] = CounterFamily(name, help)
        return metric

    # -- lifecycle ------------------------------------------------------
    def reset(self) -> None:
        for group in (
            self.counters,
            self.gauges,
            self.histograms,
            self.families,
        ):
            for metric in group.values():
                metric.reset()

    def snapshot(self) -> dict:
        """A JSON-ready view of every metric in this registry."""
        return {
            "counters": {
                name: c.value for name, c in sorted(self.counters.items())
            },
            "gauges": {
                name: g.value for name, g in sorted(self.gauges.items())
            },
            "histograms": {
                name: h.snapshot()
                for name, h in sorted(self.histograms.items())
            },
            "families": {
                name: f.snapshot()
                for name, f in sorted(self.families.items())
            },
        }


def merge_snapshots(snapshots: Iterable[dict]) -> dict:
    """Merge plain snapshot dicts (the :meth:`MetricsRegistry.snapshot`
    shape) into one.

    Counters, histogram buckets and family labels sum; gauges keep the
    last value seen.  The inputs are ordinary JSON-compatible dicts, so
    this works equally on live in-process snapshots and on snapshots
    deserialised from another process (the sharded evaluation pool ships
    worker snapshots home through exactly this function).  Histograms
    only merge bucket-by-bucket when their bounds agree — a snapshot
    with different bounds replaces rather than corrupts.
    """
    counters: dict[str, int] = {}
    gauges: dict[str, float] = {}
    histograms: dict[str, dict] = {}
    families: dict[str, dict[str, int]] = {}
    for snap in snapshots:
        for name, value in snap.get("counters", {}).items():
            counters[name] = counters.get(name, 0) + value
        gauges.update(snap.get("gauges", {}))
        for name, hist in snap.get("histograms", {}).items():
            merged = histograms.get(name)
            if merged is None or merged["bounds"] != list(hist["bounds"]):
                histograms[name] = {
                    "bounds": list(hist["bounds"]),
                    "counts": list(hist["counts"]),
                    "sum": hist["sum"],
                    "count": hist["count"],
                }
                if hist.get("exemplars"):
                    histograms[name]["exemplars"] = dict(hist["exemplars"])
                continue
            merged["counts"] = [
                a + b for a, b in zip(merged["counts"], hist["counts"])
            ]
            merged["sum"] = round(merged["sum"] + hist["sum"], 9)
            merged["count"] += hist["count"]
            if hist.get("exemplars"):
                merged.setdefault("exemplars", {}).update(hist["exemplars"])
        for name, labels in snap.get("families", {}).items():
            merged_family = families.setdefault(name, {})
            for label, count in labels.items():
                merged_family[label] = merged_family.get(label, 0) + count
    return {
        "counters": dict(sorted(counters.items())),
        "gauges": dict(sorted(gauges.items())),
        "histograms": dict(sorted(histograms.items())),
        "families": {
            name: dict(
                sorted(labels.items(), key=lambda kv: (-kv[1], kv[0]))
            )
            for name, labels in sorted(families.items())
        },
    }


def aggregate_snapshot(
    registries: Optional[Iterable[MetricsRegistry]] = None,
) -> dict:
    """Merge snapshots across registries (default: every live one).

    Counters, histogram buckets and family labels sum; gauges keep the
    last value seen (only the global registry carries gauges in
    practice).  This is the process-wide view ``--metrics-out`` writes:
    one engine or fifty, the metric names stay the same.  With no
    explicit ``registries``, snapshots from registered external sources
    (worker processes of a live shard pool) are folded in too.
    """
    snapshots = []
    if registries is None:
        snapshots.extend(r.snapshot() for r in list(_REGISTRIES))
        for source in list(_SNAPSHOT_SOURCES):
            try:
                snapshots.append(source.metrics_snapshot())
            except Exception:  # fault-boundary: a dying pool must not
                pass  # take the process-wide metrics view down with it
    else:
        snapshots.extend(r.snapshot() for r in registries)
    return merge_snapshots(snapshots)


# ----------------------------------------------------------------------
# The global registry: process-wide substrate metrics
# ----------------------------------------------------------------------
# The bottom layers own bare list cells (no imports from here); the
# global registry adopts them, so `GLOBAL.snapshot()` sees every term
# construction and index lookup in the process.

from repro.algebra import terms as _terms  # noqa: E402
from repro.rewriting import rules as _rules  # noqa: E402

#: The process-wide registry (substrate metrics live here).
GLOBAL = MetricsRegistry("global")
GLOBAL.counter(
    "intern.hits",
    "term constructions answered from the hash-consing table",
    slot=_terms.INTERN_HITS,
)
GLOBAL.counter(
    "intern.misses",
    "term constructions that allocated and interned a fresh node",
    slot=_terms.INTERN_MISSES,
)
GLOBAL.counter(
    "rule_index.shape_memo_hits",
    "discrimination-tree candidate lookups answered from the shape memo",
    slot=_rules.SHAPE_MEMO_HITS,
)
GLOBAL.counter(
    "rule_index.shape_memo_misses",
    "discrimination-tree candidate lookups that walked the tree",
    slot=_rules.SHAPE_MEMO_MISSES,
)
GLOBAL.gauge(
    "intern.table_size",
    "live hash-consed terms",
    fn=_terms.intern_table_size,
)


def substrate_counters() -> dict[str, int]:
    """The process-wide substrate counters as plain ints — convenient
    for before/after deltas in benchmarks and tests."""
    return {name: c.value for name, c in sorted(GLOBAL.counters.items())}
