"""Critical pairs between rewrite rules.

When two axioms' left-hand sides *overlap* — one unifies with a
non-variable subterm of the other — a single term can be rewritten two
different ways.  The pair of results is a *critical pair*; if some pair
cannot be rewritten back together (is not *joinable*), the two axioms
genuinely disagree and the specification is inconsistent.  The
consistency analysis (:mod:`repro.analysis.consistency`) is built on
this module.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator

from repro.algebra.terms import App, Ite, Position, Term
from repro.algebra.unification import rename_apart, unify
from repro.rewriting.rules import RewriteRule, RuleSet


@dataclass(frozen=True)
class CriticalPair:
    """Two one-step results of rewriting the same overlapped term."""

    left: Term
    right: Term
    overlap: Term
    position: Position
    outer_rule: RewriteRule
    inner_rule: RewriteRule

    @property
    def is_trivial(self) -> bool:
        return self.left == self.right

    def __str__(self) -> str:
        return (
            f"<{self.left} , {self.right}> from {self.overlap} "
            f"(rules {self.outer_rule.label or self.outer_rule.head.name} / "
            f"{self.inner_rule.label or self.inner_rule.head.name})"
        )


def _non_variable_positions(term: Term) -> Iterator[tuple[Position, Term]]:
    for position, node in term.subterms():
        if isinstance(node, (App, Ite)):
            yield position, node


def critical_pairs_between(
    outer: RewriteRule, inner: RewriteRule, include_root_self: bool = False
) -> Iterator[CriticalPair]:
    """Critical pairs from overlapping ``inner``'s LHS into ``outer``'s.

    A rule trivially overlaps itself at the root; that overlap is skipped
    unless ``include_root_self`` is set (it only yields the trivial pair).
    """
    taken = outer.lhs.variables() | outer.rhs.variables()
    renamed_lhs, renaming = rename_apart(inner.lhs, taken)
    renamed_rhs = renaming.apply(inner.rhs)

    same_rule = outer.lhs == inner.lhs and outer.rhs == inner.rhs
    for position, subterm in _non_variable_positions(outer.lhs):
        if same_rule and position == () and not include_root_self:
            continue
        unifier = unify(subterm, renamed_lhs)
        if unifier is None:
            continue
        overlap = unifier.apply(outer.lhs)
        left = unifier.apply(outer.rhs)
        right = unifier.apply(outer.lhs.replace_at(position, renamed_rhs))
        yield CriticalPair(left, right, overlap, position, outer, inner)


def all_critical_pairs(rules: Iterable[RewriteRule]) -> list[CriticalPair]:
    """Every critical pair among ``rules`` (both overlap directions)."""
    rule_list = list(rules)
    pairs: list[CriticalPair] = []
    for outer in rule_list:
        for inner in rule_list:
            pairs.extend(critical_pairs_between(outer, inner))
    return pairs


def joinable(pair: CriticalPair, engine) -> bool:
    """True when both sides of ``pair`` simplify to the same term.

    Symbolic simplification (not just value-mode normalisation) is used
    because critical pairs generally contain variables.
    """
    return engine.simplify(pair.left) == engine.simplify(pair.right)


def unjoinable_pairs(ruleset: RuleSet, engine) -> list[CriticalPair]:
    """The critical pairs of ``ruleset`` that fail to join."""
    return [
        pair
        for pair in all_critical_pairs(ruleset)
        if not pair.is_trivial and not joinable(pair, engine)
    ]
