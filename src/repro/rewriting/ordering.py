"""Term orderings for termination analysis.

The engine orients axioms left-to-right; to *argue* that this never
loops, we check the oriented rules against a recursive path ordering
(RPO, lexicographic status).  The precedence puts defined operations
above the constructors they are defined over, which matches the
definitional shape of Guttag's axiom sets, so each rule strictly
decreases and the system terminates.

``if-then-else`` is treated as a ternary symbol of minimal precedence;
literals, errors and variables are minimal elements.
"""

from __future__ import annotations

from typing import Iterable, Mapping, Optional

from repro.algebra.signature import Operation
from repro.algebra.terms import App, Err, Ite, Lit, Term, Var
from repro.spec.axioms import Axiom
from repro.rewriting.rules import RewriteRule

#: Symbolic names used in the precedence map for non-operation nodes.
ITE_SYMBOL = "__ite__"


class Precedence:
    """A strict precedence on operation names.

    Bigger rank = bigger symbol.  Names missing from the map share the
    minimal rank (they compare equal, not less).
    """

    def __init__(self, ranks: Mapping[str, int]) -> None:
        self._ranks = dict(ranks)

    def rank(self, name: str) -> int:
        return self._ranks.get(name, 0)

    def greater(self, left: str, right: str) -> bool:
        return self.rank(left) > self.rank(right)

    def equal(self, left: str, right: str) -> bool:
        return self.rank(left) == self.rank(right)

    @classmethod
    def from_layers(cls, layers: Iterable[Iterable[str]]) -> "Precedence":
        """Build a precedence from low-to-high layers of names."""
        ranks: dict[str, int] = {}
        for level, layer in enumerate(layers, start=1):
            for name in layer:
                ranks[name] = level
        return cls(ranks)

    @classmethod
    def definitional(
        cls,
        constructors: Iterable[Operation],
        defined: Iterable[Operation],
    ) -> "Precedence":
        """Constructors low, defined operations high, ``if`` minimal."""
        return cls.from_layers(
            [
                [ITE_SYMBOL],
                [op.name for op in constructors],
                [op.name for op in defined],
            ]
        )


def _symbol(term: Term) -> Optional[str]:
    if isinstance(term, App):
        return term.op.name
    if isinstance(term, Ite):
        return ITE_SYMBOL
    return None


def rpo_greater(left: Term, right: Term, precedence: Precedence) -> bool:
    """``left >_rpo right`` under the lexicographic recursive path ordering."""
    if isinstance(right, Var):
        return right in left.variables() and left != right
    if isinstance(left, (Var, Lit, Err)):
        return False
    if isinstance(right, (Lit, Err)):
        # Leaves other than variables are minimal; any application that
        # is not itself a leaf dominates them.
        return True

    left_sym = _symbol(left)
    right_sym = _symbol(right)
    assert left_sym is not None and right_sym is not None
    left_args = left.children()
    right_args = right.children()

    # Case 1: some argument of left already dominates (or equals) right.
    if any(arg == right or rpo_greater(arg, right, precedence) for arg in left_args):
        return True
    # Case 2: head precedence strictly greater — left must dominate every
    # argument of right.
    if precedence.greater(left_sym, right_sym):
        return all(rpo_greater(left, arg, precedence) for arg in right_args)
    # Case 3: equal precedence — lexicographic comparison of arguments,
    # and left must dominate every argument of right.
    if precedence.equal(left_sym, right_sym):
        if not all(rpo_greater(left, arg, precedence) for arg in right_args):
            return False
        for l_arg, r_arg in zip(left_args, right_args):
            if l_arg == r_arg:
                continue
            return rpo_greater(l_arg, r_arg, precedence)
        return len(left_args) > len(right_args)
    return False


def rule_decreases(rule: RewriteRule, precedence: Precedence) -> bool:
    """True when the rule's LHS strictly dominates its RHS under RPO."""
    return rpo_greater(rule.lhs, rule.rhs, precedence)


def orient(
    axiom: Axiom, precedence: Precedence
) -> Optional[RewriteRule]:
    """Orient ``axiom`` into a decreasing rule, either direction.

    Returns ``None`` when neither orientation decreases (the completion
    procedure then reports the equation as unorientable).
    """
    forward = RewriteRule(axiom.lhs, axiom.rhs, axiom.label)
    if rule_decreases(forward, precedence):
        return forward
    if isinstance(axiom.rhs, App):
        backward = RewriteRule(axiom.rhs, axiom.lhs, axiom.label)
        try:
            ok = rule_decreases(backward, precedence)
        except Exception:  # fault-boundary: speculative reverse orientation may be ill-founded
            ok = False
        if ok and not (axiom.lhs.variables() - axiom.rhs.variables()):
            return backward
    return None
