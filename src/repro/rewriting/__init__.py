"""Term rewriting: the operational reading of algebraic axioms."""

from repro.rewriting.rules import RewriteRule, RuleSet, rule_from_axiom
from repro.rewriting.engine import (
    BACKENDS,
    DEFAULT_FUEL,
    EngineStats,
    RewriteEngine,
    RewriteLimitError,
)
from repro.rewriting.compile import (
    CompiledEngine,
    CompiledRules,
    compile_ruleset,
)
from repro.rewriting.codegen import (
    CodegenEngine,
    CodegenModule,
    FusionPlan,
    codegen_module,
)
from repro.rewriting.ordering import (
    ITE_SYMBOL,
    Precedence,
    orient,
    rpo_greater,
    rule_decreases,
)
from repro.rewriting.critical_pairs import (
    CriticalPair,
    all_critical_pairs,
    critical_pairs_between,
    joinable,
    unjoinable_pairs,
)
from repro.rewriting.completion import (
    CompletionResult,
    CompletionStatus,
    complete,
)

__all__ = [
    "RewriteRule",
    "RuleSet",
    "rule_from_axiom",
    "BACKENDS",
    "CodegenEngine",
    "CodegenModule",
    "CompiledEngine",
    "CompiledRules",
    "FusionPlan",
    "codegen_module",
    "compile_ruleset",
    "DEFAULT_FUEL",
    "EngineStats",
    "RewriteEngine",
    "RewriteLimitError",
    "ITE_SYMBOL",
    "Precedence",
    "orient",
    "rpo_greater",
    "rule_decreases",
    "CriticalPair",
    "all_critical_pairs",
    "critical_pairs_between",
    "joinable",
    "unjoinable_pairs",
    "CompletionResult",
    "CompletionStatus",
    "complete",
]
