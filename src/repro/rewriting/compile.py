"""Rule-set compilation: closure-compiled normalisation.

The interpreted engine pays a per-step interpretive tax: discrimination
tree lookup, generic :func:`match_bindings` over the pattern, generic
instantiation of the right-hand side.  For a *fixed* rule set all of
that can be decided once, at compile time.  :func:`compile_ruleset`
emits one specialised Python closure per operation:

* the operation's axioms are fused into a **decision tree** over the
  head symbols / literal values of the argument positions — the same
  shape refinement the discrimination tree performs per call, but
  resolved into nested ``if``/``elif`` chains compiled once;
* each leaf carries the **residual match** (deep destructuring, ground
  sub-pattern equality, non-linear variable checks) as straight-line
  attribute tests with walrus-bound locals, and a **pre-compiled RHS
  builder** that constructs interned terms directly and calls sibling
  closures — no bindings dict, no template walk;
* ground, already-normal right-hand-side fragments are folded into
  module-level constants at compile time.

Calling convention (every generated closure)::

    def op_k(a, d, b):  # args tuple (already normal, no top-level Err),
                        # depth counter, budget list

``a`` holds the operation's argument normal forms; the closure returns
the normal form of ``op(a...)``.  ``d`` counts nested closure calls:
past ``_DEPTH_LIMIT`` the closure raises :class:`_DeepRecursion` and the
driver re-evaluates that node on the iterative interpreted machine, so
deep rewrite chains degrade gracefully instead of hitting Python's
recursion limit.  ``b`` is the shared one-element fuel budget; closures
decrement it exactly where the interpreted engine calls ``_spend``.

The memo (``C``) maps ``(op_index, args)`` to normal forms for ground
argument tuples, shared by all closures of one compiled rule set and
across :meth:`CompiledEngine.normalize_many` batches.  Statistics
accumulate in the flat counter list ``ST`` (and per-rule ``RF``) and are
folded back into the engine's :class:`EngineStats` after each call.

Operations whose patterns the compiler cannot fold into tests (an
``Ite`` inside a left-hand side) fall back to the interpreted engine;
so do builtin steps that return whole terms.  Both backends therefore
implement the same rewrite relation — the differential tests in
``tests/rewriting/test_compile.py`` hold them to it term-for-term.
"""

from __future__ import annotations

from time import perf_counter
from typing import Iterable, Optional

from repro.algebra.signature import Operation
from repro.algebra.sorts import BOOLEAN, Sort
from repro.algebra.substitution import apply_bindings
from repro.algebra.terms import App, Err, Ite, Lit, Term, Var
from repro.spec.errors import AlgebraError
from repro.spec.prelude import boolean_term, is_false, is_true
from repro.rewriting.engine import (
    DEFAULT_FUEL,
    EngineStats,
    RewriteEngine,
    RewriteLimitError,
)
from repro.rewriting.rules import RewriteRule, RuleSet
from repro.runtime import faults as _faults
from repro.runtime.budget import (
    BudgetExceeded,
    BudgetMeter,
    EvaluationBudget,
)
from repro.runtime.render import summarize_term
from repro.obs import trace as _trace

#: Nested closure calls allowed before falling back to the iterative
#: interpreter.  Python's default recursion limit is 1000 and each
#: sibling call costs one frame; 400 leaves ample headroom for the
#: driver's own frames.
_DEPTH_LIMIT = 400

# Indices into the generated module's flat stat counter list ``ST``.
_ST_STEPS = 0
_ST_RULE = 1
_ST_BUILTIN = 2
_ST_HITS = 3
_ST_PROBES = 4
_ST_ERRPROP = 5


class _LimitHit(Exception):
    """Raised inside generated code when the fuel budget runs out."""


class _DeepRecursion(Exception):
    """Raised inside generated code when sibling calls nest too deep."""


class _Uncompilable(Exception):
    """A rule pattern the decision-tree compiler cannot handle."""


def _rt_unbound(*_args):  # pragma: no cover - defensive default
    raise RuntimeError(
        "compiled rules need an interpreter hook: use CompiledEngine, "
        "or set ns['RT_TERM'] / ns['RT_APP'] before calling closures"
    )


class CompiledRules:
    """The output of :func:`compile_ruleset`.

    ``fns`` maps operation *name* to its closure (the rule index keys by
    name, so the compiled dispatch does too); ``source`` is the full
    generated module, kept for inspection and tests; ``st``/``rf`` are
    the live counter lists the closures mutate; ``uncompiled`` names the
    rule-headed operations that must run interpreted.
    """

    __slots__ = ("source", "ns", "fns", "st", "rf", "rules", "uncompiled")

    def __init__(self, source, ns, fns, st, rf, rules, uncompiled):
        self.source = source
        self.ns = ns
        self.fns = fns
        self.st = st
        self.rf = rf
        self.rules = rules
        self.uncompiled = uncompiled


class _Compiler:
    def __init__(self, rules: RuleSet, cache_size: int) -> None:
        self.ruleset = rules
        self.rules = list(rules)
        self.cache_on = cache_size > 0
        self.cache_size = cache_size
        self.lines: list[str] = []
        self.ns: dict = {}
        self._const_names: dict[int, str] = {}
        self._const_keep: list = []
        self._counts: dict[str, int] = {}
        self._ntmp = 0
        self.rule_heads = {rule.head.name for rule in self.rules}
        # Operations needing closures: every rule head, plus every
        # builtin operation mentioned anywhere in a rule (its RHS calls
        # must dispatch through a closure too).
        self.ops: list[Operation] = []
        self.op_index: dict[str, int] = {}
        for rule in self.rules:
            self._note_op(rule.head)
        for rule in self.rules:
            for side in (rule.lhs, rule.rhs):
                for _, node in side.subterms():
                    if isinstance(node, App) and node.op.builtin is not None:
                        self._note_op(node.op)
        # Rule-headed operations the decision tree cannot compile (an
        # Ite inside a pattern): the whole operation runs interpreted.
        self.uncompiled: set[str] = set()
        for rule in self.rules:
            if any(
                isinstance(node, Ite)
                for _, node in rule.lhs.subterms()
            ):
                self.uncompiled.add(rule.head.name)

    # -- bookkeeping ---------------------------------------------------
    def _note_op(self, op: Operation) -> None:
        if op.name not in self.op_index:
            self.op_index[op.name] = len(self.ops)
            self.ops.append(op)

    def const(self, obj, prefix: str) -> str:
        """Intern ``obj`` into the generated module's namespace."""
        name = self._const_names.get(id(obj))
        if name is None:
            n = self._counts.get(prefix, 0)
            self._counts[prefix] = n + 1
            name = f"{prefix}_{n}"
            self._const_names[id(obj)] = name
            self._const_keep.append(obj)
            self.ns[name] = obj
        return name

    def op_const(self, op: Operation) -> str:
        k = self.op_index.get(op.name)
        if k is not None and self.ops[k] is op:
            return f"OP_{k}"
        # Distinct prefix: OP_{k} names are claimed by closure operations.
        return self.const(op, "OQ")

    def err_const(self, sort: Sort) -> str:
        return self.const(Err(sort), "K")

    def _tmp(self) -> str:
        self._ntmp += 1
        return f"t{self._ntmp}"

    def _inert(self, term: Term) -> bool:
        """Ground and already in normal form regardless of evaluation:
        no rule-headed operation, no builtin, no conditional."""
        if not term._ground:
            return False
        stack = [term]
        while stack:
            node = stack.pop()
            if isinstance(node, Ite):
                return False
            if isinstance(node, App):
                if node.op.name in self.rule_heads or node.op.builtin is not None:
                    return False
                stack.extend(node.args)
        return True

    # -- pattern compilation -------------------------------------------
    def _compile_pattern(self, rule: RewriteRule):
        """The residual match for one rule as a list of ``and``-joined
        condition strings, plus the variable environment it binds."""
        conds: list[str] = []
        env: dict[Var, str] = {}

        def walk(pat: Term, expr: str, simple: bool) -> None:
            if isinstance(pat, Var):
                bound = env.get(pat)
                if bound is not None:
                    conds.append(f"{bound} == {expr}")  # non-linear
                elif simple:
                    env[pat] = expr
                else:
                    t = self._tmp()
                    conds.append(f"(({t} := {expr}) or True)")
                    env[pat] = t
                return
            if pat._ground:
                # Matching a ground pattern is exactly structural
                # equality (identity-fast under interning).
                conds.append(f"{expr} == {self.const(pat, 'K')}")
                return
            if isinstance(pat, App):
                if not simple:
                    t = self._tmp()
                    conds.append(f"(({t} := {expr}) or True)")
                    expr = t
                oc = self.op_const(pat.op)
                conds.append(f"type({expr}) is App")
                conds.append(f"({expr}.op is {oc} or {expr}.op == {oc})")
                for i, sub in enumerate(pat.args):
                    walk(sub, f"{expr}.args[{i}]", False)
                return
            raise _Uncompilable(str(pat))

        for i, arg in enumerate(rule.lhs.args):
            walk(arg, f"a{i}", True)
        return conds, env

    # -- RHS compilation -----------------------------------------------
    def _gen(self, t: Term, env, ind: str, err_sort: Sort):
        """Emit statements computing ``t`` and return ``(expr, may_err)``.

        ``may_err`` marks expressions whose runtime value can be an
        ``Err`` (sibling-closure calls, interpreter round-trips): the
        consumer must test and short-circuit, which is the compiled form
        of strict error propagation.
        """
        L = self.lines
        if isinstance(t, Var):
            return env[t], False
        if isinstance(t, Lit):
            return self.const(t, "K"), False
        if isinstance(t, Err):
            return self.const(t, "K"), True
        if isinstance(t, App):
            if self._inert(t):
                return self.const(t, "K"), False
            parts = []
            for sub in t.args:
                ex, may_err = self._gen(sub, env, ind, err_sort)
                if may_err:
                    tv = self._tmp()
                    L.append(f"{ind}{tv} = {ex}")
                    L.append(f"{ind}if type({tv}) is Err:")
                    L.append(f"{ind}    ST[5] += 1")
                    L.append(f"{ind}    return {self.err_const(err_sort)}")
                    ex = tv
                parts.append(ex)
            tup = "(" + ", ".join(parts) + ("," if len(parts) == 1 else "") + ")"
            name = t.op.name
            k = self.op_index.get(name)
            if k is not None and name not in self.uncompiled:
                return f"op_{k}({tup}, d + 1, b)", True
            if name in self.uncompiled:
                return f"RT_APP({self.op_const(t.op)}, {tup}, b)", True
            # Free constructor: the application of a rule-less,
            # builtin-less operation to normal forms is itself normal.
            return f"App({self.op_const(t.op)}, {tup})", False
        assert isinstance(t, Ite)
        cex, cme = self._gen(t.cond, env, ind, err_sort)
        tc = self._tmp()
        L.append(f"{ind}{tc} = {cex}")
        if cme:
            L.append(f"{ind}if type({tc}) is Err:")
            L.append(f"{ind}    ST[5] += 1")
            L.append(f"{ind}    return {self.err_const(err_sort)}")
        tv = self._tmp()
        L.append(f"{ind}if {tc} is TRUE_N or IS_TRUE({tc}):")
        ex, me1 = self._gen(t.then_branch, env, ind + "    ", err_sort)
        L.append(f"{ind}    {tv} = {ex}")
        L.append(f"{ind}elif {tc} is FALSE_N or IS_FALSE({tc}):")
        ex, me2 = self._gen(t.else_branch, env, ind + "    ", err_sort)
        L.append(f"{ind}    {tv} = {ex}")
        L.append(f"{ind}else:")
        # Open condition: keep the conditional with plainly substituted
        # branches, exactly as the interpreted instantiator does.
        branch_vars = t.then_branch.variables() | t.else_branch.variables()
        bd = ", ".join(
            f"{self.const(v, 'V')}: {env[v]}"
            for v in sorted(branch_vars, key=lambda v: v.name)
        )
        tt = self.const(t.then_branch, "T")
        te = self.const(t.else_branch, "T")
        L.append(f"{ind}    {tv} = Ite({tc}, AB({tt}, {{{bd}}}), AB({te}, {{{bd}}}))")
        return tv, me1 or me2

    # -- per-operation emission ----------------------------------------
    def _emit_finish(self, k: int, ind: str) -> None:
        L = self.lines
        if self.cache_on:
            L.append(f"{ind}if g and type(r) is not Ite:")
            L.append(f"{ind}    if len(C) >= CMAX:")
            L.append(f"{ind}        C.clear()")
            L.append(f"{ind}    C[({k}, a)] = r")
        L.append(f"{ind}return r")

    def _emit_fire(self, k: int, gidx: int, rule: RewriteRule, env, ind: str) -> None:
        L = self.lines
        L.append(f"{ind}b[0] -= 1")
        L.append(f"{ind}if b[0] < 0:")
        L.append(f"{ind}    raise LimitHit")
        L.append(f"{ind}ST[0] += 1; ST[1] += 1; RF[{gidx}] += 1")
        expr, _ = self._gen(rule.rhs, env, ind, rule.head.range)
        L.append(f"{ind}r = {expr}")
        self._emit_finish(k, ind)

    def _emit_leaves(self, k: int, rules, ind: str) -> None:
        L = self.lines
        for gidx, rule in rules:
            conds, env = self._compile_pattern(rule)
            if conds:
                L.append(f"{ind}if {' and '.join(conds)}:")
                self._emit_fire(k, gidx, rule, env, ind + "    ")
            else:
                self._emit_fire(k, gidx, rule, env, ind)
                break  # unconditional match: later rules unreachable

    def _emit_dispatch(self, k: int, rules, pos: int, ind: str) -> None:
        """Nested if/elif refinement over argument head symbols, derived
        the same way the discrimination tree refines: at each position,
        partition the candidate rules by the pattern's top symbol, with
        variable patterns joining every branch (and the default)."""
        op = self.ops[k]
        arity = op.arity
        p = None
        for q in range(pos, arity):
            if any(not isinstance(r.lhs.args[q], Var) for _, r in rules):
                p = q
                break
        if p is None:
            self._emit_leaves(k, rules, ind)
            return
        sp = f"a{p}"
        app_groups: dict[str, list] = {}
        const_groups: list[tuple[Term, list]] = []
        wild: list = []
        for item in rules:
            pa = item[1].lhs.args[p]
            if isinstance(pa, Var):
                wild.append(item)
            elif isinstance(pa, App):
                app_groups.setdefault(pa.op.name, []).append(item)
            else:  # ground Lit / Err pattern
                for node, group in const_groups:
                    if node == pa:
                        group.append(item)
                        break
                else:
                    const_groups.append((pa, [item]))

        def merged(group):
            return sorted(group + wild, key=lambda it: it[0])

        L = self.lines
        chain_open = False
        if app_groups:
            L.append(f"{ind}if type({sp}) is App:")
            names = list(app_groups)
            if len(names) == 1:
                L.append(f"{ind}    if {sp}.op.name == {names[0]!r}:")
                self._emit_dispatch(k, merged(app_groups[names[0]]), p + 1, ind + "        ")
            else:
                L.append(f"{ind}    n{p} = {sp}.op.name")
                first = True
                for nm in names:
                    kw = "if" if first else "elif"
                    first = False
                    L.append(f"{ind}    {kw} n{p} == {nm!r}:")
                    self._emit_dispatch(k, merged(app_groups[nm]), p + 1, ind + "        ")
            if wild:
                L.append(f"{ind}    else:")
                self._emit_dispatch(k, wild, p + 1, ind + "        ")
            chain_open = True
        for node, group in const_groups:
            kw = "elif" if chain_open else "if"
            L.append(f"{ind}{kw} {sp} == {self.const(node, 'K')}:")
            self._emit_dispatch(k, merged(group), p + 1, ind + "    ")
            chain_open = True
        if wild and chain_open:
            L.append(f"{ind}else:")
            self._emit_dispatch(k, wild, p + 1, ind + "    ")

    def _emit_op(self, k: int, rules) -> None:
        op = self.ops[k]
        L = self.lines
        arity = op.arity
        L.append("")
        L.append(f"def op_{k}(a, d, b):  # {op.name}")
        L.append(f"    if d > {_DEPTH_LIMIT}:")
        L.append("        raise Deep")
        for i in range(arity):
            L.append(f"    a{i} = a[{i}]")
        if self.cache_on:
            L.append("    ST[4] += 1")
            L.append(f"    r = C.get(({k}, a))")
            L.append("    if r is not None:")
            L.append("        ST[3] += 1")
            L.append("        return r")
            if arity:
                g = " and ".join(f"a{i}._ground" for i in range(arity))
            else:
                g = "True"
            L.append(f"    g = {g}")
        if op.builtin is not None:
            self._emit_builtin(k, op)
        if rules:
            self._emit_dispatch(k, rules, 0, "    ")
        L.append(f"    r = App(OP_{k}, a)")
        self._emit_finish(k, "    ")

    def _emit_builtin(self, k: int, op: Operation) -> None:
        L = self.lines
        arity = op.arity
        bc = self.const(op.builtin, "BI")
        cond = " and ".join(f"type(a{i}) is Lit" for i in range(arity))
        if cond:
            L.append(f"    if {cond}:")
            ind = "        "
        else:
            ind = "    "
        args_v = ", ".join(f"a{i}.value" for i in range(arity))
        L.append(f"{ind}ST[2] += 1")
        L.append(f"{ind}b[0] -= 1")
        L.append(f"{ind}if b[0] < 0:")
        L.append(f"{ind}    raise LimitHit")
        L.append(f"{ind}try:")
        L.append(f"{ind}    v = {bc}({args_v})")
        L.append(f"{ind}except AlgebraError:")
        L.append(f"{ind}    r = {self.err_const(op.range)}")
        self._emit_finish(k, ind + "    ")
        sc = self.const(op.range, "S")
        if op.range == BOOLEAN:
            L.append(f"{ind}if v is True:")
            L.append(f"{ind}    r = TRUE_N")
            L.append(f"{ind}elif v is False:")
            L.append(f"{ind}    r = FALSE_N")
            L.append(f"{ind}elif isinstance(v, Term):")
            L.append(f"{ind}    r = RT_TERM(v, b)")
            L.append(f"{ind}else:")
            L.append(f"{ind}    r = Lit(v, {sc})")
        else:
            L.append(f"{ind}if isinstance(v, Term):")
            L.append(f"{ind}    r = RT_TERM(v, b)")
            L.append(f"{ind}else:")
            L.append(f"{ind}    r = Lit(v, {sc})")
        self._emit_finish(k, ind)

    # -- driver ---------------------------------------------------------
    def compile(self) -> CompiledRules:
        by_head: dict[str, list] = {}
        for gidx, rule in enumerate(self.rules):
            by_head.setdefault(rule.head.name, []).append((gidx, rule))
        st = [0, 0, 0, 0, 0, 0]
        rf = [0] * len(self.rules)
        self.ns.update(
            App=App,
            Lit=Lit,
            Err=Err,
            Ite=Ite,
            Term=Term,
            AlgebraError=AlgebraError,
            TRUE_N=boolean_term(True),
            FALSE_N=boolean_term(False),
            IS_TRUE=is_true,
            IS_FALSE=is_false,
            AB=apply_bindings,
            LimitHit=_LimitHit,
            Deep=_DeepRecursion,
            ST=st,
            RF=rf,
            C={},
            CMAX=self.cache_size,
            RT_TERM=_rt_unbound,
            RT_APP=_rt_unbound,
        )
        compiled_names = []
        for k, op in enumerate(self.ops):
            self.ns[f"OP_{k}"] = op
            if op.name in self.uncompiled:
                continue
            self._emit_op(k, by_head.get(op.name, ()))
            compiled_names.append((op.name, k))
        source = "\n".join(self.lines) + "\n"
        exec(compile(source, "<compiled-rules>", "exec"), self.ns)
        fns = {name: self.ns[f"op_{k}"] for name, k in compiled_names}
        return CompiledRules(
            source, self.ns, fns, st, rf, self.rules, frozenset(self.uncompiled)
        )


def compile_ruleset(rules: RuleSet, cache_size: int = 4096) -> CompiledRules:
    """Compile ``rules`` into per-operation closures (see module doc)."""
    return _Compiler(rules, cache_size).compile()


class CompiledEngine:
    """Normalisation through a compiled rule set.

    The outer driver is a small iterative machine (like the interpreted
    engine's, minus the root/instantiation frames — that work lives in
    the closures): it walks the subject bottom-up, propagates errors
    strictly, resolves conditionals lazily, and hands every
    argument-normal application to its closure.  Operations without a
    closure are either free constructors (already normal) or fall back
    to the shared interpreted engine — as do closures that signal
    :class:`_DeepRecursion` (the abandoned attempt's fuel stays spent,
    so the budget over-counts, never under-counts, such steps).
    """

    def __init__(
        self,
        rules: RuleSet,
        fuel: int = DEFAULT_FUEL,
        cache_size: int = 4096,
        stats: Optional[EngineStats] = None,
        budget: Optional[EvaluationBudget] = None,
    ) -> None:
        if budget is None:
            budget = EvaluationBudget(fuel=fuel)
        elif budget.max_memo_entries is not None:
            cache_size = min(cache_size, budget.max_memo_entries)
        self.rules = rules
        self.rule_count = len(rules)
        self.fuel = budget.fuel
        self.budget = budget
        self.cache_size = cache_size
        self.stats = stats if stats is not None else EngineStats()
        self._interp = RewriteEngine(rules, fuel=fuel, cache_size=cache_size)
        self._interp.stats = self.stats
        compiled = compile_ruleset(rules, cache_size=cache_size)
        self.compiled = compiled
        compiled.ns["RT_TERM"] = self._rt_term
        compiled.ns["RT_APP"] = self._rt_app
        self._fns = compiled.fns
        self._uncompiled = compiled.uncompiled

    @property
    def source(self) -> str:
        """The generated module, for inspection."""
        return self.compiled.source

    def _rt_term(self, term: Term, budget: list[int]) -> Term:
        """Interpreter hook for builtin steps that return whole terms."""
        return self._interp._eval(term, budget)

    def _rt_app(self, op: Operation, args: tuple, budget: list[int]) -> Term:
        """Interpreter hook for applications of uncompilable operations."""
        return self._interp._eval(App(op, args), budget)

    # ------------------------------------------------------------------
    def normalize(
        self, term: Term, budget: Optional[EvaluationBudget] = None
    ) -> Term:
        """The call-by-value normal form of ``term`` — identical, term
        for term, to the interpreted backend's."""
        tracer = _trace.ACTIVE
        if tracer is None:
            return self._normalize_compiled(term, budget)
        with tracer.span(
            "engine.normalize",
            backend="compiled",
            subject=summarize_term(term),
        ):
            return self._normalize_compiled(term, budget)

    def _normalize_compiled(
        self, term: Term, budget: Optional[EvaluationBudget]
    ) -> Term:
        bud = budget if budget is not None else self.budget.with_fuel(self.fuel)
        meter = bud.start()
        st = self.compiled.st
        rf = self.compiled.rf
        st0 = tuple(st)
        rf0 = list(rf)
        started = perf_counter()
        try:
            return self._eval(term, meter)
        except _LimitHit:
            # Closures spend fuel without the meter seeing subjects, so
            # the diagnosis draws on whatever the interpreted fallback
            # recorded (a compiled cycle blows the depth limit long
            # before the fuel runs out, so the cycling tail is there).
            exc = meter.exhausted()
            raise RewriteLimitError(
                term,
                bud.fuel,
                reason=exc.reason,
                trace=exc.trace,
                detail=exc.detail,
            ) from None
        except BudgetExceeded as exc:
            raise RewriteLimitError(
                term,
                bud.fuel,
                reason=exc.reason,
                trace=exc.trace,
                detail=exc.detail,
            ) from None
        except RewriteLimitError as exc:
            raise RewriteLimitError(
                term,
                bud.fuel,
                reason=exc.reason,
                trace=exc.trace,
                detail=exc.detail,
            ) from None
        finally:
            self._sync(st0, rf0)
            stats = self.stats
            stats.latency.observe(perf_counter() - started)
            spent = bud.fuel - meter[0]
            if spent > 0:
                stats.s_fuel[0] += spent
            stats.fuel_hist.observe(spent if spent > 0 else 0)

    def normalize_many(
        self, terms: Iterable[Term], budget: Optional[EvaluationBudget] = None
    ) -> list[Term]:
        """Normalise a batch against one shared memo (see
        :meth:`RewriteEngine.normalize_many`)."""
        return [self.normalize(term, budget) for term in terms]

    def clear_cache(self) -> None:
        """Drop the closure memo and the fallback interpreter's cache."""
        self.compiled.ns["C"].clear()
        self._interp._cache.clear()

    def _sync(self, st0, rf0) -> None:
        """Fold the generated module's flat counter deltas into the
        engine stats.  The old separate rule-firings total
        (``st[_ST_RULE]``) is no longer synced — the total is derived
        from the per-rule family, so there is one count to trust."""
        st = self.compiled.st
        stats = self.stats
        stats.s_steps[0] += st[_ST_STEPS] - st0[_ST_STEPS]
        stats.s_builtin[0] += st[_ST_BUILTIN] - st0[_ST_BUILTIN]
        stats.s_hits[0] += st[_ST_HITS] - st0[_ST_HITS]
        stats.s_probes[0] += st[_ST_PROBES] - st0[_ST_PROBES]
        stats.s_errprop[0] += st[_ST_ERRPROP] - st0[_ST_ERRPROP]
        rf = self.compiled.rf
        if rf != rf0:
            counts = stats.firings.counts
            deltas: dict = {}
            for i, rule in enumerate(self.compiled.rules):
                delta = rf[i] - rf0[i]
                if delta:
                    counts[rule] = counts.get(rule, 0) + delta
                    deltas[rule] = delta
            tracer = _trace.ACTIVE
            if tracer is not None and deltas:
                # Closures count firings in flat lists (no per-step
                # events on the compiled hot path); emit one aggregated
                # event so traces stay count-exact across backends.
                tracer.firings(deltas)

    def _eval(self, term: Term, budget: list[int]) -> Term:
        stats = self.stats
        stack: list = [(0, term)]
        result: Term = term
        while stack:
            frame = stack.pop()
            tag = frame[0]
            if tag == 0:  # evaluate frame[1]
                t = frame[1]
                if isinstance(t, App):
                    if t.args:
                        stack.append((1, t, [], 1))
                        stack.append((0, t.args[0]))
                    else:
                        result = self._root(t.op, (), budget)
                elif isinstance(t, Ite):
                    stack.append((2, t))
                    stack.append((0, t.cond))
                else:
                    result = t  # Var, Lit, Err: already normal
            elif tag == 1:  # collect one evaluated argument
                _, t, done, nxt = frame
                value = result
                if isinstance(value, Err):
                    stats.error_propagations += 1
                    result = Err(t.sort)
                    continue
                done.append(value)
                if nxt < len(t.args):
                    stack.append((1, t, done, nxt + 1))
                    stack.append((0, t.args[nxt]))
                else:
                    result = self._root(t.op, tuple(done), budget)
            else:  # tag == 2: conditional, condition evaluated
                t = frame[1]
                cond = result
                if isinstance(cond, Err):
                    stats.error_propagations += 1
                    result = Err(t.sort)
                elif is_true(cond):
                    stack.append((0, t.then_branch))
                elif is_false(cond):
                    stack.append((0, t.else_branch))
                elif cond is t.cond:
                    result = t
                else:
                    result = Ite(cond, t.then_branch, t.else_branch)
        return result

    def _root(self, op: Operation, args: tuple, budget: BudgetMeter) -> Term:
        if _faults.ACTIVE is not None:
            _faults.ACTIVE.visit("compiled.root", op)
        budget.tick()  # deadline / memory pulse between closure bursts
        fn = self._fns.get(op.name)
        if fn is not None:
            try:
                return fn(args, 0, budget)
            except _DeepRecursion:
                if _faults.ACTIVE is not None:
                    _faults.ACTIVE.visit("compiled.fallback", op)
                self.stats.record_fallback("compiled_depth")
                return self._interp._eval(App(op, args), budget)
        if op.name in self._uncompiled or (
            op.builtin is not None
            and all(isinstance(a, Lit) for a in args)
        ):
            return self._interp._eval(App(op, args), budget)
        return App(op, args)  # free constructor: already normal
