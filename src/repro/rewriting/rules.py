"""Rewrite rules and rule sets.

Each axiom ``lhs = rhs`` is *oriented* left-to-right into a rewrite rule;
the axioms' definitional shape (defined operation over constructor
patterns on the left) makes this orientation terminating for the paper's
specifications.  A :class:`RuleSet` indexes rules by their head symbol so
the engine only tries rules that can possibly apply.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, Optional, Sequence

from repro.algebra.matching import match
from repro.algebra.signature import Operation
from repro.algebra.terms import App, Term
from repro.spec.axioms import Axiom
from repro.spec.specification import Specification


@dataclass(frozen=True)
class RewriteRule:
    """An oriented equation ``lhs -> rhs``."""

    lhs: Term
    rhs: Term
    label: str = ""

    def __post_init__(self) -> None:
        if not isinstance(self.lhs, App):
            raise ValueError(
                f"rewrite rule left-hand side must be an application: {self.lhs}"
            )
        extra = self.rhs.variables() - self.lhs.variables()
        if extra:
            names = ", ".join(sorted(v.name for v in extra))
            raise ValueError(f"rule introduces variables on the right: {names}")

    @property
    def head(self) -> Operation:
        assert isinstance(self.lhs, App)
        return self.lhs.op

    def apply_at_root(self, term: Term) -> Optional[Term]:
        """The result of one rewrite at the root of ``term``, or ``None``."""
        sigma = match(self.lhs, term)
        if sigma is None:
            return None
        return sigma.apply(self.rhs)

    def as_axiom(self) -> Axiom:
        return Axiom(self.lhs, self.rhs, self.label)

    def __str__(self) -> str:
        prefix = f"[{self.label}] " if self.label else ""
        return f"{prefix}{self.lhs} -> {self.rhs}"


def rule_from_axiom(axiom: Axiom) -> RewriteRule:
    """Orient ``axiom`` left-to-right."""
    return RewriteRule(axiom.lhs, axiom.rhs, axiom.label)


class RuleSet:
    """A collection of rewrite rules indexed by head operation name.

    Rule order is preserved: within one head symbol the first matching
    rule fires, so a specification's axiom order is its match order
    (the paper's axiom sets are non-overlapping, making order
    irrelevant for them, but user specs under debugging may overlap).
    """

    def __init__(self, rules: Iterable[RewriteRule] = ()) -> None:
        self._rules: list[RewriteRule] = []
        self._by_head: dict[str, list[RewriteRule]] = {}
        for rule in rules:
            self.add(rule)

    def add(self, rule: RewriteRule) -> None:
        self._rules.append(rule)
        self._by_head.setdefault(rule.head.name, []).append(rule)

    def for_head(self, operation: Operation) -> Sequence[RewriteRule]:
        """Rules whose left-hand side is headed by ``operation``."""
        return self._by_head.get(operation.name, ())

    def heads(self) -> set[str]:
        """Names of all operations that head some rule."""
        return set(self._by_head)

    def __iter__(self) -> Iterator[RewriteRule]:
        return iter(self._rules)

    def __len__(self) -> int:
        return len(self._rules)

    def __str__(self) -> str:
        return "\n".join(str(rule) for rule in self._rules)

    @classmethod
    def from_axioms(cls, axioms: Iterable[Axiom]) -> "RuleSet":
        return cls(rule_from_axiom(axiom) for axiom in axioms)

    @classmethod
    def from_specification(cls, spec: Specification) -> "RuleSet":
        """All axioms of ``spec`` and every level it uses, oriented."""
        return cls.from_axioms(spec.all_axioms())
