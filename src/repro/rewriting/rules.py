"""Rewrite rules and rule sets.

Each axiom ``lhs = rhs`` is *oriented* left-to-right into a rewrite rule;
the axioms' definitional shape (defined operation over constructor
patterns on the left) makes this orientation terminating for the paper's
specifications.  A :class:`RuleSet` indexes rules in a *discrimination
tree*: rules are grouped by head symbol, then refined by the top symbol
of each argument position, so the engine only tries rules whose
left-hand side can possibly match the subject's shape.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Iterable, Iterator, Optional, Sequence

from repro.algebra.matching import match_bindings
from repro.algebra.signature import Operation
from repro.algebra.substitution import apply_bindings
from repro.algebra.terms import App, Err, Lit, Term
from repro.spec.axioms import Axiom
from repro.spec.specification import Specification


@dataclass(frozen=True)
class RewriteRule:
    """An oriented equation ``lhs -> rhs``."""

    lhs: Term
    rhs: Term
    label: str = ""

    def __post_init__(self) -> None:
        if not isinstance(self.lhs, App):
            raise ValueError(
                f"rewrite rule left-hand side must be an application: {self.lhs}"
            )
        extra = self.rhs.variables() - self.lhs.variables()
        if extra:
            names = ", ".join(sorted(v.name for v in extra))
            raise ValueError(f"rule introduces variables on the right: {names}")

    @property
    def head(self) -> Operation:
        assert isinstance(self.lhs, App)
        return self.lhs.op

    def apply_at_root(self, term: Term) -> Optional[Term]:
        """The result of one rewrite at the root of ``term``, or ``None``."""
        bindings = match_bindings(self.lhs, term)
        if bindings is None:
            return None
        return apply_bindings(self.rhs, bindings)

    def as_axiom(self) -> Axiom:
        return Axiom(self.lhs, self.rhs, self.label)

    def __str__(self) -> str:
        prefix = f"[{self.label}] " if self.label else ""
        return f"{prefix}{self.lhs} -> {self.rhs}"


def rule_from_axiom(axiom: Axiom) -> RewriteRule:
    """Orient ``axiom`` left-to-right."""
    return RewriteRule(axiom.lhs, axiom.rhs, axiom.label)


# ----------------------------------------------------------------------
# Discrimination-tree indexing
# ----------------------------------------------------------------------

#: Edge label standing for "this pattern position matches anything"
#: (a variable, or an ``Ite`` pattern the shape test cannot refine).
_WILDCARD = ("*",)

#: Key under which a tree node stores the rule indices ending there.
_RULES = ("rules",)


def _pattern_shape(term: Term):
    """The discrimination edge for one argument of a rule's LHS."""
    if isinstance(term, App):
        return ("app", term.op.name)
    if isinstance(term, Lit):
        return ("lit", term.sort, term.value)
    if isinstance(term, Err):
        return ("err", term.sort)
    return _WILDCARD  # Var, or Ite (matched structurally, not indexed)


def _subject_shape(term: Term):
    """The edge a subject argument selects.  Must agree with
    :func:`_pattern_shape` exactly when a root match is possible:

    * a pattern ``App``/``Lit``/``Err`` only matches a subject of the
      same top symbol (literal/error equality is sort+value equality,
      which the tuple keys reproduce);
    * a subject ``Var`` or ``Ite`` is only matched by a pattern
      variable, i.e. the wildcard edge — so it gets a shape no pattern
      edge carries.
    """
    if isinstance(term, App):
        return ("app", term.op.name)
    if isinstance(term, Lit):
        return ("lit", term.sort, term.value)
    if isinstance(term, Err):
        return ("err", term.sort)
    return ("open",)


# Substrate counters for the bounded shape memo, as bare list cells so
# this layer imports nothing from the observability layer (the global
# registry in repro.obs.metrics adopts the slots).  Shared across all
# discrimination trees in the process.
SHAPE_MEMO_HITS = [0]
SHAPE_MEMO_MISSES = [0]


class _DiscriminationTree:
    """Per-head-symbol index, one level per argument position.

    Nodes are dicts; an edge is the argument's top-symbol shape or the
    wildcard.  A query follows, at each level, both the subject's exact
    edge and the wildcard edge, and unions the rule indices reached —
    a superset of the rules that can match, filtered down by the real
    matcher.  Query results are memoised per shape path (bounded)."""

    __slots__ = ("root", "_memo")

    def __init__(self) -> None:
        self.root: dict = {}
        self._memo: dict[tuple, tuple[RewriteRule, ...]] = {}

    def insert(self, pattern_args: Sequence[Term], index: int) -> None:
        node = self.root
        for arg in pattern_args:
            node = node.setdefault(_pattern_shape(arg), {})
        node.setdefault(_RULES, []).append(index)
        self._memo.clear()

    def retrieve(
        self, subject_args: Sequence[Term], rules: Sequence[RewriteRule]
    ) -> tuple[RewriteRule, ...]:
        shapes = tuple(_subject_shape(arg) for arg in subject_args)
        memo = self._memo
        hit = memo.get(shapes)
        if hit is not None:
            SHAPE_MEMO_HITS[0] += 1
            return hit
        SHAPE_MEMO_MISSES[0] += 1
        frontier = [self.root]
        for shape in shapes:
            advanced: list[dict] = []
            for node in frontier:
                child = node.get(shape)
                if child is not None:
                    advanced.append(child)
                wild = node.get(_WILDCARD)
                if wild is not None:
                    advanced.append(wild)
            if not advanced:
                frontier = []
                break
            frontier = advanced
        indices: list[int] = []
        for node in frontier:
            indices.extend(node.get(_RULES, ()))
        indices.sort()  # original rule order = match order
        result = tuple(rules[i] for i in indices)
        if len(memo) < 1024:  # literal-valued edges keep this finite
            memo[shapes] = result
        return result


class RuleSet:
    """A collection of rewrite rules behind a discrimination-tree index.

    Rule order is preserved: among the candidates for one subject the
    first matching rule fires, so a specification's axiom order is its
    match order (the paper's axiom sets are non-overlapping, making
    order irrelevant for them, but user specs under debugging may
    overlap)."""

    def __init__(self, rules: Iterable[RewriteRule] = ()) -> None:
        self._rules: list[RewriteRule] = []
        self._by_head: dict[str, list[RewriteRule]] = {}
        self._trees: dict[str, _DiscriminationTree] = {}
        for rule in rules:
            self.add(rule)

    def add(self, rule: RewriteRule) -> None:
        index = len(self._rules)
        self._rules.append(rule)
        self._by_head.setdefault(rule.head.name, []).append(rule)
        tree = self._trees.get(rule.head.name)
        if tree is None:
            tree = self._trees[rule.head.name] = _DiscriminationTree()
        assert isinstance(rule.lhs, App)
        tree.insert(rule.lhs.args, index)

    def for_head(self, operation: Operation) -> Sequence[RewriteRule]:
        """All rules whose left-hand side is headed by ``operation``,
        without argument-shape refinement (the seed engine's index;
        kept for the E10 ablation and for exhaustive traversals)."""
        return self._by_head.get(operation.name, ())

    def candidates(self, term: App) -> Sequence[RewriteRule]:
        """Rules that can possibly rewrite ``term`` at the root: same
        head symbol, argument shapes compatible position by position."""
        tree = self._trees.get(term.op.name)
        if tree is None:
            return ()
        return tree.retrieve(term.args, self._rules)

    def heads(self) -> set[str]:
        """Names of all operations that head some rule."""
        return set(self._by_head)

    def fingerprint(self, extra: str = "") -> str:
        """A structural digest of the rule set.

        Two rule sets with the same fingerprint compile to the same
        generated module, so the codegen backend keys its module cache
        on it (see :mod:`repro.rewriting.codegen`).  The digest covers
        rule order, labels, both sides of every rule, and — because the
        emitted dispatch depends on them — every mentioned operation's
        name, sorts, and whether it carries a builtin evaluator.
        ``extra`` folds in compiler options (fusion plan, cache mode)."""
        h = hashlib.sha256()
        h.update(extra.encode())
        for rule in self._rules:
            h.update(b"\x00rule\x00")
            h.update(str(rule).encode())
            for side in (rule.lhs, rule.rhs):
                for _, node in side.subterms():
                    if isinstance(node, App):
                        op = node.op
                        h.update(
                            f"{op.name}/{len(op.domain)}"
                            f"->{op.range}:{int(op.builtin is not None)};"
                            .encode()
                        )
                    else:
                        h.update(f"{type(node).__name__}:{node.sort};".encode())
        return h.hexdigest()

    def __iter__(self) -> Iterator[RewriteRule]:
        return iter(self._rules)

    def __len__(self) -> int:
        return len(self._rules)

    def __str__(self) -> str:
        return "\n".join(str(rule) for rule in self._rules)

    @classmethod
    def from_axioms(cls, axioms: Iterable[Axiom]) -> "RuleSet":
        return cls(rule_from_axiom(axiom) for axiom in axioms)

    @classmethod
    def from_specification(cls, spec: Specification) -> "RuleSet":
        """All axioms of ``spec`` and every level it uses, oriented."""
        return cls.from_axioms(spec.all_axioms())
