"""The rewrite engine: evaluation of terms under a specification.

Two evaluation modes:

* :meth:`RewriteEngine.normalize` — call-by-value evaluation of
  (typically ground) terms.  Arguments are normalised innermost-first;
  ``if-then-else`` evaluates its condition, then *only the selected
  branch* (lazy branches are what make the recursive axioms, e.g.
  ``RETRIEVE'``, terminate); the distinguished ``error`` propagates
  strictly through operations and conditions; operations with builtin
  Python evaluators fire once their arguments are literals.

* :meth:`RewriteEngine.simplify` — symbolic simplification of open
  terms, for the prover.  Like ``normalize``, but when a condition does
  not decide, both branches are simplified in place, and trivial
  conditional identities (``if c then x else x -> x``) are applied.

The engine counts rewrite steps; a configurable *fuel* bound turns
divergence (possible for user-written axioms under debugging) into a
:class:`RewriteLimitError` instead of a hang.
"""

from __future__ import annotations

import contextlib
import sys
from dataclasses import dataclass, field
from typing import Optional

from repro.algebra.sorts import BOOLEAN
from repro.algebra.terms import App, Err, Ite, Lit, Term, Var
from repro.spec.axioms import Axiom
from repro.spec.errors import AlgebraError
from repro.spec.prelude import boolean_term, is_false, is_true
from repro.spec.specification import Specification
from repro.rewriting.rules import RuleSet


class RewriteLimitError(Exception):
    """Raised when evaluation exceeds its step budget."""

    def __init__(self, term: Term, fuel: int) -> None:
        try:
            rendered = str(term)
        except RecursionError:  # term too deep even to print
            rendered = f"<term of {term.size()} nodes>"
        if len(rendered) > 200:
            rendered = rendered[:200] + "..."
        super().__init__(
            f"no normal form within {fuel} rewrite steps for {rendered}"
        )
        self.term = term
        self.fuel = fuel


@dataclass
class EngineStats:
    """Counters exposed for the benchmarks and the coverage analysis."""

    steps: int = 0
    rule_firings: int = 0
    builtin_firings: int = 0
    error_propagations: int = 0
    cache_hits: int = 0
    firings_by_rule: dict = field(default_factory=dict)

    def record_firing(self, rule: "RewriteRule") -> None:
        self.rule_firings += 1
        key = id(rule)
        entry = self.firings_by_rule.get(key)
        if entry is None:
            self.firings_by_rule[key] = [rule, 1]
        else:
            entry[1] += 1

    def firing_count(self, rule: "RewriteRule") -> int:
        entry = self.firings_by_rule.get(id(rule))
        return entry[1] if entry else 0

    def reset(self) -> None:
        self.steps = 0
        self.rule_firings = 0
        self.builtin_firings = 0
        self.error_propagations = 0
        self.cache_hits = 0
        self.firings_by_rule.clear()


#: Default step budget.  The paper's specifications normalise any
#: realistic term in far fewer steps; the bound exists to catch runaway
#: user axioms.
DEFAULT_FUEL = 200_000

#: Hard ceiling on the recursion limit :func:`_enough_stack` will set.
#: Evaluation uses a handful of Python frames per term level; deep terms
#: need headroom, but an unbounded limit risks a C-stack overflow.
_MAX_RECURSION_LIMIT = 100_000


@contextlib.contextmanager
def _enough_stack(term: Term):
    """Temporarily raise the interpreter recursion limit in proportion
    to the term's depth, so legitimately deep (but finite) evaluations
    do not masquerade as divergence."""
    needed = min(_MAX_RECURSION_LIMIT, term.depth() * 12 + 2_000)
    previous = sys.getrecursionlimit()
    if needed > previous:
        sys.setrecursionlimit(needed)
        try:
            yield
        finally:
            sys.setrecursionlimit(previous)
    else:
        yield


class RewriteEngine:
    """Evaluates terms under a rule set.

    Parameters
    ----------
    rules:
        The oriented axioms.
    fuel:
        Maximum rewrite steps per ``normalize``/``simplify`` call.
    use_index:
        When False, rule lookup scans the whole rule list instead of the
        head-symbol index.  Exists only for the E10 ablation benchmark;
        leave True.
    cache_size:
        Normal forms of *ground* applications are memoised (the rule set
        is fixed for the engine's lifetime, so a ground term's normal
        form never changes).  Clients like the symbolic façade normalise
        the same growing terms repeatedly, where the cache turns
        re-evaluation into a lookup.  0 disables caching.
    """

    def __init__(
        self,
        rules: RuleSet,
        fuel: int = DEFAULT_FUEL,
        use_index: bool = True,
        cache_size: int = 4096,
    ) -> None:
        self.rules = rules
        self.fuel = fuel
        self.use_index = use_index
        self.stats = EngineStats()
        self.cache_size = cache_size
        self._cache: dict[Term, Term] = {}

    @classmethod
    def for_specification(
        cls, spec: Specification, fuel: int = DEFAULT_FUEL
    ) -> "RewriteEngine":
        return cls(RuleSet.from_specification(spec), fuel=fuel)

    # ------------------------------------------------------------------
    # Value-mode evaluation
    # ------------------------------------------------------------------
    def normalize(self, term: Term) -> Term:
        """The call-by-value normal form of ``term``."""
        budget = [self.fuel]
        with _enough_stack(term):
            try:
                return self._eval(term, budget)
            except RewriteLimitError:
                raise RewriteLimitError(term, self.fuel) from None
            except RecursionError:
                # Divergence can out-run the step budget in Python stack
                # frames; report it the same way.
                raise RewriteLimitError(term, self.fuel) from None

    def _spend(self, budget: list[int], term: Term) -> None:
        self.stats.steps += 1
        budget[0] -= 1
        if budget[0] < 0:
            raise RewriteLimitError(term, self.fuel)

    def _eval(self, term: Term, budget: list[int]) -> Term:
        if isinstance(term, (Var, Lit, Err)):
            return term
        if isinstance(term, Ite):
            cond = self._eval(term.cond, budget)
            if isinstance(cond, Err):
                self.stats.error_propagations += 1
                return Err(term.sort)
            if is_true(cond):
                return self._eval(term.then_branch, budget)
            if is_false(cond):
                return self._eval(term.else_branch, budget)
            # Open condition: value-mode evaluation leaves the node as-is
            # with the evaluated condition in place.
            if cond is term.cond:
                return term
            return Ite(cond, term.then_branch, term.else_branch)
        assert isinstance(term, App)
        cached = self._cache.get(term) if self.cache_size else None
        if cached is not None:
            self.stats.cache_hits += 1
            return cached
        args = [self._eval(arg, budget) for arg in term.args]
        if any(isinstance(arg, Err) for arg in args):
            self.stats.error_propagations += 1
            return Err(term.sort)
        node = term if all(new is old for new, old in zip(args, term.args)) else App(term.op, args)
        result = self._eval_root(node, budget)
        if (
            self.cache_size
            and not isinstance(result, Ite)
            and term.is_ground()
        ):
            if len(self._cache) >= self.cache_size:
                self._cache.clear()
            self._cache[term] = result
        return result

    def _eval_root(self, term: App, budget: list[int]) -> Term:
        """Rewrite at the root until no step applies; arguments are
        already in normal form."""
        while True:
            step = self._root_step(term, budget)
            if step is None:
                return term
            self._spend(budget, term)
            if isinstance(step, (Var, Lit, Err)):
                return step
            if isinstance(step, Ite) or not _args_normal(step):
                step = self._eval(step, budget)
            if not isinstance(step, App):
                return step
            if any(isinstance(arg, Err) for arg in step.args):
                self.stats.error_propagations += 1
                return Err(step.sort)
            term = step

    def _root_step(self, term: App, budget: list[int]) -> Optional[Term]:
        builtin = term.op.builtin
        if builtin is not None and all(isinstance(a, Lit) for a in term.args):
            self.stats.builtin_firings += 1
            return self._run_builtin(term)
        candidates = (
            self.rules.for_head(term.op) if self.use_index else self.rules
        )
        for rule in candidates:
            result = rule.apply_at_root(term)
            if result is not None:
                self.stats.record_firing(rule)
                return result
        return None

    def _run_builtin(self, term: App) -> Term:
        values = [arg.value for arg in term.args]  # type: ignore[union-attr]
        try:
            result = term.op.builtin(*values)  # type: ignore[misc]
        except AlgebraError:
            return Err(term.sort)
        if term.sort == BOOLEAN and isinstance(result, bool):
            return boolean_term(result)
        if isinstance(result, Term):
            return result
        return Lit(result, term.sort)

    # ------------------------------------------------------------------
    # Symbolic simplification
    # ------------------------------------------------------------------
    def simplify(self, term: Term) -> Term:
        """Simplify an open term as far as the rules allow.

        Both branches of undecided conditionals are simplified, and the
        identity ``if c then x else x = x`` is applied — sound because
        either branch yields ``x``.
        """
        budget = [self.fuel]
        with _enough_stack(term):
            try:
                return self._simplify(term, budget)
            except RecursionError:
                raise RewriteLimitError(term, self.fuel) from None

    def _simplify(self, term: Term, budget: list[int]) -> Term:
        if isinstance(term, (Var, Lit, Err)):
            return term
        if isinstance(term, Ite):
            cond = self._simplify(term.cond, budget)
            if isinstance(cond, Err):
                self.stats.error_propagations += 1
                return Err(term.sort)
            if is_true(cond):
                return self._simplify(term.then_branch, budget)
            if is_false(cond):
                return self._simplify(term.else_branch, budget)
            then_branch = self._simplify(term.then_branch, budget)
            else_branch = self._simplify(term.else_branch, budget)
            if then_branch == else_branch:
                return then_branch
            return Ite(cond, then_branch, else_branch)
        assert isinstance(term, App)
        args = [self._simplify(arg, budget) for arg in term.args]
        if any(isinstance(arg, Err) for arg in args):
            self.stats.error_propagations += 1
            return Err(term.sort)
        node = App(term.op, args)
        step = self._root_step(node, budget)
        if step is None:
            return node
        self._spend(budget, node)
        return self._simplify(step, budget)

    # ------------------------------------------------------------------
    # Equality under the rules
    # ------------------------------------------------------------------
    def equal(self, left: Term, right: Term) -> bool:
        """True when both terms normalise to the same normal form."""
        return self.normalize(left) == self.normalize(right)

    def check_axiom_instance(self, axiom: Axiom, substitution) -> bool:
        """Evaluate both sides of ``axiom`` under ``substitution`` and
        compare normal forms — the ground model check used throughout the
        analysis and verification layers."""
        return self.equal(
            substitution.apply(axiom.lhs), substitution.apply(axiom.rhs)
        )


def _args_normal(term: Term) -> bool:
    """Cheap test used to avoid re-walking already-normal arguments."""
    if not isinstance(term, App):
        return True
    return all(isinstance(arg, (Var, Lit, Err)) for arg in term.args) or not term.args
