"""The rewrite engine: evaluation of terms under a specification.

Two evaluation modes:

* :meth:`RewriteEngine.normalize` — call-by-value evaluation of
  (typically ground) terms.  Arguments are normalised innermost-first;
  ``if-then-else`` evaluates its condition, then *only the selected
  branch* (lazy branches are what make the recursive axioms, e.g.
  ``RETRIEVE'``, terminate); the distinguished ``error`` propagates
  strictly through operations and conditions; operations with builtin
  Python evaluators fire once their arguments are literals.

* :meth:`RewriteEngine.simplify` — symbolic simplification of open
  terms, for the prover.  Like ``normalize``, but when a condition does
  not decide, both branches are simplified in place, and trivial
  conditional identities (``if c then x else x -> x``) are applied.

The engine counts rewrite steps; a configurable *fuel* bound turns
divergence (possible for user-written axioms under debugging) into a
:class:`RewriteLimitError` instead of a hang.
"""

from __future__ import annotations

import contextlib
import sys
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Optional

from repro.algebra.matching import match_bindings
from repro.algebra.sorts import BOOLEAN
from repro.algebra.substitution import apply_bindings
from repro.algebra.terms import App, Err, Ite, Lit, Term, Var
from repro.spec.axioms import Axiom
from repro.spec.errors import AlgebraError
from repro.spec.prelude import boolean_term, is_false, is_true
from repro.spec.specification import Specification
from repro.rewriting.rules import RuleSet


class RewriteLimitError(Exception):
    """Raised when evaluation exceeds its step budget."""

    def __init__(self, term: Term, fuel: int) -> None:
        try:
            rendered = str(term)
        except RecursionError:  # term too deep even to print
            rendered = f"<term of {term.size()} nodes>"
        if len(rendered) > 200:
            rendered = rendered[:200] + "..."
        super().__init__(
            f"no normal form within {fuel} rewrite steps for {rendered}"
        )
        self.term = term
        self.fuel = fuel


@dataclass
class EngineStats:
    """Counters exposed for the benchmarks and the coverage analysis."""

    steps: int = 0
    rule_firings: int = 0
    builtin_firings: int = 0
    error_propagations: int = 0
    cache_hits: int = 0
    cache_probes: int = 0
    firings_by_rule: dict = field(default_factory=dict)

    def record_firing(self, rule: "RewriteRule") -> None:
        self.rule_firings += 1
        key = id(rule)
        entry = self.firings_by_rule.get(key)
        if entry is None:
            self.firings_by_rule[key] = [rule, 1]
        else:
            entry[1] += 1

    def firing_count(self, rule: "RewriteRule") -> int:
        entry = self.firings_by_rule.get(id(rule))
        return entry[1] if entry else 0

    def reset(self) -> None:
        self.steps = 0
        self.rule_firings = 0
        self.builtin_firings = 0
        self.error_propagations = 0
        self.cache_hits = 0
        self.cache_probes = 0
        self.firings_by_rule.clear()

    @property
    def cache_hit_rate(self) -> float:
        """Fraction of memo probes answered from the cache."""
        return self.cache_hits / self.cache_probes if self.cache_probes else 0.0


#: Default step budget.  The paper's specifications normalise any
#: realistic term in far fewer steps; the bound exists to catch runaway
#: user axioms.
DEFAULT_FUEL = 200_000

#: Hard ceiling on the recursion limit :func:`_enough_stack` will set.
#: Evaluation uses a handful of Python frames per term level; deep terms
#: need headroom, but an unbounded limit risks a C-stack overflow.
_MAX_RECURSION_LIMIT = 100_000


@contextlib.contextmanager
def _enough_stack(term: Term):
    """Temporarily raise the interpreter recursion limit in proportion
    to the term's depth, so legitimately deep (but finite) evaluations
    do not masquerade as divergence."""
    needed = min(_MAX_RECURSION_LIMIT, term.depth() * 12 + 2_000)
    previous = sys.getrecursionlimit()
    if needed > previous:
        sys.setrecursionlimit(needed)
        try:
            yield
        finally:
            sys.setrecursionlimit(previous)
    else:
        yield


class RewriteEngine:
    """Evaluates terms under a rule set.

    Parameters
    ----------
    rules:
        The oriented axioms.
    fuel:
        Maximum rewrite steps per ``normalize``/``simplify`` call.
    use_index:
        Rule-lookup strategy.  ``True`` (the default) uses the
        discrimination-tree index (head symbol, then argument shapes);
        ``"head"`` uses the flat per-head-symbol list — the seed
        engine's index; ``False`` scans the whole rule list.  The
        non-default settings exist only for the E10 ablation benchmark.
    cache_size:
        Normal forms of *ground* applications are memoised (the rule set
        is fixed for the engine's lifetime, so a ground term's normal
        form never changes).  Clients like the symbolic façade normalise
        the same growing terms repeatedly, where the cache turns
        re-evaluation into a lookup.  The memo is a bounded LRU keyed on
        interned term identity; overflow evicts the least recently used
        entry.  0 disables caching.
    cache_policy:
        ``"lru"`` (the default) evicts one least-recently-used entry per
        overflowing insert.  ``"clear"`` reproduces the seed engine's
        behaviour — wipe the whole memo when it fills — and exists only
        so the E10 ablation can measure what the LRU fixes.
    """

    def __init__(
        self,
        rules: RuleSet,
        fuel: int = DEFAULT_FUEL,
        use_index: "bool | str" = True,
        cache_size: int = 4096,
        cache_policy: str = "lru",
    ) -> None:
        if cache_policy not in ("lru", "clear"):
            raise ValueError(f"unknown cache policy: {cache_policy!r}")
        self.rules = rules
        self.fuel = fuel
        self.use_index = use_index
        self.stats = EngineStats()
        self.cache_size = cache_size
        self.cache_policy = cache_policy
        self._cache: "OrderedDict[Term, Term]" = OrderedDict()

    @classmethod
    def for_specification(
        cls, spec: Specification, fuel: int = DEFAULT_FUEL
    ) -> "RewriteEngine":
        return cls(RuleSet.from_specification(spec), fuel=fuel)

    # ------------------------------------------------------------------
    # Value-mode evaluation
    # ------------------------------------------------------------------
    def normalize(self, term: Term) -> Term:
        """The call-by-value normal form of ``term``."""
        budget = [self.fuel]
        with _enough_stack(term):
            try:
                return self._eval(term, budget)
            except RewriteLimitError:
                raise RewriteLimitError(term, self.fuel) from None
            except RecursionError:
                # Divergence can out-run the step budget in Python stack
                # frames; report it the same way.
                raise RewriteLimitError(term, self.fuel) from None

    def _spend(self, budget: list[int], term: Term) -> None:
        self.stats.steps += 1
        budget[0] -= 1
        if budget[0] < 0:
            raise RewriteLimitError(term, self.fuel)

    def _eval(self, term: Term, budget: list[int]) -> Term:
        # Applications first: they are the overwhelming majority of the
        # recursive calls and the only case with real work to do.
        if not isinstance(term, App):
            if not isinstance(term, Ite):
                return term  # Var, Lit, Err: already normal
            cond = self._eval(term.cond, budget)
            if isinstance(cond, Err):
                self.stats.error_propagations += 1
                return Err(term.sort)
            if is_true(cond):
                return self._eval(term.then_branch, budget)
            if is_false(cond):
                return self._eval(term.else_branch, budget)
            # Open condition: value-mode evaluation leaves the node as-is
            # with the evaluated condition in place.
            if cond is term.cond:
                return term
            return Ite(cond, term.then_branch, term.else_branch)
        if self.cache_size:
            self.stats.cache_probes += 1
            cached = self._cache.get(term)
            if cached is not None:
                self.stats.cache_hits += 1
                self._cache.move_to_end(term)
                return cached
        args = []
        changed = False
        for arg in term.args:
            value = self._eval(arg, budget)
            if isinstance(value, Err):
                self.stats.error_propagations += 1
                return Err(term.sort)
            if value is not arg:
                changed = True
            args.append(value)
        node = App(term.op, args) if changed else term
        result = self._eval_root(node, budget)
        if (
            self.cache_size
            and term._ground
            and not isinstance(result, Ite)
        ):
            self._remember(term, result)
            if node is not term:
                # The argument-normalised form shares the normal form;
                # later evaluations may probe with it directly.
                self._remember(node, result)
        return result

    def _remember(self, key: Term, value: Term) -> None:
        """Insert into the normal-form memo, evicting the least recently
        used entries once the cache is full (never the whole memo —
        unless the seed ablation policy ``"clear"`` is selected)."""
        cache = self._cache
        if len(cache) >= self.cache_size and key not in cache:
            if self.cache_policy == "clear":
                cache.clear()
            else:
                cache.popitem(last=False)
        cache[key] = value

    def _eval_root(self, term: App, budget: list[int]) -> Term:
        """Rewrite at the root until no step applies; arguments are
        already in normal form.

        Rule firings go through :meth:`_instantiate`, which fuses
        instantiation of the right-hand side with its normalisation —
        the result is fully normal, so no further root pass is needed.
        Builtin firings may return arbitrary terms and stay in the loop.
        """
        while True:
            builtin = term.op.builtin
            if builtin is not None and all(isinstance(a, Lit) for a in term.args):
                self.stats.builtin_firings += 1
                step = self._run_builtin(term)
                self._spend(budget, term)
                if isinstance(step, (Var, Lit, Err)):
                    return step
                if isinstance(step, Ite) or not _args_normal(step):
                    step = self._eval(step, budget)
                if not isinstance(step, App):
                    return step
                if any(isinstance(arg, Err) for arg in step.args):
                    self.stats.error_propagations += 1
                    return Err(step.sort)
                term = step
                continue
            rule, bindings = self._match_root(term, budget)
            if rule is None:
                return term
            self._spend(budget, term)
            return self._instantiate(rule.rhs, bindings, budget)

    def _match_root(self, term: App, budget: list[int]):
        """The first indexed rule matching at the root, with its raw
        bindings; ``(None, None)`` when none match.  ``budget`` is
        unused here but threaded for subclasses whose match decision
        needs speculative evaluation (the prover's guarded unfolding)."""
        for rule in self._candidates(term):
            bindings = match_bindings(rule.lhs, term)
            if bindings is not None:
                self.stats.record_firing(rule)
                return rule, bindings
        return None, None

    def _instantiate(self, template: Term, bindings, budget: list[int]) -> Term:
        """Instantiate a rule right-hand side under ``bindings`` and
        normalise it in one pass.

        Bindings come from matching a subject whose arguments are
        already normal, so they are fixed points of :meth:`_eval`; only
        structure the template introduces needs evaluation.  Fusing the
        two walks means the untaken branch of a decided conditional is
        never constructed at all, and each new application node is
        probed against the memo the moment it exists."""
        if isinstance(template, Var):
            return bindings[template]
        if isinstance(template, App):
            args = []
            changed = False
            for arg in template.args:
                value = self._instantiate(arg, bindings, budget)
                if isinstance(value, Err):
                    self.stats.error_propagations += 1
                    return Err(template.sort)
                if value is not arg:
                    changed = True
                args.append(value)
            node = App(template.op, args) if changed else template
            if self.cache_size:
                self.stats.cache_probes += 1
                cached = self._cache.get(node)
                if cached is not None:
                    self.stats.cache_hits += 1
                    self._cache.move_to_end(node)
                    return cached
            result = self._eval_root(node, budget)
            if (
                self.cache_size
                and node._ground
                and not isinstance(result, Ite)
            ):
                self._remember(node, result)
            return result
        if isinstance(template, Ite):
            cond = self._instantiate(template.cond, bindings, budget)
            if isinstance(cond, Err):
                self.stats.error_propagations += 1
                return Err(template.sort)
            if is_true(cond):
                return self._instantiate(template.then_branch, bindings, budget)
            if is_false(cond):
                return self._instantiate(template.else_branch, bindings, budget)
            # Open condition: leave the conditional in place with plainly
            # substituted (unevaluated) branches, as value mode demands.
            return Ite(
                cond,
                apply_bindings(template.then_branch, bindings),
                apply_bindings(template.else_branch, bindings),
            )
        return template  # Lit or Err

    def _candidates(self, term: App):
        """Rules to try at the root of ``term``, per ``use_index``."""
        if self.use_index is True:
            return self.rules.candidates(term)
        if self.use_index == "head":
            return self.rules.for_head(term.op)
        return self.rules

    def _root_step(self, term: App, budget: list[int]) -> Optional[Term]:
        builtin = term.op.builtin
        if builtin is not None and all(isinstance(a, Lit) for a in term.args):
            self.stats.builtin_firings += 1
            return self._run_builtin(term)
        for rule in self._candidates(term):
            result = rule.apply_at_root(term)
            if result is not None:
                self.stats.record_firing(rule)
                return result
        return None

    def _run_builtin(self, term: App) -> Term:
        values = [arg.value for arg in term.args]  # type: ignore[union-attr]
        try:
            result = term.op.builtin(*values)  # type: ignore[misc]
        except AlgebraError:
            return Err(term.sort)
        if term.sort == BOOLEAN and isinstance(result, bool):
            return boolean_term(result)
        if isinstance(result, Term):
            return result
        return Lit(result, term.sort)

    # ------------------------------------------------------------------
    # Symbolic simplification
    # ------------------------------------------------------------------
    def simplify(self, term: Term) -> Term:
        """Simplify an open term as far as the rules allow.

        Both branches of undecided conditionals are simplified, and the
        identity ``if c then x else x = x`` is applied — sound because
        either branch yields ``x``.
        """
        budget = [self.fuel]
        with _enough_stack(term):
            try:
                return self._simplify(term, budget)
            except RecursionError:
                raise RewriteLimitError(term, self.fuel) from None

    def _simplify(self, term: Term, budget: list[int]) -> Term:
        if isinstance(term, (Var, Lit, Err)):
            return term
        if isinstance(term, Ite):
            cond = self._simplify(term.cond, budget)
            if isinstance(cond, Err):
                self.stats.error_propagations += 1
                return Err(term.sort)
            if is_true(cond):
                return self._simplify(term.then_branch, budget)
            if is_false(cond):
                return self._simplify(term.else_branch, budget)
            then_branch = self._simplify(term.then_branch, budget)
            else_branch = self._simplify(term.else_branch, budget)
            if then_branch == else_branch:
                return then_branch
            if (
                cond is term.cond
                and then_branch is term.then_branch
                and else_branch is term.else_branch
            ):
                return term
            return Ite(cond, then_branch, else_branch)
        assert isinstance(term, App)
        args = []
        changed = False
        for arg in term.args:
            value = self._simplify(arg, budget)
            if isinstance(value, Err):
                self.stats.error_propagations += 1
                return Err(term.sort)
            if value is not arg:
                changed = True
            args.append(value)
        node = App(term.op, args) if changed else term
        step = self._root_step(node, budget)
        if step is None:
            return node
        self._spend(budget, node)
        return self._simplify(step, budget)

    # ------------------------------------------------------------------
    # Equality under the rules
    # ------------------------------------------------------------------
    def equal(self, left: Term, right: Term) -> bool:
        """True when both terms normalise to the same normal form."""
        return self.normalize(left) == self.normalize(right)

    def check_axiom_instance(self, axiom: Axiom, substitution) -> bool:
        """Evaluate both sides of ``axiom`` under ``substitution`` and
        compare normal forms — the ground model check used throughout the
        analysis and verification layers."""
        return self.equal(
            substitution.apply(axiom.lhs), substitution.apply(axiom.rhs)
        )


def _args_normal(term: Term) -> bool:
    """Cheap test used to avoid re-walking already-normal arguments.
    (``all`` over an empty argument tuple is already True, so nullary
    applications need no special case.)"""
    if not isinstance(term, App):
        return True
    return all(isinstance(arg, (Var, Lit, Err)) for arg in term.args)
