"""The rewrite engine: evaluation of terms under a specification.

Two evaluation modes:

* :meth:`RewriteEngine.normalize` — call-by-value evaluation of
  (typically ground) terms.  Arguments are normalised innermost-first;
  ``if-then-else`` evaluates its condition, then *only the selected
  branch* (lazy branches are what make the recursive axioms, e.g.
  ``RETRIEVE'``, terminate); the distinguished ``error`` propagates
  strictly through operations and conditions; operations with builtin
  Python evaluators fire once their arguments are literals.

* :meth:`RewriteEngine.simplify` — symbolic simplification of open
  terms, for the prover.  Like ``normalize``, but when a condition does
  not decide, both branches are simplified in place, and trivial
  conditional identities (``if c then x else x -> x``) are applied.

Value-mode evaluation runs on an explicit work stack rather than the
Python call stack, so a term's depth is bounded by memory, not by the
interpreter recursion limit — a 50k-deep queue drains without touching
``sys.setrecursionlimit``.  Two backends implement the same rewrite
relation: the default ``"interpreted"`` backend walks rules generically,
while ``"compiled"`` (see :mod:`repro.rewriting.compile`) dispatches
through per-operation closures specialised from the rule set.

Evaluation runs under an :class:`~repro.runtime.EvaluationBudget` —
fuel (rewrite steps), an optional wall-clock deadline, and memory caps
— enforced identically by both backends through a shared
:class:`~repro.runtime.BudgetMeter`.  Exceeding any dimension raises
:class:`RewriteLimitError`, whose ``reason`` distinguishes genuine fuel
exhaustion from recursion blow-ups, deadlines, memory caps, and
*cycling* (a periodic rewrite sequence, reported with its minimal
repeating trace).  Callers that cannot afford exceptions use
:meth:`RewriteEngine.normalize_outcome` /
:meth:`RewriteEngine.normalize_many_outcomes`, which degrade gracefully
(compiled → interpreted → partial result) and never abort a batch.
"""

from __future__ import annotations

from collections import OrderedDict
from time import perf_counter
from typing import Iterable, Optional

from repro.algebra.matching import match_bindings
from repro.algebra.sorts import BOOLEAN
from repro.algebra.substitution import apply_bindings
from repro.algebra.terms import App, Err, Ite, Lit, Term, Var
from repro.spec.axioms import Axiom
from repro.spec.errors import AlgebraError
from repro.spec.prelude import boolean_term, is_false, is_true
from repro.spec.specification import Specification
from repro.rewriting.rules import RuleSet
from repro.runtime import faults as _faults
from repro.runtime.budget import (
    DEFAULT_FUEL,
    BudgetExceeded,
    BudgetMeter,
    EvaluationBudget,
    REASON_CYCLE,
    REASON_DEADLINE,
    REASON_DEPTH,
    REASON_FUEL,
    REASON_MEMORY,
)
from repro.runtime.outcome import Outcome
from repro.runtime.render import SUMMARY_LIMIT, summarize_term
from repro.obs import metrics as _metrics
from repro.obs import trace as _trace

#: Rendering budget for terms quoted in error messages.  Compat aliases:
#: the canonical helper now lives in :mod:`repro.runtime.render`, shared
#: with trace events so every diagnosis renders subjects identically.
_RENDER_LIMIT = SUMMARY_LIMIT
_render_capped = summarize_term


class RewriteLimitError(Exception):
    """Raised when evaluation exceeds its budget.

    ``reason`` says which dimension gave out (see
    :data:`repro.runtime.budget.REASONS`):

    * ``"fuel"`` — the step budget ran dry on a non-periodic workload;
    * ``"depth"`` — a Python recursion blow-up (subclass hooks such as
      the prover's guarded unfolding may still recurse);
    * ``"deadline"`` — the wall-clock deadline passed;
    * ``"cycle"`` — the rewrite sequence is periodic; ``trace`` holds
      the minimal repeating sequence of rewrite subjects;
    * ``"memory"`` — an intern-table growth cap tripped.
    """

    def __init__(
        self,
        term: Term,
        fuel: int,
        reason: str = REASON_FUEL,
        trace: tuple = (),
        detail: str = "",
    ) -> None:
        rendered = summarize_term(term)
        if reason == REASON_CYCLE:
            loop = ", ".join(summarize_term(t, 40) for t in trace[:4])
            if len(trace) > 4:
                loop += ", ..."
            message = (
                f"evaluation of {rendered} diverges: rewriting cycles "
                f"through {len(trace)} term(s) [{loop}]"
            )
        elif reason == REASON_DEPTH:
            message = f"recursion depth exceeded while evaluating {rendered}"
        elif reason == REASON_DEADLINE:
            message = (
                f"wall-clock deadline exceeded while evaluating {rendered}"
            )
        elif reason == REASON_MEMORY:
            message = (
                f"memory budget exceeded while evaluating {rendered}"
                + (f" ({detail})" if detail else "")
            )
        else:
            message = (
                f"no normal form within {fuel} rewrite steps for {rendered}"
            )
        super().__init__(message)
        self.term = term
        self.fuel = fuel
        self.reason = reason
        self.trace = trace
        self.detail = detail
        tracer = _trace.ACTIVE
        if tracer is not None:
            tracer.event(
                "budget_exhausted",
                reason=reason,
                fuel=fuel,
                subject=rendered,
                detail=detail,
            )


class EngineStats:
    """Engine counters, as views over a per-engine metrics registry.

    Historically a plain dataclass of ints; the counters now live in a
    :class:`repro.obs.metrics.MetricsRegistry` owned by the stats object
    (one per engine), so ``--metrics-out`` and the benchmark driver can
    aggregate every engine in the process without new plumbing.  The old
    attribute API (``stats.steps``, ``stats.cache_hits``,
    ``stats.firings_by_rule``...) is preserved as properties over the
    registry — existing callers and tests keep working — while hot paths
    pre-bind the underlying one-element list slots (``s_steps`` etc.,
    the :class:`~repro.runtime.budget.BudgetMeter` trick) and increment
    ``slot[0]`` with no attribute or method dispatch per event.

    ``rule_firings`` is now *derived* — the sum of the per-rule counter
    family — where the dataclass kept a second, separately incremented
    total that could drift from ``firings_by_rule``.  The family maps
    each :class:`RewriteRule` *object* to its firing count (rules are
    frozen and hashable, so the object itself is the honest key; they
    stringify as ``[label] lhs -> rhs`` in snapshots).
    """

    __slots__ = (
        "registry",
        "s_steps",
        "s_builtin",
        "s_errprop",
        "s_hits",
        "s_probes",
        "s_fuel",
        "firings",
        "fallbacks",
        "outcomes",
        "latency",
        "fuel_hist",
    )

    def __init__(
        self, registry: Optional[_metrics.MetricsRegistry] = None
    ) -> None:
        if registry is None:
            registry = _metrics.MetricsRegistry("engine")
        self.registry = registry
        counter = registry.counter
        self.s_steps = counter(
            "engine.steps", "rewrite steps spent (rule and builtin firings)"
        ).slot
        self.s_builtin = counter(
            "engine.builtin_firings", "builtin operation evaluations"
        ).slot
        self.s_errprop = counter(
            "engine.error_propagations", "strict error-value propagations"
        ).slot
        self.s_hits = counter(
            "engine.memo_hits", "ground normal-form memo probes answered"
        ).slot
        self.s_probes = counter(
            "engine.memo_probes", "ground normal-form memo probes issued"
        ).slot
        self.s_fuel = counter(
            "engine.fuel_spent", "fuel consumed across evaluations"
        ).slot
        self.firings = registry.family(
            "engine.rule_firings", "rule firings per rewrite rule"
        )
        self.fallbacks = registry.family(
            "engine.fallbacks", "backend degradations by kind"
        )
        self.outcomes = registry.family(
            "engine.outcomes", "resilient evaluations by outcome status"
        )
        self.latency = registry.histogram(
            "engine.eval_seconds", help="normalize() wall-clock seconds"
        )
        self.fuel_hist = registry.histogram(
            "engine.fuel_per_eval",
            bounds=_metrics.FUEL_BUCKETS,
            help="fuel consumed per normalize() call",
        )

    # -- compat attribute API (the old dataclass fields) ----------------
    @property
    def steps(self) -> int:
        return self.s_steps[0]

    @steps.setter
    def steps(self, value: int) -> None:
        self.s_steps[0] = value

    @property
    def builtin_firings(self) -> int:
        return self.s_builtin[0]

    @builtin_firings.setter
    def builtin_firings(self, value: int) -> None:
        self.s_builtin[0] = value

    @property
    def error_propagations(self) -> int:
        return self.s_errprop[0]

    @error_propagations.setter
    def error_propagations(self, value: int) -> None:
        self.s_errprop[0] = value

    @property
    def cache_hits(self) -> int:
        return self.s_hits[0]

    @cache_hits.setter
    def cache_hits(self, value: int) -> None:
        self.s_hits[0] = value

    @property
    def cache_probes(self) -> int:
        return self.s_probes[0]

    @cache_probes.setter
    def cache_probes(self, value: int) -> None:
        self.s_probes[0] = value

    @property
    def rule_firings(self) -> int:
        """Total rule firings — derived from the per-rule family, so it
        cannot drift from ``firings_by_rule`` (the old dataclass kept a
        second counter that had to be incremented in lockstep)."""
        return self.firings.total

    @property
    def firings_by_rule(self) -> dict:
        return self.firings.counts

    # -- recording -------------------------------------------------------
    def record_firing(
        self, rule: "RewriteRule", subject: Optional[Term] = None
    ) -> None:
        counts = self.firings.counts
        counts[rule] = counts.get(rule, 0) + 1
        tracer = _trace.ACTIVE
        if tracer is not None and not tracer.never:
            tracer.step(rule, subject)

    def record_fallback(self, kind: str) -> None:
        """One backend degradation (``compiled_to_interpreted`` for the
        outcome ladder, ``compiled_depth`` for the compiled backend's
        deep-recursion rescue)."""
        self.fallbacks.inc(kind)
        tracer = _trace.ACTIVE
        if tracer is not None:
            tracer.event("fallback", kind=kind)

    def record_outcome(self, status: str) -> None:
        self.outcomes.inc(status)

    # -- reading ---------------------------------------------------------
    def firing_count(self, rule: "RewriteRule") -> int:
        return self.firings.get(rule)

    def firing_summary(self, limit: Optional[int] = None) -> str:
        """A repr-stable rendering of the per-rule firing counts:
        busiest rules first, each line ``<count>  <rule>``.  Safe to
        call at any time — the entries hold the rules themselves, so a
        summary never dangles."""
        return self.firings.summary(limit)

    def reset(self) -> None:
        self.registry.reset()

    @property
    def cache_hit_rate(self) -> float:
        """Fraction of memo probes answered from the cache."""
        probes = self.s_probes[0]
        return self.s_hits[0] / probes if probes else 0.0


#: Selectable evaluation backends (see the module docstring).
BACKENDS = ("interpreted", "compiled", "codegen")

# Frame tags for the explicit-stack value-mode evaluator.  Each frame is
# a tuple whose first element is one of these; the machine in
# :meth:`RewriteEngine._eval` documents the payloads.
_F_EVAL = 0
_F_APP_ARG = 1
_F_ITE_COND = 2
_F_ROOT = 3
_F_MEMO = 4
_F_BUILTIN_CONT = 5
_F_INST = 6
_F_INST_ARG = 7
_F_INST_ITE = 8


class RewriteEngine:
    """Evaluates terms under a rule set.

    Parameters
    ----------
    rules:
        The oriented axioms.
    fuel:
        Maximum rewrite steps per ``normalize``/``simplify`` call.
    use_index:
        Rule-lookup strategy.  ``True`` (the default) uses the
        discrimination-tree index (head symbol, then argument shapes);
        ``"head"`` uses the flat per-head-symbol list — the seed
        engine's index; ``False`` scans the whole rule list.  The
        non-default settings exist only for the E10 ablation benchmark.
    cache_size:
        Normal forms of *ground* applications are memoised (the rule set
        is fixed for the engine's lifetime, so a ground term's normal
        form never changes).  Clients like the symbolic façade normalise
        the same growing terms repeatedly, where the cache turns
        re-evaluation into a lookup.  The memo is a bounded LRU keyed on
        interned term identity; overflow evicts the least recently used
        entry.  0 disables caching.
    cache_policy:
        ``"lru"`` (the default) evicts one least-recently-used entry per
        overflowing insert.  ``"clear"`` reproduces the seed engine's
        behaviour — wipe the whole memo when it fills — and exists only
        so the E10 ablation can measure what the LRU fixes.
    backend:
        ``"interpreted"`` (the default) evaluates with the generic
        explicit-stack machine below.  ``"compiled"`` routes
        ``normalize``/``normalize_many`` through per-operation closures
        specialised from the rule set (:mod:`repro.rewriting.compile`);
        both backends compute the same normal forms.  Symbolic
        ``simplify`` always uses the interpreted machinery — open-term
        simplification is not on any hot path.
    budget:
        The default :class:`~repro.runtime.EvaluationBudget` for every
        evaluation.  Supersedes ``fuel`` when given; its
        ``max_memo_entries`` clamps ``cache_size`` (the memo is engine
        state, so its cap binds at construction).  Per-call budgets may
        be passed to the evaluation methods.
    """

    def __init__(
        self,
        rules: RuleSet,
        fuel: int = DEFAULT_FUEL,
        use_index: "bool | str" = True,
        cache_size: int = 4096,
        cache_policy: str = "lru",
        backend: str = "interpreted",
        budget: Optional[EvaluationBudget] = None,
        fusion=None,
    ) -> None:
        if cache_policy not in ("lru", "clear"):
            raise ValueError(f"unknown cache policy: {cache_policy!r}")
        if backend not in BACKENDS:
            raise ValueError(
                f"unknown backend: {backend!r} (expected one of {BACKENDS})"
            )
        if budget is None:
            budget = EvaluationBudget(fuel=fuel)
        elif budget.max_memo_entries is not None:
            cache_size = min(cache_size, budget.max_memo_entries)
        self.rules = rules
        self.fuel = budget.fuel
        self.budget = budget
        self.use_index = use_index
        self.backend = backend
        self.fusion = fusion  # codegen superinstruction plan (None = auto)
        self.stats = EngineStats()
        self.cache_size = cache_size
        self.cache_policy = cache_policy
        self._cache: "OrderedDict[Term, Term]" = OrderedDict()
        self._compiled = None  # lazily-built CompiledEngine delegate
        self._codegen = None  # lazily-built CodegenEngine delegate
        self._pools: dict = {}  # workers -> ShardPool (None = unavailable)

    @classmethod
    def for_specification(
        cls,
        spec: Specification,
        fuel: int = DEFAULT_FUEL,
        backend: str = "interpreted",
        budget: Optional[EvaluationBudget] = None,
    ) -> "RewriteEngine":
        return cls(
            RuleSet.from_specification(spec),
            fuel=fuel,
            backend=backend,
            budget=budget,
        )

    def _meter(self, budget: Optional[EvaluationBudget]) -> BudgetMeter:
        """A fresh meter for one evaluation: the per-call budget when
        given, else the engine's default adjusted for any
        post-construction ``engine.fuel`` assignment."""
        if budget is None:
            budget = self.budget.with_fuel(self.fuel)
        return budget.start()

    # ------------------------------------------------------------------
    # Value-mode evaluation
    # ------------------------------------------------------------------
    def normalize(
        self, term: Term, budget: Optional[EvaluationBudget] = None
    ) -> Term:
        """The call-by-value normal form of ``term``."""
        if self.backend != "interpreted":
            return self._delegate_engine().normalize(term, budget)
        tracer = _trace.ACTIVE
        if tracer is None or tracer.never:
            # ``never`` guards the eager summarize_term below: a muted
            # tracer must not pay for span attributes it will drop.
            return self._normalize_interpreted(term, budget)
        with tracer.span(
            "engine.normalize",
            backend="interpreted",
            subject=summarize_term(term),
        ):
            return self._normalize_interpreted(term, budget)

    def _normalize_interpreted(
        self, term: Term, budget: Optional[EvaluationBudget]
    ) -> Term:
        meter = self._meter(budget)
        stats = self.stats
        started = perf_counter()
        try:
            return self._eval(term, meter)
        except BudgetExceeded as exc:
            raise RewriteLimitError(
                term,
                meter.budget.fuel,
                reason=exc.reason,
                trace=exc.trace,
                detail=exc.detail,
            ) from None
        except RewriteLimitError as exc:
            raise RewriteLimitError(
                term,
                meter.budget.fuel,
                reason=exc.reason,
                trace=exc.trace,
                detail=exc.detail,
            ) from None
        except RecursionError:
            # The evaluator itself is iterative, but subclass hooks
            # (the prover's guarded unfolding) may still recurse.
            raise RewriteLimitError(
                term, meter.budget.fuel, reason=REASON_DEPTH
            ) from None
        finally:
            stats.latency.observe(perf_counter() - started)
            spent = meter.budget.fuel - meter[0]
            if spent > 0:
                stats.s_fuel[0] += spent
            stats.fuel_hist.observe(spent if spent > 0 else 0)

    def normalize_many(
        self,
        terms: Iterable[Term],
        budget: Optional[EvaluationBudget] = None,
        workers: Optional[int] = None,
    ) -> list[Term]:
        """Normalise a batch of terms against one shared memo.

        Each term gets the full fuel budget, but ground normal forms
        memoised while normalising earlier terms answer probes for the
        later ones — on workloads with shared substructure (the oracle
        checking many instances of the same axioms, the benchmarks
        draining a family of queues) most of the batch is cache hits.

        ``workers=N`` (N > 1) shards the batch across a pool of worker
        processes (:class:`repro.parallel.ShardPool`), preserving input
        order and serial semantics; each worker warms its own engine
        and memo, so cross-item memo sharing becomes shard-local.  If
        the pool cannot be built (unwireable rules, no multiprocessing)
        the batch silently runs serially, recorded as a
        ``pool_unavailable`` fallback.

        The first limit aborts the whole batch; use
        :meth:`normalize_many_outcomes` for fault isolation.
        """
        if workers is not None and workers > 1:
            terms = terms if isinstance(terms, list) else list(terms)
            pool = self._shard_pool(workers)
            if pool is not None and len(terms) > 1:
                return pool.normalize_many(terms, budget)
        if self.backend != "interpreted":
            return self._delegate_engine().normalize_many(terms, budget)
        return [self.normalize(term, budget) for term in terms]

    # ------------------------------------------------------------------
    # Resilient evaluation: outcomes and the degradation ladder
    # ------------------------------------------------------------------
    def normalize_outcome(
        self, term: Term, budget: Optional[EvaluationBudget] = None
    ) -> Outcome:
        """Resilient normalisation: an :class:`~repro.runtime.Outcome`
        instead of an exception.

        Degradation ladder: the compiled backend is tried first (when
        selected); an unexpected runtime failure there — a fault
        injection, a recursion blow-up in generated code — degrades to
        the interpreted machine; a failure *there* yields a partial
        ``truncated`` outcome with the fault as the detail.  Budget
        exhaustion maps to ``truncated`` (or ``diverged`` for a
        diagnosed cycle); reaching the algebra's ``error`` value is the
        *defined* result ``error_value``, not a failure.
        """
        if self.backend != "interpreted":
            try:
                outcome = Outcome.of_normal_form(
                    self._delegate_engine().normalize(term, budget)
                )
            except RewriteLimitError as exc:
                outcome = Outcome.from_limit(exc)
            except Exception:  # fault-boundary: degrade to interpreted
                self.stats.record_fallback(
                    f"{self.backend}_to_interpreted"
                )
                outcome = self._interpreted_outcome(term, budget)
        else:
            outcome = self._interpreted_outcome(term, budget)
        self.stats.record_outcome(outcome.status)
        return outcome

    def _interpreted_outcome(
        self, term: Term, budget: Optional[EvaluationBudget]
    ) -> Outcome:
        """The interpreted rung of the ladder, ending in a partial
        result rather than an exception.  The memo only ever stores
        *completed* normal forms, so a failure part-way leaves the
        caches consistent — the chaos suite holds it to that."""
        meter = self._meter(budget)
        stats = self.stats
        try:
            return Outcome.of_normal_form(self._eval(term, meter))
        except BudgetExceeded as exc:
            return Outcome.from_limit(
                RewriteLimitError(
                    term,
                    meter.budget.fuel,
                    reason=exc.reason,
                    trace=exc.trace,
                    detail=exc.detail,
                )
            )
        except RewriteLimitError as exc:
            return Outcome.from_limit(exc)
        except RecursionError as exc:
            return Outcome(
                "truncated", term=term, reason=REASON_DEPTH, detail=str(exc)
            )
        except Exception as exc:  # fault-boundary: partial result
            return Outcome.of_fault(term, exc)
        finally:
            # Same fuel accounting as normalize(): the outcome path is
            # the one serving takes, and /readyz derives its suggested
            # per-spec budget from this histogram.
            spent = meter.budget.fuel - meter[0]
            if spent > 0:
                stats.s_fuel[0] += spent
            stats.fuel_hist.observe(spent if spent > 0 else 0)

    def normalize_many_outcomes(
        self,
        terms: Iterable[Term],
        budget: Optional[EvaluationBudget] = None,
        workers: Optional[int] = None,
    ) -> list[Outcome]:
        """Fault-isolating batch evaluation: one outcome per term, the
        shared memo still warming across items, and no term — however
        pathological — able to abort its neighbours.  Budgets apply per
        item (each term gets the full budget, deadline included).

        ``workers=N`` shards the batch across worker processes with the
        same per-item semantics — the degradation ladder holds
        shard-locally, and outcome order matches input order."""
        if workers is not None and workers > 1:
            terms = terms if isinstance(terms, list) else list(terms)
            pool = self._shard_pool(workers)
            if pool is not None and len(terms) > 1:
                return pool.normalize_many_outcomes(terms, budget)
        return [self.normalize_outcome(term, budget) for term in terms]

    def _shard_pool(self, workers: int):
        """The cached :class:`~repro.parallel.ShardPool` for ``workers``
        shards, rebuilt when the rule set grew or ``engine.fuel`` was
        adjusted since the pool was built (mirroring the compiled
        delegates).  ``None`` when pooling is unavailable for this
        engine — unwireable rules, no multiprocessing — in which case
        batch calls stay serial (recorded as a ``pool_unavailable``
        fallback, once)."""
        pool = self._pools.get(workers)
        if pool is not None and (
            pool.rule_count != len(self.rules) or pool.fuel != self.fuel
        ):
            pool.close()
            pool = None
            del self._pools[workers]
        if pool is None and workers not in self._pools:
            try:
                from repro.parallel import ShardPool

                pool = ShardPool(
                    self.rules,
                    workers,
                    backend=self.backend,
                    fuel=self.fuel,
                    budget=self.budget,
                    cache_size=self.cache_size,
                    cache_policy=self.cache_policy,
                    use_index=self.use_index,
                    fusion=self.fusion,
                )
            except Exception:  # fault-boundary: unwireable rules -> stay serial
                self.stats.record_fallback("pool_unavailable")
                pool = None
            self._pools[workers] = pool
        return pool

    def close_pools(self, wait: bool = False) -> None:
        """Shut down any worker pools this engine spawned."""
        for pool in self._pools.values():
            if pool is not None:
                pool.close(wait=wait)
        self._pools.clear()

    def __enter__(self) -> "RewriteEngine":
        return self

    def __exit__(self, *exc_info) -> None:
        # The context-manager form exists for the pools: an engine that
        # sharded batches must not leave worker processes behind.
        self.close_pools(wait=True)

    def _compiled_engine(self):
        """The lazily-built compiled delegate, rebuilt if rules were
        added since compilation (the prover grows rule sets in place)."""
        compiled = self._compiled
        if compiled is None or compiled.rule_count != len(self.rules):
            from repro.rewriting.compile import CompiledEngine

            compiled = CompiledEngine(
                self.rules,
                fuel=self.fuel,
                cache_size=self.cache_size,
                stats=self.stats,
                budget=self.budget,
            )
            self._compiled = compiled
        compiled.fuel = self.fuel  # track post-construction adjustments
        return compiled

    def _codegen_engine(self):
        """The lazily-built second-stage (emitted module) delegate."""
        codegen = self._codegen
        if codegen is None or codegen.rule_count != len(self.rules):
            from repro.rewriting.codegen import CodegenEngine

            codegen = CodegenEngine(
                self.rules,
                fuel=self.fuel,
                cache_size=self.cache_size,
                stats=self.stats,
                budget=self.budget,
                fusion=self.fusion,
            )
            self._codegen = codegen
        codegen.fuel = self.fuel  # track post-construction adjustments
        return codegen

    def _delegate_engine(self):
        """The non-interpreted backend selected at construction."""
        if self.backend == "codegen":
            return self._codegen_engine()
        return self._compiled_engine()

    def clear_cache(self) -> None:
        """Drop memoised normal forms (all backends' memos)."""
        self._cache.clear()
        if self._compiled is not None:
            self._compiled.clear_cache()
        if self._codegen is not None:
            self._codegen.clear_cache()

    def _spend(self, budget: BudgetMeter, term: Term) -> None:
        self.stats.s_steps[0] += 1
        budget.spend(term)

    def _eval(self, term: Term, budget: list[int]) -> Term:
        """Value-mode evaluation on an explicit work stack.

        The machine is the defunctionalised form of the obvious
        recursion: a stack of tagged tuple frames plus a ``result``
        register.  ``_F_EVAL`` dispatches on a term; ``_F_APP_ARG`` /
        ``_F_ITE_COND`` collect evaluated children; ``_F_ROOT`` rewrites
        at the root of an argument-normal application (rule selection
        stays behind the :meth:`_match_root` hook, so the prover's
        override keeps working); the ``_F_INST*`` frames fuse rule
        right-hand-side instantiation with normalisation, and
        ``_F_MEMO`` stores ground normal forms once their root pass
        finishes.  Term depth therefore costs heap, not Python stack —
        no recursion-limit fiddling, ever.
        """
        stats = self.stats
        # Pre-bound counter slots: incrementing slot[0] on a local list
        # is the cheapest accounting Python offers (the BudgetMeter
        # trick), and keeps the metrics registry off the hot path.
        s_probes = stats.s_probes
        s_hits = stats.s_hits
        s_errprop = stats.s_errprop
        s_builtin = stats.s_builtin
        cache = self._cache
        cache_on = self.cache_size > 0
        stack: list = [(_F_EVAL, term)]
        result: Term = term
        while stack:
            frame = stack.pop()
            tag = frame[0]
            if tag == _F_EVAL:
                t = frame[1]
                if isinstance(t, App):
                    if cache_on:
                        s_probes[0] += 1
                        cached = cache.get(t)
                        if cached is not None:
                            s_hits[0] += 1
                            cache.move_to_end(t)
                            result = cached
                            continue
                    if t.args:
                        stack.append((_F_APP_ARG, t, [], 1, False))
                        stack.append((_F_EVAL, t.args[0]))
                    else:
                        if cache_on:
                            stack.append((_F_MEMO, t, None))
                        stack.append((_F_ROOT, t))
                elif isinstance(t, Ite):
                    stack.append((_F_ITE_COND, t))
                    stack.append((_F_EVAL, t.cond))
                else:
                    result = t  # Var, Lit, Err: already normal
            elif tag == _F_APP_ARG:
                _, t, done, nxt, changed = frame
                value = result
                if isinstance(value, Err):
                    s_errprop[0] += 1
                    result = Err(t.sort)
                    continue
                if value is not t.args[nxt - 1]:
                    changed = True
                done.append(value)
                if nxt < len(t.args):
                    stack.append((_F_APP_ARG, t, done, nxt + 1, changed))
                    stack.append((_F_EVAL, t.args[nxt]))
                else:
                    node = App(t.op, done) if changed else t
                    if cache_on:
                        stack.append(
                            (_F_MEMO, t, node if node is not t else None)
                        )
                    stack.append((_F_ROOT, node))
            elif tag == _F_ROOT:
                # Rewrite at the root until no step applies; arguments
                # are already normal.  Rule firings continue in _F_INST
                # frames; builtin steps that need re-evaluation continue
                # under a _F_BUILTIN_CONT frame.
                node = frame[1]
                while True:
                    builtin = node.op.builtin
                    if builtin is not None and all(
                        isinstance(a, Lit) for a in node.args
                    ):
                        s_builtin[0] += 1
                        step = self._run_builtin(node)
                        self._spend(budget, node)
                        if isinstance(step, (Var, Lit, Err)):
                            result = step
                            break
                        if isinstance(step, Ite) or not _args_normal(step):
                            stack.append((_F_BUILTIN_CONT,))
                            stack.append((_F_EVAL, step))
                            break
                        if not isinstance(step, App):
                            result = step
                            break
                        if any(isinstance(arg, Err) for arg in step.args):
                            s_errprop[0] += 1
                            result = Err(step.sort)
                            break
                        node = step
                        continue
                    rule, bindings = self._match_root(node, budget)
                    if rule is None:
                        result = node
                        break
                    self._spend(budget, node)
                    stack.append((_F_INST, rule.rhs, bindings))
                    break
            elif tag == _F_BUILTIN_CONT:
                step = result
                if not isinstance(step, App):
                    pass  # already normal; the result stands
                elif any(isinstance(arg, Err) for arg in step.args):
                    s_errprop[0] += 1
                    result = Err(step.sort)
                else:
                    stack.append((_F_ROOT, step))
            elif tag == _F_MEMO:
                _, key, extra = frame
                if key._ground and not isinstance(result, Ite):
                    self._remember(key, result)
                    if extra is not None:
                        # The argument-normalised form shares the normal
                        # form; later evaluations may probe it directly.
                        self._remember(extra, result)
            elif tag == _F_INST:
                # Instantiate a rule right-hand side under its bindings
                # and normalise in one pass.  Bindings come from matching
                # a subject whose arguments are already normal, so they
                # are fixed points of evaluation; only structure the
                # template introduces needs work, the untaken branch of
                # a decided conditional is never constructed at all, and
                # each new application is probed against the memo the
                # moment it exists.
                _, template, bindings = frame
                if isinstance(template, Var):
                    result = bindings[template]
                elif isinstance(template, App):
                    if template.args:
                        stack.append(
                            (_F_INST_ARG, template, bindings, [], 1, False)
                        )
                        stack.append((_F_INST, template.args[0], bindings))
                    else:
                        if cache_on:
                            s_probes[0] += 1
                            cached = cache.get(template)
                            if cached is not None:
                                s_hits[0] += 1
                                cache.move_to_end(template)
                                result = cached
                                continue
                            stack.append((_F_MEMO, template, None))
                        stack.append((_F_ROOT, template))
                elif isinstance(template, Ite):
                    stack.append((_F_INST_ITE, template, bindings))
                    stack.append((_F_INST, template.cond, bindings))
                else:
                    result = template  # Lit or Err
            elif tag == _F_INST_ARG:
                _, template, bindings, done, nxt, changed = frame
                value = result
                if isinstance(value, Err):
                    s_errprop[0] += 1
                    result = Err(template.sort)
                    continue
                if value is not template.args[nxt - 1]:
                    changed = True
                done.append(value)
                if nxt < len(template.args):
                    stack.append(
                        (_F_INST_ARG, template, bindings, done, nxt + 1, changed)
                    )
                    stack.append((_F_INST, template.args[nxt], bindings))
                else:
                    node = App(template.op, done) if changed else template
                    if cache_on:
                        s_probes[0] += 1
                        cached = cache.get(node)
                        if cached is not None:
                            s_hits[0] += 1
                            cache.move_to_end(node)
                            result = cached
                            continue
                        if node._ground:
                            stack.append((_F_MEMO, node, None))
                    stack.append((_F_ROOT, node))
            elif tag == _F_INST_ITE:
                _, template, bindings = frame
                cond = result
                if isinstance(cond, Err):
                    s_errprop[0] += 1
                    result = Err(template.sort)
                elif is_true(cond):
                    stack.append((_F_INST, template.then_branch, bindings))
                elif is_false(cond):
                    stack.append((_F_INST, template.else_branch, bindings))
                else:
                    # Open condition: leave the conditional in place with
                    # plainly substituted (unevaluated) branches, as
                    # value mode demands.
                    result = Ite(
                        cond,
                        apply_bindings(template.then_branch, bindings),
                        apply_bindings(template.else_branch, bindings),
                    )
            else:  # _F_ITE_COND
                t = frame[1]
                cond = result
                if isinstance(cond, Err):
                    s_errprop[0] += 1
                    result = Err(t.sort)
                elif is_true(cond):
                    stack.append((_F_EVAL, t.then_branch))
                elif is_false(cond):
                    stack.append((_F_EVAL, t.else_branch))
                elif cond is t.cond:
                    # Open condition: value-mode evaluation leaves the
                    # node as-is with the evaluated condition in place.
                    result = t
                else:
                    result = Ite(cond, t.then_branch, t.else_branch)
        return result

    def _remember(self, key: Term, value: Term) -> None:
        """Insert into the normal-form memo, evicting the least recently
        used entries once the cache is full (never the whole memo —
        unless the seed ablation policy ``"clear"`` is selected).

        Only *completed* normal forms reach this method, and each insert
        is all-or-nothing, so a fault raised here (the ``engine.remember``
        chaos site) can lose an entry but never poison one.
        """
        cache = self._cache
        if _faults.ACTIVE is not None:
            _faults.ACTIVE.visit("engine.remember", cache)
        if len(cache) >= self.cache_size and key not in cache:
            if self.cache_policy == "clear":
                cache.clear()
            else:
                cache.popitem(last=False)
        cache[key] = value

    def _match_root(self, term: App, budget: list[int]):
        """The first indexed rule matching at the root, with its raw
        bindings; ``(None, None)`` when none match.  ``budget`` is
        unused here but threaded for subclasses whose match decision
        needs speculative evaluation (the prover's guarded unfolding)."""
        if _faults.ACTIVE is not None:
            _faults.ACTIVE.visit("engine.match_root", term)
        for rule in self._candidates(term):
            bindings = match_bindings(rule.lhs, term)
            if bindings is not None:
                self.stats.record_firing(rule, term)
                return rule, bindings
        return None, None

    def _candidates(self, term: App):
        """Rules to try at the root of ``term``, per ``use_index``."""
        if self.use_index is True:
            return self.rules.candidates(term)
        if self.use_index == "head":
            return self.rules.for_head(term.op)
        return self.rules

    def _root_step(self, term: App, budget: list[int]) -> Optional[Term]:
        builtin = term.op.builtin
        if builtin is not None and all(isinstance(a, Lit) for a in term.args):
            self.stats.builtin_firings += 1
            return self._run_builtin(term)
        for rule in self._candidates(term):
            result = rule.apply_at_root(term)
            if result is not None:
                self.stats.record_firing(rule, term)
                return result
        return None

    def _run_builtin(self, term: App) -> Term:
        if _faults.ACTIVE is not None:
            _faults.ACTIVE.visit("engine.builtin", term)
        values = [arg.value for arg in term.args]  # type: ignore[union-attr]
        try:
            result = term.op.builtin(*values)  # type: ignore[misc]
        except AlgebraError:
            return Err(term.sort)
        if term.sort == BOOLEAN and isinstance(result, bool):
            return boolean_term(result)
        if isinstance(result, Term):
            return result
        return Lit(result, term.sort)

    # ------------------------------------------------------------------
    # Symbolic simplification
    # ------------------------------------------------------------------
    def simplify(
        self, term: Term, budget: Optional[EvaluationBudget] = None
    ) -> Term:
        """Simplify an open term as far as the rules allow.

        Both branches of undecided conditionals are simplified, and the
        identity ``if c then x else x = x`` is applied — sound because
        either branch yields ``x``.
        """
        meter = self._meter(budget)
        try:
            return self._simplify(term, meter)
        except BudgetExceeded as exc:
            raise RewriteLimitError(
                term,
                meter.budget.fuel,
                reason=exc.reason,
                trace=exc.trace,
                detail=exc.detail,
            ) from None
        except RecursionError:
            raise RewriteLimitError(
                term, meter.budget.fuel, reason=REASON_DEPTH
            ) from None

    def _simplify(self, term: Term, budget: list[int]) -> Term:
        if isinstance(term, (Var, Lit, Err)):
            return term
        if isinstance(term, Ite):
            cond = self._simplify(term.cond, budget)
            if isinstance(cond, Err):
                self.stats.error_propagations += 1
                return Err(term.sort)
            if is_true(cond):
                return self._simplify(term.then_branch, budget)
            if is_false(cond):
                return self._simplify(term.else_branch, budget)
            then_branch = self._simplify(term.then_branch, budget)
            else_branch = self._simplify(term.else_branch, budget)
            if then_branch == else_branch:
                return then_branch
            if (
                cond is term.cond
                and then_branch is term.then_branch
                and else_branch is term.else_branch
            ):
                return term
            return Ite(cond, then_branch, else_branch)
        assert isinstance(term, App)
        args = []
        changed = False
        for arg in term.args:
            value = self._simplify(arg, budget)
            if isinstance(value, Err):
                self.stats.error_propagations += 1
                return Err(term.sort)
            if value is not arg:
                changed = True
            args.append(value)
        node = App(term.op, args) if changed else term
        step = self._root_step(node, budget)
        if step is None:
            return node
        self._spend(budget, node)
        return self._simplify(step, budget)

    # ------------------------------------------------------------------
    # Equality under the rules
    # ------------------------------------------------------------------
    def equal(self, left: Term, right: Term) -> bool:
        """True when both terms normalise to the same normal form."""
        return self.normalize(left) == self.normalize(right)

    def check_axiom_instance(self, axiom: Axiom, substitution) -> bool:
        """Evaluate both sides of ``axiom`` under ``substitution`` and
        compare normal forms — the ground model check used throughout the
        analysis and verification layers."""
        return self.equal(
            substitution.apply(axiom.lhs), substitution.apply(axiom.rhs)
        )


def _args_normal(term: Term) -> bool:
    """Cheap test used to avoid re-walking already-normal arguments.
    (``all`` over an empty argument tuple is already True, so nullary
    applications need no special case.)"""
    if not isinstance(term, App):
        return True
    return all(isinstance(arg, (Var, Lit, Err)) for arg in term.args)
