"""Second-stage compilation: emitted Python rule modules.

The closure backend (:mod:`repro.rewriting.compile`) already decides
dispatch at compile time, but it still pays per call for a tuple-boxed
calling convention, a shared memo keyed by ``(op_index, args)`` tuples,
and one Python frame per rewrite of a recursive rule.  This module goes
one stage further and emits a complete Python **source module** per rule
set:

* **Module emission.**  The generated source is ``compile()``d once and
  cached by the rule set's structural :meth:`~RuleSet.fingerprint` (plus
  the compiler options), so equal rule sets — every engine over the same
  specification — share one code object.  Instantiating an engine then
  only re-``exec``s the cached code with fresh counters and memo dicts.
  Closures take their arguments positionally (``op_k(a0, a1, b, d)``)
  and memoise in per-operation dicts keyed by the argument itself, which
  drops a tuple allocation and a hash of ``(index, tuple)`` per probe.

* **Ground-RHS folding.**  A ground right-hand-side (sub)term has a
  unique normal form fixed at compile time (the rule sets are confluent
  and terminating on ground terms), so the compiler normalises it *once*
  and emits the result as a constant.  To keep the other backends'
  observable accounting — per-rule firing counts, fuel, memo contents —
  bit-for-bit identical, the emission *replays* the evaluation: one
  memo-guarded block per folded node that spends the recorded fuel,
  bumps the recorded firing counters on a miss, and stores the normal
  form exactly where the runtime evaluation would have.

* **Superinstruction fusion.**  Self-recursive rules — the E10 drain's
  ``FRONT``/``REMOVE`` over an ``ADD`` spine, guarded by ``IS_EMPTY?``
  (>95% of all firings in the PR-5 profiles) — are fused into a single
  ``while`` loop per operation: the recursive call becomes a ``continue``
  with reassigned arguments, constructor wrappers around the recursive
  position become accumulator frames rebuilt on the way out, and unary
  guard predicates are inlined as branch arms with their own memo probe.
  Fusion is legal only when the recursive call's arguments are *pure*
  (variables, literals, inert ground terms) and preserves the exact
  probe/store/firing sequence of the unfused closures — the three-way
  differential suite holds it to that.  A :class:`FusionPlan` can narrow
  the fused set from rule-profiler data (``FusionPlan.from_profile``)
  or disable fusion for ablation (``fusion="none"``).

The engine-facing wrapper is :class:`CodegenEngine`; it enforces
:class:`~repro.runtime.EvaluationBudget` through the same shared
``BudgetMeter`` cell as the other backends and degrades to the
interpreted machine on deep recursion, exactly like the closure backend.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from time import perf_counter
from typing import Iterable, Optional

from repro.algebra.signature import Operation
from repro.algebra.substitution import apply_bindings
from repro.algebra.terms import App, Err, Ite, Lit, Term, Var
from repro.spec.errors import AlgebraError
from repro.spec.prelude import boolean_term, is_false, is_true
from repro.rewriting.compile import (
    _DEPTH_LIMIT,
    _Compiler,
    _DeepRecursion,
    _LimitHit,
    _rt_unbound,
)
from repro.rewriting.engine import (
    DEFAULT_FUEL,
    EngineStats,
    RewriteEngine,
    RewriteLimitError,
)
from repro.rewriting.rules import RewriteRule, RuleSet
from repro.runtime import faults as _faults
from repro.runtime.budget import BudgetExceeded, BudgetMeter, EvaluationBudget
from repro.runtime.render import summarize_term
from repro.obs import trace as _trace

#: Fuel allowed for one compile-time fold normalisation.  A ground RHS
#: needing more than this is left to runtime evaluation (folding is an
#: optimisation, never an obligation).
_FOLD_FUEL = 50_000

#: Bound on remembered top-level normal forms in the engine's NF set
#: (the driver's "skip the argument walk" fast path).
_NF_LIMIT = 16384

#: Bound on cached generated modules (keyed by rule-set fingerprint).
_MODULE_CACHE_LIMIT = 64


@dataclass(frozen=True)
class FusionPlan:
    """Which operations may be fused into superinstructions.

    ``mode`` is ``"auto"`` (fuse every legal operation — the default),
    ``"none"`` (the ablation baseline: plain per-operation closures in
    the emitted module), or ``"profile"`` (fuse only the operations in
    ``hot``, typically derived from rule-profiler firing counts).
    """

    mode: str = "auto"
    hot: frozenset = frozenset()

    @property
    def key(self) -> str:
        """The plan's contribution to the module-cache fingerprint."""
        if self.mode == "profile":
            return "profile:" + ",".join(sorted(self.hot))
        return self.mode

    def allows(self, name: str) -> bool:
        if self.mode == "none":
            return False
        if self.mode == "profile":
            return name in self.hot
        return True

    @classmethod
    def coerce(cls, fusion) -> "FusionPlan":
        if isinstance(fusion, FusionPlan):
            return fusion
        if fusion is None or fusion == "auto":
            return cls("auto")
        if fusion == "none":
            return cls("none")
        raise ValueError(f"unknown fusion plan: {fusion!r}")

    @classmethod
    def from_profile(
        cls, rules: RuleSet, counts: dict, coverage: float = 0.95
    ) -> "FusionPlan":
        """A plan fusing the head operations that cover ``coverage`` of
        all firings.  ``counts`` maps rules (or their ``rule_id``
        strings) to firing counts — the shape of both the engine's
        firing family and the profiler's per-rule rows."""
        from repro.obs.trace import rule_id

        per_head: dict[str, int] = {}
        for rule in rules:
            count = counts.get(rule)
            if count is None:
                count = counts.get(rule_id(rule), 0)
            head = rule.head.name
            per_head[head] = per_head.get(head, 0) + int(count)
        total = sum(per_head.values())
        if not total:
            return cls("auto")
        hot: set[str] = set()
        covered = 0
        for head, count in sorted(
            per_head.items(), key=lambda item: (-item[1], item[0])
        ):
            if covered >= coverage * total:
                break
            hot.add(head)
            covered += count
        return cls("profile", frozenset(hot))


class _CodegenCompiler(_Compiler):
    """Emits the second-stage module (see the module docstring).

    Reuses the closure compiler's pattern/dispatch machinery; overrides
    the calling convention, memoisation, RHS generation (folding), and
    per-operation emission (fusion).
    """

    def __init__(
        self, rules: RuleSet, cache_on: bool, fold: bool, plan: FusionPlan
    ) -> None:
        super().__init__(rules, cache_size=4096 if cache_on else 0)
        self.fold_on = fold
        self.plan = plan
        self.fused_ops: set[str] = set()
        self._fused_mode = False
        self._fused_k: Optional[int] = None
        self._scratch: Optional[RewriteEngine] = None
        self._fold_plans: dict = {}
        self._pred_cache: dict = {}
        self._rule_gidx: dict = {}
        for gidx, rule in enumerate(self.rules):
            self._rule_gidx.setdefault(rule, gidx)

    # -- small helpers --------------------------------------------------
    def _key_expr(self, k: int) -> str:
        arity = self.ops[k].arity
        if arity == 0:
            return "()"
        if arity == 1:
            return "a0"
        return "(" + ", ".join(f"a{i}" for i in range(arity)) + ")"

    def _key_const(self, k: int, child_nfs: tuple) -> str:
        """The compile-time constant matching :meth:`_key_expr`."""
        if not child_nfs:
            return "()"
        if len(child_nfs) == 1:
            return self.const(child_nfs[0], "K")
        return self.const(child_nfs, "KT")

    def _store_lines(self, k: int, key: str, value: str, ind: str) -> None:
        L = self.lines
        L.append(f"{ind}if len(C{k}) >= CMAX:")
        L.append(f"{ind}    C{k}.clear()")
        L.append(f"{ind}C{k}[{key}] = {value}")

    def _emit_err(self, ind: str, err_sort) -> None:
        """Strict error propagation at one consumption site: return the
        operation's error in plain closures, break out of the fused loop
        (skipping the current subject's store, like the closure's early
        return skips its finish) in fused ones."""
        L = self.lines
        L.append(f"{ind}ST[5] += 1")
        if self._fused_mode:
            L.append(f"{ind}r = {self.err_const(err_sort)}")
            L.append(f"{ind}g = False")
            L.append(f"{ind}break")
        else:
            L.append(f"{ind}return {self.err_const(err_sort)}")

    def _pure(self, t: Term) -> bool:
        """Safe to re-evaluate as a bare expression: a bound variable, a
        literal, or an inert ground constant (never an ``Err`` — those
        must flow through the strict-propagation checks)."""
        if isinstance(t, (Var, Lit)):
            return True
        return not isinstance(t, Err) and self._inert(t)

    def _pure_expr(self, t: Term, env) -> str:
        if isinstance(t, Var):
            return env[t]
        return self.const(t, "K")

    # -- RHS generation (per-arg calls, error style, folding) -----------
    def _gen(self, t: Term, env, ind: str, err_sort):
        L = self.lines
        if isinstance(t, Var):
            return env[t], False
        if isinstance(t, Lit):
            return self.const(t, "K"), False
        if isinstance(t, Err):
            return self.const(t, "K"), True
        if isinstance(t, App):
            if self._inert(t):
                return self.const(t, "K"), False
            if self.fold_on and t._ground:
                folded = self._emit_fold(t, ind)
                if folded is not None:
                    return folded, False
            parts = []
            for sub in t.args:
                ex, may_err = self._gen(sub, env, ind, err_sort)
                if may_err:
                    tv = self._tmp()
                    L.append(f"{ind}{tv} = {ex}")
                    L.append(f"{ind}if type({tv}) is Err:")
                    self._emit_err(ind + "    ", err_sort)
                    ex = tv
                parts.append(ex)
            name = t.op.name
            k = self.op_index.get(name)
            if k is not None and name not in self.uncompiled:
                args = "".join(f"{p}, " for p in parts)
                return f"op_{k}({args}b, d + 1)", True
            tup = (
                "(" + ", ".join(parts)
                + ("," if len(parts) == 1 else "") + ")"
            )
            if name in self.uncompiled:
                return f"RT_APP({self.op_const(t.op)}, {tup}, b)", True
            return f"App({self.op_const(t.op)}, {tup})", False
        assert isinstance(t, Ite)
        cex, cme = self._gen(t.cond, env, ind, err_sort)
        tc = self._tmp()
        L.append(f"{ind}{tc} = {cex}")
        if cme:
            L.append(f"{ind}if type({tc}) is Err:")
            self._emit_err(ind + "    ", err_sort)
        tv = self._tmp()
        L.append(f"{ind}if {tc} is TRUE_N or IS_TRUE({tc}):")
        ex, me1 = self._gen(t.then_branch, env, ind + "    ", err_sort)
        L.append(f"{ind}    {tv} = {ex}")
        L.append(f"{ind}elif {tc} is FALSE_N or IS_FALSE({tc}):")
        ex, me2 = self._gen(t.else_branch, env, ind + "    ", err_sort)
        L.append(f"{ind}    {tv} = {ex}")
        L.append(f"{ind}else:")
        branch_vars = t.then_branch.variables() | t.else_branch.variables()
        bd = ", ".join(
            f"{self.const(v, 'V')}: {env[v]}"
            for v in sorted(branch_vars, key=lambda v: v.name)
        )
        tt = self.const(t.then_branch, "T")
        te = self.const(t.else_branch, "T")
        L.append(
            f"{ind}    {tv} = Ite({tc}, AB({tt}, {{{bd}}}), AB({te}, {{{bd}}}))"
        )
        return tv, me1 or me2

    # -- ground-RHS folding ---------------------------------------------
    def _scratch_normalize(self, subject: Term):
        """Normalise ``subject`` at compile time on a private interpreted
        engine (memo off, traces and fault injection masked), returning
        ``(nf, rule_steps, builtin_steps, firings)`` or ``None``."""
        eng = self._scratch
        if eng is None:
            eng = self._scratch = RewriteEngine(
                self.ruleset, fuel=_FOLD_FUEL, cache_size=0
            )
        trace_save, _trace.ACTIVE = _trace.ACTIVE, None
        fault_save, _faults.ACTIVE = _faults.ACTIVE, None
        try:
            stats = eng.stats
            builtin_before = stats.s_builtin[0]
            fires_before = dict(stats.firings.counts)
            try:
                nf = eng.normalize(subject)
            except RewriteLimitError:
                return None
            except Exception:  # fault-boundary: folding is best-effort; any failure means "leave the rule unfolded"
                return None
            fires: dict = {}
            for rule, count in stats.firings.counts.items():
                delta = count - fires_before.get(rule, 0)
                if delta:
                    fires[rule] = delta
            builtins = stats.s_builtin[0] - builtin_before
            return nf, sum(fires.values()), builtins, fires
        finally:
            _trace.ACTIVE = trace_save
            _faults.ACTIVE = fault_save

    def _fold_plan(self, t: Term):
        """The replay plan for ground term ``t``: a list of per-node
        entries in evaluation (post-)order plus the overall normal form,
        or ``None`` when folding is not provably accounting-equivalent
        (conditionals, error results, uncompiled operations)."""
        entries: list = []

        def walk(node: Term) -> Optional[Term]:
            if isinstance(node, Lit):
                return node
            if not isinstance(node, App):
                return None  # Err leaves and Ite nodes abort the fold
            child_nfs = []
            for sub in node.args:
                nf = walk(sub)
                if nf is None or isinstance(nf, Err):
                    return None
                child_nfs.append(nf)
            op = node.op
            if op.name not in self.rule_heads and op.builtin is None:
                return App(op, tuple(child_nfs))  # free constructor
            if op.name in self.uncompiled or op.name not in self.op_index:
                return None
            result = self._scratch_normalize(App(op, tuple(child_nfs)))
            if result is None:
                return None
            nf, rule_steps, builtin_steps, fires = result
            if isinstance(nf, (Err, Ite)):
                return None
            entries.append(
                (
                    self.op_index[op.name],
                    tuple(child_nfs),
                    nf,
                    rule_steps,
                    builtin_steps,
                    fires,
                )
            )
            return nf

        top = walk(t)
        if top is None or not entries:
            return None
        return entries, top

    def _emit_fold(self, t: Term, ind: str) -> Optional[str]:
        """Fold ground ``t`` to its compile-time normal form, emitting
        the accounting replay (probe, fuel, firings, store — exactly the
        closures' observable footprint); the returned expression is the
        normal form constant.  ``None`` means "emit generically"."""
        if t in self._fold_plans:
            plan = self._fold_plans[t]
        else:
            plan = self._fold_plans[t] = self._fold_plan(t)
        if plan is None:
            return None
        entries, top = plan
        L = self.lines
        for k, child_nfs, nf, rule_steps, builtin_steps, fires in entries:
            key = self._key_const(k, child_nfs)
            value = self.const(nf, "K")
            body = ind
            if self.cache_on:
                L.append(f"{ind}ST[4] += 1")
                L.append(f"{ind}if {key} in C{k}:")
                L.append(f"{ind}    ST[3] += 1")
                L.append(f"{ind}else:")
                body = ind + "    "
            fuel = rule_steps + builtin_steps
            if fuel:
                L.append(f"{body}b[0] -= {fuel}")
                L.append(f"{body}if b[0] < 0:")
                L.append(f"{body}    raise LimitHit")
            if rule_steps:
                L.append(f"{body}ST[0] += {rule_steps}; ST[1] += {rule_steps}")
            if builtin_steps:
                L.append(f"{body}ST[2] += {builtin_steps}")
            for rule, count in fires.items():
                gidx = self._rule_gidx.get(rule)
                if gidx is not None:
                    L.append(f"{body}RF[{gidx}] += {count}")
            if self.cache_on:
                self._store_lines(k, key, value, body)
            elif not fuel and not rule_steps and not builtin_steps:
                L.append(f"{body}pass")
        return self.const(top, "K")

    # -- inlined guard predicates ---------------------------------------
    def _pred_arms(self, k: int):
        if k in self._pred_cache:
            return self._pred_cache[k]
        arms = self._build_pred_arms(k)
        self._pred_cache[k] = arms
        return arms

    def _build_pred_arms(self, k: int):
        """Branch arms for inlining unary predicate ``op_k`` at its call
        site, or ``None`` when inlining cannot reproduce the closure's
        exact probe/fire/store behaviour: every rule's argument pattern
        must be a ground constant or a constructor over distinct
        variables (mutually disjoint), and every right-hand side must be
        inert or a pattern variable."""
        op = self.ops[k]
        if (
            op.arity != 1
            or op.builtin is not None
            or op.name in self.uncompiled
            or op.name not in self.rule_heads
        ):
            return None
        arms = []
        seen_apps: set[str] = set()
        seen_ground: list[Term] = []
        for gidx, rule in enumerate(self.rules):
            if rule.head.name != op.name:
                continue
            pat = rule.lhs.args[0]
            rhs = rule.rhs
            if isinstance(pat, App) and not pat._ground:
                if not all(isinstance(x, Var) for x in pat.args):
                    return None
                if len(set(pat.args)) != len(pat.args):
                    return None
                if pat.op.name in seen_apps:
                    return None
                seen_apps.add(pat.op.name)
                kind, payload = "app", pat.op.name
            elif pat._ground and not isinstance(pat, Ite):
                if any(pat == seen for seen in seen_ground):
                    return None
                if isinstance(pat, App) and pat.op.name in seen_apps:
                    return None
                seen_ground.append(pat)
                kind, payload = "ground", pat
            else:
                return None  # bare-variable / Ite pattern
            if isinstance(rhs, Var):
                if not (isinstance(pat, App) and rhs in pat.args):
                    return None
            elif not self._inert(rhs):
                return None
            arms.append((gidx, rule, kind, payload))
        return arms or None

    def _emit_pred(self, pk: int, sx: str, ind: str) -> str:
        """Inline ``op_pk(sx)``: one memo probe, then one arm per rule
        with the closure's exact fire/store lines, then the generic call
        for subjects no arm decides.  Returns the bound variable."""
        arms = self._pred_arms(pk)
        assert arms is not None
        L = self.lines
        c = self._tmp()
        first = True
        if self.cache_on:
            L.append(f"{ind}ST[4] += 1")
            L.append(f"{ind}{c} = C{pk}.get({sx})")
            L.append(f"{ind}if {c} is not None:")
            L.append(f"{ind}    ST[3] += 1")
            first = False
        for gidx, rule, kind, payload in arms:
            kw = "if" if first else "elif"
            first = False
            if kind == "app":
                L.append(
                    f"{ind}{kw} type({sx}) is App"
                    f" and {sx}.op.name == {payload!r}:"
                )
            else:
                L.append(f"{ind}{kw} {sx} == {self.const(payload, 'K')}:")
            body = ind + "    "
            L.append(f"{body}b[0] -= 1")
            L.append(f"{body}if b[0] < 0:")
            L.append(f"{body}    raise LimitHit")
            L.append(f"{body}ST[0] += 1; ST[1] += 1; RF[{gidx}] += 1")
            rhs = rule.rhs
            if isinstance(rhs, Var):
                pat = rule.lhs.args[0]
                pos = next(
                    i for i, a in enumerate(pat.args) if a == rhs
                )
                L.append(f"{body}{c} = {sx}.args[{pos}]")
            else:
                L.append(f"{body}{c} = {self.const(rhs, 'K')}")
            if self.cache_on:
                L.append(f"{body}if {sx}._ground:")
                self._store_lines(pk, sx, c, body + "    ")
        L.append(f"{ind}else:")
        L.append(f"{ind}    {c} = op_{pk}({sx}, b, d + 1)")
        return c

    # -- fused (superinstruction) emission ------------------------------
    def _branch_shape(self, head: Operation, t: Term):
        """How one decided RHS branch continues the fused loop: a tail
        self-call, a free constructor wrapping exactly one self-call, or
        ``None`` (emit generically and leave the loop)."""
        if not isinstance(t, App):
            return None
        if t.op.name == head.name and len(t.args) == head.arity:
            if all(self._pure(a) for a in t.args):
                return ("tail", t.args)
            return None
        if t.op.name in self.rule_heads or t.op.builtin is not None:
            return None
        self_pos = None
        for i, a in enumerate(t.args):
            if (
                isinstance(a, App)
                and a.op.name == head.name
                and len(a.args) == head.arity
            ):
                if self_pos is not None:
                    return None  # two recursive calls: not a loop
                self_pos = i
            elif not self._pure(a):
                return None
        if self_pos is None:
            return None
        inner = t.args[self_pos]
        if not all(self._pure(a) for a in inner.args):
            return None
        return ("ctor", t.op, self_pos, inner.args, t.args)

    def _rule_fusible(self, head: Operation, rule: RewriteRule) -> bool:
        rhs = rule.rhs
        branches = (
            (rhs.then_branch, rhs.else_branch)
            if isinstance(rhs, Ite)
            else (rhs,)
        )
        return any(self._branch_shape(head, b) is not None for b in branches)

    def _emit_branch_fused(self, k, op, t, env, ind: str) -> None:
        L = self.lines
        shape = self._branch_shape(op, t)
        if shape is not None and shape[0] == "tail":
            exprs = [self._pure_expr(a, env) for a in shape[1]]
            L.append(f"{ind}if acc is None:")
            L.append(f"{ind}    acc = []")
            L.append(f"{ind}acc.append((0, {self._key_expr(k)}, g))")
            targets = ", ".join(f"a{i}" for i in range(len(exprs)))
            L.append(f"{ind}{targets} = {', '.join(exprs)}")
            L.append(f"{ind}continue")
            return
        if shape is not None and shape[0] == "ctor":
            _, ctor, pos, inner_args, outer_args = shape
            pre = [self._pure_expr(a, env) for a in outer_args[:pos]]
            post = [self._pure_expr(a, env) for a in outer_args[pos + 1:]]
            pre_t = "(" + ", ".join(pre) + ("," if len(pre) == 1 else "") + ")"
            post_t = (
                "(" + ", ".join(post) + ("," if len(post) == 1 else "") + ")"
            )
            L.append(f"{ind}if acc is None:")
            L.append(f"{ind}    acc = []")
            L.append(
                f"{ind}acc.append((1, {self._key_expr(k)}, g,"
                f" {self.op_const(ctor)}, {pre_t}, {post_t}))"
            )
            exprs = [self._pure_expr(a, env) for a in inner_args]
            targets = ", ".join(f"a{i}" for i in range(len(exprs)))
            L.append(f"{ind}{targets} = {', '.join(exprs)}")
            L.append(f"{ind}continue")
            return
        expr, _ = self._gen(t, env, ind, op.range)
        L.append(f"{ind}r = {expr}")
        L.append(f"{ind}break")

    def _emit_rhs_fused(self, k, gidx, rule, env, ind: str) -> None:
        L = self.lines
        op = rule.head
        rhs = rule.rhs
        if not isinstance(rhs, Ite):
            self._emit_branch_fused(k, op, rhs, env, ind)
            return
        cond = rhs.cond
        c = None
        if (
            isinstance(cond, App)
            and len(cond.args) == 1
            and isinstance(cond.args[0], Var)
            and cond.args[0] in env
        ):
            pk = self.op_index.get(cond.op.name)
            if pk is not None and self._pred_arms(pk) is not None:
                c = self._emit_pred(pk, env[cond.args[0]], ind)
        if c is None:
            cex, cme = self._gen(cond, env, ind, op.range)
            c = self._tmp()
            L.append(f"{ind}{c} = {cex}")
            if not cme:
                cme = None  # no error check needed
        L.append(f"{ind}if type({c}) is Err:")
        self._emit_err(ind + "    ", op.range)
        L.append(f"{ind}if {c} is TRUE_N or IS_TRUE({c}):")
        self._emit_branch_fused(k, op, rhs.then_branch, env, ind + "    ")
        L.append(f"{ind}elif {c} is FALSE_N or IS_FALSE({c}):")
        self._emit_branch_fused(k, op, rhs.else_branch, env, ind + "    ")
        L.append(f"{ind}else:")
        branch_vars = rhs.then_branch.variables() | rhs.else_branch.variables()
        bd = ", ".join(
            f"{self.const(v, 'V')}: {env[v]}"
            for v in sorted(branch_vars, key=lambda v: v.name)
        )
        tt = self.const(rhs.then_branch, "T")
        te = self.const(rhs.else_branch, "T")
        L.append(
            f"{ind}    r = Ite({c}, AB({tt}, {{{bd}}}), AB({te}, {{{bd}}}))"
        )
        L.append(f"{ind}    break")

    # -- per-operation emission -----------------------------------------
    def _emit_finish(self, k: int, ind: str) -> None:
        L = self.lines
        if self.cache_on:
            L.append(f"{ind}if g and type(r) is not Ite:")
            self._store_lines(k, self._key_expr(k), "r", ind + "    ")
        L.append(f"{ind}return r")

    def _emit_fire(self, k, gidx, rule, env, ind: str) -> None:
        L = self.lines
        L.append(f"{ind}b[0] -= 1")
        L.append(f"{ind}if b[0] < 0:")
        L.append(f"{ind}    raise LimitHit")
        L.append(f"{ind}ST[0] += 1; ST[1] += 1; RF[{gidx}] += 1")
        if self._fused_mode:
            self._emit_rhs_fused(k, gidx, rule, env, ind)
        else:
            expr, _ = self._gen(rule.rhs, env, ind, rule.head.range)
            L.append(f"{ind}r = {expr}")
            self._emit_finish(k, ind)

    def _emit_fused_finish(self, k: int, op: Operation) -> None:
        """After the fused loop: store the final subject's result, then
        rebuild and store each accumulator frame on the way out —
        constructor frames convert errors (no store, like the closure's
        early return), tail frames pass results through verbatim."""
        L = self.lines
        ek = self.err_const(op.range)
        if self.cache_on:
            L.append("    if g and type(r) is not Ite:")
            self._store_lines(k, self._key_expr(k), "r", "        ")
        L.append("    if acc is not None:")
        L.append("        while acc:")
        L.append("            f = acc.pop()")
        L.append("            if f[0] == 1:")
        L.append("                if type(r) is Err:")
        L.append("                    ST[5] += 1")
        L.append(f"                    r = {ek}")
        L.append("                    continue")
        L.append("                r = App(f[3], f[4] + (r,) + f[5])")
        if self.cache_on:
            L.append("            if f[2] and type(r) is not Ite:")
            self._store_lines(k, "f[1]", "r", "                ")
        L.append("    return r")

    def _emit_op(self, k: int, rules) -> None:
        op = self.ops[k]
        L = self.lines
        arity = op.arity
        fused = bool(rules) and op.name in self.fused_ops
        params = "".join(f"a{i}, " for i in range(arity))
        tag = "  [fused]" if fused else ""
        L.append("")
        L.append(f"def op_{k}({params}b, d):  # {op.name}{tag}")
        L.append(f"    if d > {_DEPTH_LIMIT}:")
        L.append("        raise Deep")
        if fused:
            L.append("    acc = None")
            L.append("    while True:")
            body = "        "
        else:
            body = "    "
        self._fused_mode = fused
        self._fused_k = k
        key = self._key_expr(k)
        if self.cache_on:
            L.append(f"{body}ST[4] += 1")
            L.append(f"{body}r = C{k}.get({key})")
            L.append(f"{body}if r is not None:")
            L.append(f"{body}    ST[3] += 1")
            if fused:
                L.append(f"{body}    g = False")
                L.append(f"{body}    break")
            else:
                L.append(f"{body}    return r")
        if self.cache_on or fused:
            g = " and ".join(f"a{i}._ground" for i in range(arity)) or "True"
            L.append(f"{body}g = {g}")
        if op.builtin is not None:
            self._emit_builtin(k, op)
        if rules:
            self._emit_dispatch(k, rules, 0, body)
        tup = (
            "(" + ", ".join(f"a{i}" for i in range(arity))
            + ("," if arity == 1 else "") + ")"
        )
        L.append(f"{body}r = App(OP_{k}, {tup})")
        if fused:
            L.append(f"{body}break")
            self._emit_fused_finish(k, op)
        else:
            self._emit_finish(k, "    ")
        self._fused_mode = False
        self._fused_k = None

    # -- module assembly ------------------------------------------------
    def compile_module(self, fingerprint: str) -> "CodegenModule":
        by_head: dict[str, list] = {}
        for gidx, rule in enumerate(self.rules):
            by_head.setdefault(rule.head.name, []).append((gidx, rule))
        for name, items in by_head.items():
            if name in self.uncompiled:
                continue
            head = items[0][1].head
            if head.builtin is not None:
                continue
            if not self.plan.allows(name):
                continue
            if any(self._rule_fusible(head, rule) for _, rule in items):
                self.fused_ops.add(name)
        self.lines.append(f"# second-stage rule module  [{fingerprint[:16]}]")
        self.ns.update(
            App=App,
            Lit=Lit,
            Err=Err,
            Ite=Ite,
            Term=Term,
            AlgebraError=AlgebraError,
            TRUE_N=boolean_term(True),
            FALSE_N=boolean_term(False),
            IS_TRUE=is_true,
            IS_FALSE=is_false,
            AB=apply_bindings,
            LimitHit=_LimitHit,
            Deep=_DeepRecursion,
        )
        compiled_names = []
        memo_names = []
        for k, op in enumerate(self.ops):
            self.ns[f"OP_{k}"] = op
            if op.name in self.uncompiled:
                continue
            if self.cache_on:
                memo_names.append(f"C{k}")
            self._emit_op(k, by_head.get(op.name, ()))
            compiled_names.append((op.name, k))
        source = "\n".join(self.lines) + "\n"
        code = compile(source, "<codegen-rules>", "exec")
        return CodegenModule(
            source=source,
            code=code,
            base_ns=dict(self.ns),
            rules=self.rules,
            uncompiled=frozenset(self.uncompiled),
            fused_ops=frozenset(self.fused_ops),
            compiled_names=tuple(compiled_names),
            memo_names=tuple(memo_names),
            fingerprint=fingerprint,
        )


class CodegenModule:
    """A compiled-once generated module, shareable across engines whose
    rule sets fingerprint identically.  ``instantiate`` re-executes the
    cached code object with fresh counters and memo dicts."""

    __slots__ = (
        "source",
        "code",
        "base_ns",
        "rules",
        "uncompiled",
        "fused_ops",
        "compiled_names",
        "memo_names",
        "fingerprint",
    )

    def __init__(
        self,
        source,
        code,
        base_ns,
        rules,
        uncompiled,
        fused_ops,
        compiled_names,
        memo_names,
        fingerprint,
    ):
        self.source = source
        self.code = code
        self.base_ns = base_ns
        self.rules = rules
        self.uncompiled = uncompiled
        self.fused_ops = fused_ops
        self.compiled_names = compiled_names
        self.memo_names = memo_names
        self.fingerprint = fingerprint

    def instantiate(self, cache_size: int) -> "CodegenRules":
        ns = dict(self.base_ns)
        st = [0, 0, 0, 0, 0, 0]
        rf = [0] * len(self.rules)
        memos = {name: {} for name in self.memo_names}
        ns.update(memos)
        ns["ST"] = st
        ns["RF"] = rf
        ns["CMAX"] = max(cache_size, 1)
        ns["RT_TERM"] = _rt_unbound
        ns["RT_APP"] = _rt_unbound
        exec(self.code, ns)
        fns = {name: ns[f"op_{k}"] for name, k in self.compiled_names}
        return CodegenRules(self, ns, st, rf, fns, memos)


class CodegenRules:
    """One engine's live instantiation of a :class:`CodegenModule`."""

    __slots__ = ("module", "ns", "st", "rf", "fns", "memos")

    def __init__(self, module, ns, st, rf, fns, memos):
        self.module = module
        self.ns = ns
        self.st = st
        self.rf = rf
        self.fns = fns
        self.memos = memos


#: Cache of generated modules, keyed by rule-set fingerprint + options.
#: Guarded by ``_MODULE_CACHE_LOCK``: engines may be built from threads,
#: and shard-pool workers forked mid-build must inherit a consistent
#: dict (the eviction path clears and repopulates, which a concurrent
#: reader — or a fork snapshot — must never observe half-done).
_MODULE_CACHE: dict[str, CodegenModule] = {}
_MODULE_CACHE_LOCK = threading.Lock()


def codegen_module(
    rules: RuleSet,
    cache_on: bool = True,
    fold: bool = True,
    fusion=None,
) -> CodegenModule:
    """The (cached) generated module for ``rules`` under the given
    compiler options — the second-stage analogue of
    :func:`~repro.rewriting.compile.compile_ruleset`."""
    plan = FusionPlan.coerce(fusion)
    key = rules.fingerprint(
        extra=(
            f"codegen-v1;cache={int(cache_on)};"
            f"fold={int(fold)};fusion={plan.key}"
        )
    )
    with _MODULE_CACHE_LOCK:
        module = _MODULE_CACHE.get(key)
    if module is None:
        # Compile outside the lock — generation is slow and pure, and a
        # duplicate concurrent build is harmless: the store below is
        # last-writer-wins on an identical module.
        module = _CodegenCompiler(rules, cache_on, fold, plan).compile_module(
            key
        )
        with _MODULE_CACHE_LOCK:
            if len(_MODULE_CACHE) >= _MODULE_CACHE_LIMIT:
                _MODULE_CACHE.clear()
            _MODULE_CACHE.setdefault(key, module)
            module = _MODULE_CACHE[key]
    return module


class CodegenEngine:
    """Normalisation through an emitted rule module.

    The driver mirrors :class:`~repro.rewriting.compile.CompiledEngine`
    — same budget enforcement, same stats/trace sync, same interpreted
    fallback on deep recursion — plus a normal-form set: results of
    earlier ``normalize`` calls are remembered by identity, so drains
    that feed one call's result into the next skip the argument re-walk
    entirely (the closure backend's main per-call overhead)."""

    def __init__(
        self,
        rules: RuleSet,
        fuel: int = DEFAULT_FUEL,
        cache_size: int = 4096,
        stats: Optional[EngineStats] = None,
        budget: Optional[EvaluationBudget] = None,
        fusion=None,
        fold: bool = True,
    ) -> None:
        if budget is None:
            budget = EvaluationBudget(fuel=fuel)
        elif budget.max_memo_entries is not None:
            cache_size = min(cache_size, budget.max_memo_entries)
        self.rules = rules
        self.rule_count = len(rules)
        self.fuel = budget.fuel
        self.budget = budget
        self.cache_size = cache_size
        self.stats = stats if stats is not None else EngineStats()
        self._interp = RewriteEngine(rules, fuel=fuel, cache_size=cache_size)
        self._interp.stats = self.stats
        module = codegen_module(
            rules, cache_on=cache_size > 0, fold=fold, fusion=fusion
        )
        self.module = module
        inst = module.instantiate(cache_size)
        self.inst = inst
        inst.ns["RT_TERM"] = self._rt_term
        inst.ns["RT_APP"] = self._rt_app
        self._fns = inst.fns
        self._uncompiled = module.uncompiled
        self._nf: set = set()

    @property
    def source(self) -> str:
        """The generated module, for inspection."""
        return self.module.source

    @property
    def fused_ops(self) -> frozenset:
        return self.module.fused_ops

    def _rt_term(self, term: Term, budget) -> Term:
        return self._interp._eval(term, budget)

    def _rt_app(self, op: Operation, args: tuple, budget) -> Term:
        return self._interp._eval(App(op, args), budget)

    # ------------------------------------------------------------------
    def normalize(
        self, term: Term, budget: Optional[EvaluationBudget] = None
    ) -> Term:
        tracer = _trace.ACTIVE
        if tracer is None:
            return self._normalize_codegen(term, budget)
        with tracer.span(
            "engine.normalize",
            backend="codegen",
            subject=summarize_term(term),
        ):
            return self._normalize_codegen(term, budget)

    def _normalize_codegen(
        self, term: Term, budget: Optional[EvaluationBudget]
    ) -> Term:
        bud = budget if budget is not None else self.budget.with_fuel(self.fuel)
        meter = bud.start()
        st = self.inst.st
        rf = self.inst.rf
        st0 = tuple(st)
        rf0 = list(rf)
        started = perf_counter()
        try:
            result = self._eval(term, meter)
            if type(result) is App and result._ground:
                nf = self._nf
                if len(nf) >= _NF_LIMIT:
                    nf.clear()
                nf.add(result)
            return result
        except _LimitHit:
            exc = meter.exhausted()
            raise RewriteLimitError(
                term,
                bud.fuel,
                reason=exc.reason,
                trace=exc.trace,
                detail=exc.detail,
            ) from None
        except BudgetExceeded as exc:
            raise RewriteLimitError(
                term,
                bud.fuel,
                reason=exc.reason,
                trace=exc.trace,
                detail=exc.detail,
            ) from None
        except RewriteLimitError as exc:
            raise RewriteLimitError(
                term,
                bud.fuel,
                reason=exc.reason,
                trace=exc.trace,
                detail=exc.detail,
            ) from None
        finally:
            self._sync(st0, rf0)
            stats = self.stats
            stats.latency.observe(perf_counter() - started)
            spent = bud.fuel - meter[0]
            if spent > 0:
                stats.s_fuel[0] += spent
            stats.fuel_hist.observe(spent if spent > 0 else 0)

    def normalize_many(
        self, terms: Iterable[Term], budget: Optional[EvaluationBudget] = None
    ) -> list[Term]:
        return [self.normalize(term, budget) for term in terms]

    def clear_cache(self) -> None:
        for memo in self.inst.memos.values():
            memo.clear()
        self._nf.clear()
        self._interp._cache.clear()

    def _sync(self, st0, rf0) -> None:
        st = self.inst.st
        stats = self.stats
        stats.s_steps[0] += st[0] - st0[0]
        stats.s_builtin[0] += st[2] - st0[2]
        stats.s_hits[0] += st[3] - st0[3]
        stats.s_probes[0] += st[4] - st0[4]
        stats.s_errprop[0] += st[5] - st0[5]
        rf = self.inst.rf
        if rf != rf0:
            counts = stats.firings.counts
            deltas: dict = {}
            for i, rule in enumerate(self.module.rules):
                delta = rf[i] - rf0[i]
                if delta:
                    counts[rule] = counts.get(rule, 0) + delta
                    deltas[rule] = delta
            tracer = _trace.ACTIVE
            if tracer is not None and deltas:
                tracer.firings(deltas)

    def _eval(self, term: Term, budget) -> Term:
        stats = self.stats
        nf = self._nf
        stack: list = [(0, term)]
        result: Term = term
        while stack:
            frame = stack.pop()
            tag = frame[0]
            if tag == 0:  # evaluate frame[1]
                t = frame[1]
                if isinstance(t, App):
                    if t in nf:
                        result = t
                        continue
                    if t.args:
                        stack.append((1, t, [], 1))
                        stack.append((0, t.args[0]))
                    else:
                        result = self._root(t.op, (), budget)
                elif isinstance(t, Ite):
                    stack.append((2, t))
                    stack.append((0, t.cond))
                else:
                    result = t  # Var, Lit, Err: already normal
            elif tag == 1:  # collect one evaluated argument
                _, t, done, nxt = frame
                value = result
                if isinstance(value, Err):
                    stats.error_propagations += 1
                    result = Err(t.sort)
                    continue
                done.append(value)
                if nxt < len(t.args):
                    stack.append((1, t, done, nxt + 1))
                    stack.append((0, t.args[nxt]))
                else:
                    result = self._root(t.op, tuple(done), budget)
            else:  # tag == 2: conditional, condition evaluated
                t = frame[1]
                cond = result
                if isinstance(cond, Err):
                    stats.error_propagations += 1
                    result = Err(t.sort)
                elif is_true(cond):
                    stack.append((0, t.then_branch))
                elif is_false(cond):
                    stack.append((0, t.else_branch))
                elif cond is t.cond:
                    result = t
                else:
                    result = Ite(cond, t.then_branch, t.else_branch)
        return result

    def _root(self, op: Operation, args: tuple, budget: BudgetMeter) -> Term:
        if _faults.ACTIVE is not None:
            _faults.ACTIVE.visit("compiled.root", op)
        budget.tick()
        fn = self._fns.get(op.name)
        if fn is not None:
            try:
                return fn(*args, budget, 0)
            except _DeepRecursion:
                if _faults.ACTIVE is not None:
                    _faults.ACTIVE.visit("compiled.fallback", op)
                self.stats.record_fallback("codegen_depth")
                return self._interp._eval(App(op, args), budget)
        if op.name in self._uncompiled or (
            op.builtin is not None
            and all(isinstance(a, Lit) for a in args)
        ):
            return self._interp._eval(App(op, args), budget)
        return App(op, args)  # free constructor: already normal
