"""A bounded Knuth–Bendix-style completion procedure.

Completion tries to turn an axiom set into a *confluent* rewrite system:
it repeatedly computes critical pairs, simplifies both sides, and when
they differ orients the residual equation into a new rule (under an RPO
precedence).  Three outcomes:

* ``complete`` — no unjoinable pairs remain; the (possibly extended)
  system is confluent, hence the original axioms are consistent.
* ``inconsistent`` — a critical pair equates two distinct constructor
  normal forms (e.g. ``true = false``); the axioms contradict each other.
* ``inconclusive`` — an equation would not orient, or the bound was hit.

This is deliberately a *bounded, definitional* completion: the paper's
specifications are already nearly confluent, and the analysis layer only
needs completion to classify them, not to complete arbitrary algebras.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum, auto
from typing import Iterable, Optional

from repro.algebra.terms import App, Err, Lit, Term, Var
from repro.spec.axioms import Axiom
from repro.rewriting.critical_pairs import all_critical_pairs
from repro.rewriting.engine import RewriteEngine, RewriteLimitError
from repro.rewriting.ordering import Precedence, orient
from repro.rewriting.rules import RewriteRule, RuleSet


class CompletionStatus(Enum):
    COMPLETE = auto()
    INCONSISTENT = auto()
    INCONCLUSIVE = auto()


@dataclass
class CompletionResult:
    status: CompletionStatus
    rules: RuleSet
    added: list[RewriteRule] = field(default_factory=list)
    failures: list[str] = field(default_factory=list)
    rounds: int = 0

    @property
    def confluent(self) -> bool:
        return self.status is CompletionStatus.COMPLETE

    def __str__(self) -> str:
        lines = [f"completion: {self.status.name.lower()} after {self.rounds} round(s)"]
        if self.added:
            lines.append("added rules:")
            lines.extend(f"  {rule}" for rule in self.added)
        if self.failures:
            lines.append("failures:")
            lines.extend(f"  {failure}" for failure in self.failures)
        return "\n".join(lines)


def _is_value_form(term: Term) -> bool:
    """A term built only from leaves and applications with no defined
    structure left to compare — used to spot direct contradictions."""
    if isinstance(term, (Lit, Err, Var)):
        return True
    if isinstance(term, App):
        return all(_is_value_form(arg) for arg in term.args)
    return False


def _contradicts(left: Term, right: Term) -> bool:
    """True when two joined-out forms are *visibly* distinct values:
    different literals, literal vs error, or two different constructor
    constants.  Variable-containing terms never contradict."""
    if left == right:
        return False
    if left.variables() or right.variables():
        return False
    if isinstance(left, Lit) and isinstance(right, Lit):
        return True
    if isinstance(left, Err) != isinstance(right, Err):
        return True
    if isinstance(left, App) and isinstance(right, App):
        if left.op != right.op:
            return True
        return any(_contradicts(l, r) for l, r in zip(left.args, right.args))
    return False


def complete(
    rules: Iterable[RewriteRule],
    precedence: Precedence,
    max_rounds: int = 8,
    max_rules: int = 200,
    fuel: int = 20_000,
) -> CompletionResult:
    """Run bounded completion over ``rules``."""
    ruleset = RuleSet(rules)
    added: list[RewriteRule] = []
    failures: list[str] = []
    rounds = 0
    while rounds < max_rounds:
        rounds += 1
        engine = RewriteEngine(ruleset, fuel=fuel)
        new_rules: list[RewriteRule] = []
        for pair in all_critical_pairs(ruleset):
            try:
                left = engine.simplify(pair.left)
                right = engine.simplify(pair.right)
            except RewriteLimitError:
                failures.append(f"fuel exhausted joining {pair}")
                continue
            if left == right:
                continue
            if _contradicts(left, right):
                failures.append(
                    f"contradiction: {left} = {right} (from overlap "
                    f"{pair.overlap})"
                )
                return CompletionResult(
                    CompletionStatus.INCONSISTENT,
                    ruleset,
                    added,
                    failures,
                    rounds,
                )
            equation = _as_equation(left, right)
            if equation is None:
                failures.append(f"cannot form equation from {left} = {right}")
                continue
            rule = orient(equation, precedence)
            if rule is None:
                failures.append(f"unorientable equation {left} = {right}")
                continue
            if _known(rule, ruleset) or _known(rule, RuleSet(new_rules)):
                continue
            new_rules.append(rule)
        if not new_rules:
            status = (
                CompletionStatus.COMPLETE
                if not failures
                else CompletionStatus.INCONCLUSIVE
            )
            return CompletionResult(status, ruleset, added, failures, rounds)
        for rule in new_rules:
            if len(ruleset) >= max_rules:
                failures.append("rule limit reached")
                return CompletionResult(
                    CompletionStatus.INCONCLUSIVE, ruleset, added, failures, rounds
                )
            ruleset.add(rule)
            added.append(rule)
    failures.append("round limit reached")
    return CompletionResult(
        CompletionStatus.INCONCLUSIVE, ruleset, added, failures, rounds
    )


def _as_equation(left: Term, right: Term) -> Optional[Axiom]:
    for lhs, rhs in ((left, right), (right, left)):
        if isinstance(lhs, App) and not (rhs.variables() - lhs.variables()):
            try:
                return Axiom(lhs, rhs)
            except Exception:  # fault-boundary: speculative orientation may be ill-sorted
                continue
    return None


def _known(rule: RewriteRule, ruleset: RuleSet) -> bool:
    from repro.algebra.matching import variant_of

    return any(
        variant_of(rule.lhs, existing.lhs) and variant_of(rule.rhs, existing.rhs)
        for existing in ruleset.for_head(rule.head)
    )
