"""Symbolic interpretation: running a specification as its own
implementation."""

from repro.interp.symbolic import (
    SymbolicInterpreter,
    SymbolicTypeError,
    SymbolicValue,
)
from repro.interp.facade import FacadeValue, facade_class, python_name

__all__ = [
    "SymbolicInterpreter",
    "SymbolicTypeError",
    "SymbolicValue",
    "FacadeValue",
    "facade_class",
    "python_name",
]
